#!/usr/bin/env python3
"""TSB hotspot analysis: why staggered placement helps (Figures 11-12).

Restricting requests to four region TSBs concentrates traffic on the
core-layer columns feeding the TSB nodes and on the cache-layer links
fanning back out.  This script probes per-link utilisation under corner
vs staggered placement and prints the hottest links of each.

Usage:
    python examples/tsb_hotspot_analysis.py [app]
"""

import sys

from repro import CMPSimulator, Scheme, homogeneous, make_config
from repro.analysis.tables import format_table
from repro.analysis.utilization import LinkUtilizationProbe
from repro.sim.config import TSBPlacement


def probe(app: str, placement: TSBPlacement):
    cfg = make_config(
        Scheme.STTRAM_4TSB_WB, mesh_width=8, capacity_scale=1 / 16,
        tsb_placement=placement,
    )
    sim = CMPSimulator(cfg, homogeneous(app, cfg))
    for _ in range(1000):
        sim.step()  # warm up before attaching the probe
    link_probe = LinkUtilizationProbe(sim.network)
    for _ in range(2000):
        sim.step()
    return sim, link_probe


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "tpcc"
    for placement in (TSBPlacement.CORNER, TSBPlacement.STAGGER):
        sim, link_probe = probe(app, placement)
        rows = [
            [s.label(sim.topo), round(s.utilization, 3)]
            for s in link_probe.hottest(8)
        ]
        print()
        print(format_table(
            ["link", "utilisation"], rows,
            title=f"{app} / {placement.value} TSBs: hottest links"))
        print(f"links above 80% utilisation: "
              f"{link_probe.saturation_count(0.8)}")
        print(f"core-layer avg {link_probe.layer_average(sim.topo, 0):.3f}"
              f", cache-layer avg "
              f"{link_probe.layer_average(sim.topo, 1):.3f}")


if __name__ == "__main__":
    main()
