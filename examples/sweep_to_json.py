#!/usr/bin/env python3
"""Run a scheme/application sweep and persist the results as JSON.

Demonstrates the batch-experiment API: simulate a grid once, save it,
and re-derive normalised series from the saved file without
re-simulating.

Usage:
    python examples/sweep_to_json.py [output.json]
"""

import sys

from repro import ALL_SCHEMES, Scheme
from repro.analysis.tables import format_table
from repro.sim.sweep import SweepGrid, SweepResults, run_sweep


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "sweep_results.json"
    grid = SweepGrid(
        apps=["tpcc", "sclust", "mcf"],
        schemes=ALL_SCHEMES,
        cycles=2000, warmup=800,
        overrides={"mesh_width": 8, "capacity_scale": 1 / 16},
    )
    sweep = run_sweep(
        grid,
        progress=lambda app, scheme: print(f"  {app} / {scheme.value}"),
    )
    sweep.save(path)
    print(f"saved {path}")

    # Re-load and analyse from disk only.
    loaded = SweepResults.load(path)
    norm = loaded.normalized("instruction_throughput",
                             baseline=Scheme.SRAM_64TSB.value)
    rows = [
        [app] + [round(norm[app][s], 3) for s in loaded.schemes()]
        for app in loaded.apps()
    ]
    print()
    print(format_table(["app"] + loaded.schemes(), rows,
                       title="throughput normalised to SRAM-64TSB "
                             "(from JSON)"))

    # Tail latency straight from the persisted summaries: the p99 shows
    # the bank-queueing pathology the averages smooth over.
    p99 = loaded.metric("latency_p99")
    rows = [
        [app] + [round(p99[app][s]) for s in loaded.schemes()]
        for app in loaded.apps()
    ]
    print()
    print(format_table(["app"] + loaded.schemes(), rows,
                       title="p99 packet latency in cycles (from JSON)"))


if __name__ == "__main__":
    main()
