#!/usr/bin/env python3
"""Fleet telemetry end to end: spans, merged metrics, ledger, trace.

Runs one apps x schemes grid through the parallel sweep engine with
the full telemetry plane enabled -- live progress on stderr, span
recording in every worker -- then shows where the wall time went:

* a span rollup (count + total seconds per span name, parent and
  workers merged);
* the per-worker completion counts and merged fleet metrics;
* a Chrome/Perfetto trace file with one track per worker process;
* the run-ledger record the sweep appended, diffed against the
  previous run when one exists (so running this twice demonstrates
  `ledger diff` too).

Telemetry is a pure reader: the sweep re-runs with telemetry off and
the fingerprints are asserted identical.

Usage:
    python examples/sweep_telemetry.py [workers] [--progress rich]
        [--trace-out sweep-trace.json] [--ledger-path PATH]
"""

import argparse
import os
import tempfile

from repro.obs.ledger import RunLedger, diff_records, format_entries
from repro.obs.progress import ProgressRenderer
from repro.obs.telemetry import SweepTelemetry, validate_chrome_trace
from repro.sim.parallel import SweepRunStats
from repro.sim.sweep import SweepGrid, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workers", nargs="?", type=int, default=2,
                        help="pool size (0 = one per CPU)")
    parser.add_argument("--progress", choices=("plain", "rich"),
                        default="rich")
    parser.add_argument("--trace-out", default="sweep-trace.json")
    parser.add_argument("--ledger-path",
                        default=os.path.join(tempfile.gettempdir(),
                                             "repro-demo-ledger.jsonl"))
    args = parser.parse_args()

    grid = SweepGrid(
        apps=["tpcc", "sclust", "mcf", "hmmer"],
        cycles=2000, warmup=800,
        overrides={"mesh_width": 4, "capacity_scale": 1 / 64},
    )

    ledger = RunLedger(path=args.ledger_path)
    previous = ledger.entries()

    telemetry = SweepTelemetry()
    telemetry.progress = ProgressRenderer(mode=args.progress)
    stats = SweepRunStats()
    os.environ["REPRO_LEDGER"] = "1"
    sweep = run_sweep(grid, workers=args.workers, cache=False,
                      stats=stats, telemetry=telemetry,
                      ledger_path=args.ledger_path)

    print(f"\n{stats.points} points in {stats.wall_seconds:.2f}s "
          f"({stats.points_per_sec:.2f} points/sec, "
          f"workers={stats.workers})")

    print("\nwhere the wall time went (merged span rollup):")
    for name, roll in sorted(telemetry.rollups().items(),
                             key=lambda kv: -kv[1]["total_s"]):
        print(f"  {name:24s} x{roll['count']:<4d} "
              f"{roll['total_s']:8.3f}s")

    meta = sweep.meta["telemetry"]
    print("\nper-worker points "
          f"(fleet of {len(telemetry.workers())}):")
    per_worker = meta["metrics"].get("sweep.workers.active", {})
    for label, value in sorted(per_worker.get("values", {}).items()):
        print(f"  {label:12s} active={value:g}")
    print(f"  merged worker.points = "
          f"{meta['metrics']['worker.points']['value']:g}")

    telemetry.write_chrome(args.trace_out)
    slices, tracks, errors = validate_chrome_trace(args.trace_out)
    assert not errors, errors
    print(f"\nwrote {args.trace_out}: {slices} slices on {tracks} "
          "worker tracks (load it in ui.perfetto.dev)")

    records = ledger.entries()
    print(f"\nledger {args.ledger_path} "
          f"({len(records)} runs):")
    print(format_entries(records[-3:]))
    if previous:
        lines, failures = diff_records(previous[-1], records[-1])
        print("\ndiff vs previous run:")
        for line in lines:
            print(f"  {line}")
        print("  " + ("REGRESSION" if failures else "no regression"))

    bare = run_sweep(grid, workers=args.workers, cache=False,
                     ledger=False)
    assert bare.fingerprint() == sweep.fingerprint(), (
        "telemetry must be a pure reader"
    )
    print(f"\ntelemetry-off fingerprint identical: "
          f"{sweep.fingerprint()[:16]}")


if __name__ == "__main__":
    main()
