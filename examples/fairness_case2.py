#!/usr/bin/env python3
"""Fairness study: the paper's Case-2 multi-programmed mix (Figure 10).

Co-schedules bursty write-intensive applications (lbm, hmmer) with
read-intensive ones (bzip2, libquantum) and reports each application's
slowdown relative to running alone, under plain STT-RAM and under the
WB scheme.

Usage:
    python examples/fairness_case2.py
"""

from repro import CMPSimulator, Scheme, homogeneous, make_config
from repro.analysis.tables import format_table
from repro.sim.metrics import max_slowdown, slowdowns
from repro.workloads.mixes import case2

CYCLES, WARMUP = 2500, 1000
PARAMS = dict(mesh_width=8, capacity_scale=1 / 16)


def run_case(scheme: Scheme):
    cfg = make_config(scheme, **PARAMS)
    sim = CMPSimulator(cfg, case2(cfg))
    mixed = sim.run(CYCLES, warmup=WARMUP)
    shared = mixed.ipc_by_app()

    alone = {}
    for app in shared:
        solo_sim = CMPSimulator(cfg, homogeneous(app, cfg))
        alone[app] = solo_sim.run(CYCLES, warmup=WARMUP).ipc_by_app()[app]
    return slowdowns(shared, alone), max_slowdown(shared, alone)


def main() -> None:
    rows = []
    apps = None
    for scheme in (Scheme.STTRAM_64TSB, Scheme.STTRAM_4TSB_WB):
        print(f"running {scheme.value} (mix + 4 stand-alone runs)...")
        per_app, worst = run_case(scheme)
        apps = sorted(per_app)
        rows.append([scheme.value]
                    + [round(per_app[a], 3) for a in apps]
                    + [round(worst, 3)])
    print()
    print(format_table(["scheme"] + apps + ["max"], rows,
                       title="Case 2 slowdown per application "
                             "(lower is fairer)"))


if __name__ == "__main__":
    main()
