#!/usr/bin/env python3
"""Quickstart: compare the six design scenarios on one workload.

Builds the paper's two-layer 64-core / 64-bank CMP (scaled caches so it
runs in seconds), drives it with a synthetic tpcc-like workload, and
prints throughput, bank queueing and energy for every scheme normalised
to the SRAM baseline.

Usage:
    python examples/quickstart.py [app] [mesh_width]
"""

import sys

from repro import ALL_SCHEMES, Scheme, app_factory, compare_schemes
from repro.analysis.tables import format_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "tpcc"
    mesh_width = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"Running {app} under all six schemes "
          f"({mesh_width}x{mesh_width} mesh per layer)...")
    comparison = compare_schemes(
        app_factory(app), app,
        cycles=2500, warmup=1000,
        mesh_width=mesh_width, capacity_scale=1 / 16,
    )

    throughput = comparison.normalized_throughput()
    energy = comparison.normalized_energy()
    rows = []
    for scheme in ALL_SCHEMES:
        result = comparison.results[scheme]
        rows.append([
            scheme.value,
            round(throughput[scheme], 3),
            round(result.avg_bank_queue_wait, 1),
            round(result.avg_packet_latency, 1),
            round(result.latency_p95),
            round(result.latency_p99),
            result.delayed_cycle_sum,
            round(energy[scheme], 3),
        ])
    print()
    print(format_table(
        ["scheme", "throughput", "bank queue (cyc)", "pkt latency",
         "p95", "p99", "delayed cyc", "energy"],
        rows,
        title=f"{app}: normalised to {Scheme.SRAM_64TSB.value}",
    ))
    print()
    wb = comparison.results[Scheme.STTRAM_4TSB_WB]
    plain = comparison.results[Scheme.STTRAM_4TSB]
    saved = plain.avg_bank_queue_wait - wb.avg_bank_queue_wait
    print(f"The WB estimator trimmed {saved:.1f} cycles of average bank "
          "queueing relative to the restriction-only MRAM-4TSB baseline.")
    if wb.estimator_accuracy:
        acc = wb.estimator_accuracy
        print(f"Its busy predictions were right {100 * acc['accuracy']:.1f}% "
              f"of the time ({acc['over_predictions']} over- and "
              f"{acc['under_predictions']} under-predictions of "
              f"{acc['samples']} forwarded requests).")


if __name__ == "__main__":
    main()
