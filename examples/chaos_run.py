#!/usr/bin/env python3
"""Chaos demo: kill a region's vertical TSB link mid-run and measure
the degraded-mode cost.

Runs the same workload twice on the MRAM-4TSB-WB scheme with invariant
guards enabled -- once fault-free, once with region 0's TSB failing
stuck-at partway through warmup so its banks remap onto the nearest
healthy donor region -- and prints the latency/throughput delta plus
the fault-plane and guard reports.  Both runs are fully deterministic:
re-running this script reproduces every number byte for byte.

Usage:
    python examples/chaos_run.py [app] [mesh_width]
"""

import sys

from repro.analysis.tables import format_table
from repro.noc.packet import reset_packet_ids
from repro.resilience import FaultConfig
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous

CYCLES = 4_000
WARMUP = 1_500
FAIL_REGION = 0


def run(app: str, mesh_width: int, faults=None):
    reset_packet_ids()
    config = make_config(Scheme.STTRAM_4TSB_WB, mesh_width=mesh_width,
                         capacity_scale=1 / 16)
    sim = CMPSimulator(config, homogeneous(app, config, seed=1),
                       guard=True, faults=faults)
    result = sim.run(CYCLES, warmup=WARMUP)
    return sim, result


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "tpcc"
    mesh_width = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"Running {app} on {Scheme.STTRAM_4TSB_WB.value} "
          f"({mesh_width}x{mesh_width} mesh per layer), "
          "guards enabled...")
    _, healthy = run(app, mesh_width)

    faults = FaultConfig(seed=7,
                         tsb_failures=((FAIL_REGION, WARMUP // 2),))
    print(f"Re-running with region {FAIL_REGION}'s TSB failing "
          f"stuck-at at cycle {WARMUP // 2}...")
    sim, degraded = run(app, mesh_width, faults=faults)

    rows = []
    for label, result in (("healthy", healthy), ("tsb-failed", degraded)):
        rows.append([
            label,
            round(result.instruction_throughput(), 3),
            round(result.avg_packet_latency, 1),
            round(result.latency_p95),
            round(result.avg_bank_queue_wait, 1),
            result.packets_delivered,
        ])
    print()
    print(format_table(
        ["run", "throughput", "pkt latency", "p95",
         "bank queue (cyc)", "delivered"],
        rows,
        title=f"{app}: fault-free vs degraded (seed-deterministic)",
    ))

    report = sim.fault_plane.report()
    donor = report["tsb_remapped"][FAIL_REGION]
    delta = degraded.avg_packet_latency - healthy.avg_packet_latency
    ratio = (degraded.instruction_throughput()
             / healthy.instruction_throughput()
             if healthy.instruction_throughput() else 0.0)
    print()
    print(f"Region {FAIL_REGION} degraded onto donor region {donor}; "
          f"{report['packets_rerouted']} in-flight packets rerouted.")
    print(f"Degraded-mode latency delta: {delta:+.1f} cycles average "
          f"packet latency; throughput at {100 * ratio:.1f}% of "
          "fault-free.")
    print(f"Invariant guard: {sim.guard.checks_run} checks, "
          f"{sim.guard.violations} violations -- the remapped network "
          "still conserves every flit and credit.")


if __name__ == "__main__":
    main()
