#!/usr/bin/env python3
"""Microscope on the paper's Figure 2 scenario.

One core emits a burst of writes to a single STT-RAM bank followed by
reads to other banks in the same region.  With the oblivious router the
reads trail the 8-flit write packets; with the bank-aware arbiter the
parent router delays the writes (the bank is busy anyway) and the reads
overtake them.  The script prints per-transaction completion times under
both policies.

Usage:
    python examples/write_burst_microscope.py
"""

from repro import CMPSimulator, Scheme, make_config
from repro.cache.messages import Transaction
from repro.cpu.trace import IdleStream, bank_block
from repro.noc.packet import PacketClass
from repro.workloads.mixes import Workload


def run(scheme: Scheme):
    cfg = make_config(scheme, mesh_width=8, capacity_scale=1 / 64)
    n = cfg.n_cores
    workload = Workload([IdleStream() for _ in range(n)],
                        ["micro"] * n, "micro")
    sim = CMPSimulator(cfg, workload, prewarm=False)

    # Region 0's TSB lands at cache node 91; its two-hop children are
    # banks 11, 18 and 25 (nodes 75, 82, 89) -- write to one child and
    # read the others, all L2-resident.
    busy_bank, idle_a, idle_b = 11, 18, 25
    for bank in (busy_bank, idle_a, idle_b):
        for i in range(40):
            sim._install_l2(bank_block(bank, i + 100, n))

    txns = []

    def send_write(block, now):
        txn = Transaction(0, block, True, "store", now)
        sim._send(PacketClass.REQUEST, 0, sim.topo.bank_node(busy_bank),
                  cfg.data_packet_flits, True, None, txn, now)
        txns.append(("write", busy_bank, txn))

    def send_read(bank, block, now):
        txn = Transaction(0, block, False, "read", now)
        sim._send(PacketClass.REQUEST, 0, sim.topo.bank_node(bank),
                  cfg.addr_packet_flits, False, None, txn, now)
        txns.append(("read", bank, txn))

    # The Figure 2 request sequence at the source router.
    for i in range(3):
        send_write(bank_block(busy_bank, i + 100, n), 0)
    send_read(idle_a, bank_block(idle_a, 100, n), 0)
    send_read(idle_b, bank_block(idle_b, 100, n), 0)
    send_read(busy_bank, bank_block(busy_bank, 110, n), 0)

    for _ in range(1200):
        sim.step()
    return sim, txns


def main() -> None:
    for scheme in (Scheme.STTRAM_4TSB, Scheme.STTRAM_4TSB_SS):
        sim, txns = run(scheme)
        print(f"\n=== {scheme.value} ===")
        for kind, bank, txn in txns:
            start = txn.service_start
            print(f"  {kind:5s} -> bank {bank:2d}: service starts at "
                  f"cycle {start}")
        if sim.tracker is not None:
            print(f"  packets the arbiter delayed: "
                  f"{sim.arbiter.packets_delayed}, "
                  f"re-ordering decisions: {sim.arbiter.reorders}")


if __name__ == "__main__":
    main()
