#!/usr/bin/env python3
"""Multi-app scheme comparison through the parallel sweep engine.

Runs the same apps x schemes grid twice -- first against a cold
content-addressed result cache (simulating every point, fanned out
across a process pool), then again against the warm cache (no
simulation at all) -- and prints the timing of both alongside the
paper-style normalised throughput table.

Usage:
    python examples/parallel_sweep.py [workers] [cache_dir]
"""

import sys
import tempfile

from repro import ALL_SCHEMES, Scheme
from repro.analysis.tables import format_table
from repro.sim.parallel import SweepRunStats
from repro.sim.sweep import SweepGrid, run_sweep


def timed_run(grid, label, workers, cache_dir):
    stats = SweepRunStats()
    sweep = run_sweep(grid, workers=workers, cache=True,
                      cache_dir=cache_dir, stats=stats)
    print(
        f"{label:12s} {stats.points} points in "
        f"{stats.wall_seconds:6.2f}s  ({stats.points_per_sec:8.2f} "
        f"points/sec, {stats.cache_hits} cached, "
        f"{stats.simulated} simulated, workers={stats.workers})"
    )
    return sweep


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 0  # 0 = n_cpus
    cache_dir = sys.argv[2] if len(sys.argv) > 2 else None

    grid = SweepGrid(
        apps=["tpcc", "sclust", "mcf", "hmmer"],
        schemes=ALL_SCHEMES,
        cycles=2000, warmup=800,
        overrides={"mesh_width": 4, "capacity_scale": 1 / 64},
    )

    ctx = (tempfile.TemporaryDirectory(prefix="repro-sweep-")
           if cache_dir is None else None)
    root = cache_dir if ctx is None else ctx.name
    try:
        cold = timed_run(grid, "cold cache", workers, root)
        warm = timed_run(grid, "warm cache", workers, root)
        assert warm.fingerprint() == cold.fingerprint(), (
            "cache replay must be byte-identical"
        )

        norm = warm.normalized("instruction_throughput",
                               baseline=Scheme.SRAM_64TSB.value)
        rows = [
            [app] + [round(norm[app][s], 3) for s in warm.schemes()]
            for app in warm.apps()
        ]
        print()
        print(format_table(["app"] + warm.schemes(), rows,
                           title="throughput normalised to SRAM-64TSB"))
    finally:
        if ctx is not None:
            ctx.cleanup()


if __name__ == "__main__":
    main()
