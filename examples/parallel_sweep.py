#!/usr/bin/env python3
"""Multi-app scheme comparison through the parallel sweep engine.

Runs the same apps x schemes grid twice -- first against a cold
content-addressed result cache (simulating every point, fanned out
across a process pool), then again against the warm cache (no
simulation at all) -- and prints the timing of both alongside the
paper-style normalised throughput table.

With ``--backend batch`` (needs the ``repro[batch]`` extra) the cold
pass additionally runs through the batched lockstep backend, printing
a serial-scalar vs batch comparison and asserting the two are
byte-identical.

Usage:
    python examples/parallel_sweep.py [workers] [cache_dir]
        [--backend {scalar,batch}] [--batch-width B]
"""

import argparse
import tempfile

from repro import ALL_SCHEMES, Scheme
from repro.analysis.tables import format_table
from repro.sim.parallel import SweepRunStats
from repro.sim.sweep import SweepGrid, run_sweep


def timed_run(grid, label, workers, cache_dir, cache=True,
              backend="scalar", batch_width=None):
    stats = SweepRunStats()
    sweep = run_sweep(grid, workers=workers, cache=cache,
                      cache_dir=cache_dir, stats=stats,
                      backend=backend, batch_width=batch_width)
    extra = ""
    if backend == "batch":
        extra = (f", {stats.lanes_packed} lanes in "
                 f"{stats.lane_groups} groups")
    print(
        f"{label:14s} {stats.points} points in "
        f"{stats.wall_seconds:6.2f}s  ({stats.points_per_sec:8.2f} "
        f"points/sec, {stats.cache_hits} cached, "
        f"{stats.simulated} simulated, workers={stats.workers}{extra})"
    )
    return sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workers", nargs="?", type=int, default=0,
                        help="pool size (0 = one per CPU)")
    parser.add_argument("cache_dir", nargs="?", default=None)
    parser.add_argument("--backend", choices=("scalar", "batch"),
                        default="scalar")
    parser.add_argument("--batch-width", type=int, default=None)
    args = parser.parse_args()

    grid = SweepGrid(
        apps=["tpcc", "sclust", "mcf", "hmmer"],
        schemes=ALL_SCHEMES,
        cycles=2000, warmup=800,
        overrides={"mesh_width": 4, "capacity_scale": 1 / 64},
    )

    ctx = (tempfile.TemporaryDirectory(prefix="repro-sweep-")
           if args.cache_dir is None else None)
    root = args.cache_dir if ctx is None else ctx.name
    try:
        if args.backend == "batch":
            # Two uncached passes isolate the backends from the cache
            # and the pool: serial scalar vs serial batch.
            scalar = timed_run(grid, "serial scalar", 1, root,
                               cache=False)
            batch = timed_run(grid, "serial batch", 1, root, cache=False,
                              backend="batch",
                              batch_width=args.batch_width)
            assert batch.fingerprint() == scalar.fingerprint(), (
                "batch backend must be byte-identical to scalar"
            )
            print("backends byte-identical: "
                  f"fingerprint {batch.fingerprint()[:16]}")

        cold = timed_run(grid, "cold cache", args.workers, root,
                         backend=args.backend,
                         batch_width=args.batch_width)
        warm = timed_run(grid, "warm cache", args.workers, root,
                         backend=args.backend,
                         batch_width=args.batch_width)
        assert warm.fingerprint() == cold.fingerprint(), (
            "cache replay must be byte-identical"
        )

        norm = warm.normalized("instruction_throughput",
                               baseline=Scheme.SRAM_64TSB.value)
        rows = [
            [app] + [round(norm[app][s], 3) for s in warm.schemes()]
            for app in warm.apps()
        ]
        print()
        print(format_table(["app"] + warm.schemes(), rows,
                           title="throughput normalised to SRAM-64TSB"))
    finally:
        if ctx is not None:
            ctx.cleanup()


if __name__ == "__main__":
    main()
