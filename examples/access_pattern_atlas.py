#!/usr/bin/env python3
"""Access-pattern atlas: regenerate Figure 3 for chosen applications.

For each application, prints the histogram of same-bank access gaps
following a write (the paper's burstiness fingerprint) and the fraction
of accesses that inevitably queue behind a 33-cycle STT-RAM write.

Usage:
    python examples/access_pattern_atlas.py [app ...]
"""

import sys

from repro.analysis.access_dist import distribution_for_app
from repro.analysis.tables import format_histogram

LABELS = ("<16", "<33", "<66", "<99", "<132", "<165", "165+")
DEFAULT_APPS = ("tpcc", "sclust", "x264", "libquantum")


def main() -> None:
    apps = sys.argv[1:] or list(DEFAULT_APPS)
    for app in apps:
        dist = distribution_for_app(
            app, mesh_width=8, capacity_scale=1 / 16,
            cycles=2500, warmup=1000,
        )
        print()
        print(format_histogram(
            LABELS, dist.percentages,
            title=f"{app}: gap after a write to the same bank "
                  f"(queued fraction "
                  f"{100 * dist.queued_fraction():.1f}%)"))


if __name__ == "__main__":
    main()
