#!/usr/bin/env python3
"""Trace one run per estimator and compare busy-prediction accuracy.

The paper's bank-aware arbiter delays a request when its parent router
predicts the target STT-RAM bank will still be busy when the packet
arrives (Section 3.5).  That prediction folds in a congestion estimate
from one of three schemes -- SS (none), RCA (regional aggregation), WB
(timestamp/ACK sampling).  This example attaches an observability
session to one run per scheme, joins every prediction against the
bank's ground-truth service intervals, and prints

* a per-estimator accuracy table (correct / over- / under-predictions),
* the per-bank busy-fraction heatmap of the WB run's last epoch, and
* the WB run's epoch time-series.

Usage:
    python examples/trace_estimator_accuracy.py [app] [mesh_width]
"""

import sys

from repro.noc.packet import reset_packet_ids
from repro.obs import Observability
from repro.obs.report import (
    format_accuracy_table, format_bank_heatmap, format_epoch_table,
)
from repro.sim.config import Scheme, make_config
from repro.sim.experiment import app_factory
from repro.sim.simulator import CMPSimulator

SCHEMES = (
    ("SS", Scheme.STTRAM_4TSB_SS),
    ("RCA", Scheme.STTRAM_4TSB_RCA),
    ("WB", Scheme.STTRAM_4TSB_WB),
)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "tpcc"
    mesh_width = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    summaries = []
    wb_obs = None
    for label, scheme in SCHEMES:
        print(f"tracing {app} under {scheme.value} ({label})...")
        reset_packet_ids()  # identical packet streams across schemes
        config = make_config(scheme, mesh_width=mesh_width,
                             capacity_scale=1 / 16)
        sim = CMPSimulator(config, app_factory(app)(config))
        obs = Observability(epoch=256)
        obs.attach(sim)
        result = sim.run(2500, warmup=1000)
        summaries.append(result.estimator_accuracy)
        if scheme is Scheme.STTRAM_4TSB_WB:
            wb_obs = obs

    print()
    print(format_accuracy_table(summaries))
    print()
    print("An over-prediction delays a packet for nothing; an under-"
          "prediction\nlets it queue at a busy bank -- the paper's WB "
          "scheme buys accuracy\nwith its timestamp/ACK round trips.")
    print()
    last = wb_obs.samples[-1]
    print(format_bank_heatmap(last.bank_busy_frac, mesh_width,
                              title="WB run, final epoch: bank busy "
                                    "fraction"))
    print()
    print(format_epoch_table(wb_obs.samples, max_rows=12))


if __name__ == "__main__":
    main()
