"""Figure 10: maximum application slowdown in the Case-2 mix.

The paper's fairness result: with plain STT-RAM, the bursty
write-intensive applications (lbm, hmmer) hog network and bank resources
and the read-intensive ones (bzip2, libquantum) are slowed down almost
as much despite their lower miss rates; the WB scheme's prioritisation
of requests to idle banks restores a measure of fairness.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme
from repro.sim.metrics import max_slowdown, slowdowns
from repro.workloads.mixes import case2

from common import once, run_app, run_mix

SCHEMES = (Scheme.STTRAM_64TSB, Scheme.STTRAM_4TSB_WB)


def _run_all():
    out = {}
    for scheme in SCHEMES:
        result = run_mix(scheme, case2, "case2")
        shared = result.ipc_by_app()
        alone = {
            app: run_app(scheme, app).ipc_by_app()[app]
            for app in shared
        }
        out[scheme] = {
            "slowdowns": slowdowns(shared, alone),
            "max": max_slowdown(shared, alone),
        }
    return out


def test_fig10_max_slowdown(benchmark):
    data = once(benchmark, _run_all)

    print()
    apps = sorted(data[SCHEMES[0]]["slowdowns"])
    rows = [
        [scheme.value]
        + [round(data[scheme]["slowdowns"][a], 3) for a in apps]
        + [round(data[scheme]["max"], 3)]
        for scheme in SCHEMES
    ]
    print(format_table(
        ["scheme"] + apps + ["max"], rows,
        title="Figure 10: per-application slowdown in Case 2"))

    for scheme in SCHEMES:
        assert data[scheme]["max"] > 0
        for app, value in data[scheme]["slowdowns"].items():
            assert value > 0, (scheme, app)

    # The read-intensive applications' slowdown should not exceed the
    # write-intensive ones' by much once the WB scheme prioritises them.
    wb = data[Scheme.STTRAM_4TSB_WB]["slowdowns"]
    read_side = max(wb["bzip2"], wb["libquantum"])
    write_side = max(wb["lbm"], wb["hmmer"])
    assert read_side < 2.0 * write_side
