"""Figure 9: weighted speedup and instruction throughput for the
multi-programmed Case 1-3 workloads.

Case 1 co-schedules four write-intensive applications (the worst case
for the naive SRAM->STT-RAM swap); Case 2 mixes bursty write-intensive
with read-intensive applications; Case 3 aggregates random mixes across
the design space.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme
from repro.sim.metrics import weighted_speedup
from repro.workloads.mixes import case1, case2, case3_mixes

from common import once, run_app, run_mix

SCHEMES = (Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB, Scheme.STTRAM_4TSB,
           Scheme.STTRAM_4TSB_WB)


def _alone_ipc(scheme, apps):
    return {app: run_app(scheme, app).ipc_by_app()[app] for app in apps}


def _case_metrics(scheme, factory, name):
    result = run_mix(scheme, factory, name)
    shared = result.ipc_by_app()
    alone = _alone_ipc(scheme, tuple(shared))
    return {
        "ws": weighted_speedup(shared, alone),
        "it": result.instruction_throughput(),
        "result": result,
    }


def _run_all():
    cases = {}
    for name, factory in (
        ("case1", case1),
        ("case2", case2),
        ("case3", lambda cfg: case3_mixes(cfg, n_mixes=2,
                                          apps_per_mix=4)[1]),
    ):
        cases[name] = {
            scheme: _case_metrics(scheme, factory, name)
            for scheme in SCHEMES
        }
    return cases


def test_fig9_weighted_speedup_and_throughput(benchmark):
    cases = once(benchmark, _run_all)

    print()
    for name, by_scheme in cases.items():
        base_ws = by_scheme[Scheme.SRAM_64TSB]["ws"]
        base_it = by_scheme[Scheme.SRAM_64TSB]["it"]
        rows = [
            [s.value,
             round(m["ws"] / base_ws, 3),
             round(m["it"] / base_it, 3)]
            for s, m in by_scheme.items()
        ]
        print(format_table(
            ["scheme", "WS (norm)", "IT (norm)"], rows,
            title=f"Figure 9 ({name}): normalised to SRAM-64TSB"))
        print()

    # Case 1: co-scheduled write-intensive applications show no gain
    # from the naive swap (paper: WS can degrade by ~9%).
    case1_metrics = cases["case1"]
    assert case1_metrics[Scheme.STTRAM_64TSB]["ws"] \
        <= 1.05 * case1_metrics[Scheme.SRAM_64TSB]["ws"]

    # The WB scheme recovers throughput relative to the restricted
    # STT-RAM baseline in the write-heavy cases.
    for name in ("case1", "case2"):
        by_scheme = cases[name]
        assert by_scheme[Scheme.STTRAM_4TSB_WB]["it"] \
            > 0.95 * by_scheme[Scheme.STTRAM_4TSB]["it"], name

    # Every configuration makes progress.
    for name, by_scheme in cases.items():
        for scheme, metrics in by_scheme.items():
            assert metrics["it"] > 0, (name, scheme)
            assert metrics["ws"] > 0, (name, scheme)
