"""Ablation: the bank-aware arbiter's design choices.

DESIGN.md calls out three policy ingredients layered on the paper's
basic delay rule; this bench isolates each on a bursty server workload:

* **read priority** -- letting reads pass write-data packets among
  eligible candidates (the network-level analogue of read preemption);
* **VC-pressure release** -- parking delayed packets only while the
  input port keeps free VCs (vs parking unconditionally);
* **delay cap** -- the starvation valve on how long a packet may be
  withheld.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme

from common import once, run_app

APP = "tpcc"


def _run_all():
    variants = {
        "full policy": {},
        "no read priority": {"arbiter_read_priority": False},
        "park unconditionally": {"arbiter_min_free_vcs": 0},
        "paranoid parking (4 free)": {"arbiter_min_free_vcs": 4},
        "short delay cap (33)": {"max_delay_cycles": 33},
        "long delay cap (132)": {"max_delay_cycles": 132},
    }
    return {
        name: run_app(Scheme.STTRAM_4TSB_WB, APP, **overrides)
        for name, overrides in variants.items()
    }


def test_ablation_arbiter_policies(benchmark):
    data = once(benchmark, _run_all)

    print()
    base = data["full policy"].instruction_throughput()
    rows = [
        [name,
         round(r.instruction_throughput() / base, 3),
         round(r.avg_bank_queue_wait, 1),
         round(r.avg_miss_latency, 0),
         r.delayed_cycle_sum]
        for name, r in data.items()
    ]
    print(format_table(
        ["variant", "throughput", "bank queue", "miss lat",
         "delayed cyc"],
        rows, title=f"Arbiter ablation on {APP} (MRAM-4TSB-WB)"))

    # Every variant functions and delays packets.
    for name, result in data.items():
        assert result.total_instructions() > 0, name
        assert result.delayed_cycle_sum > 0, name

    # A longer delay cap means more accumulated delay cycles than a
    # short one.
    assert data["long delay cap (132)"].delayed_cycle_sum \
        > data["short delay cap (33)"].delayed_cycle_sum

    # No variant should collapse: within 40% of the full policy.
    for name, result in data.items():
        assert result.instruction_throughput() > 0.6 * base, name
