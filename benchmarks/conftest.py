"""Make the benchmark helpers importable as a plain module."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(autouse=True)
def _fresh_global_state():
    """Isolate benchmarks from process-global counters (packet ids).

    See :func:`repro.sim.reset_state`: seeded runs are only
    reproducible if the global packet-id counter starts from zero.
    """
    from repro.sim import reset_state

    reset_state()
    yield
