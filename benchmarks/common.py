"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
paper's full 8x8x2 mesh, with the L2 capacity (and the synthetic working
sets with it) scaled by ``CAPACITY_SCALE`` and a measurement window of
``CYCLES`` cycles after ``WARMUP`` -- a pure-Python cycle simulator
cannot run 50M instructions per core (see DESIGN.md, "Substitutions").

Simulation results are memoised per (scheme, workload, overrides) so the
figures that share scenario runs (6, 7, 8) pay for them once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.config import Scheme, make_config, with_write_buffer
from repro.sim.results import SimulationResult
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import Workload, homogeneous

MESH_WIDTH = 8
CAPACITY_SCALE = 1 / 16
CYCLES = 2500
WARMUP = 1000
SEED = 1

#: Application subsets used for the figure reproductions (the paper
#: plots more columns of the same suites; these span the read/write and
#: bursty/calm corners).
SERVER_APPS = ("tpcc", "sjas", "sap", "sjbb")
PARSEC_APPS = ("sclust", "ferret", "canneal", "x264")
SPEC_APPS = ("lbm", "hmmer", "mcf", "libquantum")

_result_cache: Dict[Tuple, SimulationResult] = {}


def run_app(scheme: Scheme, app: str, cycles: int = CYCLES,
            warmup: int = WARMUP, seed: int = SEED,
            **overrides) -> SimulationResult:
    """Run one application homogeneously under one scheme (memoised)."""
    key = ("app", scheme, app, cycles, warmup, seed,
           tuple(sorted(overrides.items())))
    cached = _result_cache.get(key)
    if cached is not None:
        return cached
    params = dict(mesh_width=MESH_WIDTH, capacity_scale=CAPACITY_SCALE)
    params.update(overrides)
    add_write_buffer = params.pop("_write_buffer", False)
    config = make_config(scheme, **params)
    if add_write_buffer:
        config = with_write_buffer(config)
    sim = CMPSimulator(config, homogeneous(app, config, seed=seed))
    result = sim.run(cycles, warmup=warmup)
    _result_cache[key] = result
    return result


def run_mix(scheme: Scheme, workload_factory, name: str,
            cycles: int = CYCLES, warmup: int = WARMUP,
            **overrides) -> SimulationResult:
    """Run a multi-programmed mix under one scheme (memoised)."""
    key = ("mix", scheme, name, cycles, warmup,
           tuple(sorted(overrides.items())))
    cached = _result_cache.get(key)
    if cached is not None:
        return cached
    params = dict(mesh_width=MESH_WIDTH, capacity_scale=CAPACITY_SCALE)
    params.update(overrides)
    config = make_config(scheme, **params)
    sim = CMPSimulator(config, workload_factory(config))
    result = sim.run(cycles, warmup=warmup)
    _result_cache[key] = result
    return result


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def scheme_label(scheme: Scheme) -> str:
    return scheme.value
