"""Table 3: per-application characterisation, target vs measured.

Runs a spread of applications alone on the baseline STT-RAM CMP and
reports the paper's target statistics next to what the synthetic streams
actually produce through the full L1/NoC/L2 stack.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme
from repro.workloads.benchmarks import get_benchmark

from common import once, run_app

APPS = ("tpcc", "sjas", "sclust", "x264", "lbm", "hmmer", "mcf",
        "libquantum")


def _measure(app):
    result = run_app(Scheme.STTRAM_64TSB, app)
    instr = result.total_instructions()
    kilo = instr / 1000.0
    l1mpki = result.l1_misses / kilo if kilo else 0.0
    reads = result.bank_reads / kilo if kilo else 0.0
    writes = result.bank_writes / kilo if kilo else 0.0
    l2mpki = result.l2_misses / kilo if kilo else 0.0
    return l1mpki, l2mpki, writes, reads


def test_table3_characterization(benchmark):
    rows = once(benchmark, lambda: [
        (app,) + _measure(app) for app in APPS
    ])
    table_rows = []
    for app, l1, l2m, w, r in rows:
        spec = get_benchmark(app)
        table_rows.append([
            app, spec.l1mpki, round(l1, 2), spec.l2mpki, round(l2m, 2),
            spec.l2wpki, round(w, 2), spec.l2rpki, round(r, 2),
            "High" if spec.bursty else "Low",
        ])
    print()
    print(format_table(
        ["app", "l1mpki*", "l1mpki", "l2mpki*", "l2mpki", "l2wpki*",
         "l2wpki", "l2rpki*", "l2rpki", "bursty"],
        table_rows,
        title="Table 3: target (*) vs measured, STT-RAM baseline",
    ))

    for app, l1, _l2m, w, r in rows:
        spec = get_benchmark(app)
        # Order-of-magnitude calibration: measured within a 2.5x band of
        # the paper's targets (the streams are stochastic and the
        # measured rates feed back through real caches).
        assert 0.4 * spec.l1mpki < l1 < 2.5 * spec.l1mpki + 2, app
        if spec.l2wpki > 1:
            assert 0.3 * spec.l2wpki < w < 3.0 * spec.l2wpki + 2, app
    # Write-dominance ordering preserved: tpcc writes >> libquantum's.
    writes = {row[0]: row[3] for row in rows}
    assert writes["tpcc"] > 10 * max(0.1, writes["libquantum"])
