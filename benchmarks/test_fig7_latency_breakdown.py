"""Figure 7: packet latency broken into network vs bank-queuing parts.

The paper's observation: replacing SRAM with STT-RAM inflates the
queuing component (long writes hold the bank while requests wait at the
interface); the proposed schemes recover a large share of it by feeding
idle banks first.
"""

from repro.analysis.breakdown import breakdown_of, normalized_breakdowns
from repro.analysis.tables import format_table
from repro.sim.config import ALL_SCHEMES, Scheme

from common import once, run_app

APPS = ("sap", "sjbb", "sclust", "lbm", "hmmer")


def _run_all():
    return {
        app: {scheme: run_app(scheme, app) for scheme in ALL_SCHEMES}
        for app in APPS
    }


def test_fig7_latency_breakdown(benchmark):
    data = once(benchmark, _run_all)

    print()
    rows = []
    for app in APPS:
        series = normalized_breakdowns(data[app], Scheme.SRAM_64TSB)
        for scheme in ALL_SCHEMES:
            rows.append([
                app, scheme.value,
                round(series[scheme]["network"], 1),
                round(series[scheme]["queuing"], 1),
            ])
    print(format_table(
        ["app", "scheme", "net lat", "queue lat"], rows,
        title="Figure 7: latency breakdown (SRAM-64TSB row is exact "
              "percentages; others normalised to it)"))

    for app in APPS:
        sram = breakdown_of(data[app][Scheme.SRAM_64TSB])
        stt = breakdown_of(data[app][Scheme.STTRAM_64TSB])
        wb = breakdown_of(data[app][Scheme.STTRAM_4TSB_WB])
        plain4 = breakdown_of(data[app][Scheme.STTRAM_4TSB])
        # Queuing worsens when SRAM banks become STT-RAM banks.
        assert stt.queuing_latency > sram.queuing_latency, app
        # The WB scheme recovers queuing latency vs the 4TSB baseline.
        assert wb.queuing_latency < plain4.queuing_latency * 1.05, app

    # Paper: the schemes reduce the queueing component by up to ~35%.
    reductions = [
        1 - breakdown_of(data[app][Scheme.STTRAM_4TSB_WB]).queuing_latency
        / breakdown_of(data[app][Scheme.STTRAM_4TSB]).queuing_latency
        for app in APPS
    ]
    assert max(reductions) > 0.10
