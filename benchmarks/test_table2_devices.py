"""Table 2: SRAM vs STT-RAM device comparison at 32 nm.

Regenerates the paper's device-model table from the transcribed CACTI /
prototype-scaling numbers and checks the relations the whole study rests
on: iso-area 4x density, 11x write-latency asymmetry, ~2.3x lower
leakage.
"""

from repro.analysis.tables import format_table
from repro.cache.device import SRAM_1MB, STTRAM_4MB, comparison_table

from common import once


def _build_table():
    rows = comparison_table()
    headers = list(rows[0].keys())
    return format_table(headers, [[r[h] for h in headers] for r in rows],
                        title="Table 2: SRAM and STT-RAM at 32nm")


def test_table2_device_comparison(benchmark):
    table = once(benchmark, _build_table)
    print()
    print(table)

    # Paper relations.
    assert STTRAM_4MB.capacity_bytes == 4 * SRAM_1MB.capacity_bytes
    assert abs(STTRAM_4MB.area_mm2 - SRAM_1MB.area_mm2) < 0.5  # iso-area
    assert STTRAM_4MB.write_cycles / STTRAM_4MB.read_cycles == 11
    assert STTRAM_4MB.leakage_mw < 0.5 * SRAM_1MB.leakage_mw
    assert STTRAM_4MB.write_energy_nj > 4 * STTRAM_4MB.read_energy_nj / 2
