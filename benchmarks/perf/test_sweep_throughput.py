"""Smoke test + gate for the sweep-throughput benchmark.

Wall-clock points/sec is machine-dependent (cold-cache parallel
speedup is bounded by physical cores, recorded as ``host_cpus``), so
the hard gates here are the machine-independent ones: the three
execution modes must agree byte-for-byte, the warm replay must be a
100% cache hit, and serving cached points must beat re-simulating by
a wide margin on any host.
"""

import os

import pytest

from repro.sim.perf import SWEEP_WARM_FLOOR, run_sweep_throughput


@pytest.fixture(scope="module")
def sweep_report():
    # Full default window: small enough for CI, large enough that the
    # one-off process-pool spawn cost does not dominate the cold run.
    return run_sweep_throughput()


def test_modes_are_byte_identical(sweep_report):
    assert sweep_report["identical_results"] is True


def test_warm_replay_is_pure_cache(sweep_report):
    assert sweep_report["warm_hit_rate"] == 1.0


def test_warm_cache_beats_simulation(sweep_report):
    assert sweep_report["warm_speedup"] >= SWEEP_WARM_FLOOR, (
        f"warm-cache replay only {sweep_report['warm_speedup']:.1f}x "
        f"over serial simulation"
    )


def test_cold_parallel_not_pathological(sweep_report):
    # On a single-CPU host the pool cannot beat serial; it must not
    # collapse either.  Multi-core hosts are expected to scale.
    floor = 0.5 if (os.cpu_count() or 1) < 2 else 1.0
    assert sweep_report["cold_speedup"] >= floor


def test_report_records_host_context(sweep_report):
    assert sweep_report["host_cpus"] == os.cpu_count()
    assert sweep_report["points"] == 6
    assert sweep_report["workers"] == 4
