"""Smoke test + regression gate for the scheduler perf harness.

Run via ``python -m pytest benchmarks/perf`` (CI) or indirectly through
``python -m repro.cli perf --smoke``.  Not part of tier-1 (which only
collects ``tests/``): this test measures wall-clock throughput and so
belongs with the benchmarks.

The regression gate compares the freshly measured event/dense *speedup*
against the committed ``BENCH_perf.json``: raw cycles/sec is
machine-dependent, but the two schedulers run on the same machine in the
same process, so their ratio transfers across hosts.  A >20% drop fails.
"""

import json
import os

import pytest

from repro.sim.perf import (
    TARGET_CONFIG, check_regression, run_perf_smoke,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
_BASELINE = os.path.join(_REPO_ROOT, "BENCH_perf.json")


@pytest.fixture(scope="module")
def smoke_report():
    return run_perf_smoke()


def test_smoke_runs_target_config(smoke_report):
    assert list(smoke_report["configs"]) == [TARGET_CONFIG]


def test_event_scheduler_matches_dense(smoke_report):
    # run_perf raises on any SimulationResult drift; the flag records
    # that the comparison actually happened.
    row = smoke_report["configs"][TARGET_CONFIG]
    assert row["identical_results"] is True


def test_event_scheduler_is_faster(smoke_report):
    row = smoke_report["configs"][TARGET_CONFIG]
    assert row["speedup"] > 1.0, (
        f"event scheduler slower than dense: {row['speedup']:.2f}x"
    )


def test_no_regression_vs_committed_baseline(smoke_report):
    if not os.path.exists(_BASELINE):
        pytest.skip("no committed BENCH_perf.json baseline")
    with open(_BASELINE) as fh:
        baseline = json.load(fh)
    failures = check_regression(smoke_report, baseline, tolerance=0.2)
    assert not failures, "; ".join(failures)
