"""Figure 6: system throughput of the six design scenarios.

Prints, per suite, each application's throughput under all six schemes
normalised to the SRAM-64TSB baseline -- the same series as the paper's
Figure 6 (IPC for server and PARSEC, instruction throughput for the
multi-programmed SPEC runs).

Shape checks (who wins / direction), not absolute numbers:
* STT-RAM's long writes create bank queueing that SRAM never sees;
* the STT-RAM-aware schemes (SS/RCA/WB) recover bank queueing relative
  to the restriction-only MRAM-4TSB baseline;
* read-intensive applications keep most or all of the 4x capacity gain.
"""

from repro.analysis.tables import format_table
from repro.sim.config import ALL_SCHEMES, Scheme
from repro.sim.metrics import geometric_mean

from common import PARSEC_APPS, SERVER_APPS, SPEC_APPS, once, run_app

SUITES = (("SERVER", SERVER_APPS), ("PARSEC", PARSEC_APPS),
          ("SPEC", SPEC_APPS))


def _run_all():
    data = {}
    for _suite, apps in SUITES:
        for app in apps:
            data[app] = {
                scheme: run_app(scheme, app) for scheme in ALL_SCHEMES
            }
    return data


def test_fig6_throughput_all_schemes(benchmark):
    data = once(benchmark, _run_all)

    print()
    for suite, apps in SUITES:
        rows = []
        per_scheme = {s: [] for s in ALL_SCHEMES}
        for app in apps:
            base = data[app][Scheme.SRAM_64TSB].instruction_throughput()
            row = [app]
            for scheme in ALL_SCHEMES:
                value = data[app][scheme].instruction_throughput() / base
                row.append(round(value, 3))
                per_scheme[scheme].append(value)
            rows.append(row)
        rows.append(
            ["geomean"] + [round(geometric_mean(per_scheme[s]), 3)
                           for s in ALL_SCHEMES])
        print(format_table(
            ["app"] + [s.value for s in ALL_SCHEMES], rows,
            title=f"Figure 6 ({suite}): throughput normalised to "
                  "SRAM-64TSB"))
        print()

    # --- Shape assertions -------------------------------------------------
    # Write-intensive server workloads suffer from the naive SRAM->STT
    # swap (paper: all server benchmarks degrade).
    tpcc = data["tpcc"]
    assert tpcc[Scheme.STTRAM_64TSB].instruction_throughput() \
        < tpcc[Scheme.SRAM_64TSB].instruction_throughput()

    # Bank queueing appears with STT-RAM writes.
    assert tpcc[Scheme.STTRAM_64TSB].avg_bank_queue_wait \
        > 5 * tpcc[Scheme.SRAM_64TSB].avg_bank_queue_wait

    # The estimator schemes cut bank queueing vs the restriction-only
    # 4TSB baseline on bursty write-heavy applications.
    for app in ("tpcc", "sjas"):
        plain = data[app][Scheme.STTRAM_4TSB].avg_bank_queue_wait
        wb = data[app][Scheme.STTRAM_4TSB_WB].avg_bank_queue_wait
        assert wb < plain, app

    # Read-intensive SPEC applications retain the capacity benefit.
    mcf = data["mcf"]
    assert mcf[Scheme.STTRAM_64TSB].instruction_throughput() \
        > 0.9 * mcf[Scheme.SRAM_64TSB].instruction_throughput()

    # The proposed schemes only ever delay packets when an estimator
    # runs.
    assert data["tpcc"][Scheme.STTRAM_4TSB].delayed_cycle_sum == 0
    assert data["tpcc"][Scheme.STTRAM_4TSB_WB].delayed_cycle_sum > 0
