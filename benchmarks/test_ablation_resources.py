"""Ablation: buffering resources -- VCs per port and bank-queue depth.

The paper's Section 4.4 argues that adding network resources (one more
VC per port) is a far better use of area than per-bank write buffers;
this bench sweeps both the VC count and the bank-interface queue depth
under the WB scheme and reports where the returns flatten.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme

from common import once, run_app

APP = "tpcc"
VC_SWEEP = (4, 6, 7, 8)
QUEUE_SWEEP = (2, 4, 8, 16)


def _run_all():
    vcs = {n: run_app(Scheme.STTRAM_4TSB_WB, APP, n_vcs=n)
           for n in VC_SWEEP}
    queues = {n: run_app(Scheme.STTRAM_4TSB_WB, APP,
                         bank_queue_entries=n)
              for n in QUEUE_SWEEP}
    return vcs, queues


def test_ablation_buffering_resources(benchmark):
    vcs, queues = once(benchmark, _run_all)

    print()
    base = vcs[6].instruction_throughput()  # Table 1 default: 6 VCs
    print(format_table(
        ["VCs/port", "throughput", "pkt latency", "bank queue"],
        [[n,
          round(r.instruction_throughput() / base, 3),
          round(r.avg_packet_latency, 1),
          round(r.avg_bank_queue_wait, 1)] for n, r in vcs.items()],
        title=f"VC sweep on {APP} (normalised to 6 VCs)"))
    print()
    base_q = queues[4].instruction_throughput()
    print(format_table(
        ["bank queue", "throughput", "pkt latency", "bank queue wait"],
        [[n,
          round(r.instruction_throughput() / base_q, 3),
          round(r.avg_packet_latency, 1),
          round(r.avg_bank_queue_wait, 1)] for n, r in queues.items()],
        title=f"Bank-queue sweep on {APP} (normalised to 4 entries)"))

    # Starved VCs hurt: 4 VCs should not beat 8 VCs meaningfully.
    assert vcs[4].instruction_throughput() \
        <= 1.1 * vcs[8].instruction_throughput()

    # Deeper bank queues absorb bursts: measured wait grows with depth
    # (the wait migrates from the network into the bank interface).
    assert queues[16].avg_bank_queue_wait \
        >= queues[2].avg_bank_queue_wait

    for runs in (vcs, queues):
        for key, result in runs.items():
            assert result.total_instructions() > 0, key
