"""Figure 8: un-core (cache + interconnect) energy, normalised to SRAM.

The paper reports ~54% average un-core energy saving, driven almost
entirely by the STT-RAM's 190.5 mW vs 444.6 mW per-bank leakage, with
write-intensive applications saving a little less (0.765 nJ writes).
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme

from common import once, run_app

APPS = ("tpcc", "sjas", "sclust", "x264", "lbm", "hmmer", "mcf",
        "libquantum")
SCHEMES = (Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB,
           Scheme.STTRAM_4TSB_SS, Scheme.STTRAM_4TSB_RCA,
           Scheme.STTRAM_4TSB_WB)


def _run_all():
    return {
        app: {scheme: run_app(scheme, app) for scheme in SCHEMES}
        for app in APPS
    }


def test_fig8_uncore_energy(benchmark):
    data = once(benchmark, _run_all)

    print()
    rows = []
    savings = []
    for app in APPS:
        base = data[app][Scheme.SRAM_64TSB].uncore_energy()
        row = [app]
        for scheme in SCHEMES:
            row.append(round(data[app][scheme].uncore_energy() / base, 3))
        rows.append(row)
        savings.append(
            1 - data[app][Scheme.STTRAM_4TSB_WB].uncore_energy() / base)
    rows.append(["average"] + [
        round(sum(data[a][s].uncore_energy()
                  / data[a][Scheme.SRAM_64TSB].uncore_energy()
                  for a in APPS) / len(APPS), 3)
        for s in SCHEMES
    ])
    print(format_table(
        ["app"] + [s.value for s in SCHEMES], rows,
        title="Figure 8: un-core energy normalised to SRAM-64TSB"))

    # Every STT-RAM scheme saves energy on every application.
    for app in APPS:
        base = data[app][Scheme.SRAM_64TSB].uncore_energy()
        for scheme in SCHEMES[1:]:
            assert data[app][scheme].uncore_energy() < base, (app, scheme)

    # Average saving in the paper's ballpark (54%); leakage-dominated,
    # so it is insensitive to the exact activity levels.
    avg_saving = sum(savings) / len(savings)
    assert 0.35 < avg_saving < 0.70

    # All three proposed schemes save near-identical energy (the paper's
    # observation: the saving comes from the cells, not the scheme).
    for app in APPS:
        values = [data[app][s].uncore_energy() for s in SCHEMES[2:]]
        spread = (max(values) - min(values)) / max(values)
        assert spread < 0.15, app
