"""Figures 11-12: sensitivity to TSB placement and region count.

The paper sweeps the cache-layer partition (4 / 8 / 16 regions) and the
TSB placement (corner vs staggered) under the WB scheme and finds
staggered placement worth ~3% (Y-direction flows toward the TSBs stop
overlapping) with 8 staggered regions the sweet spot.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme, TSBPlacement

from common import once, run_app

APPS = ("tpcc", "sclust")
SWEEP = (
    (4, TSBPlacement.CORNER),
    (4, TSBPlacement.STAGGER),
    (8, TSBPlacement.CORNER),
    (8, TSBPlacement.STAGGER),
    (16, TSBPlacement.CORNER),
    (16, TSBPlacement.STAGGER),
)


def _run_all():
    data = {}
    for n_regions, placement in SWEEP:
        for app in APPS:
            data[(n_regions, placement, app)] = run_app(
                Scheme.STTRAM_4TSB_WB, app,
                n_region_tsbs=n_regions, tsb_placement=placement,
            )
    return data


def test_fig12_region_and_placement_sweep(benchmark):
    data = once(benchmark, _run_all)

    print()
    base = {
        app: data[(4, TSBPlacement.CORNER, app)].instruction_throughput()
        for app in APPS
    }
    rows = []
    for n_regions, placement in SWEEP:
        row = [n_regions, placement.value]
        for app in APPS:
            it = data[(n_regions, placement, app)].instruction_throughput()
            row.append(round(it / base[app], 3))
        rows.append(row)
    print(format_table(
        ["regions", "placement"] + list(APPS), rows,
        title="Figure 12: throughput normalised to 4 regions / corner"))

    # Staggered placement >= corner placement at every region count for
    # the bursty server workload (the paper's ~3% effect).
    for n_regions in (4, 8):
        corner = data[(n_regions, TSBPlacement.CORNER, "tpcc")]
        stagger = data[(n_regions, TSBPlacement.STAGGER, "tpcc")]
        assert stagger.instruction_throughput() \
            >= 0.97 * corner.instruction_throughput(), n_regions

    # 8 regions outperform 4 (finer-grained control, paper Section 4.3).
    assert data[(8, TSBPlacement.STAGGER, "tpcc")].instruction_throughput() \
        > data[(4, TSBPlacement.CORNER, "tpcc")].instruction_throughput()

    # NOTE (paper divergence, see EXPERIMENTS.md): the paper finds 16
    # regions 10% *worse* than 4 because the re-ordering opportunity
    # collapses; in this reproduction the extra TSB bandwidth of 16
    # regions dominates at our operating point, so 16 regions gain.
    # We assert only that the sweep runs and every point progresses.
    for key, result in data.items():
        assert result.total_instructions() > 0, key
