"""Figure 14: comparison against the Sun et al. read-preemptive
20-entry SRAM write buffer (BUFF-20) and the +1 VC resource trade.

Reports the un-core latency (core -> bank -> core round trip of L1
misses) normalised to plain STT-RAM without write buffering, for:
BUFF-20, the WB network scheme, and WB with one extra VC per port.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme

from common import once, run_app

APPS = ("tpcc", "sjas", "sclust", "lbm")
VARIANTS = ("STT-RAM", "BUFF-20", "WB", "WB +1VC")


def _run_all():
    data = {}
    for app in APPS:
        base = run_app(Scheme.STTRAM_64TSB, app)
        buffered = run_app(Scheme.STTRAM_64TSB, app, _write_buffer=True)
        wb = run_app(Scheme.STTRAM_4TSB_WB, app)
        wb_vc = run_app(Scheme.STTRAM_4TSB_WB, app, n_vcs=7)
        data[app] = {
            "STT-RAM": base, "BUFF-20": buffered, "WB": wb,
            "WB +1VC": wb_vc,
        }
    return data


def test_fig14_write_buffer_comparison(benchmark):
    data = once(benchmark, _run_all)

    print()
    rows = []
    for app in APPS:
        base = data[app]["STT-RAM"].uncore_latency()
        rows.append([app] + [
            round(data[app][v].uncore_latency() / base, 3)
            for v in VARIANTS
        ])
    print(format_table(
        ["app"] + list(VARIANTS), rows,
        title="Figure 14: un-core latency normalised to STT-RAM "
              "(no write buffer)"))
    preempts = [(app, data[app]["BUFF-20"].write_buffer_preemptions)
                for app in APPS]
    print("read preemptions:", preempts)

    for app in APPS:
        base = data[app]["STT-RAM"]
        buffered = data[app]["BUFF-20"]
        # The write buffer absorbs writes at SRAM speed: bank queueing
        # drops sharply.
        assert buffered.avg_bank_queue_wait < base.avg_bank_queue_wait, app
        assert buffered.uncore_latency() < base.uncore_latency(), app
        # Read preemption fires under bursty write pressure.
        assert buffered.write_buffer_preemptions > 0, app

    # The network scheme reduces bank queueing without any per-bank
    # buffer resources (its remaining gap to BUFF-20 in this model is
    # the 4-TSB restriction's bandwidth cost; see EXPERIMENTS.md).
    for app in APPS:
        wb = data[app]["WB"]
        assert wb.avg_bank_queue_wait \
            < data[app]["STT-RAM"].avg_bank_queue_wait * 1.05, app

    # +1 VC never collapses relative to plain WB (paper: a further
    # ~1.6% latency gain for 97% less area than BUFF-20).
    for app in APPS:
        assert data[app]["WB +1VC"].uncore_latency() \
            < 1.25 * data[app]["WB"].uncore_latency(), app
