"""Figure 13: sensitivity to the parent-child hop distance H.

(a) the number of re-orderable request packets a parent sees grows with
H (more children per parent); (b) accurate congestion estimation decays
beyond two hops, making H=2 the sweet spot the paper adopts.
"""

from repro.analysis.access_dist import average_requests_at_distance
from repro.analysis.tables import format_table
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous

from common import CAPACITY_SCALE, MESH_WIDTH, once, run_app

APPS = ("tpcc", "sclust")


def _requests_at_distances():
    cfg = make_config(Scheme.STTRAM_4TSB, mesh_width=MESH_WIDTH,
                      capacity_scale=CAPACITY_SCALE)
    sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
    for _ in range(800):
        sim.step()
    return {
        hops: average_requests_at_distance(sim, hops, samples=100,
                                           interval=5)
        for hops in (1, 2, 3)
    }


def _ipc_sweep():
    return {
        (app, hops): run_app(Scheme.STTRAM_4TSB_WB, app,
                             parent_hop_distance=hops)
        for app in APPS for hops in (1, 2, 3)
    }


def test_fig13_hop_distance_sensitivity(benchmark):
    counts, sweep = once(
        benchmark, lambda: (_requests_at_distances(), _ipc_sweep()))

    print()
    print(format_table(
        ["hops", "avg #requests in router"],
        [[h, round(counts[h], 3)] for h in (1, 2, 3)],
        title="Figure 13a: re-orderable requests vs destination distance"))
    rows = []
    for app in APPS:
        base = sweep[(app, 2)].instruction_throughput()
        rows.append([app] + [
            round(sweep[(app, h)].instruction_throughput() / base, 3)
            for h in (1, 2, 3)
        ])
    print(format_table(
        ["app", "H=1", "H=2", "H=3"], rows,
        title="Figure 13b: throughput vs hop distance (normalised to "
              "H=2)"))

    # (a) More requests are visible at larger distances: the population
    # a parent could re-order grows with H (allowing sampling noise at
    # the tail).
    assert counts[2] >= counts[1]
    assert counts[3] >= 0.75 * counts[2]

    # (b) H=2 is competitive: within a few percent of the best choice
    # for every application (the paper picks it as the sweet spot).
    for app in APPS:
        best = max(sweep[(app, h)].instruction_throughput()
                   for h in (1, 2, 3))
        assert sweep[(app, 2)].instruction_throughput() > 0.9 * best, app
