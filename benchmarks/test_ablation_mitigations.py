"""Ablation: the related-work write mitigations vs the network scheme.

Stacks up, on a bursty write-intensive workload, every mitigation the
paper discusses: early write termination (circuit level), the hybrid
SRAM/STT-RAM partition, the BUFF-20 write buffer (Sun et al.), the
paper's WB network scheme, and combinations -- all against plain
STT-RAM.  The paper's argument is that the network scheme composes with
the others; this bench quantifies that in this model.
"""

from repro.analysis.tables import format_table
from repro.sim.config import Scheme

from common import once, run_app

APP = "tpcc"


def _run_all():
    return {
        "plain STT-RAM": run_app(Scheme.STTRAM_64TSB, APP),
        "write termination": run_app(
            Scheme.STTRAM_64TSB, APP, write_termination=True),
        "hybrid 4 SRAM ways": run_app(
            Scheme.STTRAM_64TSB, APP, hybrid_sram_ways=4),
        "BUFF-20": run_app(Scheme.STTRAM_64TSB, APP, _write_buffer=True),
        "WB network scheme": run_app(Scheme.STTRAM_4TSB_WB, APP),
        "WB + termination": run_app(
            Scheme.STTRAM_4TSB_WB, APP, write_termination=True),
        "WB + hybrid": run_app(
            Scheme.STTRAM_4TSB_WB, APP, hybrid_sram_ways=4),
    }


def test_ablation_write_mitigations(benchmark):
    data = once(benchmark, _run_all)

    print()
    base = data["plain STT-RAM"]
    rows = [
        [name,
         round(r.instruction_throughput()
               / base.instruction_throughput(), 3),
         round(r.avg_bank_queue_wait, 1),
         round(r.uncore_latency() / base.uncore_latency(), 3)]
        for name, r in data.items()
    ]
    print(format_table(
        ["mitigation", "throughput", "bank queue", "uncore latency"],
        rows, title=f"Write-mitigation ablation on {APP} "
                    "(vs plain STT-RAM)"))

    # Every bank-side mitigation cuts queueing vs plain STT-RAM.
    for name in ("write termination", "hybrid 4 SRAM ways", "BUFF-20"):
        assert data[name].avg_bank_queue_wait \
            < base.avg_bank_queue_wait, name

    # The network scheme composes: adding termination or the hybrid
    # partition on top of WB does not hurt (and usually helps).
    wb = data["WB network scheme"]
    for name in ("WB + termination", "WB + hybrid"):
        assert data[name].instruction_throughput() \
            > 0.9 * wb.instruction_throughput(), name

    for name, result in data.items():
        assert result.total_instructions() > 0, name
