"""Figure 3: distribution of bank accesses following a write.

For each application, histogram (over the paper's 16/33/66/99/132/165+
cycle bins) of how soon after a write to a bank the next accesses to the
same bank arrive, plus the average number of request packets in a
cache-layer router destined two hops away -- the two quantities that
decide whether re-ordering can hide the 33-cycle writes.
"""

from repro.analysis.access_dist import (
    access_distribution, average_requests_at_distance,
)
from repro.analysis.tables import format_histogram, format_table
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.mixes import homogeneous

from common import CAPACITY_SCALE, CYCLES, MESH_WIDTH, WARMUP, once

APPS = ("tpcc", "sjbb", "sclust", "x264", "lbm", "hmmer", "libquantum")
LABELS = ("<16", "<33", "<66", "<99", "<132", "<165", "165+")


def _analyse(app):
    cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=MESH_WIDTH,
                      capacity_scale=CAPACITY_SCALE)
    sim = CMPSimulator(cfg, homogeneous(app, cfg),
                       log_bank_accesses=True)
    sim.run(CYCLES, warmup=WARMUP)
    dist = access_distribution([b.access_log for b in sim.banks])
    nreq = average_requests_at_distance(sim, hops=2, samples=60,
                                        interval=5)
    return dist, nreq


def _run_all():
    return {app: _analyse(app) for app in APPS}


def test_fig3_access_distribution(benchmark):
    data = once(benchmark, _run_all)

    print()
    rows = []
    for app in APPS:
        dist, nreq = data[app]
        rows.append([app] + [round(p, 1) for p in dist.percentages]
                    + [round(100 * dist.queued_fraction(), 1),
                       round(nreq, 2)])
    print(format_table(
        ["app"] + list(LABELS) + ["%queued", "#req@2hop"], rows,
        title="Figure 3: same-bank access gap after a write "
              "(% of accesses)"))
    tpcc_dist, _ = data["tpcc"]
    print()
    print(format_histogram(LABELS, tpcc_dist.percentages,
                           title="tpcc gap histogram"))

    # Bursty applications have a large share of accesses arriving inside
    # the 33-cycle write service; calm ones do not (paper: avg 17%, up
    # to 27%; x264 only ~4%).
    for app in APPS:
        dist, _ = data[app]
        if get_benchmark(app).bursty:
            assert dist.queued_fraction() > 0.10, app
        else:
            assert dist.queued_fraction() < 0.25, app
    assert data["tpcc"][0].queued_fraction() \
        > 3 * data["x264"][0].queued_fraction()

    # There are re-orderable requests parked in cache-layer routers for
    # the bursty server workloads (paper inset: ~3-6 requests).
    assert data["tpcc"][1] > 0.05
