"""Tests for repro.sim.config."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    ALL_SCHEMES, CacheTechnology, Estimator, Scheme, SystemConfig,
    TSBPlacement, make_config, parse_scheme, with_extra_vc,
    with_write_buffer,
)


class TestDefaults:
    def test_table1_baseline(self):
        cfg = SystemConfig()
        assert cfg.mesh_width == 8
        assert cfg.n_cores == 64
        assert cfg.n_banks == 64
        assert cfg.n_routers == 128
        assert cfg.n_vcs == 6
        assert cfg.data_packet_flits == 8
        assert cfg.addr_packet_flits == 1
        assert cfg.memory_latency_cycles == 320
        assert cfg.n_memory_controllers == 4

    def test_hop_latency_is_three_cycles(self):
        # 2-stage router + 1-cycle link (Section 3.2).
        assert SystemConfig().hop_cycles == 3

    def test_sttram_write_latency(self):
        cfg = SystemConfig(cache_technology=CacheTechnology.STTRAM)
        assert cfg.l2_read_cycles == 3
        assert cfg.l2_write_cycles == 33

    def test_sram_write_latency(self):
        cfg = SystemConfig(cache_technology=CacheTechnology.SRAM)
        assert cfg.l2_read_cycles == 3
        assert cfg.l2_write_cycles == 3

    def test_sttram_bank_is_4x_sram_capacity(self):
        sram = SystemConfig(cache_technology=CacheTechnology.SRAM)
        stt = SystemConfig(cache_technology=CacheTechnology.STTRAM)
        assert stt.l2_bank_bytes == 4 * sram.l2_bank_bytes


class TestSchemes:
    def test_all_six_scenarios_exist(self):
        assert len(ALL_SCHEMES) == 6
        assert ALL_SCHEMES[0] is Scheme.SRAM_64TSB

    def test_sram_baseline_unrestricted(self):
        cfg = make_config(Scheme.SRAM_64TSB)
        assert cfg.cache_technology is CacheTechnology.SRAM
        assert cfg.n_region_tsbs is None
        assert cfg.estimator is Estimator.NONE

    def test_4tsb_schemes_have_four_regions(self):
        for scheme in (Scheme.STTRAM_4TSB, Scheme.STTRAM_4TSB_SS,
                       Scheme.STTRAM_4TSB_RCA, Scheme.STTRAM_4TSB_WB):
            cfg = make_config(scheme)
            assert cfg.n_region_tsbs == 4
            assert cfg.cache_technology is CacheTechnology.STTRAM

    def test_estimator_selection(self):
        assert make_config(Scheme.STTRAM_4TSB_SS).estimator \
            is Estimator.SIMPLE
        assert make_config(Scheme.STTRAM_4TSB_RCA).estimator \
            is Estimator.RCA
        assert make_config(Scheme.STTRAM_4TSB_WB).estimator \
            is Estimator.WINDOW

    def test_overrides_apply(self):
        cfg = make_config(Scheme.STTRAM_4TSB_WB, mesh_width=4,
                          capacity_scale=0.5)
        assert cfg.mesh_width == 4
        assert cfg.capacity_scale == 0.5

    def test_small_mesh_shrinks_regions(self):
        cfg = make_config(Scheme.STTRAM_4TSB_WB, mesh_width=2)
        assert cfg.n_region_tsbs == 1

    def test_explicit_region_count_respected(self):
        cfg = make_config(Scheme.STTRAM_4TSB_WB, mesh_width=4,
                          n_region_tsbs=8)
        assert cfg.n_region_tsbs == 8


class TestValidation:
    def test_rejects_tiny_mesh(self):
        with pytest.raises(ConfigError):
            SystemConfig(mesh_width=1).validate()

    def test_rejects_non_dividing_regions(self):
        with pytest.raises(ConfigError):
            SystemConfig(mesh_width=8, n_region_tsbs=7).validate()

    def test_rejects_bad_capacity_scale(self):
        with pytest.raises(ConfigError):
            SystemConfig(capacity_scale=0.0).validate()
        with pytest.raises(ConfigError):
            SystemConfig(capacity_scale=1.5).validate()

    def test_rejects_non_power_of_two_blocks(self):
        with pytest.raises(ConfigError):
            SystemConfig(block_bytes=100).validate()

    def test_rejects_zero_hop_distance(self):
        with pytest.raises(ConfigError):
            SystemConfig(parent_hop_distance=0).validate()

    def test_valid_default_passes(self):
        cfg = SystemConfig()
        assert cfg.validate() is cfg

    @pytest.mark.parametrize("field", [
        "vc_buffer_flits", "data_packet_flits", "addr_packet_flits",
        "router_pipeline_cycles", "ni_queue_entries",
        "bank_queue_entries", "l2_associativity", "l1_associativity",
        "commit_width", "instruction_window", "memory_latency_cycles",
        "n_memory_controllers", "max_outstanding_memory",
        "wb_sample_period", "rca_update_period", "max_delay_cycles",
    ])
    def test_rejects_nonpositive_structural_knobs(self, field):
        with pytest.raises(ConfigError):
            SystemConfig(**{field: 0}).validate()
        with pytest.raises(ConfigError):
            SystemConfig(**{field: -3}).validate()

    def test_rejects_non_integer_knobs(self):
        # 2.5 VCs is not a hardware configuration.
        with pytest.raises(ConfigError):
            SystemConfig(vc_buffer_flits=2.5).validate()

    def test_rejects_negative_link_cycles(self):
        with pytest.raises(ConfigError):
            SystemConfig(link_cycles=-1).validate()
        SystemConfig(link_cycles=0).validate()  # express links ok

    def test_rejects_bad_load_dep_prob(self):
        with pytest.raises(ConfigError):
            SystemConfig(load_dep_prob=1.5).validate()
        with pytest.raises(ConfigError):
            SystemConfig(load_dep_prob=-0.1).validate()

    def test_rejects_untileable_region_grid(self):
        # 5 regions cannot tile a 8x8 bank layer into rectangles.
        with pytest.raises(ConfigError):
            SystemConfig(mesh_width=8, n_region_tsbs=5).validate()

    def test_rejects_hybrid_ways_at_associativity(self):
        with pytest.raises(ConfigError):
            SystemConfig(hybrid_sram_ways=16, l2_associativity=16) \
                .validate()
        SystemConfig(hybrid_sram_ways=2, l2_associativity=16).validate()

    def test_rejects_bad_write_termination_fraction(self):
        with pytest.raises(ConfigError):
            SystemConfig(write_termination_min_fraction=0.0).validate()
        with pytest.raises(ConfigError):
            SystemConfig(write_termination_min_fraction=1.2).validate()


class TestParseScheme:
    def test_accepts_labels_case_insensitively(self):
        assert parse_scheme("SRAM-64TSB") is Scheme.SRAM_64TSB
        assert parse_scheme("mram-4tsb") is Scheme.STTRAM_4TSB
        assert parse_scheme("MRAM-4TSB-WB") is Scheme.STTRAM_4TSB_WB

    def test_accepts_enum_names(self):
        assert parse_scheme("STTRAM_4TSB_RCA") is Scheme.STTRAM_4TSB_RCA
        assert parse_scheme("sram_64tsb") is Scheme.SRAM_64TSB

    def test_rejects_unknown_label_with_catalogue(self):
        with pytest.raises(ConfigError) as err:
            parse_scheme("BOGUS")
        # The error names the valid labels so the CLI message is usable.
        assert Scheme.SRAM_64TSB.value in str(err.value)


class TestCLIExitCodes:
    """ReproError anywhere under a CLI command exits 2, not a
    traceback (the contract scripts and CI gates rely on)."""

    def test_impossible_config_exits_2(self, capsys):
        from repro.cli import main

        rc = main(["run", "--app", "x264", "--mesh-width", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_sweep_scheme_exits_2(self, capsys):
        from repro.cli import main

        rc = main(["sweep", "--apps", "x264", "--schemes", "BOGUS",
                   "--workers", "1", "--no-cache"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestComparators:
    def test_write_buffer_helper(self):
        cfg = with_write_buffer(make_config(Scheme.STTRAM_64TSB))
        assert cfg.write_buffer is not None
        assert cfg.write_buffer.entries == 20
        assert cfg.write_buffer.read_preemption

    def test_write_buffer_custom_size(self):
        cfg = with_write_buffer(make_config(Scheme.STTRAM_64TSB),
                                entries=8, read_preemption=False)
        assert cfg.write_buffer.entries == 8
        assert not cfg.write_buffer.read_preemption

    def test_extra_vc_helper(self):
        base = make_config(Scheme.STTRAM_4TSB_WB)
        plus = with_extra_vc(base)
        assert plus.n_vcs == base.n_vcs + 1

    def test_configs_are_frozen(self):
        cfg = SystemConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.mesh_width = 4


class TestScaling:
    def test_l1_scales_gently(self):
        full = SystemConfig()
        scaled = SystemConfig(capacity_scale=1 / 64)
        assert scaled.l1_effective_bytes < full.l1_effective_bytes
        # sqrt scaling: 1/8 of full size, not 1/64
        assert scaled.l1_effective_bytes == full.l1_bytes // 8

    def test_l2_scaled_capacity_floor(self):
        cfg = SystemConfig(capacity_scale=1e-6).validate()
        assert cfg.l2_bank_bytes >= cfg.block_bytes * cfg.l2_associativity

    def test_sram_equivalent_identical_across_technologies(self):
        sram = make_config(Scheme.SRAM_64TSB, capacity_scale=1 / 16)
        stt = make_config(Scheme.STTRAM_64TSB, capacity_scale=1 / 16)
        assert (sram.sram_equivalent_bank_bytes
                == stt.sram_equivalent_bank_bytes)
