"""Tests for the round-robin and bank-aware arbiters (Section 3)."""

import pytest

from repro.core.arbitration import BankAwareArbiter, RoundRobinArbiter
from repro.core.busy import BankBusyTracker
from repro.core.estimators import SimplisticEstimator
from repro.core.regions import RegionMap
from repro.noc.packet import Packet, PacketClass
from repro.noc.topology import Mesh3D
from repro.sim.config import Scheme, make_config


def entry(pkt, in_port=0, vc=0, arrival=0):
    return [in_port, vc, pkt, arrival]


def request(bank_node, is_write=True, bank=None, inject=0):
    pkt = Packet(PacketClass.REQUEST, 0, bank_node, 8 if is_write else 1,
                 inject_cycle=inject, is_write=is_write, bank=bank)
    return pkt


@pytest.fixture
def setup():
    cfg = make_config(Scheme.STTRAM_4TSB_SS, mesh_width=8)
    topo = Mesh3D(8)
    rm = RegionMap(topo, 4, cfg.tsb_placement, cfg.parent_hop_distance)
    tracker = BankBusyTracker(cfg)
    est = SimplisticEstimator()
    arbiter = BankAwareArbiter(cfg, rm, tracker, est)
    return cfg, topo, rm, tracker, arbiter


class TestRoundRobin:
    def test_single_candidate_wins(self):
        rr = RoundRobinArbiter()
        pkt = request(64, bank=0)
        assert rr.choose(0, 0, [entry(pkt)], now=0) == 0

    def test_empty_returns_none(self):
        assert RoundRobinArbiter().choose(0, 0, [], now=0) is None

    def test_rotation_visits_all_vcs(self):
        rr = RoundRobinArbiter()
        entries = [entry(request(64, bank=0), in_port=0, vc=v)
                   for v in range(3)]
        winners = set()
        for now in range(3):
            w = rr.choose(0, 0, entries, now)
            winners.add(entries[w][1])
        assert winners == {0, 1, 2}


class TestBankAware:
    def test_non_parent_falls_back_to_rr(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        node = 0  # an ordinary core node, not a parent
        assert node not in rm.children_of
        pkt = request(topo.bank_node(5), bank=5)
        assert arbiter.choose(node, 0, [entry(pkt)], now=0) == 0

    def test_write_charges_busy_tracker(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        child = rm.children_of[parent][0]
        pkt = request(topo.bank_node(child), is_write=True, bank=child)
        arbiter.on_forward(parent, pkt, now=0, out_port=0)
        # 2-hop travel (4 cycles) + 33-cycle write.
        assert tracker.predicted_free_at(child) == 4 + 33

    def test_unmanaged_bank_not_charged(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        other_bank = next(
            b for b in range(64) if b not in rm.children_of[parent])
        pkt = request(topo.bank_node(other_bank), bank=other_bank)
        arbiter.on_forward(parent, pkt, now=0, out_port=0)
        assert tracker.predicted_free_at(other_bank) == 0

    def test_request_to_busy_child_is_delayed(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        child = rm.children_of[parent][0]
        w1 = request(topo.bank_node(child), is_write=True, bank=child)
        arbiter.on_forward(parent, w1, now=0, out_port=0)
        w2 = request(topo.bank_node(child), is_write=True, bank=child)
        # Only candidate and bank predicted busy: idle the output.
        assert arbiter.choose(parent, 0, [entry(w2)], now=1) is None
        assert w2.delayed_cycles == 1
        assert arbiter.delay_cycles >= 1

    def test_request_to_idle_child_prioritised_over_busy(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        busy_child, idle_child = rm.children_of[parent][:2]
        w1 = request(topo.bank_node(busy_child), True, busy_child)
        arbiter.on_forward(parent, w1, now=0, out_port=0)
        to_busy = entry(request(topo.bank_node(busy_child), True,
                                busy_child, inject=0))
        to_idle = entry(request(topo.bank_node(idle_child), True,
                                idle_child, inject=5))
        # Despite being younger, the idle-bank request wins.
        winner = arbiter.choose(parent, 0, [to_busy, to_idle], now=1)
        assert winner == 1
        assert arbiter.reorders >= 1

    def test_delay_expires_when_bank_frees(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        child = rm.children_of[parent][0]
        w1 = request(topo.bank_node(child), True, child)
        arbiter.on_forward(parent, w1, now=0, out_port=0)
        w2 = entry(request(topo.bank_node(child), True, child))
        free_at = tracker.predicted_free_at(child)
        assert arbiter.choose(parent, 0, [w2], now=free_at + 1) == 0

    def test_starvation_valve(self, setup):
        cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        child = rm.children_of[parent][0]
        w1 = request(topo.bank_node(child), True, child)
        arbiter.on_forward(parent, w1, now=0, out_port=0)
        # Keep the bank predicted-busy but let the candidate age out.
        arbiter.on_forward(parent, request(topo.bank_node(child), True,
                                           child), now=30, out_port=0)
        stale = entry(request(topo.bank_node(child), True, child),
                      arrival=0)
        winner = arbiter.choose(
            parent, 0, [stale], now=cfg.max_delay_cycles)
        assert winner == 0

    def test_reads_rank_ahead_of_writes(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        c1, c2 = rm.children_of[parent][:2]
        write = entry(request(topo.bank_node(c1), True, c1, inject=0))
        read = entry(request(topo.bank_node(c2), False, c2, inject=5))
        winner = arbiter.choose(parent, 0, [write, read], now=0)
        assert winner == 1

    def test_coherence_boosted_over_requests(self, setup):
        _cfg, topo, rm, tracker, arbiter = setup
        parent = 91
        child = rm.children_of[parent][0]
        req = entry(request(topo.bank_node(child), False, child,
                            inject=0))
        coh = Packet(PacketClass.COHERENCE, 64, 0, 1, inject_cycle=9)
        winner = arbiter.choose(parent, 0, [req, entry(coh)], now=0)
        assert winner == 1


class TestVCPressure:
    def test_delay_released_under_vc_pressure(self, setup):
        cfg, topo, rm, tracker, arbiter = setup

        class FakeRouter:
            def free_vc_count(self, port, now):
                return 0  # port starved

        class FakeNetwork:
            routers = {91: FakeRouter()}

        arbiter.bind(FakeNetwork())
        parent = 91
        child = rm.children_of[parent][0]
        arbiter.on_forward(parent, request(topo.bank_node(child), True,
                                           child), now=0, out_port=0)
        w2 = entry(request(topo.bank_node(child), True, child))
        # Would normally be delayed; VC pressure forces release.
        assert arbiter.choose(parent, 0, [w2], now=1) == 0
        assert arbiter.vc_pressure_releases >= 1
