"""Property-based tests of the network: conservation and termination.

The central invariant of any NoC model: packets are conserved -- every
injected packet is eventually delivered exactly once, none are dropped
or duplicated, under arbitrary traffic patterns and both arbiters.
"""

from hypothesis import given, settings, strategies as st

from repro.core.arbitration import RoundRobinArbiter
from repro.core.regions import RegionMap
from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass
from repro.noc.routing import RoutingPolicy
from repro.noc.topology import Mesh3D
from repro.sim.config import Scheme, make_config


def build(scheme, width=4):
    cfg = make_config(scheme, mesh_width=width)
    topo = Mesh3D(cfg.mesh_width)
    rm = None
    if cfg.n_region_tsbs is not None:
        rm = RegionMap(topo, cfg.n_region_tsbs, cfg.tsb_placement,
                       cfg.parent_hop_distance)
    net = Network(cfg, topo, RoutingPolicy(topo, rm), RoundRobinArbiter())
    return cfg, topo, net


traffic = st.lists(
    st.tuples(
        st.integers(0, 15),              # source core
        st.integers(0, 15),              # destination bank
        st.sampled_from([1, 8]),         # flits
        st.booleans(),                   # is_write
        st.integers(0, 30),              # inject cycle
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(packets=traffic,
       scheme=st.sampled_from([Scheme.STTRAM_64TSB, Scheme.STTRAM_4TSB]))
def test_property_packet_conservation(packets, scheme):
    cfg, topo, net = build(scheme)
    delivered = []
    for node in range(topo.n_nodes):
        net.register_sink(node, lambda p, t: delivered.append(p.pid))

    schedule = sorted(packets, key=lambda p: p[4])
    injected = []
    now = 0
    idx = 0
    horizon = max(p[4] for p in packets) + 3000
    while now < horizon and (idx < len(schedule) or not net.quiesced()):
        while idx < len(schedule) and schedule[idx][4] <= now:
            src, bank, flits, is_write, when = schedule[idx]
            dst = topo.bank_node(bank)
            pkt = Packet(PacketClass.REQUEST, src, dst, flits,
                         inject_cycle=now, is_write=is_write, bank=bank)
            net.inject(pkt, now)
            injected.append(pkt.pid)
            idx += 1
        net.step(now)
        now += 1

    assert sorted(delivered) == sorted(injected)
    assert net.quiesced()
    assert net.stats.total_delivered == len(injected)


@settings(max_examples=20, deadline=None)
@given(packets=traffic)
def test_property_latency_at_least_minimal_path(packets):
    cfg, topo, net = build(Scheme.STTRAM_64TSB)
    latencies = {}
    for node in range(topo.n_nodes):
        net.register_sink(
            node, lambda p, t: latencies.__setitem__(p.pid, (p, t)))
    pkts = []
    for src, bank, flits, is_write, _w in packets:
        pkt = Packet(PacketClass.REQUEST, src, topo.bank_node(bank),
                     flits, inject_cycle=0, is_write=is_write, bank=bank)
        net.inject(pkt, 0)
        pkts.append(pkt)
    for now in range(4000):
        net.step(now)
        if net.quiesced():
            break
    assert net.quiesced()
    for pkt in pkts:
        p, t = latencies[pkt.pid]
        hops = topo.manhattan(p.src, p.dst)
        # Cannot beat the zero-load bound: hop latency per hop.
        if hops:
            assert t - p.inject_cycle >= (hops - 1) * cfg.hop_cycles
