"""Tests for the Table 3 data, synthetic streams, and workload mixes."""

import pytest

from repro.errors import WorkloadError
from repro.sim.config import Scheme, make_config
from repro.workloads.benchmarks import (
    BENCHMARKS, PARSEC, SERVER, SPEC, all_benchmarks,
    characterization_table, get_benchmark, suite_benchmarks,
)
from repro.workloads.mixes import (
    CASE1_APPS, CASE2_APPS, case1, case2, case3_mixes, homogeneous, mix,
)
from repro.workloads.synthetic import MEM_OP_RATE, SyntheticStream


class TestTable3:
    def test_forty_two_applications(self):
        assert len(all_benchmarks()) == 42

    def test_suite_sizes(self):
        assert len(suite_benchmarks(SERVER)) == 4
        assert len(suite_benchmarks(PARSEC)) == 13
        assert len(suite_benchmarks(SPEC)) == 25

    def test_l1mpki_identity(self):
        # Table 3: every L1 miss becomes exactly one L2 read or write.
        # (The paper's own rounding leaves sap 0.19 off; everything else
        # agrees to the printed precision.)
        for b in all_benchmarks():
            assert b.l1mpki == pytest.approx(b.l2wpki + b.l2rpki,
                                             abs=0.2), b.name

    def test_spot_check_tpcc(self):
        tpcc = get_benchmark("tpcc")
        assert tpcc.l1mpki == 51.47
        assert tpcc.l2wpki == 40.9
        assert tpcc.bursty
        assert tpcc.write_intensive

    def test_spot_check_libquantum(self):
        lib = get_benchmark("libquantum")
        assert lib.l2wpki == 0.0
        assert lib.read_intensive
        assert not lib.bursty

    def test_aliases(self):
        assert get_benchmark("streamcluster") is get_benchmark("sclust")
        assert get_benchmark("gems") is get_benchmark("gemsfdtd")
        assert get_benchmark("libqntm") is get_benchmark("libquantum")

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            get_benchmark("doom")
        with pytest.raises(WorkloadError):
            suite_benchmarks("nacl")

    def test_sharing_classification(self):
        assert get_benchmark("tpcc").shared
        assert get_benchmark("ferret").shared
        assert not get_benchmark("mcf").shared

    def test_characterization_rows(self):
        rows = characterization_table()
        assert len(rows) == 42
        assert rows[0]["benchmark"] == "tpcc"
        assert rows[0]["bursty"] == "High"


class TestSyntheticStream:
    def _stream(self, app="tpcc", core=0, seed=1):
        cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                          capacity_scale=1 / 64)
        return SyntheticStream(get_benchmark(app), core, cfg, seed=seed,
                               shared_pool_blocks=1024)

    def test_deterministic_given_seed(self):
        a_stream = self._stream(seed=3)
        a = [a_stream.next_access() for _ in range(50)]
        b_stream = self._stream(seed=3)
        b = [b_stream.next_access() for _ in range(50)]
        assert a == b

    def test_different_cores_diverge(self):
        s0 = self._stream(core=0)
        s1 = self._stream(core=1)
        seq0 = [s0.next_access() for _ in range(50)]
        seq1 = [s1.next_access() for _ in range(50)]
        assert seq0 != seq1

    def test_miss_rate_calibrated(self):
        stream = self._stream("hmmer")
        n = 30_000
        for _ in range(n):
            stream.next_access()
        measured = stream.generated_misses / n
        target = get_benchmark("hmmer").l1mpki / 1000.0 / MEM_OP_RATE
        assert measured == pytest.approx(target, rel=0.25)

    def test_store_fraction_calibrated(self):
        stream = self._stream("tpcc")
        for _ in range(30_000):
            stream.next_access()
        frac = stream.generated_stores / max(1, stream.generated_misses)
        assert frac == pytest.approx(get_benchmark("tpcc").write_fraction,
                                     rel=0.2)

    def test_zero_write_app_generates_no_stores(self):
        stream = self._stream("libquantum")
        for _ in range(20_000):
            stream.next_access()
        assert stream.generated_stores == 0

    def test_bursty_app_clusters_banks(self):
        """High-bursty streams revisit the same bank in close succession
        far more often than low-bursty ones."""
        def same_bank_ratio(app):
            stream = self._stream(app)
            n_banks = stream.n_banks
            banks = []
            for _ in range(40_000):
                gap, block, _st = stream.next_access()
                if gap < 10_000:  # memory op (always true here)
                    banks.append(block % n_banks)
            repeats = sum(1 for a, b in zip(banks, banks[1:]) if a == b)
            return repeats / len(banks)

        # tpcc (High) vs mcf (Low): hot-set accesses dilute both, but
        # bursts make consecutive same-bank pairs far likelier.
        assert same_bank_ratio("tpcc") > 2 * same_bank_ratio("mcf")

    def test_prewarm_blocks_fill_pool(self):
        stream = self._stream("tpcc")
        blocks = stream.prewarm_blocks()
        assert len(blocks) >= stream._pool_capacity // 2
        assert len(stream._pool) == stream._pool_capacity

    def test_hot_blocks_are_stable(self):
        stream = self._stream("mcf")
        assert stream.hot_blocks() == stream.hot_blocks()

    def test_shared_blocks_only_for_shared_apps(self):
        assert len(self._stream("tpcc").shared_blocks()) == 1024
        assert len(self._stream("mcf").shared_blocks()) == 0


class TestMixes:
    def _cfg(self):
        return make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                           capacity_scale=1 / 64)

    def test_homogeneous(self):
        wl = homogeneous("tpcc", self._cfg())
        assert wl.n_cores == 16
        assert set(wl.app_of_core) == {"tpcc"}
        assert wl.apps() == ["tpcc"]

    def test_mix_interleaves_evenly(self):
        wl = mix(["lbm", "hmmer"], self._cfg())
        assert len(wl.cores_of_app("lbm")) == 8
        assert len(wl.cores_of_app("hmmer")) == 8

    def test_case1_composition(self):
        wl = case1(self._cfg())
        assert wl.name == "case1"
        assert set(wl.app_of_core) == set(CASE1_APPS)
        # All four Case-1 applications carry substantial write traffic.
        for app in CASE1_APPS:
            assert get_benchmark(app).l2wpki > 10

    def test_case2_composition(self):
        wl = case2(self._cfg())
        assert set(wl.app_of_core) == set(CASE2_APPS)

    def test_case3_mix_structure(self):
        mixes = case3_mixes(self._cfg(), n_mixes=8, apps_per_mix=4)
        assert len(mixes) == 8
        tags = [m.name.split("-")[1] for m in mixes]
        assert tags.count("read") == 2
        assert tags.count("write") == 2
        assert tags.count("mixed") == 4

    def test_empty_mix_rejected(self):
        with pytest.raises(WorkloadError):
            mix([], self._cfg())
