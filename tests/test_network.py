"""Tests for repro.noc.network and repro.noc.router."""

import pytest

from repro.core.arbitration import RoundRobinArbiter
from repro.core.regions import RegionMap
from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass
from repro.noc.router import Router
from repro.noc.routing import RoutingPolicy
from repro.noc.topology import LOCAL, Mesh3D
from repro.sim.config import Scheme, make_config


def build_network(scheme=Scheme.STTRAM_64TSB, width=4, **overrides):
    cfg = make_config(scheme, mesh_width=width, **overrides)
    topo = Mesh3D(cfg.mesh_width)
    region_map = None
    if cfg.n_region_tsbs is not None:
        region_map = RegionMap(topo, cfg.n_region_tsbs,
                               cfg.tsb_placement, cfg.parent_hop_distance)
    routing = RoutingPolicy(topo, region_map)
    return cfg, topo, Network(cfg, topo, routing, RoundRobinArbiter())


def run_until_delivered(net, cycles=500):
    now = 0
    while not net.quiesced() and now < cycles:
        net.step(now)
        now += 1
    return now


class TestRouterPrimitives:
    def test_vc_allocation_and_release(self):
        router = Router(node=0, n_vcs=2)
        pkt = Packet(PacketClass.REQUEST, 0, 1, 4, inject_cycle=0)
        vc = router.free_vc(LOCAL, 0)
        assert vc == 0
        router.accept(LOCAL, vc, pkt, out_port=0, arrival=0)
        assert router.n_resident == 1
        assert router.free_vc(LOCAL, 0) == 1
        entry = router.out_entries[0][0]
        router.release(entry, now=10)
        # The tail keeps the VC busy for `flits` cycles.
        assert router.free_vc(LOCAL, 10) == 1
        assert router.vcs[LOCAL][0] is None
        assert router.free_vc(LOCAL, 14) in (0, 1)
        assert router.free_vc_count(LOCAL, 14) == 2

    def test_queued_flits(self):
        router = Router(node=0, n_vcs=4)
        for i in range(3):
            pkt = Packet(PacketClass.REQUEST, 0, 1, 8, inject_cycle=0)
            router.accept(LOCAL, i, pkt, out_port=0, arrival=0)
        assert router.queued_flits() == 24
        assert router.queued_packets() == 3
        assert router.queued_packets(0) == 3
        assert router.queued_packets(1) == 0

    def test_occupancy(self):
        router = Router(node=0, n_vcs=2)
        assert router.occupancy() == 0.0
        pkt = Packet(PacketClass.REQUEST, 0, 1, 1, inject_cycle=0)
        router.accept(LOCAL, 0, pkt, out_port=0, arrival=0)
        assert 0 < router.occupancy() < 1


class TestDelivery:
    def test_single_packet_delivery_and_latency(self):
        cfg, topo, net = build_network()
        delivered = []
        dst = topo.bank_node(15)
        net.register_sink(dst, lambda p, t: delivered.append((p, t)))
        pkt = Packet(PacketClass.REQUEST, 0, dst, 1, inject_cycle=0)
        net.inject(pkt, 0)
        run_until_delivered(net)
        assert len(delivered) == 1
        p, t = delivered[0]
        # Z-X-Y: 1 vertical + 6 mesh hops; ~3 cycles per hop.
        hops = topo.manhattan(0, dst)
        assert p.hops == hops
        assert t >= hops * cfg.hop_cycles - cfg.hop_cycles

    def test_multi_flit_serialisation_delays_second_packet(self):
        cfg, topo, net = build_network()
        arrivals = []
        dst = topo.bank_node(1)
        net.register_sink(dst, lambda p, t: arrivals.append(t))
        for _ in range(2):
            net.inject(
                Packet(PacketClass.REQUEST, 0, dst, 8, inject_cycle=0), 0)
        run_until_delivered(net)
        assert len(arrivals) == 2
        # The second 8-flit packet trails by at least the link
        # serialisation time.
        assert arrivals[1] - arrivals[0] >= 8

    def test_statistics_track_injections_and_deliveries(self):
        cfg, topo, net = build_network()
        dst = topo.bank_node(3)
        net.register_sink(dst, lambda p, t: None)
        for i in range(5):
            net.inject(
                Packet(PacketClass.REQUEST, 0, dst, 1, inject_cycle=0), 0)
        run_until_delivered(net)
        assert net.stats.injected[PacketClass.REQUEST] == 5
        assert net.stats.delivered[PacketClass.REQUEST] == 5
        assert net.stats.in_flight() == 0
        assert net.stats.average_latency() > 0
        assert net.stats.average_hops() > 0

    def test_quiesced_initially(self):
        _cfg, _topo, net = build_network()
        assert net.quiesced()


class TestFlowControl:
    def test_ejection_stalls_when_sink_refuses(self):
        cfg, topo, net = build_network()
        dst = topo.bank_node(0)
        delivered = []
        accepting = [False]
        net.register_sink(dst, lambda p, t: delivered.append(t),
                          flow_control=lambda p: accepting[0])
        net.inject(Packet(PacketClass.REQUEST, 0, dst, 1, inject_cycle=0), 0)
        for now in range(60):
            net.step(now)
        assert not delivered  # parked at the router
        assert net.total_resident() == 1
        accepting[0] = True
        for now in range(60, 120):
            net.step(now)
        assert len(delivered) == 1

    def test_source_queue_limit(self):
        cfg, topo, net = build_network()
        node = 0
        limit = cfg.ni_queue_entries
        for i in range(limit):
            assert net.can_inject(node)
            net.inject(Packet(PacketClass.REQUEST, node,
                              topo.bank_node(1), 8, inject_cycle=0), 0)
        assert not net.can_inject(node)


class TestRegionTSBCombining:
    def test_combiner_installed_on_region_tsbs(self):
        cfg, topo, net = build_network(Scheme.STTRAM_4TSB, width=8)
        assert len(net._combiners) == 4

    def test_data_packets_record_combining(self):
        cfg, topo, net = build_network(Scheme.STTRAM_4TSB, width=8)
        dst = topo.bank_node(9)
        net.register_sink(dst, lambda p, t: None)
        pkt = Packet(PacketClass.REQUEST, 0, dst, 8, inject_cycle=0)
        net.inject(pkt, 0)
        run_until_delivered(net, cycles=1000)
        assert pkt.combined
        assert net.stats.tsb_combined_flit_pairs > 0


class TestInjectionHeadOfLine:
    """Pin `_inject_sources` head-of-line semantics (in-order NIs).

    The per-node injection loop must stop at the first packet whose
    ``ready_at`` is in the future: packets queued behind it stay queued
    even if they are ready *now*.  The active-set scheduler's wake hints
    key off the head packet, so silently reordering injection would
    both change results and break the hints.
    """

    def test_future_head_blocks_ready_follower(self):
        cfg, topo, net = build_network()
        dst = topo.bank_node(15)
        net.register_sink(dst, lambda p, t: None)
        head = Packet(PacketClass.REQUEST, 0, dst, 1, inject_cycle=5)
        follower = Packet(PacketClass.REQUEST, 0, dst, 1, inject_cycle=0)
        net.inject(head, 0)
        net.inject(follower, 0)
        for now in range(5):
            net.step(now)
            # Nothing may enter the mesh while the head is not ready,
            # even though the follower has been ready since cycle 0.
            assert net.total_resident() == 0
            assert list(net.source_queues[0]) == [head, follower]
        net.step(5)
        # Both inject on the head's ready cycle, in queue order: the
        # head wins the same-cycle route arbitration and moves one hop
        # downstream while the follower waits at the source router.
        assert not net.source_queues[0]
        assert net.total_resident() == 2
        assert head.hops == 1
        assert follower.hops == 0
        resident_here = [
            e[2] for port in net.routers[0].out_entries for e in port
        ]
        assert resident_here == [follower]

    def test_blocked_node_does_not_block_other_sources(self):
        cfg, topo, net = build_network()
        dst = topo.bank_node(15)
        net.register_sink(dst, lambda p, t: None)
        blocked = Packet(PacketClass.REQUEST, 0, dst, 1, inject_cycle=50)
        other = Packet(PacketClass.REQUEST, 1, dst, 1, inject_cycle=0)
        net.inject(blocked, 0)
        net.inject(other, 0)
        net.step(0)
        assert list(net.source_queues[0]) == [blocked]
        assert not net.source_queues[1]
        assert net.total_resident() == 1
        assert other.network_cycle == 0
