"""Tests for the analysis module (Figures 3 and 7 tooling)."""

import pytest

from repro.analysis.access_dist import (
    FIG3_BINS, access_distribution, distribution_for_app,
)
from repro.analysis.breakdown import (
    LatencyBreakdown, normalized_breakdowns,
)
from repro.analysis.tables import (
    format_histogram, format_table, normalized_series,
)


class TestAccessDistribution:
    def test_bins_match_paper(self):
        assert FIG3_BINS == (16, 33, 66, 99, 132, 165)

    def test_gap_binning(self):
        # One bank: write at 0, accesses at 5 (bin<16), 40 (bin<66),
        # 400 (165+).
        log = [(0, True), (5, False), (40, False), (400, False)]
        dist = access_distribution([log])
        assert dist.total_accesses == 3
        assert dist.counts[0] == 1   # <16
        assert dist.counts[2] == 1   # <66
        assert dist.counts[-1] == 1  # 165+
        assert dist.writes == 1

    def test_gap_measured_from_latest_write(self):
        log = [(0, True), (100, True), (110, False)]
        dist = access_distribution([log])
        # The read is 10 cycles after the *second* write.
        assert dist.counts[0] == 1

    def test_accesses_before_any_write_ignored(self):
        log = [(0, False), (5, False), (10, True), (12, False)]
        dist = access_distribution([log])
        assert dist.total_accesses == 1

    def test_queued_fraction(self):
        log = [(0, True), (5, False), (20, False), (200, False)]
        dist = access_distribution([log])
        # Two of three accesses arrive within the 33-cycle service.
        assert dist.queued_fraction(33) == pytest.approx(2 / 3)

    def test_percentages_sum_to_100(self):
        log = [(0, True)] + [(i * 7, False) for i in range(1, 30)]
        dist = access_distribution([log])
        assert sum(dist.percentages) == pytest.approx(100.0)

    def test_empty_logs(self):
        dist = access_distribution([[], []])
        assert dist.total_accesses == 0
        assert dist.queued_fraction() == 0.0
        assert dist.percentages == [0.0] * 7

    def test_bursty_app_has_higher_queued_fraction(self):
        bursty = distribution_for_app(
            "tpcc", mesh_width=4, capacity_scale=1 / 64,
            cycles=1500, warmup=600)
        calm = distribution_for_app(
            "mcf", mesh_width=4, capacity_scale=1 / 64,
            cycles=1500, warmup=600)
        assert bursty.queued_fraction() > calm.queued_fraction()


class TestBreakdown:
    def test_percentages(self):
        b = LatencyBreakdown(network_latency=30, queuing_latency=70)
        pct = b.percentages()
        assert pct["network"] == pytest.approx(30.0)
        assert pct["queuing"] == pytest.approx(70.0)
        assert b.total == 100

    def test_zero_total(self):
        b = LatencyBreakdown(0.0, 0.0)
        assert b.percentages() == {"network": 0.0, "queuing": 0.0}

    def test_normalized_breakdowns(self):
        class R:
            def __init__(self, net, queue):
                self._net, self._q = net, queue

            def latency_breakdown(self):
                return {"network_latency": self._net,
                        "bank_queuing_latency": self._q}

        results = {"base": R(40, 60), "better": R(40, 30)}
        series = normalized_breakdowns(results, "base")
        assert series["base"]["queuing"] == pytest.approx(60.0)
        # Queuing halved relative to baseline.
        assert series["better"]["queuing"] == pytest.approx(30.0)
        assert series["better"]["network"] == pytest.approx(40.0)


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text

    def test_normalized_series(self):
        series = normalized_series({"x": 2.0, "y": 4.0}, lambda v: v)
        assert series == {"x": 1.0, "y": 2.0}

    def test_normalized_series_empty(self):
        assert normalized_series({}, lambda v: v) == {}

    def test_format_histogram(self):
        text = format_histogram(["16", "33"], [10.0, 20.0], title="H")
        assert text.startswith("H")
        assert "20.0%" in text
