"""Tests for the MESI directory slices."""

import pytest

from repro.cache.coherence import Directory
from repro.cache.messages import CoherenceOp


@pytest.fixture
def directory():
    return Directory(bank=5)


class TestReads:
    def test_first_reader_becomes_sharer(self, directory):
        msgs = directory.on_request(core=1, block=100, exclusive=False)
        assert msgs == []
        assert directory.sharers_of(100) == {1}

    def test_multiple_readers_accumulate(self, directory):
        for core in (1, 2, 3):
            directory.on_request(core, 100, exclusive=False)
        assert directory.sharers_of(100) == {1, 2, 3}

    def test_read_of_modified_block_forwards(self, directory):
        directory.on_request(1, 100, exclusive=True)   # core 1 owns M
        msgs = directory.on_request(2, 100, exclusive=False)
        assert len(msgs) == 1
        assert msgs[0].op is CoherenceOp.FORWARD
        assert msgs[0].sharer == 1          # forward to the old owner
        assert msgs[0].requester_core == 2
        entry = directory.entry(100)
        assert entry.owner is None          # downgraded to shared
        assert entry.sharers == {1, 2}


class TestWritesAndOwnership:
    def test_exclusive_request_invalidates_sharers(self, directory):
        for core in (1, 2, 3):
            directory.on_request(core, 100, exclusive=False)
        msgs = directory.on_request(4, 100, exclusive=True)
        invals = [m for m in msgs if m.op is CoherenceOp.INVALIDATE]
        assert sorted(m.sharer for m in invals) == [1, 2, 3]
        entry = directory.entry(100)
        assert entry.owner == 4
        assert entry.sharers == {4}

    def test_rfo_of_modified_block_forwards_exclusively(self, directory):
        directory.on_request(1, 100, exclusive=True)
        msgs = directory.on_request(2, 100, exclusive=True)
        assert msgs[0].op is CoherenceOp.FORWARD
        assert msgs[0].exclusive
        assert directory.entry(100).owner == 2

    def test_own_upgrade_sends_nothing(self, directory):
        directory.on_request(1, 100, exclusive=True)
        assert directory.on_request(1, 100, exclusive=True) == []

    def test_store_write_invalidates_all(self, directory):
        for core in (1, 2):
            directory.on_request(core, 100, exclusive=False)
        msgs = directory.on_store_write(core=3, block=100)
        assert sorted(m.sharer for m in msgs) == [1, 2]
        assert all(m.op is CoherenceOp.INVALIDATE for m in msgs)
        # Write-no-allocate: nobody caches the line afterwards.
        assert directory.entry(100) is None

    def test_store_write_to_untracked_block(self, directory):
        assert directory.on_store_write(1, 999) == []


class TestWritebacksAndEvictions:
    def test_writeback_clears_ownership(self, directory):
        directory.on_request(1, 100, exclusive=True)
        directory.on_writeback(1, 100)
        assert directory.entry(100) is None

    def test_writeback_keeps_other_sharers(self, directory):
        directory.on_request(1, 100, exclusive=False)
        directory.on_request(2, 100, exclusive=False)
        directory.on_writeback(1, 100)
        assert directory.sharers_of(100) == {2}

    def test_l2_eviction_recalls_sharers(self, directory):
        for core in (1, 2):
            directory.on_request(core, 100, exclusive=False)
        msgs = directory.on_l2_eviction(100)
        assert sorted(m.sharer for m in msgs) == [1, 2]
        assert all(m.op is CoherenceOp.RECALL for m in msgs)
        assert directory.entry(100) is None
        assert directory.recalls_sent == 2

    def test_eviction_of_untracked_block(self, directory):
        assert directory.on_l2_eviction(12345) == []


class TestInvariants:
    def test_invariants_hold_through_random_protocol_walk(self, directory):
        import random
        rng = random.Random(7)
        for _ in range(2000):
            core = rng.randrange(8)
            block = rng.randrange(20)
            op = rng.randrange(4)
            if op == 0:
                directory.on_request(core, block, exclusive=False)
            elif op == 1:
                directory.on_request(core, block, exclusive=True)
            elif op == 2:
                directory.on_writeback(core, block)
            else:
                directory.on_l2_eviction(block)
            directory.check_invariants()
