"""Parallel sweep engine: pickling, determinism, caching, recovery.

The engine's contract (see ``repro/sim/parallel.py``):

* grid points are self-contained picklable specs;
* ``SweepResults.data`` is byte-identical across worker counts and
  warm-cache replays;
* the content-addressed cache hits only when every input -- config,
  scheme, workload, cycles, warmup, seed, code version -- is unchanged,
  and recovers from corrupted entries by re-simulating.
"""

import json
import os
import pickle

import pytest

from repro.errors import ConfigError
from repro.sim import parallel
from repro.sim.config import Scheme, TSBPlacement, make_config
from repro.sim.experiment import app_factory, run_scheme
from repro.sim.parallel import (
    SweepCache, SweepPoint, SweepRunStats, resolve_workers, run_points,
)
from repro.sim.sweep import SweepGrid, run_sweep

FAST = {"mesh_width": 4, "capacity_scale": 1 / 64}
SCHEMES = (Scheme.SRAM_64TSB, Scheme.STTRAM_4TSB_WB)


def tiny_grid(**kw):
    spec = dict(apps=["x264", "hmmer"], schemes=SCHEMES,
                cycles=250, warmup=100, overrides=dict(FAST))
    spec.update(kw)
    return SweepGrid(**spec)


def data_blob(sweep):
    return json.dumps(sweep.data, sort_keys=True)


# ----------------------------------------------------------------------
# Satellite: everything a worker needs must pickle
# ----------------------------------------------------------------------


class TestPickling:
    def test_config_roundtrip(self):
        cfg = make_config(Scheme.STTRAM_4TSB_WB, **FAST)
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_scheme_and_placement_roundtrip(self):
        for scheme in Scheme:
            assert pickle.loads(pickle.dumps(scheme)) is scheme
        for placement in TSBPlacement:
            assert pickle.loads(pickle.dumps(placement)) is placement

    def test_app_factory_is_picklable_and_named(self):
        factory = app_factory("tpcc", seed=3)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert clone.__name__ == "homogeneous_tpcc"

    def test_app_factory_clone_builds_equivalent_workload(self):
        cfg = make_config(Scheme.SRAM_64TSB, **FAST)
        factory = app_factory("x264", seed=5)
        clone = pickle.loads(pickle.dumps(factory))
        a, b = factory(cfg), clone(cfg)
        assert a.app_of_core == b.app_of_core
        assert a.name == b.name

    def test_sweep_point_roundtrip(self):
        point = SweepPoint.build(
            "tpcc", Scheme.STTRAM_4TSB, 300, 100, 2,
            {"mesh_width": 4, "tsb_placement": TSBPlacement.STAGGER},
        )
        assert pickle.loads(pickle.dumps(point)) == point

    def test_simulation_result_roundtrip(self):
        result = run_scheme(Scheme.STTRAM_64TSB, app_factory("x264"),
                            cycles=150, warmup=50, mesh_width=2,
                            capacity_scale=1 / 256)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.to_dict() == result.to_dict()


# ----------------------------------------------------------------------
# Point specs and content addressing
# ----------------------------------------------------------------------


class TestSweepPoint:
    def test_overrides_are_order_insensitive(self):
        a = SweepPoint.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
                             {"mesh_width": 4, "capacity_scale": 0.5})
        b = SweepPoint.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
                             {"capacity_scale": 0.5, "mesh_width": 4})
        assert a == b
        assert a.key() == b.key()

    @pytest.mark.parametrize("change", [
        dict(app="mcf"),
        dict(scheme=Scheme.STTRAM_4TSB),
        dict(cycles=301),
        dict(warmup=101),
        dict(seed=2),
        dict(overrides={"mesh_width": 8}),
    ])
    def test_any_input_change_changes_key(self, change):
        base = dict(app="tpcc", scheme=Scheme.SRAM_64TSB, cycles=300,
                    warmup=100, seed=1, overrides={"mesh_width": 4})
        merged = dict(base)
        merged.update(change)
        assert (SweepPoint.build(**base).key()
                != SweepPoint.build(**merged).key())

    def test_code_version_changes_key(self):
        point = SweepPoint.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1)
        assert point.key("v1-aaaa") != point.key("v1-bbbb")

    def test_enum_overrides_canonicalise(self):
        point = SweepPoint.build(
            "tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
            {"tsb_placement": TSBPlacement.STAGGER},
        )
        canon = point.canonical()
        assert canon["overrides"]["tsb_placement"] == (
            "TSBPlacement.STAGGER"
        )
        json.dumps(canon)  # JSON-stable

    def test_uncacheable_override_rejected(self):
        point = SweepPoint.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
                                 {"bad": object()})
        with pytest.raises(ConfigError):
            point.canonical()

    def test_grid_point_specs_cover_grid_in_order(self):
        grid = tiny_grid()
        specs = grid.point_specs()
        assert [(s.app, s.scheme) for s in specs] == list(grid.points())
        assert all(s.cycles == 250 and s.warmup == 100 for s in specs)


class TestResolveWorkers:
    def test_zero_and_none_mean_cpu_count(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_explicit_count_respected(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_workers(-1)


# ----------------------------------------------------------------------
# Satellite: determinism across worker counts and cache replay
# ----------------------------------------------------------------------


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_reference(self):
        return run_sweep(tiny_grid(), workers=1, cache=False)

    def test_pool_matches_serial_reference(self, serial_reference):
        pooled = run_sweep(tiny_grid(), workers=4, cache=False)
        assert data_blob(pooled) == data_blob(serial_reference)
        assert pooled.fingerprint() == serial_reference.fingerprint()

    def test_warm_cache_replay_matches_serial_reference(
            self, serial_reference, tmp_path):
        cold = run_sweep(tiny_grid(), workers=4, cache=True,
                         cache_dir=str(tmp_path))
        warm_stats = SweepRunStats()
        warm = run_sweep(tiny_grid(), workers=4, cache=True,
                         cache_dir=str(tmp_path), stats=warm_stats)
        assert warm_stats.cache_hits == warm_stats.points
        assert data_blob(cold) == data_blob(serial_reference)
        assert data_blob(warm) == data_blob(serial_reference)

    def test_merge_order_is_grid_order_not_completion_order(self):
        sweep = run_sweep(tiny_grid(), workers=4)
        assert sweep.apps() == ["x264", "hmmer"]
        assert sweep.schemes() == ["SRAM-64TSB", "MRAM-4TSB-WB"]


# ----------------------------------------------------------------------
# Satellite: cache correctness
# ----------------------------------------------------------------------


class TestCacheCorrectness:
    def run_stats(self, grid, tmp_path, **kw):
        stats = SweepRunStats()
        sweep = run_sweep(grid, workers=1, cache=True,
                          cache_dir=str(tmp_path), stats=stats, **kw)
        return sweep, stats

    def test_identical_rerun_hits(self, tmp_path):
        _, cold = self.run_stats(tiny_grid(), tmp_path)
        assert cold.cache_hits == 0 and cold.simulated == cold.points
        _, warm = self.run_stats(tiny_grid(), tmp_path)
        assert warm.cache_hits == warm.points and warm.simulated == 0

    @pytest.mark.parametrize("change", [
        dict(seed=2),
        dict(cycles=260),
        dict(warmup=110),
        dict(overrides={"mesh_width": 4, "capacity_scale": 1 / 32}),
    ])
    def test_changed_input_misses(self, tmp_path, change):
        self.run_stats(tiny_grid(), tmp_path)
        _, stats = self.run_stats(tiny_grid(**change), tmp_path)
        assert stats.cache_hits == 0
        assert stats.simulated == stats.points

    def test_code_version_change_misses(self, tmp_path, monkeypatch):
        self.run_stats(tiny_grid(), tmp_path)
        monkeypatch.setattr(parallel, "_CODE_VERSION", "v1-testdrift")
        _, stats = self.run_stats(tiny_grid(), tmp_path)
        assert stats.cache_hits == 0

    def test_corrupted_entry_resimulated(self, tmp_path):
        reference, _ = self.run_stats(tiny_grid(), tmp_path)
        entries = sorted(tmp_path.rglob("*.json"))
        assert len(entries) == 4
        entries[0].write_text(entries[0].read_text()[:40])  # truncate
        entries[1].write_text("not json at all")
        sweep, stats = self.run_stats(tiny_grid(), tmp_path)
        assert stats.cache_hits == 2
        assert stats.simulated == 2
        assert data_blob(sweep) == data_blob(reference)

    def test_wrong_version_payload_discarded(self, tmp_path):
        point = SweepPoint.build("x264", Scheme.SRAM_64TSB, 250, 100, 1,
                                 FAST)
        writer = SweepCache(str(tmp_path), version="v1-old")
        writer.put(point.key("v1-old"), point.canonical(), {"ok": 1})
        # Same key, different engine version: self-check rejects it.
        reader = SweepCache(str(tmp_path), version="v1-new")
        assert reader.get(point.key("v1-old")) is None
        assert not os.path.exists(writer.path_for(point.key("v1-old")))

    def test_duplicate_points_simulated_once(self):
        spec = SweepPoint.build("x264", Scheme.SRAM_64TSB, 200, 80, 1,
                                FAST)
        stats = SweepRunStats()
        results = run_points([spec, spec], workers=1, cache=False,
                             stats=stats)
        assert stats.points == 1
        assert stats.simulated == 1
        assert len(results) == 1


# ----------------------------------------------------------------------
# Fault tolerance: crashes, timeouts, serial fallback
# ----------------------------------------------------------------------


def _exploding_chunk(specs):  # top-level: must pickle into workers
    raise RuntimeError("injected worker crash")


class TestFaultTolerance:
    def specs(self, n=2):
        return [
            SweepPoint.build(app, Scheme.SRAM_64TSB, 200, 80, 1, FAST)
            for app in ("x264", "hmmer", "mcf", "tpcc")[:n]
        ]

    def test_worker_crash_retries_serially(self, monkeypatch):
        monkeypatch.setattr(parallel, "_simulate_chunk",
                            _exploding_chunk)
        stats = SweepRunStats()
        results = run_points(self.specs(), workers=2, cache=False,
                             stats=stats)
        assert stats.worker_crashes >= 1
        assert stats.retried == stats.points == 2
        assert all(r["cycles"] == 200 for r in results.values())

    def test_timeout_falls_back_to_serial_retry(self):
        stats = SweepRunStats()
        results = run_points(self.specs(), workers=2, cache=False,
                             timeout=1e-4, stats=stats)
        assert stats.retried >= 1
        assert all(r["cycles"] == 200 for r in results.values())

    def test_workers_1_never_builds_a_pool(self, monkeypatch):
        def no_pool(*a, **k):
            raise AssertionError("pool built in serial mode")

        monkeypatch.setattr(
            parallel.concurrent.futures, "ProcessPoolExecutor", no_pool)
        stats = SweepRunStats()
        results = run_points(self.specs(), workers=1, cache=False,
                             stats=stats)
        assert stats.simulated == 2
        assert len(results) == 2

    def test_genuine_bug_raises_after_retry(self, monkeypatch):
        def bad_point(spec):
            raise ValueError("real simulation bug")

        monkeypatch.setattr(parallel, "_simulate_chunk",
                            _exploding_chunk)
        monkeypatch.setattr(parallel, "simulate_point", bad_point)
        with pytest.raises(ValueError, match="real simulation bug"):
            run_points(self.specs(), workers=2, cache=False)


# ----------------------------------------------------------------------
# Metrics wiring
# ----------------------------------------------------------------------


class TestMetricsWiring:
    def test_registry_sees_hits_misses_and_utilisation(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        run_sweep(tiny_grid(), workers=1, cache=True,
                  cache_dir=str(tmp_path), metrics=registry)
        run_sweep(tiny_grid(), workers=1, cache=True,
                  cache_dir=str(tmp_path), metrics=registry)
        assert registry.counter("sweep.points").value == 8
        assert registry.counter("sweep.cache.misses").value == 4
        assert registry.counter("sweep.cache.hits").value == 4
        assert registry.counter("sweep.simulated").value == 4
        assert "sweep.workers" in registry
        assert registry.histogram("sweep.point_ms").count == 4

    def test_stats_points_per_sec_and_hit_rate(self, tmp_path):
        stats = SweepRunStats()
        run_sweep(tiny_grid(), workers=1, cache=True,
                  cache_dir=str(tmp_path), stats=stats)
        as_dict = stats.as_dict()
        assert as_dict["points"] == 4
        assert as_dict["points_per_sec"] > 0
        assert 0.0 <= as_dict["hit_rate"] <= 1.0
