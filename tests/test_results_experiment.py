"""Tests for SimulationResult derivations and the experiment harness."""

import pytest

from repro.sim.config import ALL_SCHEMES, Scheme
from repro.sim.experiment import (
    SchemeComparison, app_factory, compare_schemes, run_scheme,
    run_workload,
)
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous
from tests.conftest import small_config

FAST = dict(mesh_width=4, capacity_scale=1 / 64)


@pytest.fixture(scope="module")
def result():
    return run_scheme(Scheme.STTRAM_64TSB, app_factory("sclust"),
                      cycles=900, warmup=400, **FAST)


class TestSimulationResult:
    def test_ipc_consistency(self, result):
        assert result.instruction_throughput() == pytest.approx(
            sum(result.ipc))
        assert result.slowest_ipc() == min(result.ipc)
        assert result.total_instructions() == sum(result.instructions)

    def test_ipc_by_app_single_app(self, result):
        by_app = result.ipc_by_app()
        assert list(by_app) == ["sclust"]
        assert by_app["sclust"] == pytest.approx(
            sum(result.ipc) / len(result.ipc))

    def test_l2_hit_rate_bounds(self, result):
        assert 0.0 <= result.l2_hit_rate() <= 1.0

    def test_latency_breakdown_keys(self, result):
        parts = result.latency_breakdown()
        assert set(parts) == {"network_latency", "bank_queuing_latency"}
        assert parts["network_latency"] > 0

    def test_energy_populated(self, result):
        assert result.energy is not None
        assert result.uncore_energy() > 0
        assert result.energy.cache_leakage > 0

    def test_uncore_latency_positive(self, result):
        assert result.uncore_latency() > 0


class TestHarness:
    def test_run_workload_accepts_config(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        res = run_workload(cfg, lambda c: homogeneous("x264", c),
                           cycles=400, warmup=100)
        assert res.cycles == 400

    def test_compare_schemes_matched_seeds(self):
        cmp_ = compare_schemes(
            app_factory("x264", seed=5), "x264",
            schemes=(Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB),
            cycles=500, warmup=200, **FAST)
        assert set(cmp_.results) == {Scheme.SRAM_64TSB,
                                     Scheme.STTRAM_64TSB}
        assert cmp_.baseline is Scheme.SRAM_64TSB

    def test_normalized_metrics(self):
        cmp_ = compare_schemes(
            app_factory("x264"), "x264",
            schemes=(Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB),
            cycles=500, warmup=200, **FAST)
        for series in (cmp_.normalized_throughput(),
                       cmp_.normalized_slowest_ipc(),
                       cmp_.normalized_energy()):
            assert series[Scheme.SRAM_64TSB] == pytest.approx(1.0)
            assert all(v >= 0 for v in series.values())

    def test_baseline_falls_back_when_absent(self):
        cmp_ = compare_schemes(
            app_factory("x264"), "x264",
            schemes=(Scheme.STTRAM_4TSB, Scheme.STTRAM_4TSB_WB),
            cycles=400, warmup=100, **FAST)
        assert cmp_.baseline is Scheme.STTRAM_4TSB

    def test_app_factory_name(self):
        assert app_factory("tpcc").__name__ == "homogeneous_tpcc"

    def test_custom_metric_normalisation(self):
        cmp_ = compare_schemes(
            app_factory("x264"), "x264",
            schemes=(Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB),
            cycles=400, warmup=100, **FAST)
        series = cmp_.normalized(lambda r: r.cycles)
        assert series[Scheme.STTRAM_64TSB] == pytest.approx(1.0)
