"""Tests for the Table 2 device models and the energy model."""

import pytest

from repro.cache.device import (
    SRAM_1MB, STTRAM_4MB, comparison_table, device_for,
)
from repro.energy.model import EnergyModel
from repro.sim.config import (
    CacheTechnology, Scheme, make_config, with_write_buffer,
)


class TestTable2:
    def test_sram_row(self):
        assert SRAM_1MB.capacity_bytes == 1 << 20
        assert SRAM_1MB.area_mm2 == 3.03
        assert SRAM_1MB.read_cycles == 3
        assert SRAM_1MB.write_cycles == 3
        assert SRAM_1MB.leakage_mw == 444.6
        assert not SRAM_1MB.nonvolatile

    def test_sttram_row(self):
        assert STTRAM_4MB.capacity_bytes == 4 << 20
        assert STTRAM_4MB.area_mm2 == 3.39
        assert STTRAM_4MB.read_cycles == 3
        assert STTRAM_4MB.write_cycles == 33
        assert STTRAM_4MB.write_energy_nj == 0.765
        assert STTRAM_4MB.nonvolatile

    def test_sttram_is_denser(self):
        assert STTRAM_4MB.density_mb_per_mm2 \
            > 3 * SRAM_1MB.density_mb_per_mm2

    def test_sttram_write_penalty_is_11x(self):
        # The paper's 33-vs-3-cycle asymmetry (Section 3.2).
        assert STTRAM_4MB.write_read_latency_ratio() == 11.0

    def test_sttram_leaks_less(self):
        assert STTRAM_4MB.leakage_mw < SRAM_1MB.leakage_mw / 2

    def test_device_for(self):
        assert device_for(CacheTechnology.SRAM) is SRAM_1MB
        assert device_for(CacheTechnology.STTRAM) is STTRAM_4MB

    def test_comparison_table_rows(self):
        rows = comparison_table()
        assert len(rows) == 2
        assert rows[0]["name"] == "1MB SRAM"
        assert rows[1]["write_cycles"] == 33


class TestEnergyModel:
    def _energy(self, scheme, **kwargs):
        cfg = make_config(scheme)
        model = EnergyModel(cfg)
        defaults = dict(cycles=10_000, bank_reads=1_000,
                        bank_writes=1_000, router_flits=50_000,
                        link_flits=50_000)
        defaults.update(kwargs)
        return model.compute(**defaults)

    def test_sttram_uncore_energy_below_sram(self):
        sram = self._energy(Scheme.SRAM_64TSB)
        stt = self._energy(Scheme.STTRAM_64TSB)
        assert stt.total < sram.total

    def test_leakage_dominates_and_drives_the_saving(self):
        sram = self._energy(Scheme.SRAM_64TSB)
        stt = self._energy(Scheme.STTRAM_64TSB)
        assert sram.cache_leakage > sram.cache_dynamic
        # Table 2 ratio: 190.5 / 444.6.
        assert stt.cache_leakage / sram.cache_leakage \
            == pytest.approx(190.5 / 444.6)

    def test_sttram_writes_cost_more_dynamic_energy(self):
        sram = self._energy(Scheme.SRAM_64TSB, bank_reads=0)
        stt = self._energy(Scheme.STTRAM_64TSB, bank_reads=0)
        assert stt.cache_dynamic > sram.cache_dynamic

    def test_rca_wiring_overhead(self):
        plain = self._energy(Scheme.STTRAM_4TSB_WB)
        rca = self._energy(Scheme.STTRAM_4TSB_RCA)
        assert rca.network_leakage > plain.network_leakage

    def test_write_buffer_energy_counted(self):
        cfg = with_write_buffer(make_config(Scheme.STTRAM_64TSB))
        model = EnergyModel(cfg)
        e = model.compute(cycles=10_000, bank_reads=0, bank_writes=0,
                          router_flits=0, link_flits=0,
                          write_buffer_accesses=100)
        assert e.write_buffer > 0

    def test_breakdown_dict(self):
        e = self._energy(Scheme.STTRAM_64TSB)
        d = e.as_dict()
        assert d["total_j"] == pytest.approx(
            d["cache_dynamic_j"] + d["cache_leakage_j"]
            + d["network_dynamic_j"] + d["network_leakage_j"]
            + d["write_buffer_j"])

    def test_fifty_percent_class_saving_at_paper_ratios(self):
        # With realistic event counts the STT-RAM un-core saving should
        # land near the paper's ~54% (leakage-driven).
        sram = self._energy(Scheme.SRAM_64TSB)
        stt = self._energy(Scheme.STTRAM_64TSB)
        saving = 1 - stt.total / sram.total
        assert 0.35 < saving < 0.65
