"""Fleet telemetry: spans, merged metrics, ledger, progress, CLI.

The contracts under test (see ``repro/obs/telemetry.py``,
``repro/obs/ledger.py``, ``repro/obs/progress.py``):

* telemetry is a **pure reader** -- the sweep fingerprint is
  unperturbed across {scalar, batch} x {workers 1, 2} x {cold, warm}
  with recording on, and merged worker counters equal the serial run's;
* worker metric snapshots merge losslessly (counters sum, histograms
  bucket-merge, gauges gain per-worker labels);
* the merged Chrome trace validates, carries one track per worker
  process, and its span rollups cover the sweep wall time;
* the run ledger appends atomically, rotates at ``max_entries``,
  survives a corrupt tail, and diffs two runs against a threshold.
"""

import json
import os

import pytest

from repro.obs.ledger import (
    DEFAULT_MAX_ENTRIES, RunLedger, build_record, diff_records,
    format_entries, ledger_enabled, record_from_bench, validate_record,
)
from repro.obs.metrics import LabeledGauge, MetricsRegistry
from repro.obs.progress import ProgressRenderer
from repro.obs.telemetry import (
    SPAN_NAMES, SpanRecorder, SweepTelemetry, WorkerTelemetry,
    rollup_spans, validate_chrome_trace,
)
from repro.sim.config import Scheme
from repro.sim.parallel import SweepRunStats
from repro.sim.sweep import SweepGrid, run_sweep

needs_numpy = pytest.mark.skipif(
    not __import__("repro.engine", fromlist=["batch_available"]
                   ).batch_available(),
    reason="batch backend needs numpy",
)

FAST = {"mesh_width": 4, "capacity_scale": 1 / 64}

#: The hot-path fingerprint matrix schemes: both memory technologies,
#: both TSB organisations, the WB estimator.
SCHEMES = (
    Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB,
    Scheme.STTRAM_4TSB, Scheme.STTRAM_4TSB_WB,
)


def tiny_grid(**kw):
    spec = dict(apps=["x264"], schemes=SCHEMES, cycles=200, warmup=80,
                overrides=dict(FAST))
    spec.update(kw)
    return SweepGrid(**spec)


# ----------------------------------------------------------------------
# Metrics: LabeledGauge and the snapshot/merge contract
# ----------------------------------------------------------------------


class TestLabeledGauge:
    def test_labels_coexist(self):
        gauge = LabeledGauge("workers.active")
        gauge.set(1, label="w1")
        gauge.set(2.5, label="w2")
        assert gauge.get("w1") == 1.0
        assert gauge.get("w2") == 2.5
        assert gauge.get("missing") == 0.0
        assert gauge.labels() == ["w1", "w2"]
        assert len(gauge) == 2

    def test_as_dict_sorted(self):
        gauge = LabeledGauge("g")
        gauge.set(2, label="b")
        gauge.set(1, label="a")
        assert gauge.as_dict() == {
            "type": "labeled_gauge", "values": {"a": 1.0, "b": 2.0},
        }

    def test_registry_binding_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.labeled_gauge("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.counter("x")


class TestSnapshotMerge:
    def worker_registry(self, points):
        reg = MetricsRegistry()
        for wall in points:
            reg.counter("worker.points").inc()
            reg.histogram("worker.point_ms").observe(wall)
            reg.gauge("worker.last_point_ms").set(wall)
        return reg

    def test_counters_sum_and_histograms_bucket_merge(self):
        merged = MetricsRegistry()
        merged.merge_snapshot(self.worker_registry([5, 5, 9]).snapshot(),
                              worker="w1")
        merged.merge_snapshot(self.worker_registry([5, 30]).snapshot(),
                              worker="w2")
        assert merged.counter("worker.points").value == 5
        hist = merged.histogram("worker.point_ms")
        assert hist.count == 5
        assert hist.hist == {5: 3, 9: 1, 30: 1}

    def test_gauges_gain_worker_labels(self):
        merged = MetricsRegistry()
        merged.merge_snapshot(self.worker_registry([7]).snapshot(),
                              worker="w1")
        merged.merge_snapshot(self.worker_registry([11]).snapshot(),
                              worker="w2")
        gauge = merged.labeled_gauge("worker.last_point_ms")
        assert gauge.get("w1") == 7.0
        assert gauge.get("w2") == 11.0

    def test_unlabeled_merge_is_last_write_wins(self):
        merged = MetricsRegistry()
        merged.merge_snapshot(self.worker_registry([7]).snapshot())
        merged.merge_snapshot(self.worker_registry([11]).snapshot())
        assert merged.gauge("worker.last_point_ms").value == 11.0

    def test_labeled_gauges_merge_label_maps(self):
        a = MetricsRegistry()
        a.labeled_gauge("active").set(1, label="w1")
        b = MetricsRegistry()
        b.labeled_gauge("active").set(1, label="w2")
        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        assert merged.labeled_gauge("active").labels() == ["w1", "w2"]

    def test_snapshot_round_trips_through_json(self):
        reg = self.worker_registry([3, 4])
        reg.labeled_gauge("active").set(1, label="w9")
        restored = json.loads(json.dumps(reg.snapshot()))
        merged = MetricsRegistry()
        merged.merge_snapshot(restored, worker="w9")
        assert merged.counter("worker.points").value == 2
        assert merged.histogram("worker.point_ms").hist == {3: 1, 4: 1}


# ----------------------------------------------------------------------
# Spans: recorder, rollups, worker bundles
# ----------------------------------------------------------------------


class TestSpanRecorder:
    def test_span_context_manager_records_duration(self):
        rec = SpanRecorder(worker=42)
        with rec.span("engine.simulate", app="x264"):
            pass
        assert len(rec) == 1
        span = rec.export()[0]
        assert span["name"] == "engine.simulate"
        assert span["worker"] == 42
        assert span["dur"] >= 0.0
        assert span["args"] == {"app": "x264"}

    def test_rollup_sums_by_name(self):
        rec = SpanRecorder(worker=1)
        rec.add("a", 0.0, 1.0)
        rec.add("a", 2.0, 0.5)
        rec.add("b", 0.0, 0.25)
        rollup = rollup_spans(rec.export())
        assert rollup["a"] == {"count": 2, "total_s": 1.5}
        assert rollup["b"]["count"] == 1
        assert list(rollup) == sorted(rollup)

    def test_taxonomy_is_documented(self):
        assert "sweep.run" in SPAN_NAMES
        assert "chunk.queue_wait" in SPAN_NAMES
        assert "batch.lane_build" in SPAN_NAMES


class TestWorkerTelemetry:
    def test_snapshot_is_a_delta_per_bundle(self):
        first = WorkerTelemetry()
        first.point_done(10.0)
        second = WorkerTelemetry()
        second.point_done(20.0)
        merged = MetricsRegistry()
        for bundle in (first, second):
            merged.merge_snapshot(bundle.export()["metrics"],
                                  worker=f"w{bundle.pid}")
        assert merged.counter("worker.points").value == 2
        assert merged.counter("worker.chunks").value == 2

    def test_queue_wait_span_clamps_clock_races(self):
        import time

        ahead = WorkerTelemetry(submit_ts=time.monotonic() + 100.0)
        span = ahead.recorder.export()[0]
        assert span["name"] == "chunk.queue_wait"
        assert span["dur"] == 0.0


# ----------------------------------------------------------------------
# Tentpole: the pure-reader determinism matrix
# ----------------------------------------------------------------------


def run_cell(grid, backend, workers, cache_dir=None, telemetry=None):
    stats = SweepRunStats()
    sweep = run_sweep(grid, workers=workers, backend=backend,
                      cache=cache_dir is not None, cache_dir=cache_dir,
                      stats=stats, telemetry=telemetry, ledger=False)
    return sweep, stats


class TestPureReader:
    """Telemetry on == telemetry off, across backends/workers/cache."""

    @pytest.fixture(scope="class")
    def baseline(self):
        sweep, _stats = run_cell(tiny_grid(), "scalar", 1)
        return sweep.fingerprint()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_scalar_fingerprint_unperturbed(self, baseline, workers):
        tel = SweepTelemetry()
        sweep, _stats = run_cell(tiny_grid(), "scalar", workers,
                                 telemetry=tel)
        assert sweep.fingerprint() == baseline
        assert len(tel.spans()) > 0

    @needs_numpy
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batch_fingerprint_unperturbed(self, baseline, workers):
        tel = SweepTelemetry()
        sweep, _stats = run_cell(tiny_grid(), "batch", workers,
                                 telemetry=tel)
        assert sweep.fingerprint() == baseline
        rollup = tel.rollups()
        assert "batch.measure" in rollup

    def test_cold_then_warm_cache_unperturbed(self, baseline, tmp_path):
        cache = str(tmp_path / "cache")
        cold, cold_stats = run_cell(tiny_grid(), "scalar", 2,
                                    cache_dir=cache,
                                    telemetry=SweepTelemetry())
        warm_tel = SweepTelemetry()
        warm, warm_stats = run_cell(tiny_grid(), "scalar", 2,
                                    cache_dir=cache, telemetry=warm_tel)
        assert cold.fingerprint() == warm.fingerprint() == baseline
        assert warm_stats.cache_hits == warm_stats.points
        assert warm_tel.as_meta()["points"]["hit"] == warm_stats.points

    def test_fingerprint_never_hashes_meta(self, baseline):
        tel = SweepTelemetry()
        sweep, _stats = run_cell(tiny_grid(), "scalar", 1, telemetry=tel)
        assert "telemetry" in sweep.meta
        stripped = type(sweep)(sweep.grid_spec, sweep.data, meta={})
        assert stripped.fingerprint() == sweep.fingerprint() == baseline


class TestMergedMetrics:
    def test_pool_counters_equal_serial_totals(self):
        serial_tel = SweepTelemetry()
        _sweep, serial_stats = run_cell(tiny_grid(), "scalar", 1,
                                        telemetry=serial_tel)
        pool_tel = SweepTelemetry()
        _sweep, pool_stats = run_cell(tiny_grid(), "scalar", 2,
                                      telemetry=pool_tel)
        serial_points = serial_tel.registry.counter("worker.points").value
        pool_points = pool_tel.registry.counter("worker.points").value
        assert serial_points == pool_points == serial_stats.points
        assert (serial_tel.registry.histogram("worker.point_ms").count
                == pool_tel.registry.histogram("worker.point_ms").count)

    def test_workers_active_labeled_per_pid(self):
        tel = SweepTelemetry()
        _sweep, stats = run_cell(tiny_grid(), "scalar", 2, telemetry=tel)
        active = tel.registry.labeled_gauge("sweep.workers.active")
        assert active.labels() == [f"w{pid}" for pid in tel.workers()]
        assert len(active) >= 1

    def test_meta_payload_shape(self):
        tel = SweepTelemetry()
        sweep, stats = run_cell(tiny_grid(), "scalar", 1, telemetry=tel)
        meta = sweep.meta["telemetry"]
        assert meta["points"]["total"] == meta["points"]["done"]
        assert meta["points"]["sim"] == stats.simulated
        assert "sweep.run" in meta["spans"]
        assert meta["metrics"]["worker.points"]["value"] == stats.points


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


class TestChromeTrace:
    def test_two_worker_trace_validates(self, tmp_path):
        tel = SweepTelemetry()
        _sweep, stats = run_cell(tiny_grid(), "scalar", 2, telemetry=tel)
        path = str(tmp_path / "sweep-trace.json")
        tel.write_chrome(path)
        slices, worker_tracks, errors = validate_chrome_trace(path)
        assert errors == []
        assert slices == len(tel.spans())
        assert worker_tracks >= 2

    def test_rollup_covers_wall_time(self):
        tel = SweepTelemetry()
        _sweep, stats = run_cell(tiny_grid(), "scalar", 2, telemetry=tel)
        run_rollup = tel.rollups()["sweep.run"]
        assert run_rollup["count"] == 1
        # The sweep.run span covers the same window wall_seconds
        # measures, so the two agree within 5%.
        assert run_rollup["total_s"] == pytest.approx(
            stats.wall_seconds, rel=0.05)

    def test_serial_trace_dedupes_parent_track(self):
        tel = SweepTelemetry()
        run_cell(tiny_grid(), "scalar", 1, telemetry=tel)
        doc = tel.chrome_document()
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(metas) == len({e["pid"] for e in metas})

    def test_validator_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        _slices, _tracks, errors = validate_chrome_trace(str(bad))
        assert errors and "unreadable" in errors[0]
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"traceEvents": []}))
        _slices, _tracks, errors = validate_chrome_trace(str(empty))
        assert any("no duration slices" in e for e in errors)


# ----------------------------------------------------------------------
# The run ledger
# ----------------------------------------------------------------------


def fake_stats(**kw):
    stats = SweepRunStats()
    stats.points = kw.pop("points", 4)
    stats.simulated = kw.pop("simulated", 4)
    stats.workers = kw.pop("workers", 1)
    stats.wall_seconds = kw.pop("wall_seconds", 2.0)
    stats.backend = kw.pop("backend", "scalar")
    for name, value in kw.items():
        setattr(stats, name, value)
    return stats


def fake_record(**kw):
    record = build_record({"apps": ["x264"]}, "f" * 64, fake_stats())
    record.update(kw)
    return record


class TestLedger:
    def test_build_record_validates(self):
        assert validate_record(fake_record()) == []

    def test_append_and_entries_roundtrip(self, tmp_path):
        ledger = RunLedger(path=str(tmp_path / "ledger.jsonl"))
        first = fake_record()
        ledger.append(first)
        ledger.append(fake_record())
        entries = ledger.entries()
        assert len(entries) == 2
        assert entries[0]["run_id"] == first["run_id"]

    def test_rotation_keeps_newest(self, tmp_path):
        ledger = RunLedger(path=str(tmp_path / "ledger.jsonl"),
                           max_entries=3)
        ids = []
        for _ in range(5):
            record = fake_record()
            ids.append(record["run_id"])
            ledger.append(record)
        kept = [r["run_id"] for r in ledger.entries()]
        assert kept == ids[-3:]

    def test_corrupt_tail_skipped_and_healed(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(path=path)
        ledger.append(fake_record())
        with open(path, "a", encoding="ascii") as fh:
            fh.write('{"torn": true, "missing-closi\n')
        assert len(ledger.entries()) == 1
        assert ledger.corrupt_dropped == 1
        ledger.append(fake_record())  # rewrite heals the tail
        with open(path, "r", encoding="ascii") as fh:
            assert all(json.loads(line) for line in fh)
        rows, errors = ledger.validate()
        assert rows == 2 and errors == []

    def test_schema_violations_rejected_on_append(self, tmp_path):
        ledger = RunLedger(path=str(tmp_path / "ledger.jsonl"))
        bad = fake_record()
        del bad["fingerprint"]
        with pytest.raises(ValueError, match="fingerprint"):
            ledger.append(bad)
        newer = fake_record(schema=999)
        assert any("newer" in e for e in validate_record(newer))

    def test_resolve_by_prefix_and_index(self, tmp_path):
        ledger = RunLedger(path=str(tmp_path / "ledger.jsonl"))
        first, second = fake_record(), fake_record()
        ledger.append(first)
        ledger.append(second)
        assert ledger.resolve("-1")["run_id"] == second["run_id"]
        assert (ledger.resolve(first["run_id"][:6])["run_id"]
                == first["run_id"])
        with pytest.raises(LookupError):
            ledger.resolve("zzzzzz")

    def test_run_sweep_appends_when_enabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        assert ledger_enabled()
        path = str(tmp_path / "ledger.jsonl")
        grid = tiny_grid(schemes=(Scheme.SRAM_64TSB,))
        sweep = run_sweep(grid, workers=1, ledger_path=path)
        records = RunLedger(path=path).entries()
        assert len(records) == 1
        assert records[0]["fingerprint"] == sweep.fingerprint()[:16]
        run_sweep(grid, workers=1, ledger_path=path, ledger=False)
        assert len(RunLedger(path=path).entries()) == 1

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert not ledger_enabled()
        monkeypatch.setenv("REPRO_LEDGER", "off")
        assert not ledger_enabled()
        monkeypatch.setenv("REPRO_LEDGER", "1")
        assert ledger_enabled()


class TestLedgerDiff:
    def test_throughput_regression_flagged(self):
        a = fake_record(points_per_sec=10.0)
        b = fake_record(points_per_sec=5.0)
        lines, failures = diff_records(a, b, threshold=0.2)
        assert any("points_per_sec" in f for f in failures)
        assert any("points_per_sec" in line for line in lines)

    def test_span_growth_flagged(self):
        a = fake_record(spans={"engine.simulate":
                               {"count": 4, "total_s": 1.0}})
        b = fake_record(spans={"engine.simulate":
                               {"count": 4, "total_s": 2.0}})
        _lines, failures = diff_records(a, b, threshold=0.2)
        assert any("engine.simulate" in f for f in failures)

    def test_within_threshold_passes(self):
        a = fake_record(points_per_sec=10.0)
        b = fake_record(points_per_sec=9.5)
        _lines, failures = diff_records(a, b, threshold=0.2)
        assert failures == []

    def test_bench_pseudo_record(self, tmp_path):
        payload = {"sweep_throughput": {
            "points": 6, "workers": 4, "backend": "scalar",
            "serial_points_per_sec": 12.0, "warm_hit_rate": 1.0,
        }}
        record = record_from_bench(payload, "BENCH_perf.json")
        assert record["points_per_sec"] == 12.0
        lines, failures = diff_records(record, fake_record(
            points_per_sec=11.0), threshold=0.2)
        assert failures == []
        with pytest.raises(LookupError):
            record_from_bench({}, "other.json")

    def test_format_entries_lists_every_run(self):
        records = [fake_record(), fake_record()]
        listing = format_entries(records)
        for record in records:
            assert record["run_id"] in listing


# ----------------------------------------------------------------------
# Live progress
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestProgress:
    def renderer(self, mode="plain"):
        import io

        clock = FakeClock()
        out = io.StringIO()
        renderer = ProgressRenderer(mode=mode, out=out, now=clock)
        return renderer, out, clock

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ProgressRenderer(mode="fancy")

    def test_plain_prints_one_line_per_point(self):
        renderer, out, clock = self.renderer("plain")
        renderer.begin(total=3, workers=1)
        for done in range(1, 4):
            clock.t += 1.0
            renderer.on_point("x264/SRAM-64TSB", "sim", 1000.0, 71,
                              done=done, total=3)
        renderer.close()
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert "[3/3]" in lines[-1]

    def test_rolling_rate_and_eta(self):
        renderer, _out, clock = self.renderer("plain")
        renderer.begin(total=10, workers=1)
        for done in range(1, 5):
            clock.t += 2.0
            renderer.on_point("p", "sim", 2000.0, None,
                              done=done, total=10)
        assert renderer.points_per_sec() == pytest.approx(0.5)
        assert renderer.eta_seconds() == pytest.approx(12.0)

    def test_hits_excluded_from_rate(self):
        renderer, _out, clock = self.renderer("plain")
        renderer.begin(total=4, workers=1)
        clock.t += 1.0
        renderer.on_point("p", "hit", 0.0, None, done=1, total=4)
        assert renderer.hits == 1
        assert not renderer._ticks

    def test_straggler_flagged_after_silence(self):
        renderer, out, clock = self.renderer("rich")
        renderer.begin(total=10, workers=2)
        clock.t += 1.0
        renderer.on_point("p", "sim", 500.0, 71, done=1, total=10)
        clock.t += 0.1
        renderer.on_point("p", "sim", 500.0, 72, done=2, total=10)
        clock.t += 60.0
        stragglers = renderer.stragglers()
        assert 71 in stragglers and 72 in stragglers
        renderer.on_point("p", "sim", 500.0, 72, done=3, total=10)
        assert "STRAGGLER w71" in out.getvalue()
        renderer.close()

    def test_no_stragglers_once_done(self):
        renderer, _out, clock = self.renderer("rich")
        renderer.begin(total=1, workers=1)
        clock.t += 1.0
        renderer.on_point("p", "sim", 500.0, 71, done=1, total=1)
        clock.t += 999.0
        assert renderer.stragglers() == {}

    def test_rich_renders_bar_and_roster(self):
        renderer, out, clock = self.renderer("rich")
        renderer.begin(total=2, workers=2)
        clock.t += 1.0
        renderer.on_point("p", "sim", 500.0, 71, done=1, total=2)
        text = out.getvalue()
        assert "[" in text and "1/2" in text and "w71:1" in text
        renderer.close()
        assert out.getvalue().endswith("\n")


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


class TestCLI:
    def seed_ledger(self, tmp_path, n=2, **kw):
        path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(path=path)
        for _ in range(n):
            ledger.append(fake_record(**kw))
        return path

    def test_ledger_list(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seed_ledger(tmp_path)
        assert main(["ledger", "--path", path]) == 0
        out = capsys.readouterr().out
        assert "run_id" in out
        assert len(out.strip().splitlines()) == 3  # header + 2 rows

    def test_ledger_list_filters(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seed_ledger(tmp_path)
        assert main(["ledger", "--path", path,
                     "--backend", "batch"]) == 0
        assert "no matching runs" in capsys.readouterr().out

    def test_ledger_diff_and_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(path=path)
        ledger.append(fake_record(points_per_sec=10.0))
        ledger.append(fake_record(points_per_sec=4.0))
        assert main(["ledger", "diff", "-2", "-1", "--path", path]) == 1
        assert "REGRESSION" in capsys.readouterr().err
        assert main(["ledger", "diff", "-1", "-2", "--path", path]) == 0
        assert main(["ledger", "diff", "-1", "--path", path]) == 2

    def test_ledger_validate(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seed_ledger(tmp_path)
        with open(path, "a", encoding="ascii") as fh:
            fh.write("garbage\n")
        assert main(["ledger", "validate", "--path", path]) == 1
        assert "LEDGER VIOLATION" in capsys.readouterr().err

    def test_report_compare(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(path=path)
        ledger.append(fake_record(points_per_sec=10.0))
        ledger.append(fake_record(points_per_sec=9.8))
        assert main(["report", "--compare", "-2", "-1",
                     "--ledger-path", path]) == 0
        assert "no regression" in capsys.readouterr().out
        ledger.append(fake_record(points_per_sec=1.0))
        assert main(["report", "--compare", "-3", "-1",
                     "--ledger-path", path]) == 1

    def test_report_compare_against_bench(self, tmp_path, capsys):
        from repro.cli import main

        bench = tmp_path / "BENCH_perf.json"
        bench.write_text(json.dumps({"sweep_throughput": {
            "points": 4, "workers": 1, "backend": "scalar",
            "serial_points_per_sec": 10.0, "warm_hit_rate": 1.0,
        }}))
        path = str(tmp_path / "ledger.jsonl")
        RunLedger(path=path).append(fake_record(points_per_sec=9.9))
        assert main(["report", "--compare", str(bench), "-1",
                     "--ledger-path", path]) == 0

    def test_report_still_needs_app_without_compare(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 2
        assert "--app" in capsys.readouterr().err

    def test_sweep_telemetry_flags(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_LEDGER", "1")
        trace = str(tmp_path / "trace.json")
        ledger_path = str(tmp_path / "ledger.jsonl")
        code = main([
            "sweep", "--apps", "x264", "--schemes", "SRAM-64TSB",
            "--workers", "1", "--no-cache", "--cycles", "200",
            "--warmup", "80", "--mesh-width", "4",
            "--capacity-scale", str(1 / 64),
            "--progress", "plain", "--trace-out", trace,
            "--ledger-path", ledger_path,
        ])
        assert code == 0
        slices, _tracks, errors = validate_chrome_trace(trace)
        assert errors == [] and slices > 0
        assert len(RunLedger(path=ledger_path).entries()) == 1
        assert "telemetry:" in capsys.readouterr().out
