"""Tests for packets, traces and the flit combiner."""

import pytest

from repro.core.combining import FlitCombiner
from repro.noc.packet import Packet, PacketClass, reset_packet_ids
from repro.cpu.trace import (
    IDLE_GAP, IdleStream, ScriptedStream, StridedStream, bank_block,
)


class TestPacket:
    def test_ids_are_unique(self):
        a = Packet(PacketClass.REQUEST, 0, 1, 1, inject_cycle=0)
        b = Packet(PacketClass.REQUEST, 0, 1, 1, inject_cycle=0)
        assert a.pid != b.pid

    def test_reset_ids(self):
        reset_packet_ids()
        p = Packet(PacketClass.REQUEST, 0, 1, 1, inject_cycle=0)
        assert p.pid == 0

    def test_latency(self):
        p = Packet(PacketClass.RESPONSE, 0, 1, 8, inject_cycle=10)
        assert p.latency(50) == 40

    def test_defaults(self):
        p = Packet(PacketClass.MEMORY, 2, 3, 8, inject_cycle=5)
        assert p.hops == 0
        assert p.delayed_cycles == 0
        assert not p.combined
        assert p.wb_timestamp is None
        assert p.ready_at == 5

    def test_repr_mentions_endpoints(self):
        p = Packet(PacketClass.REQUEST, 2, 3, 1, inject_cycle=0,
                   is_write=True)
        assert "2->3" in repr(p)


class TestScriptedStream:
    def test_replays_then_idles(self):
        s = ScriptedStream([(1, 10, False), (2, 20, True)])
        assert s.next_access() == (1, 10, False)
        assert s.next_access() == (2, 20, True)
        gap, _b, _w = s.next_access()
        assert gap == IDLE_GAP

    def test_loop_mode(self):
        s = ScriptedStream([(1, 10, False)], loop=True)
        for _ in range(5):
            assert s.next_access() == (1, 10, False)

    def test_empty_loop_idles(self):
        s = ScriptedStream([], loop=True)
        assert s.next_access()[0] == IDLE_GAP


class TestStridedStream:
    def test_wraps_over_range(self):
        s = StridedStream(gap=2, start_block=100, stride=3, n_blocks=9)
        blocks = [s.next_access()[1] for _ in range(6)]
        assert blocks == [100, 103, 106, 100, 103, 106]

    def test_store_every(self):
        s = StridedStream(gap=0, start_block=0, stride=1, n_blocks=100,
                          store_every=3)
        stores = [s.next_access()[2] for _ in range(6)]
        assert stores == [True, False, False, True, False, False]

    def test_no_stores_by_default(self):
        s = StridedStream(gap=0, start_block=0, stride=1, n_blocks=10)
        assert not any(s.next_access()[2] for _ in range(10))


class TestHelpers:
    def test_idle_stream(self):
        assert IdleStream().next_access()[0] == IDLE_GAP

    def test_bank_block_maps_to_bank(self):
        for bank in range(16):
            for i in range(5):
                assert bank_block(bank, i, 16) % 16 == bank


class TestFlitCombiner:
    def test_halves_data_packet_serialisation(self):
        c = FlitCombiner(width_factor=2)
        pkt = Packet(PacketClass.REQUEST, 0, 1, 8, inject_cycle=0)
        assert c.serialization_cycles(pkt) == 4
        assert pkt.combined
        assert c.combined_flit_pairs == 4

    def test_single_flit_unchanged(self):
        c = FlitCombiner(width_factor=2)
        pkt = Packet(PacketClass.REQUEST, 0, 1, 1, inject_cycle=0)
        assert c.serialization_cycles(pkt) == 1
        assert not pkt.combined

    def test_odd_flit_count_rounds_up(self):
        c = FlitCombiner(width_factor=2)
        pkt = Packet(PacketClass.REQUEST, 0, 1, 9, inject_cycle=0)
        assert c.serialization_cycles(pkt) == 5

    def test_unit_width_is_identity(self):
        c = FlitCombiner(width_factor=1)
        pkt = Packet(PacketClass.REQUEST, 0, 1, 8, inject_cycle=0)
        assert c.serialization_cycles(pkt) == 8
        assert c.combined_flit_pairs == 0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            FlitCombiner(width_factor=0)
