"""Crash-survivable sweeps: checkpoint/resume, hardened cache reads,
and per-point retry with bounded backoff.

Two crash shapes are exercised: an in-process abort partway through a
grid (exception out of ``run_points``) and a real ``SIGKILL`` of a CLI
sweep subprocess.  Both must resume from the snapshot without
recomputing finished points, and the completed grid must match a clean
uninterrupted run byte for byte.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.sim import parallel
from repro.sim.config import Scheme
from repro.sim.parallel import (
    SweepCache, SweepCheckpoint, SweepPoint, SweepRunStats, run_points,
)
from repro.sim.sweep import SweepGrid, run_sweep

FAST = {"mesh_width": 4, "capacity_scale": 1 / 64}


def specs(n=4):
    return [
        SweepPoint.build(app, Scheme.SRAM_64TSB, 200, 80, 1, FAST)
        for app in ("x264", "hmmer", "mcf", "tpcc")[:n]
    ]


class _AbortAfter:
    """Progress callback that raises after N completions (the
    in-process stand-in for a crash mid-grid)."""

    def __init__(self, n):
        self.n = n
        self.seen = 0

    def __call__(self, app, scheme):
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt("simulated crash")


class TestCheckpointResume:
    def test_resume_after_inprocess_crash(self, tmp_path):
        ck_path = str(tmp_path / "ck.json")
        points = specs(4)

        with pytest.raises(KeyboardInterrupt):
            run_points(points, workers=1, cache=False,
                       checkpoint=ck_path, progress=_AbortAfter(2))
        assert os.path.exists(ck_path), \
            "snapshot must survive the crash"
        snapshot = json.load(open(ck_path))
        assert len(snapshot["completed"]) == 2

        stats = SweepRunStats()
        resumed = run_points(points, workers=1, cache=False,
                             checkpoint=ck_path, stats=stats)
        assert stats.resumed_points == 2
        assert stats.simulated == 2  # only the unfinished half
        assert not os.path.exists(ck_path), \
            "snapshot is discarded once the grid completes"

        clean = run_points(points, workers=1, cache=False)
        assert resumed == clean

    def test_corrupt_snapshot_resumes_nothing(self, tmp_path):
        ck_path = str(tmp_path / "ck.json")
        with pytest.raises(KeyboardInterrupt):
            run_points(specs(3), workers=1, cache=False,
                       checkpoint=ck_path, progress=_AbortAfter(2))
        with open(ck_path, "a") as fh:
            fh.write("garbage")
        stats = SweepRunStats()
        run_points(specs(3), workers=1, cache=False,
                   checkpoint=ck_path, stats=stats)
        assert stats.resumed_points == 0
        assert stats.simulated == 3

    def test_stale_code_version_resumes_nothing(self, tmp_path):
        ck_path = str(tmp_path / "ck.json")
        with pytest.raises(KeyboardInterrupt):
            run_points(specs(3), workers=1, cache=False,
                       checkpoint=ck_path, progress=_AbortAfter(2))
        ck = SweepCheckpoint(ck_path, version="v1-otherbuild")
        assert ck.load() == 0

    def test_prune_drops_foreign_points(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path / "ck.json"))
        ck.record("aaaa", {"x": 1})
        ck.record("bbbb", {"x": 2})
        ck.prune(["aaaa"])
        assert list(ck.completed) == ["aaaa"]

    def test_checkpoint_every_batches_flushes(self, tmp_path):
        ck_path = str(tmp_path / "ck.json")
        points = specs(4)
        with pytest.raises(KeyboardInterrupt):
            run_points(points, workers=1, cache=False,
                       checkpoint=ck_path, checkpoint_every=3,
                       progress=_AbortAfter(2))
        # Two points finished but the flush threshold is 3: nothing
        # durable yet ... except the crash-path flush in the finally
        # block, which writes the pending records.
        snapshot = json.load(open(ck_path))
        assert len(snapshot["completed"]) == 2

    def test_checkpoint_and_cache_compose(self, tmp_path):
        ck_path = str(tmp_path / "ck.json")
        cache_dir = str(tmp_path / "cache")
        points = specs(3)
        with pytest.raises(KeyboardInterrupt):
            run_points(points, workers=1, cache=True,
                       cache_dir=cache_dir, checkpoint=ck_path,
                       progress=_AbortAfter(2))
        stats = SweepRunStats()
        run_points(points, workers=1, cache=True, cache_dir=cache_dir,
                   checkpoint=ck_path, stats=stats)
        # checkpoint is consulted before the cache
        assert stats.resumed_points == 2
        assert stats.simulated == 1


class TestSIGKILLResume:
    """A real kill -9 of a CLI sweep, then resume to completion."""

    GRID = ["--apps", "sclust,x264", "--schemes",
            "SRAM-64TSB,MRAM-4TSB", "--workers", "1", "--no-cache",
            "--mesh-width", "4", "--capacity-scale", "0.015625",
            "--cycles", "12000", "--warmup", "1000"]

    def test_kill_and_resume(self, tmp_path):
        ck_path = str(tmp_path / "ck.json")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "sweep",
             *self.GRID, "--checkpoint", ck_path],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if os.path.exists(ck_path):
                    break
                if proc.poll() is not None:
                    pytest.fail("sweep finished before the kill; "
                                "raise --cycles")
                time.sleep(0.05)
            else:
                pytest.fail("checkpoint never appeared")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()

        snapshot = json.load(open(ck_path))
        survived = len(snapshot["completed"])
        assert 1 <= survived < 4

        grid = SweepGrid(
            apps=["sclust", "x264"],
            schemes=(Scheme.SRAM_64TSB, Scheme.STTRAM_4TSB),
            cycles=12000, warmup=1000,
            overrides={"mesh_width": 4, "capacity_scale": 0.015625},
        )
        stats = SweepRunStats()
        sweep = run_sweep(grid, workers=1, cache=False,
                          checkpoint=ck_path, stats=stats)
        assert stats.resumed_points == survived
        assert stats.simulated == 4 - survived
        assert len(sweep.data) == 2
        assert all(len(v) == 2 for v in sweep.data.values())
        assert not os.path.exists(ck_path)


class TestHardenedCache:
    def test_truncated_entry_evicts_and_recomputes(self, tmp_path):
        cache_dir = str(tmp_path)
        points = specs(1)
        clean = run_points(points, workers=1, cache=True,
                           cache_dir=cache_dir)
        cache = SweepCache(cache_dir)
        path = cache.path_for(points[0].key())
        blob = open(path).read()
        with open(path, "w") as fh:
            fh.write(blob[: len(blob) // 2])  # truncate mid-payload

        stats = SweepRunStats()
        results = run_points(points, workers=1, cache=True,
                             cache_dir=cache_dir, stats=stats)
        assert stats.cache_evictions == 1
        assert stats.cache_hits == 0
        assert stats.simulated == 1
        assert results == clean  # recomputed, not served corrupt
        # ... and the recompute repopulated a valid entry
        assert SweepCache(cache_dir).get(points[0].key()) is not None

    def test_tampered_payload_fails_digest_on_get(self, tmp_path):
        cache_dir = str(tmp_path)
        points = specs(1)
        run_points(points, workers=1, cache=True, cache_dir=cache_dir)
        cache = SweepCache(cache_dir)
        path = cache.path_for(points[0].key())
        payload = json.load(open(path))
        payload["result"]["cycles"] = 999999  # silent bit-flip
        with open(path, "w") as fh:
            json.dump(payload, fh)

        assert cache.get(points[0].key()) is None
        assert cache.evictions == 1
        assert not os.path.exists(path)  # evicted, not left to fester

    def test_tampered_entry_recomputed(self, tmp_path):
        cache_dir = str(tmp_path)
        points = specs(1)
        clean = run_points(points, workers=1, cache=True,
                           cache_dir=cache_dir)
        cache = SweepCache(cache_dir)
        path = cache.path_for(points[0].key())
        payload = json.load(open(path))
        payload["result"]["cycles"] = 999999
        with open(path, "w") as fh:
            json.dump(payload, fh)

        stats = SweepRunStats()
        results = run_points(points, workers=1, cache=True,
                             cache_dir=cache_dir, stats=stats)
        assert stats.cache_evictions == 1
        assert results == clean

    def test_eviction_metric_emitted(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        cache_dir = str(tmp_path)
        points = specs(1)
        run_points(points, workers=1, cache=True, cache_dir=cache_dir)
        cache = SweepCache(cache_dir)
        path = cache.path_for(points[0].key())
        with open(path, "w") as fh:
            fh.write("{not json")
        registry = MetricsRegistry()
        run_points(points, workers=1, cache=True, cache_dir=cache_dir,
                   metrics=registry)
        assert registry.counter("sweep.cache.evictions").value == 1
        assert registry.counter("sweep.resumed").value == 0


class _FlakyPoint:
    """simulate_point stand-in that fails N times, then succeeds."""

    def __init__(self, failures, real):
        self.failures = failures
        self.real = real
        self.calls = 0

    def __call__(self, spec):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("transient worker wobble")
        return self.real(spec)


class TestPerPointRetry:
    def test_flaky_point_retries_and_succeeds(self, monkeypatch):
        clean = run_points(specs(1), workers=1, cache=False)
        flaky = _FlakyPoint(2, parallel.simulate_point)
        monkeypatch.setattr(parallel, "simulate_point", flaky)
        stats = SweepRunStats()
        results = run_points(specs(1), workers=1, cache=False,
                             stats=stats, max_retries=2,
                             retry_backoff=0.0)
        assert flaky.calls == 3
        assert stats.retried == 2
        assert results == clean

    def test_retries_exhausted_raises(self, monkeypatch):
        flaky = _FlakyPoint(10, parallel.simulate_point)
        monkeypatch.setattr(parallel, "simulate_point", flaky)
        with pytest.raises(RuntimeError, match="wobble"):
            run_points(specs(1), workers=1, cache=False,
                       max_retries=2, retry_backoff=0.0)
        assert flaky.calls == 3  # initial + 2 retries, then give up

    def test_backoff_is_bounded_exponential(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(parallel.time, "sleep", sleeps.append)
        flaky = _FlakyPoint(3, parallel.simulate_point)
        monkeypatch.setattr(parallel, "simulate_point", flaky)
        run_points(specs(1), workers=1, cache=False,
                   max_retries=3, retry_backoff=0.1)
        assert sleeps == [0.1, 0.2, 0.4]

    def test_invalid_retry_knobs_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_points(specs(1), workers=1, cache=False, max_retries=-1)
        with pytest.raises(ConfigError):
            run_points(specs(1), workers=1, cache=False,
                       retry_backoff=-0.5)
