"""Hot-path datapath invariants (flat router state, pooling, dispatch).

The optimized executed-cycle datapath -- flat ``port * n_vcs + vc`` VC
arrays, entry-list pooling, precomputed routing tables, per-node arbiter
dispatch, and the active-set route loop -- must be observationally
invisible.  These tests pin that down three ways:

* a fingerprint matrix: four benchmark schemes x {dense, event}
  scheduler x {optimized, reference} route loop must produce the same
  ``SimulationResult`` bit for bit,
* identity-based entry removal (``Router.remove_entry`` must never
  remove a merely value-equal sibling entry; pooled entry lists make
  value equality meaningless),
* the precomputed XY routing table must agree with the closed-form
  ``_compute_port`` reference at every (node, destination, via) step.
"""

import pytest

from repro.noc.packet import Packet, PacketClass, reset_packet_ids
from repro.noc.router import Router
from repro.noc.routing import RoutingPolicy
from repro.noc.topology import LOCAL, Mesh3D
from repro.sim.config import Scheme
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous
from tests.conftest import small_config

#: The four benchmarked schemes of the perf harness's lineage: SRAM
#: baseline, naive STT-RAM, region-restricted STT-RAM, and the paper's
#: full WB-estimator configuration.
SCHEMES = [
    Scheme.SRAM_64TSB,
    Scheme.STTRAM_64TSB,
    Scheme.STTRAM_4TSB,
    Scheme.STTRAM_4TSB_WB,
]

#: (scheduler, use_reference_loop) datapath combinations.
DATAPATHS = [
    ("dense", True),
    ("dense", False),
    ("event", True),
    ("event", False),
]


def _fingerprint(scheme, scheduler, use_reference_loop,
                 cycles=400, warmup=100):
    reset_packet_ids()
    cfg = small_config(scheme)
    sim = CMPSimulator(
        cfg, homogeneous("sclust", cfg, seed=5), scheduler=scheduler)
    sim.network.use_reference_loop = use_reference_loop
    return sim.run(cycles, warmup=warmup)


class TestFingerprintIdentity:
    """Every datapath combination must agree with the authoritative
    dense + reference-loop run, field for field."""

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
    def test_all_datapaths_byte_identical(self, scheme):
        base = _fingerprint(scheme, "dense", True)
        assert base.packets_delivered > 0  # non-vacuous comparison
        for scheduler, reference in DATAPATHS[1:]:
            result = _fingerprint(scheme, scheduler, reference)
            diffs = [
                key for key in base.__dict__
                if base.__dict__[key] != result.__dict__[key]
            ]
            assert not diffs, (
                f"{scheme.value}: SimulationResult drift in {diffs} "
                f"(scheduler={scheduler}, reference={reference})"
            )


def _mk_pkt(src=0, dst=1, flits=1):
    return Packet(PacketClass.REQUEST, src, dst, flits, inject_cycle=0)


class TestIdentityRemoval:
    """``remove_entry`` removes the exact entry object, never a
    value-equal sibling (regression for the ``list.remove`` era)."""

    def test_removes_exact_entry_not_value_equal_twin(self):
        router = Router(node=0, n_vcs=4)
        pkt = _mk_pkt()
        # Two entries for the *same* packet object with identical fields
        # except the VC -- then forge the VCs equal so the entries are
        # value-equal but distinct objects.
        router.accept(LOCAL, 0, pkt, out_port=1, arrival=0)
        router.accept(LOCAL, 1, pkt, out_port=1, arrival=0)
        first, second = router.out_entries[1]
        second[1] = first[1] = 0
        assert first == second and first is not second
        router.remove_entry(1, second, now=0)
        assert router.out_entries[1] == [first]
        assert router.out_entries[1][0] is first

    def test_missing_entry_raises(self):
        router = Router(node=0, n_vcs=4)
        pkt = _mk_pkt()
        router.accept(LOCAL, 0, pkt, out_port=1, arrival=0)
        stranger = [LOCAL, 0, pkt, 0]  # value-equal, never parked
        with pytest.raises(ValueError):
            router.remove_entry(1, stranger, now=0)

    def test_entry_pool_recycles_lists(self):
        router = Router(node=0, n_vcs=4)
        router.accept(LOCAL, 0, _mk_pkt(), out_port=1, arrival=0)
        recycled = router.out_entries[1][0]
        router.remove_entry_at(1, 0, now=0)
        assert recycled[2] is None  # packet reference dropped
        router.accept(LOCAL, 1, _mk_pkt(), out_port=2, arrival=3)
        assert router.out_entries[2][0] is recycled  # pooled reuse
        assert router.out_entries[2][0][3] == 3


class TestRoutingTableEquivalence:
    """The precomputed XY table path of ``next_port`` must match the
    closed-form ``_compute_port`` reference at every routing step."""

    @pytest.mark.parametrize("klass", [
        PacketClass.REQUEST, PacketClass.RESPONSE, PacketClass.COHERENCE,
    ], ids=lambda k: k.name)
    def test_table_matches_reference_on_all_pairs(self, klass):
        topo = Mesh3D(width=4)
        policy = RoutingPolicy(topo, region_map=None)
        for src in range(topo.n_nodes):
            for dst in range(topo.n_nodes):
                if src == dst:
                    continue
                pkt = Packet(klass, src, dst, 1, inject_cycle=0)
                policy.prepare(pkt)
                node, via, hops = src, pkt.via, 0
                while node != dst:
                    expect_port, expect_via = policy._compute_port(
                        node, dst, via)
                    pkt.via = via
                    port = policy.next_port(node, pkt)
                    assert port == expect_port, (
                        f"table/reference split at node {node} "
                        f"(src={src}, dst={dst}, via={via})"
                    )
                    via = pkt.via
                    assert via == expect_via
                    if port == LOCAL:
                        break
                    node = topo.neighbor(node, port)
                    hops += 1
                    assert hops <= 3 * topo.n_nodes, "routing loop"
                assert node == dst
