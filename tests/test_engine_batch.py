"""Batched lockstep execution backend: identity, packing, fallback.

The contract under test (see ``repro/engine/``):

* the ``batch`` backend is **byte-identical** to the scalar engine on
  every point, at every lane width, across the four benchmark schemes
  of the hot-path matrix;
* incompatible points (mixed lane signatures) silently fall back to
  the scalar engine, never error;
* cache keys, checkpoints and fingerprints are backend-independent,
  so entries written by one backend are hits for the other;
* lane-group tasks pickle through the process pool;
* requesting ``batch`` without numpy raises the typed
  :class:`BackendUnavailableError` (CLI exit status 2).

Everything that needs numpy is skipped when it is absent -- the tier-1
suite must pass on a stdlib-only interpreter.
"""

import pickle

import pytest

from repro.engine import (
    BACKEND_NAMES, EngineSpec, ScalarEngine, available_backends,
    batch_available, get_engine,
)
from repro.errors import BackendUnavailableError, ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.sim.config import Scheme
from repro.sim.parallel import (
    SweepPoint, SweepRunStats, _simulate_batch_group, run_points,
)
from repro.sim.sweep import SweepGrid, run_sweep

FAST = {"mesh_width": 4, "capacity_scale": 1 / 64}

#: The hot-path fingerprint matrix schemes (tests/test_hotpath.py).
SCHEMES = [
    Scheme.SRAM_64TSB,
    Scheme.STTRAM_64TSB,
    Scheme.STTRAM_4TSB,
    Scheme.STTRAM_4TSB_WB,
]

needs_numpy = pytest.mark.skipif(
    not batch_available(), reason="numpy not installed (repro[batch])")


def matrix_specs(cycles=400, warmup=100, app="sclust", seed=5):
    return [EngineSpec.build(app, scheme, cycles, warmup, seed, FAST)
            for scheme in SCHEMES]


def tiny_grid(**kw):
    spec = dict(apps=["x264", "hmmer"],
                schemes=(Scheme.SRAM_64TSB, Scheme.STTRAM_4TSB_WB),
                cycles=250, warmup=100, overrides=dict(FAST))
    spec.update(kw)
    return SweepGrid(**spec)


# ----------------------------------------------------------------------
# EngineSpec: the canonical unit of work
# ----------------------------------------------------------------------


class TestEngineSpec:
    def test_point_roundtrip(self):
        point = SweepPoint.build(
            "tpcc", Scheme.STTRAM_4TSB_WB, 300, 100, 2, FAST)
        spec = EngineSpec.from_point(point)
        assert spec.to_point().key() == point.key()

    def test_lane_signature_groups_topology(self):
        a = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1, FAST)
        b = EngineSpec.build("mcf", Scheme.STTRAM_4TSB, 300, 100, 9, FAST)
        assert a.lane_signature() == b.lane_signature()
        # Measurement windows no longer split groups (each lane runs to
        # its own per-phase budget), but topology still must match.
        for change in (dict(cycles=301), dict(warmup=99)):
            c = EngineSpec.build(
                "tpcc", Scheme.SRAM_64TSB,
                change.get("cycles", 300), change.get("warmup", 100), 1,
                FAST)
            assert a.lane_signature() == c.lane_signature()
            assert a.cycle_budget() != c.cycle_budget()
        d = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
                             {**FAST, "mesh_width": 8})
        assert a.lane_signature() != d.lane_signature()

    def test_overrides_order_insensitive(self):
        a = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
                             {"mesh_width": 4, "capacity_scale": 1 / 64})
        b = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
                             {"capacity_scale": 1 / 64, "mesh_width": 4})
        assert a == b

    def test_spec_pickles(self):
        spec = matrix_specs()[0]
        assert pickle.loads(pickle.dumps(spec)) == spec


# ----------------------------------------------------------------------
# Lane packing (pure planning -- no numpy needed)
# ----------------------------------------------------------------------


class TestPackLanes:
    def pack(self, specs, width):
        from repro.engine.batch import pack_lanes
        return pack_lanes(specs, width)

    def test_compatible_specs_chunk_to_width(self):
        specs = matrix_specs() * 2  # 8 compatible specs
        groups, fallbacks = self.pack(specs, 3)
        assert [len(g) for g in groups] == [3, 3, 2]
        assert fallbacks == []
        covered = sorted(i for g in groups for i in g)
        assert covered == list(range(8))

    def test_balanced_chunks_rescue_singletons(self):
        # 4 compatible specs at width 3: naive input-order chunking
        # strands a scalar singleton ([3, 1]); near-equal chunking
        # packs two pairs and the deltas record the rescue.
        from repro.engine.batch import pack_lanes
        specs = matrix_specs()
        deltas = {}
        groups, fallbacks = pack_lanes(specs, 3, deltas=deltas)
        assert sorted(len(g) for g in groups) == [2, 2]
        assert fallbacks == []
        assert deltas == {"pack_groups_delta": 1,
                          "pack_fallbacks_delta": -1,
                          "signature_buckets": [4]}

    def test_lone_spec_falls_back(self):
        groups, fallbacks = self.pack(matrix_specs()[:1], 3)
        assert groups == []
        assert fallbacks == [0]

    def test_budget_sort_groups_similar_runs(self):
        # Same topology, mixed budgets: the packer sorts by cycle
        # budget so the two short runs share one group and the two
        # long runs the other, whatever the input order.
        a = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1, FAST)
        b = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 999, 100, 1, FAST)
        groups, fallbacks = self.pack([a, b, a, b], 2)
        assert fallbacks == []
        assert sorted(sorted(g) for g in groups) == [[0, 2], [1, 3]]

    def test_mixed_topologies_bucket_separately(self):
        a = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1, FAST)
        b = EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 300, 100, 1,
                             {**FAST, "mesh_width": 8})
        groups, fallbacks = self.pack([a, b, a, b], 8)
        assert len(groups) == 2
        assert fallbacks == []

    def test_width_below_one_rejected(self):
        with pytest.raises(ConfigError):
            self.pack(matrix_specs(), 0)

    def test_empty_spec_list_rejected(self):
        # An empty grid reaching the packer is a caller bug (callers
        # with legitimately empty grids skip packing); a typed
        # ConfigError surfaces it as CLI exit 2 instead of silently
        # packing nothing.
        with pytest.raises(ConfigError, match="empty spec list"):
            self.pack([], 4)


# ----------------------------------------------------------------------
# Availability: typed error without numpy, CLI exit 2
# ----------------------------------------------------------------------


class TestAvailability:
    def test_scalar_always_available(self):
        assert "scalar" in available_backends()
        assert isinstance(get_engine("scalar"), ScalarEngine)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            get_engine("vectorized-someday")
        assert set(BACKEND_NAMES) == {"scalar", "batch"}

    def test_batch_without_numpy_raises_typed_error(self, monkeypatch):
        import repro.engine.batch as batch_mod
        monkeypatch.setattr(batch_mod, "np", None)
        assert not batch_available()
        assert available_backends() == ["scalar"]
        with pytest.raises(BackendUnavailableError):
            get_engine("batch")

    def test_cli_exits_2_without_numpy(self, monkeypatch, capsys):
        import repro.engine.batch as batch_mod
        from repro.cli import main
        monkeypatch.setattr(batch_mod, "np", None)
        rc = main(["sweep", "--apps", "x264", "--backend", "batch",
                   "--no-cache", "--cycles", "100", "--warmup", "50"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro[batch]" in err

    def test_perf_backend_flag_exits_2_without_numpy(self, monkeypatch,
                                                     capsys):
        import repro.engine.batch as batch_mod
        from repro.cli import main
        monkeypatch.setattr(batch_mod, "np", None)
        rc = main(["perf", "--backend", "batch", "--cycles", "200",
                   "--warmup", "100", "--repeats", "1"])
        assert rc == 2


# ----------------------------------------------------------------------
# Tentpole: bit-identity against the scalar engine
# ----------------------------------------------------------------------


@needs_numpy
class TestBatchIdentity:
    @pytest.fixture(scope="class")
    def scalar_results(self):
        return ScalarEngine().run_specs(matrix_specs())

    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_matrix_identity_at_width(self, width, scalar_results):
        engine = get_engine("batch", max_width=width)
        assert engine.run_specs(matrix_specs()) == scalar_results
        if width == 1:
            # Width 1 means every lane is a singleton: pure fallback.
            assert engine.stats.scalar_fallbacks == len(SCHEMES)
            assert engine.stats.lane_groups == 0
        else:
            assert engine.stats.lanes_packed >= 2

    def test_small_slices_interleave_identically(self, scalar_results):
        engine = get_engine("batch", max_width=8, slice_cycles=7)
        assert engine.run_specs(matrix_specs()) == scalar_results

    def test_mixed_windows_pack_identically(self):
        # Measurement windows no longer split lane groups: the driver
        # advances each lane to its own per-phase budget, so three runs
        # with staggered cycle counts share one group -- and still
        # reproduce the scalar summaries byte for byte.
        specs = [
            EngineSpec.build("x264", Scheme.SRAM_64TSB,
                             200 + 10 * i, 80, 1, FAST)
            for i in range(3)
        ]
        engine = get_engine("batch")
        results = engine.run_specs(specs)
        assert engine.stats.scalar_fallbacks == 0
        assert engine.stats.lane_groups == 1
        assert results == ScalarEngine().run_specs(specs)

    def test_mixed_topology_grid_falls_back_to_scalar(self):
        specs = [
            EngineSpec.build("x264", Scheme.SRAM_64TSB, 200, 80, 1,
                             {**FAST, "mesh_width": 4 + 2 * i})
            for i in range(3)
        ]
        engine = get_engine("batch")
        results = engine.run_specs(specs)
        assert engine.stats.scalar_fallbacks == 3
        assert engine.stats.lane_groups == 0
        assert results == ScalarEngine().run_specs(specs)

    def test_lane_group_tapes_shared(self):
        engine = get_engine("batch")
        engine.run_specs(matrix_specs())
        # 4 lanes x n_cores streams served from < that many masters.
        assert engine.stats.tape_streams_served > 0
        assert (engine.stats.tapes_created
                < engine.stats.tape_streams_served)


# ----------------------------------------------------------------------
# Sweep integration: pool, cache interchangeability, metadata, metrics
# ----------------------------------------------------------------------


@needs_numpy
class TestSweepIntegration:
    def test_batch_group_payload_pickles(self):
        grid = tiny_grid()
        payload = _simulate_batch_group(grid.point_specs(), 8)
        assert pickle.loads(pickle.dumps(payload)) == payload
        assert payload["telemetry"] is None
        rows = payload["rows"]
        assert all({"result", "wall_ms"} <= set(r) for r in rows)

    def test_pool_batch_matches_serial_scalar(self):
        grid = tiny_grid()
        scalar = run_sweep(grid, workers=1, cache=False)
        stats = SweepRunStats()
        batch = run_sweep(grid, workers=2, cache=False, backend="batch",
                          stats=stats)
        assert batch.fingerprint() == scalar.fingerprint()
        assert stats.backend == "batch"
        assert stats.lanes_packed == 4

    def test_backend_recorded_in_meta_not_fingerprint(self):
        grid = tiny_grid()
        scalar = run_sweep(grid, workers=1, cache=False)
        batch = run_sweep(grid, workers=1, cache=False, backend="batch")
        assert scalar.meta["backend"] == "scalar"
        assert batch.meta["backend"] == "batch"
        assert batch.meta["lanes_packed"] == 4
        assert batch.fingerprint() == scalar.fingerprint()

    @pytest.mark.parametrize("first,second",
                             [("batch", "scalar"), ("scalar", "batch")])
    def test_cache_entries_interchangeable(self, tmp_path, first, second):
        grid = tiny_grid()
        cold = SweepRunStats()
        a = run_sweep(grid, workers=1, cache=True, cache_dir=str(tmp_path),
                      backend=first, stats=cold)
        warm = SweepRunStats()
        b = run_sweep(grid, workers=1, cache=True, cache_dir=str(tmp_path),
                      backend=second, stats=warm)
        assert cold.cache_misses == 4 and warm.cache_hits == 4
        assert warm.simulated == 0
        assert a.fingerprint() == b.fingerprint()

    def test_batch_width_one_is_all_fallbacks(self):
        grid = tiny_grid()
        stats = SweepRunStats()
        sweep = run_sweep(grid, workers=1, cache=False, backend="batch",
                          batch_width=1, stats=stats)
        assert stats.scalar_fallbacks == 4
        assert stats.lane_groups == 0
        assert sweep.fingerprint() == run_sweep(
            grid, workers=1, cache=False).fingerprint()

    def test_backend_metrics_counters(self):
        registry = MetricsRegistry()
        specs = tiny_grid().point_specs()
        run_points(specs, workers=1, cache=False, backend="batch",
                   metrics=registry)
        assert registry.counter("sweep.backend.lanes").value == 4
        assert registry.counter("sweep.backend.groups").value == 1
        assert registry.counter("sweep.backend.scalar_fallback").value == 0
        assert "sweep.backend.width" in registry.names()
