"""Deterministic fault injection: CRC/retransmit, TSB degradation,
bank-port redirect, fault-config validation and fault-event schemas.

The determinism contract under test: a fixed ``FaultConfig.seed`` plus
a fixed workload seed makes a fault run byte-identical across repeats
*and* across the dense/event schedulers (corruption draws happen once
per link traversal in simulation order, which is itself bit-identical).
"""

from __future__ import annotations

import pytest

from repro.errors import FaultConfigError
from repro.noc.packet import Packet, PacketClass, reset_packet_ids
from repro.obs import (
    EV_FAULT_BANK, EV_FAULT_CRC, EV_FAULT_REDIRECT, EV_FAULT_RETRANSMIT,
    EV_FAULT_TSB, InMemorySink, Observability, validate_event,
)
from repro.resilience import FaultConfig, FaultPlane, crc16, packet_crc
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous
from tests.conftest import small_config


def _run(faults, scheduler="event", scheme=Scheme.STTRAM_4TSB,
         cycles=600, warmup=200, obs=None):
    reset_packet_ids()
    cfg = small_config(scheme)
    sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                       scheduler=scheduler, guard=True, faults=faults)
    if obs is not None:
        obs.attach(sim)
    result = sim.run(cycles, warmup=warmup)
    return sim, result


def _assert_identical(a, b, context):
    diffs = [k for k in a.__dict__ if a.__dict__[k] != b.__dict__[k]]
    assert not diffs, f"{context}: drift in {diffs}"


class TestCRCFaults:
    FAULTS = FaultConfig(seed=7, crc_rate=0.01)

    def test_detects_and_retransmits(self):
        sim, result = _run(self.FAULTS)
        report = sim.fault_plane.report()
        assert report["crc_detected"] > 0
        assert report["retransmits"] == report["crc_detected"]
        assert result.packets_delivered > 0
        # guards stayed green through every drop/retransmit
        assert sim.guard.violations == 0

    def test_two_runs_byte_identical(self):
        _, first = _run(self.FAULTS)
        _, second = _run(self.FAULTS)
        _assert_identical(first, second, "same fault seed")

    def test_dense_event_identical(self):
        _, event = _run(self.FAULTS, scheduler="event")
        _, dense = _run(self.FAULTS, scheduler="dense")
        _assert_identical(event, dense, "crc faults dense vs event")

    def test_different_seed_differs(self):
        sim_a, _ = _run(FaultConfig(seed=7, crc_rate=0.01))
        sim_b, _ = _run(FaultConfig(seed=8, crc_rate=0.01))
        # Not a hard guarantee per-field, but the draw sequences differ;
        # at this rate the corruption counts essentially never coincide
        # with identical victims.  Compare the full attempt maps.
        assert (
            sim_a.fault_plane.attempts != sim_b.fault_plane.attempts
            or sim_a.fault_plane.crc_detected
            != sim_b.fault_plane.crc_detected
        )

    def test_crc_events_validate(self):
        obs = Observability()
        sink = InMemorySink()
        obs.add_sink(sink)
        _run(self.FAULTS, obs=obs)
        crcs = sink.by_kind(EV_FAULT_CRC)
        rets = sink.by_kind(EV_FAULT_RETRANSMIT)
        assert crcs and len(rets) == len(crcs)
        for ev in crcs + rets:
            errors = validate_event(
                {"cycle": ev.cycle, "kind": ev.kind, **ev.data})
            assert not errors, errors

    def test_absurd_rate_trips_safety_valve(self):
        from repro.errors import FaultError

        faults = FaultConfig(seed=7, crc_rate=0.9, max_retransmits=3)
        with pytest.raises(FaultError):
            _run(faults, cycles=2_000, warmup=0)


class TestCRCPrimitives:
    def test_crc16_known_vector(self):
        # CRC-16/CCITT-FALSE("123456789") == 0x29B1
        assert crc16(b"123456789") == 0x29B1

    def test_packet_crc_covers_header_fields(self):
        a = Packet(PacketClass.REQUEST, 0, 17, 1, inject_cycle=0, bank=3)
        b = Packet(PacketClass.REQUEST, 0, 17, 1, inject_cycle=0, bank=4)
        assert packet_crc(a) != packet_crc(b)
        assert packet_crc(a) == packet_crc(a)


class TestTSBFailure:
    FAULTS = FaultConfig(seed=7, tsb_failures=((0, 250),))

    def test_region_degrades_onto_donor(self):
        sim, result = _run(self.FAULTS)
        report = sim.fault_plane.report()
        assert report["tsb_remapped"], "region 0 must be remapped"
        donor = report["tsb_remapped"][0]
        region_map = sim.region_map
        assert region_map.failed_regions == {0: donor}
        # every request via for region-0 banks now targets the donor TSB
        region = region_map.regions[0]
        donor_region = region_map.regions[donor]
        assert region.tsb_core_node == donor_region.tsb_core_node
        for bank in region.banks:
            assert region_map.request_via(bank) == \
                donor_region.tsb_core_node
        assert result.packets_delivered > 0
        assert sim.guard.violations == 0

    def test_inflight_requests_rerouted(self):
        sim, _ = _run(self.FAULTS)
        assert sim.fault_plane.packets_rerouted >= 0  # counter exists
        # The TSB event carries the reroute count.
        obs = Observability()
        sink = InMemorySink()
        obs.add_sink(sink)
        sim2, _ = _run(self.FAULTS, obs=obs)
        events = sink.by_kind(EV_FAULT_TSB)
        assert len(events) == 1
        assert events[0].data["region"] == 0
        assert events[0].data["rerouted"] == \
            sim2.fault_plane.packets_rerouted
        for ev in events:
            assert not validate_event(
                {"cycle": ev.cycle, "kind": ev.kind, **ev.data})

    def test_deterministic_across_schedulers(self):
        _, event = _run(self.FAULTS, scheduler="event")
        _, dense = _run(self.FAULTS, scheduler="dense")
        _assert_identical(event, dense, "tsb failure dense vs event")
        _, repeat = _run(self.FAULTS, scheduler="event")
        _assert_identical(event, repeat, "tsb failure repeat")

    def test_estimator_scheme_survives_remap(self):
        sim, result = _run(self.FAULTS, scheme=Scheme.STTRAM_4TSB_WB)
        assert sim.region_map.failed_regions
        assert result.packets_delivered > 0
        assert sim.guard.violations == 0


class TestBankPortFailure:
    FAULTS = FaultConfig(seed=7, bank_port_failures=((2, 250, None),),
                         bank_redirect_timeout=16)

    def test_redirects_around_dead_array(self):
        obs = Observability()
        sink = InMemorySink()
        obs.add_sink(sink)
        sim, result = _run(self.FAULTS, cycles=1_500, warmup=200, obs=obs)
        report = sim.fault_plane.report()
        assert report["bank_ports_failed"] == 1
        redirected = (
            report["bank_redirected_reads"]
            + report["bank_redirected_writes"]
            + report["bank_redirected_fills"]
        )
        assert redirected > 0
        assert sim.banks[2].port_failed_until > 0
        assert result.packets_delivered > 0
        assert sim.guard.violations == 0
        fails = sink.by_kind(EV_FAULT_BANK)
        redirects = sink.by_kind(EV_FAULT_REDIRECT)
        assert len(fails) == 1 and len(redirects) == redirected
        for ev in fails + redirects:
            assert not validate_event(
                {"cycle": ev.cycle, "kind": ev.kind, **ev.data})

    def test_port_heals_after_duration(self):
        faults = FaultConfig(seed=7,
                             bank_port_failures=((2, 250, 200),),
                             bank_redirect_timeout=16)
        sim, result = _run(faults, cycles=1_500, warmup=200)
        bank = sim.banks[2]
        # After healing the bank serves from the array again.
        assert sim.cycle >= bank.port_failed_until
        assert bank.stats.reads + bank.stats.writes + bank.stats.fills > 0
        assert sim.guard.violations == 0

    def test_deterministic_across_schedulers(self):
        _, event = _run(self.FAULTS, scheduler="event",
                        cycles=1_500, warmup=200)
        _, dense = _run(self.FAULTS, scheduler="dense",
                        cycles=1_500, warmup=200)
        _assert_identical(event, dense, "bank fault dense vs event")


class TestFaultConfigValidation:
    CFG = make_config(Scheme.STTRAM_4TSB, mesh_width=4,
                      capacity_scale=1 / 64)

    def _reject(self, **kwargs):
        with pytest.raises(FaultConfigError):
            FaultConfig(**kwargs).validate(self.CFG)

    def test_rates_and_knobs(self):
        self._reject(crc_rate=1.0)
        self._reject(crc_rate=-0.1)
        self._reject(retransmit_base_backoff=0, crc_rate=0.1)
        self._reject(bank_redirect_timeout=0)
        FaultConfig(crc_rate=0.5).validate(self.CFG)  # ok

    def test_tsb_faults_need_regions(self):
        sram = make_config(Scheme.SRAM_64TSB, mesh_width=4,
                           capacity_scale=1 / 64)
        with pytest.raises(FaultConfigError):
            FaultConfig(tsb_failures=((0, 10),)).validate(sram)

    def test_tsb_fault_bounds(self):
        self._reject(tsb_failures=((9, 10),))
        self._reject(tsb_failures=((0, -5),))
        n = self.CFG.n_region_tsbs
        everything = tuple((r, 10) for r in range(n))
        self._reject(tsb_failures=everything)  # no healthy donor left

    def test_bank_fault_bounds(self):
        self._reject(bank_port_failures=((99, 10, None),))
        self._reject(bank_port_failures=((0, -1, None),))
        self._reject(bank_port_failures=((0, 10, 0),))

    def test_default_config_injects_nothing(self):
        faults = FaultConfig()
        assert not faults.any_faults()
        reset_packet_ids()
        cfg = small_config(Scheme.STTRAM_4TSB)
        sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                           faults=faults)
        assert sim.fault_plane is None  # no hooks installed

    def test_plane_validates_at_bind(self):
        reset_packet_ids()
        cfg = small_config(Scheme.STTRAM_4TSB)
        sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5))
        with pytest.raises(FaultConfigError):
            FaultPlane(sim, FaultConfig(crc_rate=2.0))


class TestFaultsAreInert:
    """A faults-off run with the fault plane kwargs present must be
    fingerprint-identical to the bare simulator (no hook overhead
    leaks into simulated state)."""

    @pytest.mark.parametrize("scheduler", ["dense", "event"])
    def test_none_faults_identical(self, scheduler):
        reset_packet_ids()
        cfg = small_config(Scheme.STTRAM_4TSB_WB)
        sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                           scheduler=scheduler)
        bare = sim.run(400, warmup=100)
        reset_packet_ids()
        cfg = small_config(Scheme.STTRAM_4TSB_WB)
        sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                           scheduler=scheduler, guard=True,
                           faults=FaultConfig())
        armed = sim.run(400, warmup=100)
        _assert_identical(bare, armed, f"faults-off {scheduler}")


class TestChaosCLI:
    @pytest.mark.parametrize("fault", ["crc", "tsb", "bank-port"])
    def test_chaos_smoke(self, fault, capsys):
        from repro.cli import main

        rc = main([
            "chaos", "--app", "sclust", "--fault", fault,
            "--mesh-width", "4", "--capacity-scale", "0.015625",
            "--cycles", "600", "--warmup", "200", "--json",
        ])
        assert rc == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["guard"]["violations"] == 0
        assert payload["fault"] == fault
