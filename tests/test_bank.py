"""Tests for the L2 bank controller timing and protocol behaviour."""

import pytest

from repro.cache.bank import BankController
from repro.cache.messages import MemMsg, Transaction
from repro.noc.packet import Packet, PacketClass
from repro.sim.config import (
    Scheme, SystemConfig, make_config, with_write_buffer,
)


class Harness:
    """Drives one BankController with a recording send function."""

    def __init__(self, config, bank=0):
        self.sent = []
        self.config = config
        self.bank = BankController(
            bank, node=config.nodes_per_layer + bank, config=config,
            send=self._send,
            mc_node_for_block=lambda b: config.nodes_per_layer,
            core_node_for=lambda c: c,
        )
        self.now = 0

    def _send(self, klass, src, dst, flits, is_write, bank, payload, now):
        self.sent.append((klass, dst, flits, is_write, payload, now))

    def deliver(self, kind, payload):
        if kind == "request":
            pkt = Packet(PacketClass.REQUEST, 0, self.bank.node, 1,
                         inject_cycle=self.now, payload=payload)
        else:
            pkt = Packet(PacketClass.MEMORY, 0, self.bank.node, 8,
                         inject_cycle=self.now, payload=payload)
        self.bank.on_packet(pkt, self.now)

    def tick(self, cycles=1):
        for _ in range(cycles):
            self.bank.step(self.now)
            self.now += 1

    def sent_of(self, klass):
        return [s for s in self.sent if s[0] is klass]


def read_txn(core=0, block=0, store=False):
    return Transaction(core=core, block=block, is_store=store,
                       kind="read", issue_cycle=0)


def write_txn(core=0, block=0, kind="store"):
    return Transaction(core=core, block=block, is_store=True,
                       kind=kind, issue_cycle=0)


@pytest.fixture
def stt():
    return Harness(make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                               capacity_scale=1 / 256))


@pytest.fixture
def sram():
    return Harness(make_config(Scheme.SRAM_64TSB, mesh_width=4,
                               capacity_scale=1 / 256))


class TestReadTiming:
    def test_l2_hit_read_responds_after_read_latency(self, stt):
        stt.bank.array.fill(0)
        stt.deliver("request", read_txn(block=0))
        stt.tick(10)
        responses = stt.sent_of(PacketClass.RESPONSE)
        assert len(responses) == 1
        # Service starts at cycle 0, takes 3 cycles, response at >= 3.
        assert responses[0][5] >= stt.config.l2_read_cycles
        assert stt.bank.stats.l2_hits == 1

    def test_l2_miss_fetches_from_memory(self, stt):
        stt.deliver("request", read_txn(block=0))
        stt.tick(10)
        mems = stt.sent_of(PacketClass.MEMORY)
        assert len(mems) == 1
        assert not mems[0][3]  # read, not write
        assert stt.bank.stats.l2_misses == 1
        assert not stt.sent_of(PacketClass.RESPONSE)

    def test_fill_completes_waiting_reads(self, stt):
        txn = read_txn(block=0)
        stt.deliver("request", txn)
        stt.tick(10)
        msg = MemMsg(block=0, is_write=False, bank=0, response=True)
        stt.deliver("fill", msg)
        stt.tick(40)
        responses = stt.sent_of(PacketClass.RESPONSE)
        assert len(responses) == 1
        assert responses[0][4] is txn
        assert stt.bank.array.contains(0)

    def test_cross_core_miss_coalescing(self, stt):
        stt.deliver("request", read_txn(core=1, block=0))
        stt.deliver("request", read_txn(core=2, block=0))
        stt.tick(15)
        assert len(stt.sent_of(PacketClass.MEMORY)) == 1
        stt.deliver("fill", MemMsg(block=0, is_write=False, bank=0,
                                   response=True))
        stt.tick(40)
        assert len(stt.sent_of(PacketClass.RESPONSE)) == 2


class TestWriteTiming:
    def test_sttram_write_occupies_33_cycles(self, stt):
        stt.bank.array.fill(0)
        stt.deliver("request", write_txn(block=0))
        stt.tick(1)
        assert stt.bank.busy_until == stt.config.l2_write_cycles
        assert stt.config.l2_write_cycles == 33

    def test_sram_write_occupies_3_cycles(self, sram):
        sram.bank.array.fill(0)
        sram.deliver("request", write_txn(block=0))
        sram.tick(1)
        assert sram.bank.busy_until == 3

    def test_write_marks_block_dirty(self, stt):
        stt.bank.array.fill(0)
        stt.deliver("request", write_txn(block=0))
        stt.tick(40)
        assert stt.bank.array.is_dirty(0)

    def test_write_allocates_on_miss_without_memory_fetch(self, stt):
        stt.deliver("request", write_txn(block=0))
        stt.tick(40)
        assert stt.bank.array.contains(0)
        assert stt.bank.array.is_dirty(0)
        assert not stt.sent_of(PacketClass.MEMORY)

    def test_dirty_victim_written_back_to_memory(self, stt):
        # Fill one set completely with dirty blocks, then overflow it.
        ways = stt.config.l2_associativity
        n_banks = stt.config.n_banks
        stride = stt.bank.array.n_sets * n_banks
        blocks = [i * stride for i in range(ways + 1)]
        for b in blocks[:-1]:
            stt.deliver("request", write_txn(block=b))
            stt.tick(40)
        stt.deliver("request", write_txn(block=blocks[-1]))
        stt.tick(40)
        mem_writes = [m for m in stt.sent_of(PacketClass.MEMORY) if m[3]]
        assert len(mem_writes) == 1

    def test_queued_requests_wait_for_write(self, stt):
        stt.bank.array.fill(0)
        stt.bank.array.fill(stt.config.n_banks)
        stt.deliver("request", write_txn(block=0))
        stt.deliver("request", read_txn(block=stt.config.n_banks))
        stt.tick(50)
        responses = stt.sent_of(PacketClass.RESPONSE)
        assert len(responses) == 1
        # The read had to wait behind the 33-cycle write.
        assert responses[0][5] >= 33 + stt.config.l2_read_cycles
        assert stt.bank.stats.queue_wait_sum >= 32


class TestFlowControl:
    def test_can_accept_respects_queue_limit(self, stt):
        limit = stt.config.bank_queue_entries
        pkt = Packet(PacketClass.REQUEST, 0, stt.bank.node, 1,
                     inject_cycle=0, payload=read_txn())
        for _ in range(limit):
            assert stt.bank.can_accept(pkt)
            stt.bank.on_packet(pkt, 0)
        assert not stt.bank.can_accept(pkt)

    def test_coherence_always_accepted(self, stt):
        coh = Packet(PacketClass.COHERENCE, 0, stt.bank.node, 1,
                     inject_cycle=0)
        for _ in range(stt.config.bank_queue_entries + 2):
            assert stt.bank.can_accept(coh)


class TestWriteBufferIntegration:
    @pytest.fixture
    def buffered(self):
        cfg = with_write_buffer(make_config(
            Scheme.STTRAM_64TSB, mesh_width=4, capacity_scale=1 / 256))
        return Harness(cfg)

    def test_write_absorbed_at_sram_speed(self, buffered):
        buffered.bank.array.fill(0)
        buffered.deliver("request", write_txn(block=0))
        buffered.tick(1)
        # 1-cycle detect + 3-cycle SRAM write, not 33.
        assert buffered.bank.busy_until == 4

    def test_detect_cycle_on_read_critical_path(self, buffered):
        buffered.bank.array.fill(0)
        buffered.deliver("request", read_txn(block=0))
        buffered.tick(1)
        assert buffered.bank.busy_until == 1 + 3

    def test_drain_when_idle(self, buffered):
        buffered.bank.array.fill(0)
        buffered.deliver("request", write_txn(block=0))
        buffered.tick(80)
        assert buffered.bank.write_buffer.drains_completed == 1
        assert buffered.bank.stats.drains == 1

    def test_read_preempts_drain(self, buffered):
        buffered.bank.array.fill(0)
        buffered.bank.array.fill(buffered.config.n_banks)
        buffered.deliver("request", write_txn(block=0))
        buffered.tick(6)  # write absorbed; drain starts
        assert buffered.bank.write_buffer.draining is not None
        buffered.deliver(
            "request", read_txn(block=buffered.config.n_banks))
        buffered.tick(10)
        assert buffered.bank.write_buffer.preemptions == 1
        assert len(buffered.sent_of(PacketClass.RESPONSE)) == 1
