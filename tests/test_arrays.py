"""Tests for the set-associative cache arrays, with a hypothesis-backed
LRU reference model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.arrays import CacheArray
from repro.errors import ConfigError


def small_array(sets=4, ways=2, stride=1):
    return CacheArray(sets * ways * 64, ways, 64, index_stride=stride)


class TestBasics:
    def test_geometry(self):
        a = CacheArray(1 << 20, 16, 128)
        assert a.n_blocks == 8192
        assert a.n_sets == 512

    def test_undersized_capacity_rejected(self):
        with pytest.raises(ConfigError):
            CacheArray(64, 16, 128)

    def test_miss_then_hit(self):
        a = small_array()
        assert not a.lookup(10)
        a.fill(10)
        assert a.lookup(10)
        assert a.hits == 1 and a.misses == 1

    def test_contains_has_no_side_effects(self):
        a = small_array()
        a.fill(10)
        assert a.contains(10)
        assert a.hits == 0 and a.misses == 0

    def test_lru_eviction_order(self):
        a = small_array(sets=1, ways=2)
        a.fill(0)
        a.fill(1)
        a.lookup(0)          # 0 becomes MRU
        victim = a.fill(2)   # evicts 1
        assert victim == (1, False)
        assert a.contains(0) and a.contains(2) and not a.contains(1)

    def test_dirty_tracking(self):
        a = small_array()
        a.fill(5)
        assert not a.is_dirty(5)
        a.mark_dirty(5)
        assert a.is_dirty(5)
        a.mark_clean(5)
        assert not a.is_dirty(5)

    def test_dirty_eviction_reported(self):
        a = small_array(sets=1, ways=1)
        a.fill(0, dirty=True)
        victim = a.fill(1)
        assert victim == (0, True)
        assert a.dirty_evictions == 1

    def test_refill_merges_dirty(self):
        a = small_array()
        a.fill(3, dirty=True)
        assert a.fill(3, dirty=False) is None
        assert a.is_dirty(3)

    def test_invalidate(self):
        a = small_array()
        a.fill(7, dirty=True)
        assert a.invalidate(7) == (True, True)
        assert a.invalidate(7) == (False, False)
        assert not a.contains(7)

    def test_hit_rate(self):
        a = small_array()
        a.fill(1)
        a.lookup(1)
        a.lookup(2)
        assert a.hit_rate() == 0.5


class TestIndexStride:
    def test_bank_interleaved_blocks_spread_over_sets(self):
        # Blocks arriving at one bank of a 64-bank block-interleaved L2
        # satisfy block % 64 == bank; without the stride they would
        # alias into n_sets/64 sets.
        a = CacheArray(64 * 16 * 128, 16, 128, index_stride=64)
        used_sets = set()
        for i in range(64):
            block = i * 64 + 5  # all map to bank 5
            a.fill(block)
            used_sets.add((block // 64) % a.n_sets)
        assert len(used_sets) == a.n_sets
        assert a.occupancy() == 64

    def test_stride_one_aliases(self):
        a = CacheArray(64 * 16 * 128, 16, 128, index_stride=1)
        for i in range(64):
            a.fill(i * 64 + 5)
        # Only n_sets/gcd... with stride 1 everything lands in one set
        # here (64 % 64 == 0 pattern), forcing evictions.
        assert a.occupancy() < 64


class ReferenceLRU:
    """Dict-of-lists reference model."""

    def __init__(self, n_sets, ways, stride):
        self.n_sets, self.ways, self.stride = n_sets, ways, stride
        self.sets = {i: [] for i in range(n_sets)}

    def index(self, block):
        return (block // self.stride) % self.n_sets

    def fill(self, block):
        s = self.sets[self.index(block)]
        victim = None
        if block in s:
            s.remove(block)
        elif len(s) >= self.ways:
            victim = s.pop(0)
        s.append(block)
        return victim

    def lookup(self, block):
        s = self.sets[self.index(block)]
        if block in s:
            s.remove(block)
            s.append(block)
            return True
        return False


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 200)), max_size=300),
    ways=st.integers(1, 4),
    stride=st.sampled_from([1, 4, 16]),
)
def test_property_matches_reference_lru(ops, ways, stride):
    n_sets = 4
    array = CacheArray(n_sets * ways * 64, ways, 64, index_stride=stride)
    ref = ReferenceLRU(n_sets, ways, stride)
    for is_fill, block in ops:
        if is_fill:
            got = array.fill(block)
            want = ref.fill(block)
            assert (got[0] if got else None) == want
        else:
            assert array.lookup(block) == ref.lookup(block)
    assert array.occupancy() == sum(len(s) for s in ref.sets.values())
    assert sorted(array.resident_blocks()) == sorted(
        b for s in ref.sets.values() for b in s)


@settings(max_examples=30, deadline=None)
@given(blocks=st.lists(st.integers(0, 10_000), max_size=500))
def test_property_occupancy_never_exceeds_capacity(blocks):
    array = CacheArray(8 * 2 * 64, 2, 64)
    for b in blocks:
        array.fill(b)
    assert array.occupancy() <= array.n_blocks
