"""In-situ behaviour of the estimation feedback loops.

These run the full simulator and verify the dynamic properties the
schemes rely on: WB timestamps actually round-trip and produce non-zero
congestion estimates under load, the RCA side-band respects its update
period, and the busy tracker's predictions line up with real bank
occupancy.
"""

import pytest

from repro.core.estimators import (
    RegionalCongestionEstimator, WindowEstimator,
)
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous

FAST = dict(mesh_width=4, capacity_scale=1 / 64)


def run_sim(scheme, app="tpcc", cycles=900, **overrides):
    params = dict(FAST)
    params.update(overrides)
    cfg = make_config(scheme, **params)
    sim = CMPSimulator(cfg, homogeneous(app, cfg))
    for _ in range(cycles):
        sim.step()
    return sim


class TestWindowFeedback:
    def test_estimates_populate_under_load(self):
        sim = run_sim(Scheme.STTRAM_4TSB_WB, wb_sample_period=5)
        est: WindowEstimator = sim.estimator
        assert est.tags_sent > 0
        assert est.acks_received > 0
        # At least one parent/child pair carries a live estimate entry.
        assert est._estimates

    def test_ack_traffic_is_bounded_by_sample_period(self):
        frequent = run_sim(Scheme.STTRAM_4TSB_WB, wb_sample_period=2)
        sparse = run_sim(Scheme.STTRAM_4TSB_WB, wb_sample_period=100)
        assert frequent.estimator.tags_sent >= sparse.estimator.tags_sent

    def test_tracker_predictions_follow_real_busy_banks(self):
        sim = run_sim(Scheme.STTRAM_4TSB_WB)
        tracker = sim.tracker
        # Predictions exist for managed children that received writes.
        assert tracker.busy_until
        # And every predicted bank id is a real bank.
        assert all(0 <= b < sim.config.n_banks
                   for b in tracker.busy_until)

    def test_delays_happen_only_at_parents(self):
        sim = run_sim(Scheme.STTRAM_4TSB_WB)
        assert sim.arbiter.packets_delayed > 0
        # The RR fallback path is exercised too (non-parent routers).
        assert sim.arbiter._pointers


class TestRCAFeedback:
    def test_aggregates_cover_the_mesh(self):
        sim = run_sim(Scheme.STTRAM_4TSB_RCA)
        est: RegionalCongestionEstimator = sim.estimator
        assert len(est.agg) == sim.topo.n_nodes

    def test_update_period_throttles_work(self):
        fast = run_sim(Scheme.STTRAM_4TSB_RCA, rca_update_period=1,
                       cycles=300)
        slow = run_sim(Scheme.STTRAM_4TSB_RCA, rca_update_period=64,
                       cycles=300)
        # Both still produce estimates.
        assert fast.estimator.agg and slow.estimator.agg

    def test_estimates_stay_in_8_bits(self):
        sim = run_sim(Scheme.STTRAM_4TSB_RCA)
        est = sim.estimator
        assert all(0 <= v <= 255 for v in est.agg.values())
        rm = sim.region_map
        for parent in rm.parent_nodes():
            for child in rm.children_of[parent]:
                value = est.congestion_estimate(parent, child, sim.cycle)
                assert 0 <= value <= 255


class TestSchemeSeparation:
    def test_ss_never_estimates_congestion(self):
        sim = run_sim(Scheme.STTRAM_4TSB_SS)
        rm = sim.region_map
        for parent in rm.parent_nodes():
            for child in rm.children_of[parent]:
                assert sim.estimator.congestion_estimate(
                    parent, child, sim.cycle) == 0

    def test_wb_and_ss_charge_different_busy_windows(self):
        ss = run_sim(Scheme.STTRAM_4TSB_SS)
        wb = run_sim(Scheme.STTRAM_4TSB_WB)
        # Both track busy banks; the WB run has live congestion input.
        assert ss.tracker.busy_until and wb.tracker.busy_until

    def test_plain_4tsb_has_no_estimator(self):
        sim = run_sim(Scheme.STTRAM_4TSB)
        assert sim.estimator is None
        assert sim.tracker is None
