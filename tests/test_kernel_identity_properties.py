"""Field-level identity properties of the full-cycle kernel.

The batch backend is certified against summary byte-identity; these
tests assert the stronger property the full-cycle kernel
(:mod:`repro.engine.kernels`) is built to preserve: the *internal*
instrumentation -- every ``CoreStats`` field of every core and every
bank's ``service_intervals`` schedule -- is equal field-by-field to a
scalar reference run, across the four paper schemes, randomized
windows, and lane widths {1, 3, 8, 16}.  Width 1 exercises the
all-scalar-fallback path (the packer sends singleton chunks to the
scalar engine), so only summary identity applies there.

The storm test forces *every* lane of a group off the common path
mid-run (``sim.force_scalar_until`` on all lanes -- a dense-mask
storm), then asserts both identity and that each lane re-entered the
kernel after its scalar interlude.
"""

import random

import pytest

pytest.importorskip("numpy")

from repro.cache.bank import BankStats
from repro.cpu.core import CoreStats
from repro.engine.base import ScalarEngine
from repro.engine.batch import BatchEngine
from repro.engine.spec import EngineSpec
from repro.obs.telemetry import SpanRecorder
from repro.sim.config import Scheme, make_config
from repro.sim.experiment import app_factory
from repro.sim.simulator import CMPSimulator

FAST = {"mesh_width": 4, "capacity_scale": 1 / 64}
SCHEMES = (Scheme.SRAM_64TSB, Scheme.STTRAM_4TSB,
           Scheme.STTRAM_4TSB_SS, Scheme.STTRAM_4TSB_WB)

CORE_FIELDS = CoreStats.__slots__
BANK_FIELDS = BankStats.__slots__


class CapturingEngine(BatchEngine):
    """BatchEngine that keeps every lane simulator it builds, so the
    tests can inspect internal stats after the group finishes."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.captured = []

    def _build_lane(self, spec, tape_pool):
        sim, scope = super()._build_lane(spec, tape_pool)
        self.captured.append((spec, sim))
        return sim, scope


class StormEngine(BatchEngine):
    """Forces EVERY lane off the common path mid-run: the dense-mask
    storm case, where the whole group drops to scalar slices at once
    and must re-enter the kernel afterwards."""

    def __init__(self, until: int, **kwargs):
        super().__init__(**kwargs)
        self._until = until

    def _build_lane(self, spec, tape_pool):
        sim, scope = super()._build_lane(spec, tape_pool)
        sim.force_scalar_until = self._until
        return sim, scope


def _scalar_reference(spec):
    """One scalar run built exactly like a batch lane, minus the tape;
    returns the live simulator plus its summary dict."""
    from repro.sim import reset_state

    reset_state()
    config = make_config(spec.scheme, **spec.overrides_dict())
    workload = app_factory(spec.app, seed=spec.seed)(config)
    sim = CMPSimulator(config, workload)
    summary = sim.run(spec.cycles, warmup=spec.warmup).to_dict()
    return sim, summary


def _assert_stats_equal(batch_sim, ref_sim, label):
    for cid, (bc, rc) in enumerate(zip(batch_sim.cores, ref_sim.cores)):
        for name in CORE_FIELDS:
            assert getattr(bc.stats, name) == getattr(rc.stats, name), (
                f"{label}: core {cid} CoreStats.{name} diverged"
            )
        assert bc.mshrs.full_stalls == rc.mshrs.full_stalls, (
            f"{label}: core {cid} MSHR full_stalls diverged"
        )
    for b, (bb, rb) in enumerate(zip(batch_sim.banks, ref_sim.banks)):
        assert bb.stats.service_intervals == rb.stats.service_intervals, (
            f"{label}: bank {b} service_intervals diverged"
        )


@pytest.mark.parametrize("width", [1, 3, 8, 16])
@pytest.mark.parametrize("seed", [3, 11])
def test_field_level_identity_across_schemes(width, seed):
    rng = random.Random(seed * 1000 + width)
    specs = [
        EngineSpec.build(
            "tpcc", scheme,
            rng.randrange(150, 300),
            2 * rng.randrange(25, 50) + 1,  # odd warm-up
            seed, FAST,
        )
        for scheme in SCHEMES
    ]

    engine = CapturingEngine(max_width=width)
    results = engine.run_specs(list(specs))

    refs = [_scalar_reference(spec) for spec in specs]
    assert results == [summary for _, summary in refs]

    if width == 1:
        # Singleton chunks all fall back to the scalar engine: no
        # lanes are built, and summary identity above is the whole
        # contract for this width.
        assert engine.captured == []
        assert engine.stats.scalar_fallbacks == len(specs)
        return

    assert len(engine.captured) == len(specs)
    by_spec = {id(spec): sim for spec, sim in engine.captured}
    for spec, (ref_sim, _summary) in zip(specs, refs):
        batch_sim = by_spec[id(spec)]
        _assert_stats_equal(
            batch_sim, ref_sim,
            f"w{width} seed{seed} {spec.scheme.value}",
        )


@pytest.mark.parametrize("seed", [5, 9])
def test_dense_mask_storm_reenters_every_lane(seed):
    rng = random.Random(seed)
    specs = [
        EngineSpec.build(
            "tpcc", scheme,
            rng.randrange(200, 320),
            2 * rng.randrange(30, 55) + 1,
            1, FAST,
        )
        for scheme in SCHEMES
    ]
    until = rng.randrange(60, 120)  # inside every lane's total budget

    engine = StormEngine(until, slice_cycles=32)
    recorder = SpanRecorder(worker=0)
    engine.recorder = recorder
    results = engine.run_group(list(specs))

    assert results == ScalarEngine().run_specs(list(specs))
    assert engine.stats.kernel_lanes == len(specs)

    for lane in range(len(specs)):
        syncs = [i for i, s in enumerate(recorder.spans)
                 if s["name"] == "batch.scalar_sync"
                 and s["args"]["lane"] == lane]
        steps = [i for i, s in enumerate(recorder.spans)
                 if s["name"] == "batch.kernel_step"
                 and s["args"]["lane"] == lane]
        assert syncs, f"lane {lane} never took a scalar-sync slice"
        assert steps, f"lane {lane} never took a kernel slice"
        # Re-entry: after the storm window closes every lane returns
        # to the kernel rather than finishing on the scalar machine.
        assert max(steps) > max(syncs), f"lane {lane} never re-entered"
