"""Divergence and re-sync properties of the vectorized lockstep kernels.

The batch backend's divergence protocol (see
:mod:`repro.engine.kernels`): lanes that can never take the common
path (e.g. a fault plane is attached) do not attach a kernel at all; a
lane that must *temporarily* leave the common path
(``sim.force_scalar_until``) is suspended, advanced by the scalar
machine, and re-synchronized on resume.  These tests force both paths
-- with randomized odd warm-ups, staggered measurement windows (early
lane termination) and mid-run divergence bounds -- and assert the one
property everything is certified against: the summaries stay
byte-identical to the scalar engine, and the diverged lane actually
re-enters the kernel (``batch.kernel_step`` spans after its last
``batch.scalar_sync``).
"""

import random

import pytest

pytest.importorskip("numpy")

from repro.engine.base import ScalarEngine
from repro.engine.batch import BatchEngine
from repro.engine.kernels import attach_group, lane_vectorizable
from repro.engine.spec import EngineSpec
from repro.obs.telemetry import SpanRecorder
from repro.resilience import FaultConfig
from repro.sim.config import Scheme, make_config
from repro.sim.experiment import app_factory
from repro.sim.simulator import CMPSimulator

FAST = {"mesh_width": 4, "capacity_scale": 1 / 64}
SCHEMES = (Scheme.SRAM_64TSB, Scheme.STTRAM_4TSB,
           Scheme.STTRAM_4TSB_SS, Scheme.STTRAM_4TSB_WB)


class DivergingEngine(BatchEngine):
    """BatchEngine that forces one lane off the common path mid-run.

    ``force_scalar_until`` is the production divergence seam; setting
    it at lane build makes the lockstep driver suspend that lane's
    kernel and advance it with the scalar machine until the bound,
    then resume -- exactly what a transient divergence does.
    """

    def __init__(self, diverge_lane: int, until: int, **kwargs):
        super().__init__(**kwargs)
        self._diverge_lane = diverge_lane
        self._until = until
        self._built = 0

    def _build_lane(self, spec, tape_pool):
        sim, scope = super()._build_lane(spec, tape_pool)
        if self._built == self._diverge_lane:
            sim.force_scalar_until = self._until
        self._built += 1
        return sim, scope


def _scalar_reference(spec, faults=None):
    """One scalar run built exactly like a batch lane, minus the tape."""
    from repro.sim import reset_state

    reset_state()
    config = make_config(spec.scheme, **spec.overrides_dict())
    workload = app_factory(spec.app, seed=spec.seed)(config)
    sim = CMPSimulator(config, workload, faults=faults)
    return sim.run(spec.cycles, warmup=spec.warmup).to_dict()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_diverged_lane_resyncs_identically(seed):
    rng = random.Random(seed)
    schemes = rng.sample(SCHEMES, 3)
    warmups = [2 * rng.randrange(30, 60) + 1 for _ in schemes]  # odd
    cycles = [rng.randrange(180, 320),
              rng.randrange(40, 80),  # lane 1 terminates early
              rng.randrange(180, 320)]
    specs = [
        EngineSpec.build("tpcc", scheme, c, w, 1, FAST)
        for scheme, c, w in zip(schemes, cycles, warmups)
    ]
    until = rng.randrange(50, 150)  # inside every lane's total budget

    engine = DivergingEngine(0, until, slice_cycles=32)
    recorder = SpanRecorder(worker=0)
    engine.recorder = recorder
    results = engine.run_group(list(specs))

    assert results == ScalarEngine().run_specs(list(specs))
    assert engine.stats.kernel_lanes == len(specs)

    syncs = [i for i, s in enumerate(recorder.spans)
             if s["name"] == "batch.scalar_sync"
             and s["args"]["lane"] == 0]
    steps = [i for i, s in enumerate(recorder.spans)
             if s["name"] == "batch.kernel_step"
             and s["args"]["lane"] == 0]
    assert syncs, "diverged lane never took a scalar-sync slice"
    assert steps, "diverged lane never took a kernel slice"
    # Re-entry: the lane returns to the kernel after the divergence
    # window closes, rather than staying scalar for the rest of the run.
    assert max(steps) > max(syncs)


def test_fault_lane_never_attaches_kernel():
    spec = EngineSpec.build("tpcc", Scheme.STTRAM_4TSB_WB, 200, 80, 1,
                            FAST)
    faults = FaultConfig(seed=7, crc_rate=0.01)

    def build(with_faults):
        from repro.sim import reset_state

        reset_state()
        config = make_config(spec.scheme, **spec.overrides_dict())
        workload = app_factory(spec.app, seed=spec.seed)(config)
        return CMPSimulator(config, workload,
                            faults=faults if with_faults else None)

    clean, faulted = build(False), build(True)
    assert lane_vectorizable(clean) is None
    assert lane_vectorizable(faulted) == "fault plane active"
    kernels = attach_group([clean, faulted])
    assert kernels[0] is not None
    assert kernels[1] is None


def test_fault_lane_runs_scalar_inside_group_identically():
    """A group mixing kernel lanes with a permanently scalar (faulted)
    lane still reproduces each lane's scalar summary byte for byte."""
    specs = [
        EngineSpec.build("tpcc", Scheme.SRAM_64TSB, 250, 99, 1, FAST),
        EngineSpec.build("tpcc", Scheme.STTRAM_4TSB_WB, 250, 99, 1,
                         FAST),
        EngineSpec.build("tpcc", Scheme.STTRAM_4TSB, 250, 99, 1, FAST),
    ]
    faults = FaultConfig(seed=7, crc_rate=0.01)

    class FaultingEngine(BatchEngine):
        def __init__(self, fault_lane, **kwargs):
            super().__init__(**kwargs)
            self._fault_lane = fault_lane
            self._built = 0

        def _build_lane(self, spec, tape_pool):
            from repro.resilience import FaultPlane

            sim, scope = super()._build_lane(spec, tape_pool)
            if self._built == self._fault_lane:
                # FaultPlane self-wires the network's link-corruption
                # hook, exactly as CMPSimulator(faults=...) does.
                with scope:
                    sim.fault_plane = FaultPlane(sim, faults)
            self._built += 1
            return sim, scope

    engine = FaultingEngine(1, slice_cycles=32)
    results = engine.run_group(list(specs))
    # The faulted lane never attached; the clean lanes did.
    assert engine.stats.kernel_lanes == len(specs) - 1

    expected = [
        _scalar_reference(spec, faults=faults if i == 1 else None)
        for i, spec in enumerate(specs)
    ]
    assert results == expected
