"""Dense vs event-driven scheduler equivalence (seeded property tests).

The event scheduler (`scheduler="event"`, the default) must be an
*observationally identical* reimplementation of the dense reference loop
(`scheduler="dense"`): same arbitration decisions, same per-packet
latencies, same bank service timeline.  These tests run both schedulers
on identical seeded workloads over a small 16-node mesh and compare

* the full per-packet latency *histogram* (not just the mean -- a pair
  of compensating per-packet errors would survive an average),
* per-bank busy-cycle counts (the bank service timeline),
* the entire ``SimulationResult``.
"""

import pytest

from repro.noc.packet import reset_packet_ids
from repro.sim.config import Scheme
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous, mix
from tests.conftest import small_config


def _run(config, make_workload, scheduler, cycles=600, warmup=120):
    # Packet ids are process-global; reset so both runs see identical
    # streams (see repro.sim.reset_state).
    reset_packet_ids()
    sim = CMPSimulator(config, make_workload(config), scheduler=scheduler)
    result = sim.run(cycles, warmup=warmup)
    return sim, result


def _assert_equivalent(config, make_workload, cycles=600, warmup=120):
    dense_sim, dense_result = _run(
        config, make_workload, "dense", cycles, warmup)
    event_sim, event_result = _run(
        config, make_workload, "event", cycles, warmup)

    dense_hist = dense_sim.network.stats.latency_hist
    event_hist = event_sim.network.stats.latency_hist
    assert dense_hist == event_hist, "per-packet latency drift"

    dense_busy = [bank.stats.busy_cycles for bank in dense_sim.banks]
    event_busy = [bank.stats.busy_cycles for bank in event_sim.banks]
    assert dense_busy == event_busy, "bank busy-cycle drift"

    diffs = [
        key for key in dense_result.__dict__
        if dense_result.__dict__[key] != event_result.__dict__[key]
    ]
    assert not diffs, f"SimulationResult drift in {diffs}"
    # The comparison must not be vacuous.
    assert event_result.packets_delivered > 0


SCHEMES = [
    Scheme.SRAM_64TSB,
    Scheme.STTRAM_64TSB,
    Scheme.STTRAM_4TSB,
    Scheme.STTRAM_4TSB_WB,
    Scheme.STTRAM_4TSB_RCA,
    Scheme.STTRAM_4TSB_SS,
]


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
    @pytest.mark.parametrize("seed", [1, 7])
    def test_homogeneous_sclust(self, scheme, seed):
        cfg = small_config(scheme)
        _assert_equivalent(
            cfg, lambda c: homogeneous("sclust", c, seed=seed))

    @pytest.mark.parametrize("seed", [3])
    def test_mixed_apps_on_wb(self, seed):
        cfg = small_config(Scheme.STTRAM_4TSB_WB)
        apps = ["tpcc", "sclust", "x264", "canneal"] * (cfg.n_cores // 4)
        _assert_equivalent(cfg, lambda c: mix(apps, c, seed=seed))

    def test_event_scheduler_skips_cycles_on_idle_workload(self):
        """The fast path actually engages: fewer executed than simulated
        cycles on a workload with long compute gaps."""
        from repro.cpu.trace import ScriptedStream, IdleStream
        from repro.workloads.mixes import Workload

        cfg = small_config(Scheme.STTRAM_4TSB_WB)

        def make_workload(config):
            from repro.cpu.trace import bank_block
            accesses = [(0, bank_block(2, 9, config.n_banks), True),
                        (5_000, bank_block(3, 11, config.n_banks), False)]
            streams = [ScriptedStream(accesses)]
            streams += [IdleStream() for _ in range(config.n_cores - 1)]
            return Workload(streams, ["s"] * config.n_cores, "s")

        reset_packet_ids()
        sim = CMPSimulator(cfg, make_workload(cfg), scheduler="event",
                           prewarm=False)
        sim.run(4_000, warmup=0)
        assert sim.executed_cycles < sim.cycle // 2
