"""Tests for repro.noc.topology."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.noc.topology import (
    DOWN, EAST, LOCAL, NORTH, N_PORTS, OPPOSITE, SOUTH, UP, WEST, Mesh3D,
)


class TestCoordinates:
    def test_node_numbering_matches_paper_figure4(self):
        topo = Mesh3D(8)
        # Core layer 0..63, cache layer 64..127.
        assert topo.coords(0) == (0, 0, 0)
        assert topo.coords(63) == (0, 7, 7)
        assert topo.coords(64) == (1, 0, 0)
        assert topo.coords(127) == (1, 7, 7)
        # Figure 4: cache node 91 sits at (3, 3) of the cache layer.
        assert topo.coords(91) == (1, 3, 3)

    def test_roundtrip(self):
        topo = Mesh3D(4)
        for node in range(topo.n_nodes):
            layer, x, y = topo.coords(node)
            assert topo.node_id(layer, x, y) == node

    def test_bank_sits_below_core(self):
        topo = Mesh3D(8)
        for core in range(64):
            assert topo.bank_node(core) == core + 64
            assert topo.neighbor(topo.core_node(core), DOWN) \
                == topo.bank_node(core)

    def test_bank_of_node_inverse(self):
        topo = Mesh3D(4)
        for bank in range(16):
            assert topo.bank_of_node(topo.bank_node(bank)) == bank

    def test_bad_node_rejected(self):
        topo = Mesh3D(4)
        with pytest.raises(TopologyError):
            topo.coords(topo.n_nodes)
        with pytest.raises(TopologyError):
            topo.coords(-1)

    def test_bank_of_core_layer_node_rejected(self):
        with pytest.raises(TopologyError):
            Mesh3D(4).bank_of_node(3)


class TestNeighbors:
    def test_interior_node_has_all_mesh_neighbors(self):
        topo = Mesh3D(4)
        node = topo.node_id(0, 1, 1)
        assert topo.neighbor(node, EAST) == topo.node_id(0, 2, 1)
        assert topo.neighbor(node, WEST) == topo.node_id(0, 0, 1)
        assert topo.neighbor(node, NORTH) == topo.node_id(0, 1, 2)
        assert topo.neighbor(node, SOUTH) == topo.node_id(0, 1, 0)

    def test_edges_return_none(self):
        topo = Mesh3D(4)
        origin = topo.node_id(0, 0, 0)
        assert topo.neighbor(origin, WEST) is None
        assert topo.neighbor(origin, SOUTH) is None
        assert topo.neighbor(origin, UP) is None

    def test_vertical_links(self):
        topo = Mesh3D(4)
        assert topo.neighbor(0, DOWN) == 16
        assert topo.neighbor(16, UP) == 0
        assert topo.neighbor(16, DOWN) is None

    def test_local_port_has_no_neighbor(self):
        assert Mesh3D(4).neighbor(5, LOCAL) is None

    def test_opposite_ports(self):
        assert OPPOSITE[EAST] == WEST
        assert OPPOSITE[NORTH] == SOUTH
        assert OPPOSITE[UP] == DOWN
        assert len(OPPOSITE) == N_PORTS

    def test_links_are_symmetric(self):
        topo = Mesh3D(3)
        links = set()
        for src, port, dst in topo.links():
            links.add((src, dst))
            assert topo.neighbor(dst, OPPOSITE[port]) == src
        for src, dst in links:
            assert (dst, src) in links

    def test_link_count(self):
        # W*W mesh per layer: 2*W*(W-1) bidirectional mesh links per
        # layer plus W*W vertical links; directed doubles everything.
        topo = Mesh3D(4)
        expected = 2 * (2 * 4 * 3 * 2) + 2 * 16
        assert sum(1 for _ in topo.links()) == expected


class TestPaths:
    def test_manhattan_distance(self):
        topo = Mesh3D(8)
        assert topo.manhattan(0, 63) == 14
        assert topo.manhattan(0, 64) == 1
        assert topo.manhattan(91, 75) == 2  # Figure 5 parent/child pair

    def test_xy_path_goes_x_first(self):
        topo = Mesh3D(4)
        path = topo.xy_path(topo.node_id(0, 0, 0), topo.node_id(0, 2, 2))
        coords = [topo.coords(n) for n in path]
        assert coords == [
            (0, 0, 0), (0, 1, 0), (0, 2, 0), (0, 2, 1), (0, 2, 2),
        ]

    def test_xy_path_rejects_cross_layer(self):
        topo = Mesh3D(4)
        with pytest.raises(TopologyError):
            topo.xy_path(0, topo.bank_node(0))

    def test_corner_nodes(self):
        topo = Mesh3D(8)
        assert topo.corner_nodes(1) == [64, 71, 120, 127]


@given(width=st.integers(2, 9), seed=st.integers(0, 10_000))
def test_property_xy_path_length_matches_manhattan(width, seed):
    topo = Mesh3D(width)
    rng_src = seed % topo.nodes_per_layer
    rng_dst = (seed * 7 + 3) % topo.nodes_per_layer
    path = topo.xy_path(rng_src, rng_dst)
    assert len(path) - 1 == topo.manhattan(rng_src, rng_dst)
    # Each step is one hop between mesh neighbours.
    for a, b in zip(path, path[1:]):
        assert topo.manhattan(a, b) == 1


@given(width=st.integers(2, 9))
def test_property_every_node_reaches_every_port_consistently(width):
    topo = Mesh3D(width)
    for node in range(topo.n_nodes):
        for port in (EAST, WEST, NORTH, SOUTH, UP, DOWN):
            neighbor = topo.neighbor(node, port)
            if neighbor is not None:
                assert topo.neighbor(neighbor, OPPOSITE[port]) == node
