"""Tests for the sweep grid and its JSON persistence."""

import pytest

from repro.sim.config import Scheme
from repro.sim.sweep import SweepGrid, SweepResults, run_sweep

FAST = {"mesh_width": 4, "capacity_scale": 1 / 64}
SCHEMES = (Scheme.SRAM_64TSB, Scheme.STTRAM_4TSB_WB)


@pytest.fixture(scope="module")
def sweep():
    grid = SweepGrid(apps=["x264", "hmmer"], schemes=SCHEMES,
                     cycles=400, warmup=150, overrides=dict(FAST))
    return run_sweep(grid)


class TestRunSweep:
    def test_covers_full_grid(self, sweep):
        assert sweep.apps() == ["x264", "hmmer"]
        assert sweep.schemes() == ["SRAM-64TSB", "MRAM-4TSB-WB"]

    def test_metric_extraction(self, sweep):
        it = sweep.metric("instruction_throughput")
        for app in ("x264", "hmmer"):
            for scheme in ("SRAM-64TSB", "MRAM-4TSB-WB"):
                assert it[app][scheme] > 0

    def test_normalisation(self, sweep):
        norm = sweep.normalized("instruction_throughput",
                                baseline="SRAM-64TSB")
        for app in sweep.apps():
            assert norm[app]["SRAM-64TSB"] == pytest.approx(1.0)

    def test_missing_baseline_yields_zero(self, sweep):
        norm = sweep.normalized("instruction_throughput",
                                baseline="nonexistent")
        assert all(v == 0.0
                   for by_scheme in norm.values()
                   for v in by_scheme.values())

    def test_progress_callback(self):
        seen = []
        grid = SweepGrid(apps=["x264"], schemes=(Scheme.SRAM_64TSB,),
                         cycles=200, warmup=50, overrides=dict(FAST))
        run_sweep(grid, progress=lambda a, s: seen.append((a, s)))
        assert seen == [("x264", Scheme.SRAM_64TSB)]


class TestPersistence:
    def test_save_load_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        sweep.save(str(path))
        loaded = SweepResults.load(str(path))
        assert loaded.data == sweep.data
        assert loaded.grid_spec["apps"] == ["x264", "hmmer"]
        norm_a = sweep.normalized("avg_bank_queue_wait", "SRAM-64TSB")
        norm_b = loaded.normalized("avg_bank_queue_wait", "SRAM-64TSB")
        assert norm_a == norm_b

    def test_grid_spec_records_overrides(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        sweep.save(str(path))
        loaded = SweepResults.load(str(path))
        assert loaded.grid_spec["overrides"]["mesh_width"] == 4
