"""Tests for the Section 4.1 system metrics (Eqs. 1-3)."""

import pytest

from repro.sim.metrics import (
    geometric_mean, instruction_throughput, max_slowdown, slowdowns,
    slowest_ipc, weighted_speedup,
)


class TestInstructionThroughput:
    def test_sum(self):
        assert instruction_throughput([0.5, 0.25, 0.25]) == 1.0

    def test_empty(self):
        assert instruction_throughput([]) == 0.0


class TestWeightedSpeedup:
    def test_equal_means_count(self):
        shared = {"a": 0.5, "b": 0.8}
        assert weighted_speedup(shared, shared) == pytest.approx(2.0)

    def test_half_speed(self):
        shared = {"a": 0.25}
        alone = {"a": 0.5}
        assert weighted_speedup(shared, alone) == pytest.approx(0.5)

    def test_missing_alone_raises(self):
        with pytest.raises(KeyError):
            weighted_speedup({"a": 1.0}, {})

    def test_zero_alone_skipped(self):
        assert weighted_speedup({"a": 1.0}, {"a": 0.0}) == 0.0


class TestSlowdown:
    def test_per_app_slowdowns(self):
        shared = {"a": 0.25, "b": 0.5}
        alone = {"a": 0.5, "b": 0.5}
        s = slowdowns(shared, alone)
        assert s["a"] == pytest.approx(2.0)
        assert s["b"] == pytest.approx(1.0)

    def test_max_slowdown(self):
        shared = {"a": 0.25, "b": 0.5}
        alone = {"a": 0.5, "b": 0.5}
        assert max_slowdown(shared, alone) == pytest.approx(2.0)

    def test_stalled_app_is_infinite(self):
        assert max_slowdown({"a": 0.0}, {"a": 1.0}) == float("inf")

    def test_empty(self):
        assert max_slowdown({}, {}) == 0.0


class TestHelpers:
    def test_slowest_ipc(self):
        assert slowest_ipc([0.9, 0.2, 0.5]) == 0.2
        assert slowest_ipc([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)
