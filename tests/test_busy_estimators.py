"""Tests for busy-duration tracking and the SS/RCA/WB estimators."""

import pytest

from repro.core.busy import BankBusyTracker
from repro.core.estimators import (
    RegionalCongestionEstimator, SimplisticEstimator, WindowEstimator,
    make_estimator,
)
from repro.noc.packet import Packet, PacketClass
from repro.sim.config import Estimator, Scheme, make_config


def write_pkt(bank, flits=8):
    return Packet(PacketClass.REQUEST, 0, 64 + bank, flits,
                  inject_cycle=0, is_write=True, bank=bank)


def read_pkt(bank):
    return Packet(PacketClass.REQUEST, 0, 64 + bank, 1,
                  inject_cycle=0, is_write=False, bank=bank)


class TestBusyTracker:
    @pytest.fixture
    def tracker(self):
        return BankBusyTracker(make_config(Scheme.STTRAM_4TSB_SS))

    def test_two_hop_travel_is_four_cycles(self, tracker):
        # One intermediate 2-stage router plus two links (Section 3.5).
        assert tracker.travel_cycles(2) == 4

    def test_one_hop_travel(self, tracker):
        assert tracker.travel_cycles(1) == 1

    def test_write_charge(self, tracker):
        tracker.charge(write_pkt(3), now=10, hops=2,
                       congestion_estimate=0)
        assert tracker.predicted_free_at(3) == 10 + 4 + 33

    def test_read_charge_is_short(self, tracker):
        tracker.charge(read_pkt(3), now=0, hops=2, congestion_estimate=0)
        assert tracker.predicted_free_at(3) == 4 + 3

    def test_congestion_extends_busy_window(self, tracker):
        tracker.charge(write_pkt(1), now=0, hops=2,
                       congestion_estimate=10)
        assert tracker.predicted_free_at(1) == 4 + 10 + 33

    def test_counter_rearms_rather_than_accumulates(self, tracker):
        tracker.charge(write_pkt(2), now=0, hops=2, congestion_estimate=0)
        tracker.charge(write_pkt(2), now=1, hops=2, congestion_estimate=0)
        # Re-armed for the latest write, not 2 x 33 queued.
        assert tracker.predicted_free_at(2) == 1 + 4 + 33

    def test_predicted_busy_window(self, tracker):
        tracker.charge(write_pkt(5), now=0, hops=2, congestion_estimate=0)
        assert tracker.predicted_busy(5, now=0, hops=2,
                                      congestion_estimate=0)
        assert not tracker.predicted_busy(5, now=40, hops=2,
                                          congestion_estimate=0)

    def test_unknown_bank_is_idle(self, tracker):
        assert not tracker.predicted_busy(42, now=0, hops=2,
                                          congestion_estimate=0)


class TestSimplistic:
    def test_always_zero(self):
        ss = SimplisticEstimator()
        assert ss.congestion_estimate(91, 5, now=100) == 0


class TestWindow:
    @pytest.fixture
    def wb(self):
        cfg = make_config(Scheme.STTRAM_4TSB_WB, wb_sample_period=3)
        return WindowEstimator(cfg)

    def test_first_packet_tagged(self, wb):
        pkt = write_pkt(1)
        wb.on_forward(91, pkt, now=7)
        assert pkt.wb_timestamp == 7
        assert wb.tags_sent == 1

    def test_sampling_period(self, wb):
        tagged = 0
        for i in range(9):
            pkt = write_pkt(1)
            wb.on_forward(91, pkt, now=i)
            if pkt.wb_timestamp is not None:
                tagged += 1
        # First plus every third thereafter.
        assert tagged == 3

    def test_ack_updates_estimate(self, wb):
        pkt = write_pkt(1)
        wb.on_forward(91, pkt, now=0)
        wb.on_ack(91, 1, elapsed=40, now=40)
        # rtt/2 minus the known base one-way latency.
        assert wb.congestion_estimate(91, 1, now=41) > 0
        assert wb.acks_received == 1

    def test_uncongested_ack_estimates_zero(self, wb):
        wb.on_ack(91, 1, elapsed=8, now=8)
        assert wb.congestion_estimate(91, 1, now=9) == 0

    def test_elapsed_saturates_at_8_bits(self, wb):
        wb.on_ack(91, 1, elapsed=10_000, now=10_000)
        assert wb.congestion_estimate(91, 1, now=0) <= 255 // 2

    def test_non_request_packets_never_tagged(self, wb):
        pkt = Packet(PacketClass.COHERENCE, 0, 64, 1, inject_cycle=0)
        wb.on_forward(91, pkt, now=0)
        assert pkt.wb_timestamp is None

    def test_estimates_are_per_child(self, wb):
        wb.on_ack(91, 1, elapsed=100, now=100)
        assert wb.congestion_estimate(91, 2, now=101) == 0


class TestRCA:
    def test_congested_network_raises_estimate(self):
        from repro.sim.simulator import CMPSimulator
        from repro.workloads.mixes import homogeneous

        cfg = make_config(Scheme.STTRAM_4TSB_RCA, mesh_width=4,
                          capacity_scale=1 / 64)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        est = sim.estimator
        assert isinstance(est, RegionalCongestionEstimator)
        rm = sim.region_map
        parent = rm.parent_nodes()[0]
        child = rm.children_of[parent][0]
        idle_estimate = est.congestion_estimate(parent, child, now=0)
        for _ in range(400):
            sim.step()
        loaded = max(
            est.congestion_estimate(p, c, now=sim.cycle)
            for p in rm.parent_nodes() for c in rm.children_of[p]
        )
        assert loaded >= idle_estimate
        assert loaded > 0

    def test_estimates_clamped_to_8_bits(self):
        cfg = make_config(Scheme.STTRAM_4TSB_RCA)
        est = RegionalCongestionEstimator(cfg)
        assert est.max_value == 255


class TestFactory:
    def test_factory_dispatch(self):
        assert make_estimator(
            make_config(Scheme.STTRAM_64TSB)) is None
        assert isinstance(
            make_estimator(make_config(Scheme.STTRAM_4TSB_SS)),
            SimplisticEstimator)
        assert isinstance(
            make_estimator(make_config(Scheme.STTRAM_4TSB_RCA)),
            RegionalCongestionEstimator)
        assert isinstance(
            make_estimator(make_config(Scheme.STTRAM_4TSB_WB)),
            WindowEstimator)
