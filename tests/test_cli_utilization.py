"""Tests for the CLI and the link-utilisation probe."""

import json

import pytest

from repro.analysis.utilization import LinkUtilizationProbe
from repro.cli import main
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous

FAST = ["--mesh-width", "4", "--capacity-scale", "0.015625",
        "--cycles", "400", "--warmup", "150"]


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MRAM-4TSB-WB" in out
        assert "tpcc" in out
        assert "libquantum" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "tpcc" in out and "51.47" in out

    def test_run_human_readable(self, capsys):
        assert main(["run", "--app", "x264",
                     "--scheme", "MRAM-64TSB"] + FAST) == 0
        out = capsys.readouterr().out
        assert "instruction_throughput" in out

    def test_run_json(self, capsys):
        assert main(["run", "--app", "x264", "--scheme", "SRAM-64TSB",
                     "--json"] + FAST) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cycles"] == 400
        assert data["instruction_throughput"] > 0
        assert "x264" in data["ipc_by_app"]

    def test_compare(self, capsys):
        assert main(["compare", "--app", "x264"] + FAST) == 0
        out = capsys.readouterr().out
        for scheme in ("SRAM-64TSB", "MRAM-4TSB-WB"):
            assert scheme in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--app", "tpcc"] + FAST) == 0
        out = capsys.readouterr().out
        assert "queued" in out
        assert "165+" in out

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "tpcc", "--scheme", "bogus"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestUtilizationProbe:
    def _probed_sim(self, scheme):
        cfg = make_config(scheme, mesh_width=4, capacity_scale=1 / 64)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        probe = LinkUtilizationProbe(sim.network)
        for _ in range(600):
            sim.step()
        return sim, probe

    def test_counts_flits(self):
        sim, probe = self._probed_sim(Scheme.STTRAM_64TSB)
        assert probe.flit_counts
        assert probe.cycles_observed > 0
        total = sum(probe.flit_counts.values())
        assert total > 0

    def test_utilization_bounded(self):
        _sim, probe = self._probed_sim(Scheme.STTRAM_64TSB)
        for sample in probe.samples():
            assert 0.0 <= sample.utilization <= 1.2  # combining can
            # push TSB links slightly above 1 flit/cycle equivalent

    def test_hottest_sorted(self):
        _sim, probe = self._probed_sim(Scheme.STTRAM_64TSB)
        hottest = probe.hottest(5)
        values = [s.utilization for s in hottest]
        assert values == sorted(values, reverse=True)

    def test_restricted_routing_concentrates_traffic(self):
        _sim64, probe64 = self._probed_sim(Scheme.STTRAM_64TSB)
        _sim4, probe4 = self._probed_sim(Scheme.STTRAM_4TSB)
        # The 4-TSB restriction concentrates requests: its hottest link
        # beats the unrestricted design's.
        assert probe4.hottest(1)[0].utilization \
            >= 0.9 * probe64.hottest(1)[0].utilization

    def test_detach_restores_forward(self):
        cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                          capacity_scale=1 / 64)
        sim = CMPSimulator(cfg, homogeneous("x264", cfg))
        original = sim.network._forward
        probe = LinkUtilizationProbe(sim.network)
        assert sim.network._forward != original
        probe.detach()
        assert sim.network._forward == original

    def test_labels_and_layer_average(self):
        sim, probe = self._probed_sim(Scheme.STTRAM_64TSB)
        sample = probe.hottest(1)[0]
        label = sample.label(sim.topo)
        assert label.startswith("L")
        avg0 = probe.layer_average(sim.topo, 0)
        avg1 = probe.layer_average(sim.topo, 1)
        assert avg0 >= 0 and avg1 >= 0
        assert probe.saturation_count(threshold=0.0) \
            == len(probe.samples())
