"""End-to-end tests of the assembled CMP simulator."""

import pytest

from repro.cpu.trace import IdleStream, ScriptedStream, bank_block
from repro.noc.packet import PacketClass
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import Workload, homogeneous
from tests.conftest import small_config


def scripted_workload(config, accesses_for_core0):
    n = config.n_cores
    streams = [ScriptedStream(accesses_for_core0)]
    streams += [IdleStream() for _ in range(n - 1)]
    return Workload(streams, ["scripted"] * n, "scripted")


class TestEndToEnd:
    def test_single_load_round_trip(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        block = bank_block(3, 5, cfg.n_banks)
        wl = scripted_workload(cfg, [(0, block, False)])
        sim = CMPSimulator(cfg, wl, prewarm=False)
        assert sim.drain(max_cycles=5_000)
        core = sim.cores[0]
        assert core.stats.l1_misses == 1
        assert core.l1.contains(block)
        assert core.stats.miss_latency_samples == 1
        # Cold miss: network + bank + 320-cycle memory round trip.
        assert core.stats.average_miss_latency() > 320

    def test_l2_hit_is_much_faster(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        block = bank_block(3, 5, cfg.n_banks)
        wl = scripted_workload(cfg, [(0, block, False)])
        sim = CMPSimulator(cfg, wl, prewarm=False)
        sim._install_l2(block)
        assert sim.drain(max_cycles=5_000)
        assert sim.cores[0].stats.average_miss_latency() < 100
        assert sim.banks[3].stats.l2_hits == 1

    def test_store_write_reaches_bank(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        block = bank_block(7, 9, cfg.n_banks)
        wl = scripted_workload(cfg, [(0, block, True)])
        sim = CMPSimulator(cfg, wl, prewarm=False)
        assert sim.drain(max_cycles=5_000)
        bank = sim.banks[7]
        assert bank.stats.writes == 1
        assert bank.array.is_dirty(block)

    def test_region_restricted_request_traverses_tsb(self):
        cfg = small_config(Scheme.STTRAM_4TSB)
        assert sim_region_hit(cfg)

    def test_drain_reports_completion(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        wl = scripted_workload(cfg, [])
        sim = CMPSimulator(cfg, wl, prewarm=False)
        assert sim.drain(max_cycles=100)


def sim_region_hit(cfg):
    block = bank_block(10, 3, cfg.n_banks)
    wl_streams = [ScriptedStream([(0, block, False)])]
    wl_streams += [IdleStream() for _ in range(cfg.n_cores - 1)]
    wl = Workload(wl_streams, ["s"] * cfg.n_cores, "s")
    sim = CMPSimulator(cfg, wl, prewarm=False)
    sim.drain(max_cycles=5_000)
    return sim.banks[10].stats.reads == 1


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run():
            cfg = small_config(Scheme.STTRAM_4TSB_WB)
            sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=9))
            return sim.run(800, warmup=300)

        a, b = run(), run()
        assert a.instructions == b.instructions
        assert a.packets_delivered == b.packets_delivered
        assert a.avg_packet_latency == b.avg_packet_latency

    def test_different_seeds_differ(self):
        cfg = small_config(Scheme.STTRAM_4TSB_WB)
        sim1 = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=1))
        sim2 = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=2))
        r1 = sim1.run(800, warmup=300)
        r2 = sim2.run(800, warmup=300)
        assert r1.instructions != r2.instructions


class TestPrewarm:
    def test_prewarm_populates_l2(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        assert sum(b.array.occupancy() for b in sim.banks) > 100

    def test_prewarm_populates_l1_and_directory(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        core = sim.cores[0]
        assert core.l1.occupancy() > 0
        hot = core.stream.hot_blocks()[0]
        home = sim.banks[sim.bank_for_block(hot)]
        assert core.core_id in home.directory.sharers_of(hot)

    def test_prewarm_skips_scripted_streams(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        wl = scripted_workload(cfg, [(0, 1, False)])
        sim = CMPSimulator(cfg, wl, prewarm=True)
        assert sum(b.array.occupancy() for b in sim.banks) == 0


class TestMeasurementWindow:
    def test_ipc_measured_after_warmup(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        sim = CMPSimulator(cfg, homogeneous("x264", cfg))
        res = sim.run(500, warmup=200)
        assert res.cycles == 500
        assert len(res.ipc) == cfg.n_cores
        assert 0 < res.instruction_throughput() \
            <= cfg.n_cores * cfg.commit_width

    def test_stats_reset_at_window_start(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        sim = CMPSimulator(cfg, homogeneous("x264", cfg))
        res = sim.run(400, warmup=400)
        # Network stats only cover the measurement window.
        assert res.packets_delivered <= sim.network.stats.total_injected \
            + res.packets_delivered


class TestWbAckPlumbing:
    def test_wb_scheme_generates_acks(self):
        cfg = small_config(Scheme.STTRAM_4TSB_WB, wb_sample_period=2)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        sim.run(600, warmup=0)
        assert sim.estimator.tags_sent > 0
        assert sim.estimator.acks_received > 0

    def test_non_wb_scheme_sends_no_acks(self):
        cfg = small_config(Scheme.STTRAM_4TSB_SS)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        sim.run(600, warmup=0)
        assert sim.network.stats.injected[PacketClass.ACK] == 0


class TestValidation:
    def test_workload_size_mismatch_rejected(self):
        cfg = small_config(Scheme.STTRAM_64TSB)
        wl = Workload([IdleStream()], ["x"], "x")
        with pytest.raises(ValueError):
            CMPSimulator(cfg, wl)
