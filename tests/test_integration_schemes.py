"""Cross-module integration tests: the six design scenarios end to end.

These run the full stack on a scaled 4x4 mesh and assert the *relations*
the paper's evaluation rests on, not absolute numbers.
"""

import pytest

from repro.noc.packet import PacketClass
from repro.sim.config import ALL_SCHEMES, Scheme, make_config, \
    with_write_buffer
from repro.sim.experiment import app_factory, compare_schemes, run_scheme
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import case2, homogeneous

FAST = dict(mesh_width=4, capacity_scale=1 / 64)
CYCLES = 1200
WARMUP = 600


@pytest.fixture(scope="module")
def tpcc_comparison():
    return compare_schemes(app_factory("tpcc"), "tpcc",
                           cycles=CYCLES, warmup=WARMUP, **FAST)


class TestSchemeRelations:
    def test_all_schemes_make_progress(self, tpcc_comparison):
        for scheme, result in tpcc_comparison.results.items():
            assert result.total_instructions() > 0, scheme
            assert result.packets_delivered > 0, scheme

    def test_sttram_writes_create_bank_queueing(self, tpcc_comparison):
        sram = tpcc_comparison.results[Scheme.SRAM_64TSB]
        stt = tpcc_comparison.results[Scheme.STTRAM_64TSB]
        assert stt.avg_bank_queue_wait > 3 * sram.avg_bank_queue_wait

    def test_sttram_capacity_raises_hit_rate(self, tpcc_comparison):
        sram = tpcc_comparison.results[Scheme.SRAM_64TSB]
        stt = tpcc_comparison.results[Scheme.STTRAM_64TSB]
        assert stt.l2_hit_rate() > sram.l2_hit_rate()

    def test_only_estimator_schemes_delay_packets(self, tpcc_comparison):
        for scheme in (Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB,
                       Scheme.STTRAM_4TSB):
            assert tpcc_comparison.results[scheme].delayed_cycle_sum == 0
        for scheme in (Scheme.STTRAM_4TSB_SS, Scheme.STTRAM_4TSB_RCA,
                       Scheme.STTRAM_4TSB_WB):
            assert tpcc_comparison.results[scheme].delayed_cycle_sum > 0

    def test_estimator_schemes_cut_bank_queueing(self, tpcc_comparison):
        plain = tpcc_comparison.results[Scheme.STTRAM_4TSB]
        wb = tpcc_comparison.results[Scheme.STTRAM_4TSB_WB]
        assert wb.avg_bank_queue_wait < plain.avg_bank_queue_wait

    def test_sttram_saves_uncore_energy(self, tpcc_comparison):
        energy = tpcc_comparison.normalized_energy()
        for scheme in ALL_SCHEMES[1:]:
            assert energy[scheme] < 0.75, scheme

    def test_normalisation_baseline_is_one(self, tpcc_comparison):
        assert tpcc_comparison.normalized_throughput()[
            Scheme.SRAM_64TSB] == pytest.approx(1.0)


class TestReadIntensiveApps:
    def test_capacity_gain_for_read_heavy_app(self):
        # The capacity effect needs the larger working sets of the
        # paper-size mesh; the 4x4 fast config understates it.
        cmp_ = compare_schemes(
            app_factory("mcf"), "mcf",
            schemes=(Scheme.SRAM_64TSB, Scheme.STTRAM_64TSB),
            cycles=2000, warmup=1000, mesh_width=8,
            capacity_scale=1 / 16)
        norm = cmp_.normalized_throughput()
        # Paper: read-intensive benchmarks benefit from the 4x capacity.
        assert norm[Scheme.STTRAM_64TSB] > 0.95


class TestWriteBufferComparator:
    def test_buff20_reduces_queue_wait(self):
        base_cfg = make_config(Scheme.STTRAM_64TSB, **FAST)
        sim = CMPSimulator(base_cfg, homogeneous("tpcc", base_cfg))
        plain = sim.run(CYCLES, warmup=WARMUP)

        buf_cfg = with_write_buffer(base_cfg)
        sim = CMPSimulator(buf_cfg, homogeneous("tpcc", buf_cfg))
        buffered = sim.run(CYCLES, warmup=WARMUP)

        assert buffered.avg_bank_queue_wait < plain.avg_bank_queue_wait
        assert buffered.bank_drains > 0

    def test_preemption_fires_under_load(self):
        cfg = with_write_buffer(make_config(Scheme.STTRAM_64TSB, **FAST))
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        result = sim.run(CYCLES, warmup=WARMUP)
        assert result.write_buffer_preemptions > 0


class TestCoherenceTraffic:
    def test_shared_workload_generates_coherence(self):
        result = run_scheme(Scheme.STTRAM_64TSB, app_factory("tpcc"),
                            cycles=CYCLES, warmup=WARMUP, **FAST)
        # Shared-pool stores invalidate sharers.
        assert result.extras is not None
        cfg = make_config(Scheme.STTRAM_64TSB, **FAST)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        sim.run(CYCLES, warmup=0)
        coh = sim.network.stats.injected[PacketClass.COHERENCE]
        assert coh > 0

    def test_private_workload_generates_no_invalidations(self):
        cfg = make_config(Scheme.STTRAM_64TSB, **FAST)
        sim = CMPSimulator(cfg, homogeneous("mcf", cfg))
        sim.run(CYCLES, warmup=0)
        invals = sum(
            b.directory.invalidations_sent for b in sim.banks)
        forwards = sum(b.directory.forwards_sent for b in sim.banks)
        assert invals == 0 and forwards == 0


class TestFairnessCase2:
    def test_case2_mix_runs_all_four_apps(self):
        cfg = make_config(Scheme.STTRAM_64TSB, **FAST)
        sim = CMPSimulator(cfg, case2(cfg))
        result = sim.run(CYCLES, warmup=WARMUP)
        by_app = result.ipc_by_app()
        assert set(by_app) == {"lbm", "hmmer", "bzip2", "libquantum"}
        assert all(v > 0 for v in by_app.values())
