"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.sim.config import Scheme, SystemConfig, make_config

# Hermetic tests: never let an in-test run_sweep append to the user's
# real run ledger.  Tests that exercise the ledger point it at a tmp
# path explicitly (and flip this env back on where needed).
os.environ.setdefault("REPRO_LEDGER", "0")


def small_config(scheme: Scheme = Scheme.STTRAM_4TSB_WB,
                 **overrides) -> SystemConfig:
    """A 4x4-mesh, scaled-capacity configuration for fast tests."""
    defaults = dict(mesh_width=4, capacity_scale=1 / 64)
    defaults.update(overrides)
    return make_config(scheme, **defaults)


def tiny_config(scheme: Scheme = Scheme.STTRAM_64TSB,
                **overrides) -> SystemConfig:
    """A 2x2-mesh configuration for protocol-level tests."""
    defaults = dict(mesh_width=2, capacity_scale=1 / 256)
    defaults.update(overrides)
    return make_config(scheme, **defaults)


@pytest.fixture
def cfg_small():
    return small_config()


@pytest.fixture
def cfg_tiny():
    return tiny_config()
