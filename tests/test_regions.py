"""Tests for repro.core.regions (Section 3.4 partitioning)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.regions import RegionMap, build_region_map
from repro.errors import ConfigError
from repro.noc.topology import Mesh3D
from repro.sim.config import Scheme, TSBPlacement, make_config


def region_map(width=8, n_regions=4, placement=TSBPlacement.CORNER,
               hops=2):
    return RegionMap(Mesh3D(width), n_regions, placement, hops)


class TestPartitioning:
    def test_four_quadrants_on_8x8(self):
        rm = region_map()
        assert len(rm.regions) == 4
        for region in rm.regions:
            assert len(region.banks) == 16
        # Every bank belongs to exactly one region.
        seen = [b for r in rm.regions for b in r.banks]
        assert sorted(seen) == list(range(64))

    def test_eight_regions_tile_exactly(self):
        rm = region_map(n_regions=8)
        assert len(rm.regions) == 8
        for region in rm.regions:
            assert len(region.banks) == 8

    def test_sixteen_regions(self):
        rm = region_map(n_regions=16)
        assert all(len(r.banks) == 4 for r in rm.regions)

    def test_invalid_region_count_rejected(self):
        with pytest.raises(ConfigError):
            region_map(n_regions=7)

    def test_paper_figure4_tsb_location(self):
        # Region 0 (lower-left quadrant) TSB at cache node 91, managed
        # from core node 27 (Section 3.4).
        rm = region_map()
        region0 = rm.region_of(0)
        assert region0.tsb_cache_node == 91
        assert region0.tsb_core_node == 27

    def test_corner_tsbs_are_innermost(self):
        rm = region_map()
        topo = rm.topo
        centre = (8 - 1) / 2.0
        for region in rm.regions:
            _l, x, y = topo.coords(region.tsb_cache_node)
            x0, y0, x1, y1 = region.bounds
            # The chosen corner is the region corner nearest the centre.
            others = [(cx, cy) for cx in (x0, x1) for cy in (y0, y1)]
            dist = abs(x - centre) + abs(y - centre)
            assert dist == min(
                abs(cx - centre) + abs(cy - centre) for cx, cy in others
            )

    def test_staggered_tsbs_use_distinct_columns(self):
        rm = region_map(placement=TSBPlacement.STAGGER, n_regions=4)
        topo = rm.topo
        columns_by_row = {}
        for region in rm.regions:
            _l, x, y = topo.coords(region.tsb_cache_node)
            columns_by_row.setdefault(y, []).append(x)
        for columns in columns_by_row.values():
            assert len(columns) == len(set(columns))


class TestParentChild:
    def test_every_bank_has_a_parent(self):
        rm = region_map()
        assert set(rm.parent_of_bank) == set(range(64))

    def test_paper_figure5_parents(self):
        # Router 91 manages banks 75, 82 and 89 (two hops away); router
        # 90 manages banks 74, 81 and 88 (Section 3.4).
        rm = region_map()
        for bank_node in (75, 82, 89):
            assert rm.parent_of_bank[bank_node - 64] == 91
        for bank_node in (74, 81, 88):
            assert rm.parent_of_bank[bank_node - 64] == 90

    def test_near_banks_managed_from_core_layer(self):
        # Banks closer than H hops to the TSB are managed by the
        # region-TSB node vertically above (e.g. node 27 for region 0).
        rm = region_map()
        region0 = rm.regions[rm.region_of_bank[91 - 64]]
        near_banks = [
            b for b in region0.banks
            if rm.topo.manhattan(rm.topo.bank_node(b),
                                 region0.tsb_cache_node) < 2
        ]
        for bank in near_banks:
            assert rm.parent_of_bank[bank] == region0.tsb_core_node

    def test_parent_distance_is_hop_distance(self):
        rm = region_map(hops=2)
        for bank, parent in rm.parent_of_bank.items():
            if rm.topo.layer_of(parent) == 1:
                assert rm.expected_child_distance(bank) == 2

    def test_children_inverse_of_parents(self):
        rm = region_map()
        for parent, children in rm.children_of.items():
            for bank in children:
                assert rm.parent_of_bank[bank] == parent

    def test_parent_lies_on_tsb_to_bank_route(self):
        rm = region_map()
        topo = rm.topo
        for bank, parent in rm.parent_of_bank.items():
            if topo.layer_of(parent) != 1:
                continue
            region = rm.region_of(bank)
            path = topo.xy_path(region.tsb_cache_node,
                                topo.bank_node(bank))
            assert parent in path

    def test_hop_distance_one(self):
        rm = region_map(hops=1)
        for bank in range(64):
            parent = rm.parent_of_bank[bank]
            if rm.topo.layer_of(parent) == 1:
                dist = rm.topo.manhattan(parent, rm.topo.bank_node(bank))
                assert dist == 1

    def test_request_via_is_region_core_node(self):
        rm = region_map()
        for bank in range(64):
            assert rm.request_via(bank) \
                == rm.region_of(bank).tsb_core_node


class TestBuildFromConfig:
    def test_none_for_unrestricted(self):
        cfg = make_config(Scheme.STTRAM_64TSB)
        assert build_region_map(cfg) is None

    def test_built_for_restricted(self):
        cfg = make_config(Scheme.STTRAM_4TSB)
        rm = build_region_map(cfg)
        assert rm is not None
        assert rm.n_regions == 4

    def test_placement_from_config(self):
        cfg = make_config(Scheme.STTRAM_4TSB,
                          tsb_placement=TSBPlacement.STAGGER)
        assert build_region_map(cfg).placement is TSBPlacement.STAGGER


@given(
    width=st.sampled_from([4, 8]),
    n_regions=st.sampled_from([2, 4, 8, 16]),
    placement=st.sampled_from(list(TSBPlacement)),
    hops=st.integers(1, 3),
)
def test_property_region_maps_are_total_and_consistent(
        width, n_regions, placement, hops):
    if (width * width) % n_regions:
        return
    try:
        rm = RegionMap(Mesh3D(width), n_regions, placement, hops)
    except ConfigError:
        return  # untileable combination
    n_banks = width * width
    assert sorted(b for r in rm.regions for b in r.banks) \
        == list(range(n_banks))
    for bank in range(n_banks):
        parent = rm.parent_of_bank[bank]
        assert bank in rm.children_of[parent]
        # Parent is either in the cache layer at <= hops distance along
        # the route, or the region's core-layer TSB node.
        if rm.topo.layer_of(parent) == 1:
            assert rm.topo.manhattan(
                parent, rm.topo.bank_node(bank)) == hops
        else:
            assert parent == rm.region_of(bank).tsb_core_node
