"""Tests for the memory-controller model."""

import pytest

from repro.cache.memory import (
    MemoryController, mc_for_block, place_memory_controllers,
)
from repro.cache.messages import MemMsg
from repro.noc.packet import Packet, PacketClass
from repro.noc.topology import Mesh3D
from repro.sim.config import Scheme, make_config


def mem_packet(block, is_write=False):
    msg = MemMsg(block=block, is_write=is_write, bank=0)
    return Packet(PacketClass.MEMORY, 64, 64, 1 if not is_write else 8,
                  inject_cycle=0, payload=msg)


@pytest.fixture
def mc():
    cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=4)
    controller = MemoryController(0, node=16, config=cfg)
    responses = []
    controller.send_response = lambda msg, now: responses.append(
        (msg, now))
    controller.responses = responses
    return controller


class TestLatency:
    def test_read_returns_after_memory_latency(self, mc):
        mc.on_packet(mem_packet(5), now=0)
        for now in range(340):
            mc.step(now)
        assert len(mc.responses) == 1
        msg, when = mc.responses[0]
        assert msg.block == 5
        assert when >= 320

    def test_write_completes_silently(self, mc):
        mc.on_packet(mem_packet(5, is_write=True), now=0)
        for now in range(340):
            mc.step(now)
        assert mc.responses == []
        assert mc.writes == 1

    def test_issue_interval_spaces_requests(self, mc):
        for i in range(3):
            mc.on_packet(mem_packet(i), now=0)
        for now in range(340):
            mc.step(now)
        times = sorted(when for _m, when in mc.responses)
        assert len(times) == 3
        assert times[1] - times[0] >= mc.issue_interval
        assert times[2] - times[1] >= mc.issue_interval

    def test_idle_tracking(self, mc):
        assert mc.idle()
        mc.on_packet(mem_packet(1), now=0)
        assert not mc.idle()
        for now in range(340):
            mc.step(now)
        assert mc.idle()
        assert mc.outstanding() == 0


class TestPlacement:
    def test_four_corner_controllers(self):
        cfg = make_config(Scheme.STTRAM_64TSB)
        topo = Mesh3D(8)
        nodes = place_memory_controllers(cfg, topo)
        assert nodes == [64, 71, 120, 127]
        assert all(topo.layer_of(n) == 1 for n in nodes)

    def test_fewer_controllers(self):
        cfg = make_config(Scheme.STTRAM_64TSB, n_memory_controllers=2)
        nodes = place_memory_controllers(cfg, Mesh3D(8))
        assert len(nodes) == 2

    def test_block_interleaving_balanced(self):
        counts = [0] * 4
        for block in range(4000):
            counts[mc_for_block(block, 4)] += 1
        assert all(c == 1000 for c in counts)

    def test_zero_controllers_degenerate(self):
        assert mc_for_block(123, 0) == 0
