"""Edge-case tests: minimal meshes, saturation, starvation, odd routes."""

import pytest

from repro.core.arbitration import RoundRobinArbiter
from repro.core.regions import RegionMap
from repro.errors import ConfigError
from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass
from repro.noc.routing import RoutingPolicy
from repro.noc.topology import Mesh3D
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous


def tiny_network(width=2, **overrides):
    cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=width, **overrides)
    topo = Mesh3D(width)
    net = Network(cfg, topo, RoutingPolicy(topo), RoundRobinArbiter())
    return cfg, topo, net


class TestMinimalMesh:
    def test_2x2_mesh_runs_end_to_end(self):
        cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=2,
                          capacity_scale=1 / 256)
        sim = CMPSimulator(cfg, homogeneous("x264", cfg))
        res = sim.run(400, warmup=100)
        assert res.total_instructions() > 0
        assert res.packets_delivered > 0

    def test_2x2_with_single_region(self):
        cfg = make_config(Scheme.STTRAM_4TSB_WB, mesh_width=2,
                          capacity_scale=1 / 256)
        assert cfg.n_region_tsbs == 1
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        res = sim.run(400, warmup=100)
        assert res.total_instructions() > 0

    def test_self_delivery(self):
        # A packet whose destination is directly below its source.
        cfg, topo, net = tiny_network()
        got = []
        net.register_sink(topo.bank_node(0), lambda p, t: got.append(t))
        net.inject(Packet(PacketClass.REQUEST, 0, topo.bank_node(0), 1,
                          inject_cycle=0), 0)
        for now in range(30):
            net.step(now)
        assert len(got) == 1


class TestSaturation:
    def test_saturating_injection_does_not_lose_packets(self):
        cfg, topo, net = tiny_network()
        delivered = [0]
        dst = topo.bank_node(3)
        net.register_sink(dst, lambda p, t: delivered.__setitem__(
            0, delivered[0] + 1))
        injected = 0
        for now in range(300):
            # Saturate: a data packet every cycle from two sources.
            for src in (0, 1):
                pkt = Packet(PacketClass.REQUEST, src, dst, 8,
                             inject_cycle=now)
                net.inject(pkt, now)
                injected += 1
            net.step(now)
        # 600 x 8-flit packets eject at ~8 cycles each: allow for the
        # full serialised drain.
        for now in range(300, 12_000):
            net.step(now)
            if net.quiesced():
                break
        assert net.quiesced()
        assert delivered[0] == injected

    def test_blocked_ejection_backpressures_to_source(self):
        cfg, topo, net = tiny_network()
        dst = topo.bank_node(0)
        net.register_sink(dst, lambda p, t: None,
                          flow_control=lambda p: False)
        for i in range(40):
            net.inject(Packet(PacketClass.REQUEST, 1, dst, 8,
                              inject_cycle=0), 0)
        for now in range(400):
            net.step(now)
        # Nothing delivered, nothing lost: everything is parked in VCs
        # or still queued at the source NI.
        assert net.stats.total_delivered == 0
        assert net.total_resident() \
            + len(net.source_queues[1]) == 40


class TestStarvationFreedom:
    def test_every_class_progresses_under_contention(self):
        cfg, topo, net = tiny_network()
        delivered = {k: 0 for k in PacketClass}

        def sink(p, t):
            delivered[p.klass] += 1

        for node in range(topo.n_nodes):
            net.register_sink(node, sink)
        dst = topo.bank_node(3)
        for i in range(12):
            net.inject(Packet(PacketClass.REQUEST, 0, dst, 8,
                              inject_cycle=0), 0)
        net.inject(Packet(PacketClass.COHERENCE, 0, dst, 1,
                          inject_cycle=0), 0)
        net.inject(Packet(PacketClass.MEMORY, topo.bank_node(0), dst, 1,
                          inject_cycle=0), 0)
        for now in range(3000):
            net.step(now)
            if net.quiesced():
                break
        assert delivered[PacketClass.REQUEST] == 12
        assert delivered[PacketClass.COHERENCE] == 1
        assert delivered[PacketClass.MEMORY] == 1


class TestRegionEdgeCases:
    def test_region_count_equal_to_banks(self):
        # One bank per region: every parent is the core-layer TSB node.
        topo = Mesh3D(4)
        rm = RegionMap(topo, 16, hop_distance=2)
        for bank in range(16):
            parent = rm.parent_of_bank[bank]
            assert topo.layer_of(parent) == 0

    def test_two_regions(self):
        topo = Mesh3D(4)
        rm = RegionMap(topo, 2)
        assert len(rm.regions) == 2
        assert all(len(r.banks) == 8 for r in rm.regions)

    def test_untileable_count_raises(self):
        with pytest.raises(ConfigError):
            RegionMap(Mesh3D(4), 5)

    def test_large_hop_distance_degrades_gracefully(self):
        topo = Mesh3D(4)
        rm = RegionMap(topo, 4, hop_distance=10)
        # All banks closer than 10 hops: every parent is the TSB node.
        for bank in range(16):
            assert rm.parent_of_bank[bank] \
                == rm.region_of(bank).tsb_core_node
