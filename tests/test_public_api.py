"""The public API surface: everything README/examples rely on."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_scheme_values_match_paper_labels(self):
        labels = [s.value for s in repro.ALL_SCHEMES]
        assert labels == [
            "SRAM-64TSB", "MRAM-64TSB", "MRAM-4TSB", "MRAM-4TSB-SS",
            "MRAM-4TSB-RCA", "MRAM-4TSB-WB",
        ]

    def test_quickstart_snippet_shape(self):
        # The exact snippet from the package docstring / README.
        comparison = repro.compare_schemes(
            repro.app_factory("x264"), "x264",
            schemes=(repro.Scheme.SRAM_64TSB,
                     repro.Scheme.STTRAM_4TSB_WB),
            cycles=300, warmup=100, mesh_width=4, capacity_scale=1 / 64,
        )
        series = comparison.normalized_throughput()
        assert set(series) == {repro.Scheme.SRAM_64TSB,
                               repro.Scheme.STTRAM_4TSB_WB}

    def test_subpackage_exports(self):
        from repro import analysis, cache, core, cpu, noc, workloads

        for module in (analysis, cache, core, cpu, noc, workloads):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_make_config_roundtrip_through_public_names(self):
        cfg = repro.make_config(repro.Scheme.STTRAM_4TSB_WB,
                                mesh_width=4)
        assert cfg.estimator is repro.Estimator.WINDOW
        assert repro.with_write_buffer(cfg).write_buffer is not None
        assert repro.with_extra_vc(cfg).n_vcs == cfg.n_vcs + 1
