"""Invariant-guard coverage: fingerprint identity, crafted credit
leaks, accounting drift, and the deadlock watchdog.

The guard's core contract is that it is a pure *reader*: enabling it on
a fault-free run must not perturb a single result field, across all
four benchmarked schemes and both schedulers.  The violation tests then
corrupt simulator state deliberately and require a structured
diagnostic -- an observability event plus a typed exception -- instead
of silent drift or a hang.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, GuardError, GuardViolationError
from repro.noc.packet import reset_packet_ids
from repro.obs import (
    EV_GUARD_DEADLOCK, EV_GUARD_VIOLATION, InMemorySink, Observability,
    validate_event,
)
from repro.sim.config import Scheme
from repro.sim.guard import GuardConfig, InvariantGuard
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous
from tests.conftest import small_config

SCHEMES = [
    Scheme.SRAM_64TSB,
    Scheme.STTRAM_64TSB,
    Scheme.STTRAM_4TSB,
    Scheme.STTRAM_4TSB_WB,
]


def _run(scheme, scheduler, guard, cycles=400, warmup=100):
    reset_packet_ids()
    cfg = small_config(scheme)
    sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                       scheduler=scheduler, guard=guard)
    return sim, sim.run(cycles, warmup=warmup)


class TestGuardIsInvisible:
    """Guard-on, fault-free runs are fingerprint-identical to bare
    runs (the acceptance bar for an always-available guard)."""

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
    @pytest.mark.parametrize("scheduler", ["dense", "event"])
    def test_fingerprint_identical(self, scheme, scheduler):
        _, bare = _run(scheme, scheduler, guard=None)
        sim, guarded = _run(scheme, scheduler, guard=True)
        assert bare.packets_delivered > 0
        assert sim.guard.checks_run > 0  # the guard actually ran
        diffs = [
            key for key in bare.__dict__
            if bare.__dict__[key] != guarded.__dict__[key]
        ]
        assert not diffs, (
            f"{scheme.value}/{scheduler}: guard perturbed {diffs}"
        )

    def test_guard_accepts_config_and_instance(self):
        cfg_guard = GuardConfig(check_period=8, progress_window=500)
        sim, _ = _run(Scheme.STTRAM_4TSB, "event", guard=cfg_guard)
        assert sim.guard.config.check_period == 8
        instance = InvariantGuard(GuardConfig(check_period=4))
        sim, _ = _run(Scheme.STTRAM_4TSB, "event", guard=instance)
        assert sim.guard is instance


def _sim_with_traffic(scheduler="dense", guard=True):
    """A mid-flight simulator with packets resident in routers."""
    reset_packet_ids()
    cfg = small_config(Scheme.STTRAM_4TSB)
    sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                       scheduler=scheduler, guard=guard)
    for _ in range(300):
        sim.step()
        if sim.network.total_resident() > 0:
            return sim
    raise AssertionError("no resident packets after 300 cycles")


def _occupied_router(sim):
    for router in sim.network.routers:
        if router.n_resident:
            return router
    raise AssertionError("no occupied router")


class TestConservationViolations:
    def test_credit_leak_is_flagged(self):
        """Clearing a VC slot under a queued entry is a credit leak."""
        sim = _sim_with_traffic()
        obs = Observability()
        sink = InMemorySink()
        obs.add_sink(sink)
        obs.attach(sim)
        router = _occupied_router(sim)
        for entries in router.out_entries:
            if entries:
                entry = entries[0]
                slot = entry[0] * router.n_vcs + entry[1]
                router.vc_pkt[slot] = None  # the leak
                break
        with pytest.raises(GuardViolationError) as err:
            sim.guard.check(sim.cycle)
        assert err.value.diagnostic["check"] in ("credit", "conservation")
        events = sink.by_kind(EV_GUARD_VIOLATION)
        assert events, "violation must be emitted on the event bus"
        assert not validate_event({
            "cycle": events[0].cycle, "kind": events[0].kind,
            **events[0].data,
        })

    def test_double_allocated_slot_is_flagged(self):
        sim = _sim_with_traffic()
        router = _occupied_router(sim)
        for entries in router.out_entries:
            if entries:
                entry = entries[0]
                # Forge a second entry claiming the same (port, vc).
                clone = [entry[0], entry[1], entry[2], entry[3]]
                entries.append(clone)
                router.n_resident += 1
                break
        with pytest.raises(GuardViolationError):
            sim.guard.check(sim.cycle)

    def test_accounting_drift_is_flagged(self):
        """injected - delivered must equal queued + resident."""
        sim = _sim_with_traffic()
        sim.network.packets_injected_total += 1
        with pytest.raises(GuardViolationError) as err:
            sim.guard.check(sim.cycle)
        assert err.value.diagnostic["check"] == "accounting"

    def test_port_mask_drift_is_flagged(self):
        sim = _sim_with_traffic()
        router = _occupied_router(sim)
        router.port_mask ^= 1 << 6  # flip an unoccupied port bit
        with pytest.raises(GuardViolationError):
            sim.guard.check(sim.cycle)

    def test_guard_error_hierarchy(self):
        assert issubclass(GuardViolationError, GuardError)
        assert issubclass(DeadlockError, GuardError)


def _deadlocked_sim(scheduler):
    """A simulation whose bank sinks reject every ejection: traffic
    backs up through the routers and forward progress stops."""
    reset_packet_ids()
    cfg = small_config(Scheme.STTRAM_4TSB)
    guard = GuardConfig(check_period=16, progress_window=300)
    sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                       scheduler=scheduler, guard=guard)
    reject = lambda pkt: False
    for node in list(sim.network.flow_control):
        sim.network.flow_control[node] = reject
        sim.network._flow_at[node] = reject
    return sim


class TestDeadlockWatchdog:
    @pytest.mark.parametrize("scheduler", ["dense", "event"])
    def test_stall_raises_within_window(self, scheduler):
        sim = _deadlocked_sim(scheduler)
        obs = Observability()
        sink = InMemorySink()
        obs.add_sink(sink)
        obs.attach(sim)
        with pytest.raises(DeadlockError) as err:
            sim.run(20_000, warmup=0)
        diag = err.value.diagnostic
        window = sim.guard.config.progress_window
        # Flagged promptly: within one check period of the deadline,
        # never silently skipped past (the event scheduler's wake bound
        # forces the deadline cycle to execute).
        assert diag["now"] - diag["since"] <= window + 16 + 1
        assert diag["resident"] > 0 or diag["queued"] > 0
        assert diag["occupancy"]
        events = sink.by_kind(EV_GUARD_DEADLOCK)
        assert len(events) == 1
        assert not validate_event({
            "cycle": events[0].cycle, "kind": events[0].kind,
            **events[0].data,
        })

    def test_idle_simulation_never_trips(self):
        """Quiescence resets the progress clock: an idle network is
        not a deadlock, no matter how long it idles."""
        reset_packet_ids()
        cfg = small_config(Scheme.STTRAM_4TSB)
        guard = GuardConfig(check_period=16, progress_window=50)
        sim = CMPSimulator(cfg, homogeneous("sclust", cfg, seed=5),
                           scheduler="event", guard=guard)
        # Tiny window, healthy run: traffic pauses exceed 50 cycles at
        # warmup boundaries only if the network is non-quiesced; a
        # healthy run must complete without tripping.
        result = sim.run(2_000, warmup=200)
        assert result.packets_delivered > 0

    def test_wake_bound_is_never_at_idle(self):
        sim, _ = _run(Scheme.STTRAM_4TSB, "event", guard=True,
                      cycles=200, warmup=0)
        if sim.network.quiesced():
            from repro.noc.router import NEVER
            assert sim.guard.wake_bound(sim.cycle) == NEVER
