"""Observability must not perturb -- nor differ across -- schedulers.

Two properties:

1. **Zero perturbation**: attaching an observability session leaves the
   simulation bit-identical (same ``SimulationResult``) to an
   uninstrumented run.
2. **Scheduler invariance**: the dense and event schedulers emit
   identical event streams (modulo the ``sched.*`` diagnostics, which
   only exist under the event scheduler) and identical epoch samples at
   common epoch boundaries, on a seeded write-burst workload.
"""

from __future__ import annotations

import pytest

from repro.noc.packet import reset_packet_ids
from repro.obs import InMemorySink, Observability
from repro.obs.events import SCHEDULER_KINDS
from repro.sim.perf import perf_workload
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous
from tests.conftest import small_config

CYCLES = 900
WARMUP = 150


def _burst_run(scheduler, instrument=True, seed=5):
    reset_packet_ids()
    config = small_config()
    sim = CMPSimulator(config, perf_workload(config, seed=seed),
                       scheduler=scheduler)
    obs = sink = None
    if instrument:
        obs = Observability(epoch=256)
        sink = InMemorySink()
        obs.add_sink(sink)
        obs.attach(sim)
    result = sim.run(CYCLES, warmup=WARMUP)
    return sim, result, obs, sink


def _stream(sink):
    """The scheduler-comparable event stream: (cycle, kind, payload)."""
    return [
        (e.cycle, e.kind, e.data)
        for e in sink.events if e.kind not in SCHEDULER_KINDS
    ]


class TestObservabilityEquivalence:
    @pytest.mark.parametrize("scheduler", ["dense", "event"])
    def test_tracing_does_not_perturb_results(self, scheduler):
        _s, bare, _o, _k = _burst_run(scheduler, instrument=False)
        _s, traced, _o, _k = _burst_run(scheduler, instrument=True)
        assert bare.__dict__ == traced.__dict__

    def test_event_streams_identical_across_schedulers(self):
        _s1, dense_result, _o1, dense_sink = _burst_run("dense")
        _s2, event_result, _o2, event_sink = _burst_run("event")

        dense_stream = _stream(dense_sink)
        event_stream = _stream(event_sink)
        assert len(dense_stream) == len(event_stream)
        # Pinpoint the first divergence rather than dumping both streams.
        for i, (d, e) in enumerate(zip(dense_stream, event_stream)):
            assert d == e, f"stream diverges at event {i}: {d} != {e}"
        assert dense_stream, "comparison must not be vacuous"
        assert dense_result.__dict__ == event_result.__dict__

    def test_estimator_accuracy_scheduler_invariant(self):
        _s1, dense_result, _o1, _k1 = _burst_run("dense")
        _s2, event_result, _o2, _k2 = _burst_run("event")
        acc = dense_result.estimator_accuracy
        assert acc is not None and acc["samples"] > 0
        assert acc == event_result.estimator_accuracy

    def test_epoch_samples_match_at_common_boundaries(self):
        """Samples taken at the same cycle agree; the event scheduler
        may displace a boundary past skipped cycles (recording its true
        cycle/span), which shifts the *window* a rate is averaged over.
        So at every common cycle the instantaneous and cumulative fields
        (router occupancy, injected/delivered, estimator accuracy) must
        be identical, and whenever the two samples cover the same window
        (equal spans) the whole sample -- busy fractions, TSB rates --
        must be identical too."""
        _s1, _r1, dense_obs, _k1 = _burst_run("dense")
        _s2, _r2, event_obs, _k2 = _burst_run("event")

        dense_samples = {s.cycle: s for s in dense_obs.samples}
        event_samples = {s.cycle: s for s in event_obs.samples}
        common = sorted(set(dense_samples) & set(event_samples))
        assert common, "no common epoch boundaries"
        assert max(dense_samples) == max(event_samples)  # end-of-run

        full_matches = 0
        for cycle in common:
            d, e = dense_samples[cycle], event_samples[cycle]
            assert d.router_occupancy == e.router_occupancy, cycle
            assert d.injected == e.injected, cycle
            assert d.delivered == e.delivered, cycle
            assert d.estimator_accuracy == e.estimator_accuracy, cycle
            if d.span == e.span:
                dd, ee = d.as_dict(), e.as_dict()
                dd.pop("executed")
                ee.pop("executed")
                assert dd == ee, f"epoch sample at cycle {cycle} diverges"
                full_matches += 1
        assert full_matches, "no same-span samples to compare"

    def test_homogeneous_app_stream_equivalence(self):
        """Same property on a cache-realistic workload (tpcc)."""
        def run(scheduler):
            reset_packet_ids()
            config = small_config()
            sim = CMPSimulator(
                config, homogeneous("tpcc", config, seed=11),
                scheduler=scheduler)
            obs = Observability(epoch=200)
            sink = InMemorySink()
            obs.add_sink(sink)
            obs.attach(sim)
            sim.run(500, warmup=100)
            return sink

        assert _stream(run("dense")) == _stream(run("event"))
