"""Unit and integration tests for the repro.obs observability layer."""

from __future__ import annotations

import json

import pytest

from repro.noc.packet import reset_packet_ids
from repro.obs import (
    AccuracySummary, ChromeTraceSink, Event, InMemorySink, JSONLSink,
    MetricsRegistry, Observability, busy_at, percentiles_from_hist,
    resolve_predictions, validate_event, validate_jsonl,
)
from repro.obs.events import (
    ALL_KINDS, EV_BANK_END, EV_BANK_START, EV_EST_PREDICT, EV_PKT_DELIVER,
    EV_PKT_FORWARD, EV_PKT_INJECT, EV_SCHED_SKIP, EV_TSB_COMBINE,
    SCHEDULER_KINDS,
)
from repro.obs.metrics import Histogram
from repro.obs.report import render_report, shade
from repro.obs.schema import EVENT_SCHEMA
from repro.sim.config import Scheme
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous
from tests.conftest import small_config


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestPercentiles:
    def test_empty_hist_yields_zero(self):
        assert percentiles_from_hist({}) == {50.0: 0.0, 95.0: 0.0,
                                             99.0: 0.0}

    def test_single_value(self):
        assert percentiles_from_hist({7: 100}) == {50.0: 7.0, 95.0: 7.0,
                                                   99.0: 7.0}

    def test_nearest_rank_uniform(self):
        # Values 1..100, once each: pQ is exactly Q.
        hist = {v: 1 for v in range(1, 101)}
        ps = percentiles_from_hist(hist)
        assert ps == {50.0: 50.0, 95.0: 95.0, 99.0: 99.0}

    def test_matches_sorted_rank_definition(self):
        hist = {3: 5, 10: 2, 40: 1, 41: 1, 500: 1}
        expanded = sorted(
            v for v, n in hist.items() for _ in range(n)
        )
        total = len(expanded)
        for q in (50.0, 95.0, 99.0):
            rank = max(1, -(-int(q * total) // 100))
            expected = float(expanded[rank - 1])
            assert percentiles_from_hist(hist, (q,))[q] == expected

    def test_histogram_as_dict(self):
        h = Histogram("x")
        for v in (1, 1, 2, 100):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 4
        assert d["mean"] == pytest.approx(26.0)
        assert d["p50"] == 1.0
        assert d["max"] == 100.0


class TestRegistry:
    def test_created_on_first_use_and_cached(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(3)
        assert reg.counter("a").value == 3
        assert "a" in reg and len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(4)
        d = reg.as_dict()
        assert d["c"] == {"type": "counter", "value": 1}
        assert d["g"]["value"] == 2.5
        assert d["h"]["p99"] == 4.0


# ----------------------------------------------------------------------
# Accuracy
# ----------------------------------------------------------------------

class TestAccuracy:
    def test_busy_at(self):
        starts, ends = [10, 50], [43, 60]
        assert not busy_at(starts, ends, 9)
        assert busy_at(starts, ends, 10)
        assert busy_at(starts, ends, 42)
        assert not busy_at(starts, ends, 43)
        assert busy_at(starts, ends, 55)
        assert not busy_at(starts, ends, 60)

    def test_outcome_classification(self):
        s = AccuracySummary("wb")
        s.add(True, True)    # correct
        s.add(False, False)  # correct
        s.add(True, False)   # over-prediction
        s.add(False, True)   # under-prediction
        d = s.as_dict()
        assert d["samples"] == 4
        assert d["correct"] == 2
        assert d["over_predictions"] == 1
        assert d["under_predictions"] == 1
        assert d["accuracy"] == 0.5

    def test_resolve_with_horizon(self):
        intervals = {0: [(10, 43)]}
        predictions = [
            (0, 20, True),    # resolvable, correct
            (0, 5, True),     # resolvable, over-prediction
            (0, 99, True),    # beyond horizon: dropped
        ]
        s = resolve_predictions(predictions, intervals, "wb", horizon=50)
        assert s.samples == 2
        assert s.correct == 1
        assert s.over_predictions == 1


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------

class TestSchema:
    def test_every_kind_has_a_schema(self):
        assert set(EVENT_SCHEMA) == set(ALL_KINDS)

    def test_valid_event_passes(self):
        row = {"cycle": 5, "kind": EV_TSB_COMBINE,
               "node": 1, "port": 2, "pid": 3}
        assert validate_event(row) == []

    def test_missing_field_detected(self):
        row = {"cycle": 5, "kind": EV_TSB_COMBINE, "node": 1, "port": 2}
        assert any("pid" in e for e in validate_event(row))

    def test_undeclared_field_detected(self):
        row = {"cycle": 5, "kind": EV_TSB_COMBINE,
               "node": 1, "port": 2, "pid": 3, "extra": 1}
        assert any("extra" in e for e in validate_event(row))

    def test_bool_is_not_an_int(self):
        row = {"cycle": 5, "kind": EV_TSB_COMBINE,
               "node": True, "port": 2, "pid": 3}
        assert any("node" in e for e in validate_event(row))

    def test_unknown_kind(self):
        assert validate_event({"cycle": 1, "kind": "nope"}) != []


# ----------------------------------------------------------------------
# Instrumented end-to-end run
# ----------------------------------------------------------------------

def _instrumented(scheme=Scheme.STTRAM_4TSB_WB, cycles=600, warmup=0,
                  scheduler="event", epoch=128, seed=3, sink=None):
    reset_packet_ids()
    config = small_config(scheme)
    sim = CMPSimulator(config, homogeneous("tpcc", config, seed=seed),
                       scheduler=scheduler)
    obs = Observability(epoch=epoch)
    if sink is not None:
        obs.add_sink(sink)
    obs.attach(sim)
    result = sim.run(cycles, warmup=warmup)
    return sim, obs, result


class TestInstrumentedRun:
    def test_lifecycle_kinds_emitted_and_valid(self):
        sink = InMemorySink()
        _sim, _obs, _result = _instrumented(sink=sink)
        counts = sink.counts()
        for kind in (EV_PKT_INJECT, EV_PKT_FORWARD, EV_PKT_DELIVER,
                     EV_BANK_START, EV_BANK_END, EV_EST_PREDICT,
                     EV_TSB_COMBINE):
            assert counts.get(kind, 0) > 0, f"no {kind} events"
        for event in sink.events:
            assert validate_event(event.as_dict()) == [], event

    def test_metrics_match_network_stats_without_warmup(self):
        sink = InMemorySink()
        sim, obs, _result = _instrumented(sink=sink, warmup=0)
        reg = obs.registry
        net = sim.network.stats
        assert reg.counter("net.delivered").value == net.total_delivered
        assert reg.counter("net.injected").value == net.total_injected
        assert reg.histogram("net.latency").hist == net.latency_hist

    def test_detach_restores_dark_mode(self):
        sink = InMemorySink()
        sim, obs, _result = _instrumented(sink=sink, cycles=200)
        seen = len(sink)
        obs.detach()
        assert sim.network.trace is None
        assert all(b.trace is None for b in sim.banks)
        sim.run(200, warmup=0)
        assert len(sink) == seen

    def test_epoch_sampler_timeline(self):
        _sim, obs, _result = _instrumented(cycles=600, epoch=128)
        samples = obs.samples
        assert len(samples) >= 4
        for s in samples:
            assert 1 <= s.span
            assert all(0.0 <= f <= 1.0 for f in s.bank_busy_frac)
            assert all(v >= 0 for v in s.router_occupancy)
        cycles = [s.cycle for s in samples]
        assert cycles == sorted(cycles)
        # The final sample is forced at the end of the run.
        assert samples[-1].cycle == _sim.cycle
        # Delivered counts are cumulative within the measurement window.
        delivered = [s.delivered for s in samples]
        assert delivered == sorted(delivered)

    def test_estimator_accuracy_in_result(self):
        _sim, _obs, result = _instrumented()
        acc = result.estimator_accuracy
        assert acc is not None
        assert acc["estimator"] == "wb"
        assert acc["samples"] > 0
        assert acc["samples"] == (acc["correct"] + acc["over_predictions"]
                                  + acc["under_predictions"])
        assert 0.0 <= acc["accuracy"] <= 1.0
        d = result.to_dict()
        assert d["estimator_accuracy"] == acc
        assert d["latency_p99"] >= d["latency_p95"] >= d["latency_p50"] > 0

    def test_round_robin_run_has_no_accuracy(self):
        _sim, _obs, result = _instrumented(scheme=Scheme.STTRAM_64TSB)
        assert result.estimator_accuracy is None

    def test_sched_events_only_under_event_scheduler(self):
        sink = InMemorySink()
        _instrumented(scheduler="dense", sink=sink, cycles=300)
        assert not any(e.kind in SCHEDULER_KINDS for e in sink.events)


class TestGroundTruthIntervals:
    def test_recorded_without_observability(self):
        """Service intervals are always on (analysis needs ground truth
        even for uninstrumented runs)."""
        reset_packet_ids()
        config = small_config()
        sim = CMPSimulator(config, homogeneous("tpcc", config, seed=3))
        sim.run(400, warmup=0)
        intervals = [b.stats.service_intervals for b in sim.banks]
        assert any(intervals)
        for bank, ivals in zip(sim.banks, intervals):
            for start, end in ivals:
                assert start <= end
            # Non-overlapping and ordered (bank service is serial).
            for (s1, e1), (s2, e2) in zip(ivals, ivals[1:]):
                assert e1 <= s2
            # Preemption may truncate intervals below busy_cycles,
            # never above.
            assert sum(e - s for s, e in ivals) <= bank.stats.busy_cycles


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class TestSinks:
    def test_jsonl_roundtrip_and_schema(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JSONLSink(path)
        _sim, obs, _result = _instrumented(sink=sink, cycles=300)
        obs.close()
        assert sink.events_written > 0
        rows, errors = validate_jsonl(path)
        assert errors == []
        assert rows == sink.events_written

    def test_chrome_trace_document(self, tmp_path):
        sink = ChromeTraceSink()
        _sim, obs, _result = _instrumented(sink=sink, cycles=300)
        path = str(tmp_path / "trace.json")
        sink.write(path)
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        for e in slices:
            assert e["dur"] >= 1
            assert e["ts"] >= 0

    def test_in_memory_sink_queries(self):
        sink = InMemorySink()
        sink.on_event(1, EV_SCHED_SKIP, {"start": 2, "span": 3})
        sink.on_event(5, EV_SCHED_SKIP, {"start": 6, "span": 1})
        assert len(sink) == 2
        assert len(sink.by_kind(EV_SCHED_SKIP)) == 2
        assert sink.counts() == {EV_SCHED_SKIP: 2}
        assert sink.events[0] == Event(1, EV_SCHED_SKIP,
                                       {"start": 2, "span": 3})


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------

class TestReport:
    def test_shade_ramp(self):
        assert shade(0.0) == " "
        assert shade(1.0) == "@"
        assert shade(2.0) == "@"  # clamped

    def test_render_report_smoke(self):
        _sim, obs, result = _instrumented(cycles=400)
        text = render_report(result.to_dict(), obs,
                             _sim.config.mesh_width)
        assert "packet latency" in text
        assert "accuracy" in text
        assert "Epoch samples" in text
        assert "metrics:" in text
