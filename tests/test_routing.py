"""Tests for repro.noc.routing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.regions import RegionMap
from repro.noc.packet import Packet, PacketClass
from repro.noc.routing import RoutingPolicy
from repro.noc.topology import DOWN, LOCAL, Mesh3D, UP


def make_packet(klass, src, dst, flits=1):
    return Packet(klass, src, dst, flits, inject_cycle=0)


@pytest.fixture
def topo():
    return Mesh3D(8)


@pytest.fixture
def unrestricted(topo):
    return RoutingPolicy(topo)


@pytest.fixture
def restricted(topo):
    return RoutingPolicy(topo, RegionMap(topo, 4))


class TestUnrestrictedRouting:
    def test_request_descends_at_source_column(self, topo, unrestricted):
        # Z-X-Y: core 0 -> bank 63 descends immediately.
        pkt = make_packet(PacketClass.REQUEST, 0, topo.bank_node(63))
        unrestricted.prepare(pkt)
        assert unrestricted.next_port(0, pkt) == DOWN

    def test_request_then_xy_in_cache_layer(self, topo, unrestricted):
        pkt = make_packet(PacketClass.REQUEST, 0, topo.bank_node(63))
        unrestricted.prepare(pkt)
        nodes = unrestricted.route_nodes(pkt)
        assert nodes[0] == 0
        assert nodes[1] == topo.bank_node(0)
        assert nodes[-1] == topo.bank_node(63)
        # Everything after the first hop stays in the cache layer.
        assert all(topo.layer_of(n) == 1 for n in nodes[1:])

    def test_response_crosses_cache_layer_then_ascends(
            self, topo, unrestricted):
        pkt = make_packet(PacketClass.RESPONSE, topo.bank_node(63), 0)
        unrestricted.prepare(pkt)
        nodes = unrestricted.route_nodes(pkt)
        # X-Y-Z: all but the final hop stay in the cache layer.
        assert all(topo.layer_of(n) == 1 for n in nodes[:-1])
        assert nodes[-1] == 0
        assert nodes[-2] == topo.bank_node(0)

    def test_local_delivery(self, topo, unrestricted):
        pkt = make_packet(PacketClass.REQUEST, 0, topo.bank_node(0))
        unrestricted.prepare(pkt)
        assert unrestricted.next_port(0, pkt) == DOWN
        assert unrestricted.next_port(topo.bank_node(0), pkt) == LOCAL

    def test_same_layer_memory_traffic_xy(self, topo, unrestricted):
        pkt = make_packet(PacketClass.MEMORY, topo.bank_node(5),
                          topo.bank_node(0))
        unrestricted.prepare(pkt)
        nodes = unrestricted.route_nodes(pkt)
        assert all(topo.layer_of(n) == 1 for n in nodes)
        assert len(nodes) - 1 == topo.manhattan(
            topo.bank_node(5), topo.bank_node(0))


class TestRestrictedRouting:
    def test_request_passes_region_tsb(self, topo, restricted):
        rm = restricted.region_map
        # Paper Figure 5: requests for bank 89-64=25 serialise through
        # core node 27 and descend at the region TSB.
        bank = 89 - 64
        pkt = make_packet(PacketClass.REQUEST, 7, topo.bank_node(bank))
        restricted.prepare(pkt)
        assert pkt.via == rm.request_via(bank) == 27
        nodes = restricted.route_nodes(pkt)
        assert 27 in nodes
        assert 91 in nodes  # TSB landing node
        # Descent happens exactly at the TSB column.
        idx = nodes.index(27)
        assert nodes[idx + 1] == 91

    def test_all_requests_to_region_share_tsb(self, topo, restricted):
        rm = restricted.region_map
        bank = 10
        via = rm.request_via(bank)
        for core in (0, 7, 56, 63):
            pkt = make_packet(
                PacketClass.REQUEST, core, topo.bank_node(bank))
            restricted.prepare(pkt)
            nodes = restricted.route_nodes(pkt)
            assert via in nodes

    def test_responses_not_restricted(self, topo, restricted):
        # Responses may ascend through any TSV (cache layer X-Y first).
        pkt = make_packet(PacketClass.RESPONSE, topo.bank_node(30), 2)
        restricted.prepare(pkt)
        nodes = restricted.route_nodes(pkt)
        assert nodes[-2] == topo.bank_node(2)
        assert nodes[-1] == 2

    def test_coherence_not_restricted(self, topo, restricted):
        rm = restricted.region_map
        pkt = make_packet(PacketClass.COHERENCE, 63, topo.bank_node(0))
        restricted.prepare(pkt)
        nodes = restricted.route_nodes(pkt)
        # INV_ACKs descend at the destination column, not the TSB.
        assert rm.request_via(0) not in nodes[:-2]

    def test_route_nodes_does_not_consume_via(self, topo, restricted):
        pkt = make_packet(PacketClass.REQUEST, 0, topo.bank_node(60))
        restricted.prepare(pkt)
        via = pkt.via
        restricted.route_nodes(pkt)
        assert pkt.via == via


@given(
    core=st.integers(0, 63),
    bank=st.integers(0, 63),
    klass=st.sampled_from([PacketClass.REQUEST, PacketClass.RESPONSE,
                           PacketClass.COHERENCE, PacketClass.MEMORY]),
    restricted_flag=st.booleans(),
)
def test_property_every_route_terminates(core, bank, klass,
                                         restricted_flag):
    topo = Mesh3D(8)
    policy = RoutingPolicy(
        topo, RegionMap(topo, 4) if restricted_flag else None)
    if klass in (PacketClass.REQUEST,):
        src, dst = core, topo.bank_node(bank)
    elif klass is PacketClass.MEMORY:
        src, dst = topo.bank_node(core), topo.bank_node(bank)
    else:
        src, dst = topo.bank_node(bank), core
    if src == dst:
        return
    pkt = make_packet(klass, src, dst)
    policy.prepare(pkt)
    nodes = policy.route_nodes(pkt)
    assert nodes[-1] == dst
    assert len(nodes) <= 4 * topo.n_nodes
