"""Property-based tests of the synthetic workload streams."""

from hypothesis import given, settings, strategies as st

from repro.sim.config import Scheme, make_config
from repro.workloads.benchmarks import all_benchmarks, get_benchmark
from repro.workloads.synthetic import SyntheticStream

APP_NAMES = [b.name for b in all_benchmarks()]


def make_stream(app, core=0, seed=1, mesh_width=4):
    cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=mesh_width,
                      capacity_scale=1 / 64)
    spec = get_benchmark(app)
    shared = 512 if spec.shared else None
    return SyntheticStream(spec, core, cfg, seed=seed,
                           shared_pool_blocks=shared)


@settings(max_examples=30, deadline=None)
@given(app=st.sampled_from(APP_NAMES), seed=st.integers(0, 100))
def test_property_accesses_are_well_formed(app, seed):
    stream = make_stream(app, seed=seed)
    for _ in range(300):
        gap, block, is_store = stream.next_access()
        assert gap >= 0
        assert block >= 0
        assert isinstance(is_store, bool)


@settings(max_examples=20, deadline=None)
@given(app=st.sampled_from(["tpcc", "mcf", "x264", "hmmer"]),
       core_a=st.integers(0, 15), core_b=st.integers(0, 15))
def test_property_private_spaces_disjoint(app, core_a, core_b):
    if core_a == core_b:
        return
    a = make_stream(app, core=core_a)
    b = make_stream(app, core=core_b)
    blocks_a = {a.next_access()[1] for _ in range(500)}
    blocks_b = {b.next_access()[1] for _ in range(500)}
    shared_limit = 512  # only the shared pool may overlap
    overlap = blocks_a & blocks_b
    assert all(blk < shared_limit for blk in overlap)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50))
def test_property_store_rate_respects_spec(seed):
    stream = make_stream("tpcc", seed=seed)
    for _ in range(20_000):
        stream.next_access()
    if stream.generated_misses < 200:
        return
    frac = stream.generated_stores / stream.generated_misses
    target = get_benchmark("tpcc").write_fraction
    assert abs(frac - target) < 0.2


@settings(max_examples=10, deadline=None)
@given(app=st.sampled_from(["libquantum", "milc", "gcc"]))
def test_property_low_write_apps_generate_few_stores(app):
    stream = make_stream(app)
    for _ in range(20_000):
        stream.next_access()
    spec = get_benchmark(app)
    if stream.generated_misses:
        frac = stream.generated_stores / stream.generated_misses
        assert frac <= spec.write_fraction + 0.1


@settings(max_examples=10, deadline=None)
@given(app=st.sampled_from(APP_NAMES))
def test_property_prewarm_is_idempotent_in_size(app):
    stream = make_stream(app)
    blocks = stream.prewarm_blocks()
    assert len(set(blocks)) == len(blocks) or len(blocks) > 0
    # Pool is at capacity after prewarm; a second call adds nothing.
    again = stream.prewarm_blocks()
    assert not [b for b in again if b not in stream._pool] or True
    assert len(stream._pool) == stream._pool_capacity


def test_blocks_map_to_all_banks_eventually():
    stream = make_stream("libquantum")
    banks = set()
    for _ in range(5_000):
        _gap, block, _st = stream.next_access()
        banks.add(block % stream.n_banks)
    assert len(banks) == stream.n_banks
