"""Tests for the trace-driven core model."""

import pytest

from repro.cache.messages import CoherenceMsg, CoherenceOp, Transaction
from repro.cpu.core import Core
from repro.cpu.trace import IdleStream, ScriptedStream
from repro.noc.packet import Packet, PacketClass
from repro.sim.config import Scheme, make_config


class Harness:
    def __init__(self, stream, can_send=None, **overrides):
        self.config = make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                                  capacity_scale=1 / 256, **overrides)
        self.sent = []
        self.core = Core(
            0, 0, self.config, stream, self._send,
            bank_node_for_block=lambda b: 16 + b % 16,
            can_send=can_send,
        )
        self.now = 0

    def _send(self, klass, src, dst, flits, is_write, bank, payload, now):
        self.sent.append((klass, dst, flits, is_write, payload))

    def tick(self, cycles=1):
        for _ in range(cycles):
            self.core.step(self.now)
            self.now += 1

    def respond(self, txn):
        pkt = Packet(PacketClass.RESPONSE, 16, 0, 8, inject_cycle=self.now,
                     payload=txn)
        self.core.on_packet(pkt, self.now)

    def requests(self):
        return [s for s in self.sent if s[0] is PacketClass.REQUEST]


class TestCommit:
    def test_commit_width_two(self):
        h = Harness(IdleStream())
        h.tick(10)
        assert h.core.stats.committed == 20

    def test_l1_hit_no_traffic(self):
        h = Harness(ScriptedStream([(0, 5, False)] * 10, loop=True))
        h.core.l1.fill(5)
        h.tick(5)
        assert h.core.stats.l1_hits > 0
        assert not h.sent

    def test_store_hit_marks_dirty(self):
        h = Harness(ScriptedStream([(0, 5, True)]))
        h.core.l1.fill(5)
        h.tick(2)
        assert h.core.l1.is_dirty(5)


class TestLoadMiss:
    def test_load_miss_sends_read_request(self):
        h = Harness(ScriptedStream([(0, 7, False)]))
        h.tick(2)
        reqs = h.requests()
        assert len(reqs) == 1
        klass, dst, flits, is_write, txn = reqs[0]
        assert flits == 1 and not is_write
        assert txn.kind == "read" and txn.block == 7
        assert dst == 16 + 7

    def test_fill_unblocks_and_installs(self):
        h = Harness(ScriptedStream([(0, 7, False)]))
        h.tick(2)
        txn = h.requests()[0][4]
        h.respond(txn)
        assert h.core.l1.contains(7)
        assert h.core.quiesced()

    def test_miss_latency_recorded(self):
        h = Harness(ScriptedStream([(0, 7, False)]))
        h.tick(2)
        txn = h.requests()[0][4]
        h.now = 50
        h.respond(txn)
        assert h.core.stats.miss_latency_samples == 1
        assert h.core.stats.average_miss_latency() >= 48

    def test_dependent_load_blocks_window(self):
        h = Harness(ScriptedStream([(0, 7, False)]),
                    load_dep_prob=1.0, load_dep_window=4)
        h.tick(1)  # issues the load
        committed = h.core.stats.committed
        h.tick(20)  # idle stream afterwards, but window blocks
        assert h.core.stats.committed <= committed + 4
        assert h.core.stats.stall_cycles > 0

    def test_independent_load_does_not_block_soon(self):
        h = Harness(ScriptedStream([(0, 7, False)]),
                    load_dep_prob=0.0)
        h.tick(1)
        before = h.core.stats.committed
        h.tick(20)
        assert h.core.stats.committed > before + 30


class TestStoreMiss:
    def test_store_miss_writes_through(self):
        h = Harness(ScriptedStream([(0, 9, True)]))
        h.tick(2)
        reqs = h.requests()
        assert len(reqs) == 1
        klass, dst, flits, is_write, txn = reqs[0]
        assert is_write and flits == 8
        assert txn.kind == "store"
        # Write-no-allocate: the L1 does not install the block.
        assert not h.core.l1.contains(9)

    def test_store_miss_does_not_block(self):
        h = Harness(ScriptedStream([(0, 9, True)]))
        h.tick(10)
        assert h.core.stats.committed >= 18

    def test_ni_backpressure_stalls_stream(self):
        h = Harness(ScriptedStream([(0, i, True) for i in range(50)]),
                    can_send=lambda: False)
        h.tick(10)
        assert not h.sent
        assert h.core.stats.ni_stall_cycles > 0


class TestMSHRLimit:
    def test_mshr_full_stalls_loads(self):
        accesses = [(0, i, False) for i in range(40)]
        h = Harness(ScriptedStream(accesses), l1_mshrs=4,
                    load_dep_prob=0.0)
        h.tick(40)
        assert len(h.requests()) == 4
        assert h.core.stats.mshr_stall_cycles > 0


class TestCoherenceHandling:
    def test_invalidate_acks_home(self):
        h = Harness(IdleStream())
        h.core.l1.fill(3)
        msg = CoherenceMsg(op=CoherenceOp.INVALIDATE, block=3,
                           requester_core=5, home_bank=3)
        pkt = Packet(PacketClass.COHERENCE, 16, 0, 1, inject_cycle=0,
                     payload=msg)
        h.core.on_packet(pkt, 0)
        assert not h.core.l1.contains(3)
        acks = [s for s in h.sent if s[0] is PacketClass.COHERENCE]
        assert len(acks) == 1
        assert acks[0][4].op is CoherenceOp.INV_ACK

    def test_invalidate_of_dirty_block_writes_back(self):
        h = Harness(IdleStream())
        h.core.l1.fill(3, dirty=True)
        msg = CoherenceMsg(op=CoherenceOp.RECALL, block=3,
                           requester_core=None, home_bank=3)
        pkt = Packet(PacketClass.COHERENCE, 16, 0, 1, inject_cycle=0,
                     payload=msg)
        h.core.on_packet(pkt, 0)
        wbs = [s for s in h.sent if s[0] is PacketClass.REQUEST]
        assert len(wbs) == 1
        assert wbs[0][4].kind == "writeback"

    def test_forward_supplies_data_to_requester(self):
        h = Harness(IdleStream())
        h.core.l1.fill(3, dirty=True)
        txn = Transaction(core=5, block=3, is_store=False, kind="read",
                          issue_cycle=0)
        msg = CoherenceMsg(op=CoherenceOp.FORWARD, block=3,
                           requester_core=5, home_bank=3, txn=txn)
        pkt = Packet(PacketClass.COHERENCE, 16, 0, 1, inject_cycle=0,
                     payload=msg)
        h.core.on_packet(pkt, 0)
        data = [s for s in h.sent if s[0] is PacketClass.RESPONSE]
        assert len(data) == 1
        assert data[0][1] == 5  # requester core node
        assert txn.forwarded_from_owner

    def test_exclusive_forward_invalidates_owner_copy(self):
        h = Harness(IdleStream())
        h.core.l1.fill(3, dirty=True)
        txn = Transaction(core=5, block=3, is_store=True, kind="read",
                          issue_cycle=0)
        msg = CoherenceMsg(op=CoherenceOp.FORWARD, block=3,
                           requester_core=5, home_bank=3,
                           exclusive=True, txn=txn)
        pkt = Packet(PacketClass.COHERENCE, 16, 0, 1, inject_cycle=0,
                     payload=msg)
        h.core.on_packet(pkt, 0)
        assert not h.core.l1.contains(3)


class TestWritebacks:
    def test_dirty_l1_eviction_emits_writeback(self):
        h = Harness(IdleStream(), load_dep_prob=0.0)
        ways = h.config.l1_associativity
        sets = h.core.l1.n_sets
        # Fill one set with dirty blocks, then overflow via a fill.
        for i in range(ways):
            h.core.l1.fill(i * sets, dirty=True)
        txn = Transaction(core=0, block=ways * sets, is_store=False,
                          kind="read", issue_cycle=0)
        h.core.mshrs.allocate(ways * sets, waiter=(0, False))
        h.respond(txn)
        wbs = [s for s in h.sent
               if s[0] is PacketClass.REQUEST and s[4].kind == "writeback"]
        assert len(wbs) == 1
        assert h.core.stats.writebacks == 1
