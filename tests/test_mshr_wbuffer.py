"""Tests for MSHRs and the Sun et al. read-preemptive write buffer."""

import pytest

from repro.cache.mshr import MSHRFile
from repro.cache.write_buffer import WriteBuffer
from repro.sim.config import WriteBufferConfig


class TestMSHR:
    def test_primary_and_coalesced(self):
        m = MSHRFile(4)
        assert m.allocate(10, "a") is True
        assert m.allocate(10, "b") is False
        assert m.coalesced == 1
        assert m.complete(10) == ["a", "b"]
        assert len(m) == 0

    def test_full_returns_none(self):
        m = MSHRFile(2)
        assert m.allocate(1) is True
        assert m.allocate(2) is True
        assert m.allocate(3) is None
        assert m.full_stalls == 1

    def test_coalescing_allowed_when_full(self):
        m = MSHRFile(1)
        m.allocate(1, "a")
        assert m.allocate(1, "b") is False

    def test_force_allocate_ignores_limit(self):
        m = MSHRFile(1)
        m.allocate(1)
        assert m.force_allocate(2, "x") is True
        assert len(m) == 2
        assert m.complete(2) == ["x"]

    def test_outstanding(self):
        m = MSHRFile(4)
        m.allocate(9)
        assert m.outstanding(9)
        assert not m.outstanding(8)
        assert list(m.blocks()) == [9]

    def test_complete_unknown_block_is_empty(self):
        assert MSHRFile(4).complete(99) == []


class TestWriteBuffer:
    @pytest.fixture
    def wb(self):
        return WriteBuffer(WriteBufferConfig(entries=3))

    def test_absorbs_until_full(self, wb):
        assert wb.absorb(1) and wb.absorb(2) and wb.absorb(3)
        assert wb.full
        assert not wb.absorb(4)
        assert wb.writes_stalled == 1

    def test_rewrite_of_buffered_block_merges(self, wb):
        wb.absorb(1)
        assert wb.absorb(1)
        assert len(wb) == 1

    def test_probe_hits_buffered_writes(self, wb):
        wb.absorb(5)
        assert wb.probe(5)
        assert not wb.probe(6)
        assert wb.read_hits == 1

    def test_drain_fifo_order(self, wb):
        wb.absorb(1)
        wb.absorb(2)
        assert wb.start_drain() == 1
        assert wb.start_drain() is None  # one drain at a time
        wb.finish_drain()
        assert wb.drains_completed == 1
        assert wb.start_drain() == 2

    def test_probe_sees_draining_block(self, wb):
        wb.absorb(1)
        wb.start_drain()
        assert wb.probe(1)

    def test_read_preemption_restores_write(self, wb):
        wb.absorb(1)
        wb.absorb(2)
        block = wb.start_drain()
        preempted = wb.preempt_drain()
        assert preempted == block == 1
        assert wb.preemptions == 1
        # The preempted write drains first next time.
        assert wb.start_drain() == 1

    def test_preemption_disabled(self):
        wb = WriteBuffer(WriteBufferConfig(entries=3,
                                           read_preemption=False))
        wb.absorb(1)
        wb.start_drain()
        assert wb.preempt_drain() is None

    def test_preempt_without_drain_is_none(self, wb):
        assert wb.preempt_drain() is None

    def test_draining_counts_toward_capacity(self, wb):
        wb.absorb(1)
        wb.absorb(2)
        wb.absorb(3)
        wb.start_drain()
        assert wb.full  # 2 buffered + 1 draining
        assert wb.pending_drains() == 2
