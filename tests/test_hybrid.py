"""Tests for the hybrid SRAM/STT-RAM bank extension."""

import pytest

from repro.cache.hybrid import HybridPartition
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous
from tests.test_bank import Harness, read_txn, write_txn


def hybrid_config(**overrides):
    defaults = dict(mesh_width=4, capacity_scale=1 / 64,
                    hybrid_sram_ways=4)
    defaults.update(overrides)
    return make_config(Scheme.STTRAM_64TSB, **defaults)


class TestPartition:
    def test_capacity_is_way_fraction(self):
        cfg = hybrid_config()
        part = HybridPartition(cfg, bank=0)
        full_blocks = cfg.l2_bank_bytes // cfg.block_bytes
        expected = full_blocks * 4 // cfg.l2_associativity
        assert part.array.n_blocks == expected

    def test_absorb_and_lookup(self):
        part = HybridPartition(hybrid_config(), bank=0)
        assert part.absorb_write(100) is None
        assert part.lookup(100)
        assert not part.lookup(200)
        assert part.writes_absorbed == 1
        assert part.read_hits == 1

    def test_dirty_victim_migrates(self):
        cfg = hybrid_config()
        part = HybridPartition(cfg, bank=0)
        stride = part.array.n_sets * cfg.n_banks
        victims = [part.absorb_write(i * stride) for i in range(5)]
        migrated = [v for v in victims if v is not None]
        assert migrated  # 4 ways -> the 5th write evicts a dirty block
        assert part.migrations == len(migrated)


class TestHybridBank:
    @pytest.fixture
    def bank(self):
        return Harness(hybrid_config())

    def test_write_completes_at_sram_speed(self, bank):
        bank.deliver("request", write_txn(block=0))
        bank.tick(1)
        assert bank.bank.busy_until == 3  # SRAM write, not 33

    def test_read_hits_hybrid_partition(self, bank):
        bank.deliver("request", write_txn(block=0))
        bank.tick(10)
        bank.deliver("request", read_txn(block=0))
        bank.tick(10)
        assert bank.bank.stats.l2_hits == 1

    def test_single_copy_invariant(self, bank):
        bank.bank.array.fill(0)
        bank.deliver("request", write_txn(block=0))
        bank.tick(10)
        assert bank.bank.hybrid.lookup(0)
        assert not bank.bank.array.contains(0)

    def test_migration_lands_in_stt_array(self, bank):
        stride = bank.bank.hybrid.array.n_sets * bank.config.n_banks
        for i in range(5):
            bank.deliver("request", write_txn(block=i * stride))
            bank.tick(50)
        bank.tick(100)
        # The evicted dirty block ended up in the STT-RAM array.
        in_main = sum(
            1 for i in range(5) if bank.bank.array.contains(i * stride))
        in_hybrid = sum(
            1 for i in range(5)
            if bank.bank.hybrid.array.contains(i * stride))
        assert in_hybrid == 4
        assert in_main == 1


class TestSystemLevel:
    def _run(self, hybrid_ways):
        cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                          capacity_scale=1 / 64,
                          hybrid_sram_ways=hybrid_ways)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        return sim, sim.run(1000, warmup=400)

    def test_hybrid_cuts_bank_queueing_for_write_heavy_app(self):
        _s1, plain = self._run(0)
        _s2, hybrid = self._run(4)
        assert hybrid.avg_bank_queue_wait < plain.avg_bank_queue_wait

    def test_migrations_occur(self):
        sim, _res = self._run(2)
        migrations = sum(b.hybrid.migrations for b in sim.banks)
        assert migrations > 0

    def test_disabled_by_default(self):
        sim, _res = self._run(0)
        assert all(b.hybrid is None for b in sim.banks)
