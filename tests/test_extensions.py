"""Tests for the extension features: trace files and write termination."""

import io

import pytest

from repro.cpu.trace import ScriptedStream, StridedStream
from repro.cpu.tracefile import (
    RecordingStream, TraceFileStream, read_trace, write_trace,
)
from repro.errors import WorkloadError
from repro.sim.config import Scheme, make_config
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import homogeneous


class TestTraceIO:
    def test_roundtrip(self):
        accesses = [(2, 100, True), (0, 200, False), (5, 300, True)]
        buf = io.StringIO()
        assert write_trace(buf, accesses) == 3
        buf.seek(0)
        assert read_trace(buf) == accesses

    def test_comments_and_blanks_skipped(self):
        buf = io.StringIO("# header\n\n1 2 0\n")
        assert read_trace(buf) == [(1, 2, False)]

    def test_malformed_line_rejected(self):
        with pytest.raises(WorkloadError):
            read_trace(io.StringIO("1 2\n"))
        with pytest.raises(WorkloadError):
            read_trace(io.StringIO("a b c\n"))
        with pytest.raises(WorkloadError):
            read_trace(io.StringIO("1 2 7\n"))
        with pytest.raises(WorkloadError):
            read_trace(io.StringIO("-1 2 0\n"))

    def test_recording_stream_passthrough(self):
        inner = ScriptedStream([(1, 10, False), (2, 20, True)])
        rec = RecordingStream(inner)
        out = [rec.next_access() for _ in range(2)]
        assert rec.recorded == out

    def test_recording_limit(self):
        rec = RecordingStream(
            StridedStream(gap=0, start_block=0, stride=1, n_blocks=100),
            limit=5)
        for _ in range(20):
            rec.next_access()
        assert len(rec.recorded) == 5

    def test_trace_file_stream_replays(self):
        buf = io.StringIO()
        write_trace(buf, [(1, 10, False), (0, 11, True)])
        buf.seek(0)
        stream = TraceFileStream(buf)
        assert stream.next_access() == (1, 10, False)
        assert stream.next_access() == (0, 11, True)

    def test_record_then_replay_matches(self, tmp_path):
        cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=2,
                          capacity_scale=1 / 256)
        stream = homogeneous("tpcc", cfg).streams[0]
        rec = RecordingStream(stream, limit=100)
        original = [rec.next_access() for _ in range(100)]
        path = tmp_path / "trace.txt"
        with open(path, "w") as fp:
            rec.dump(fp)
        replay = TraceFileStream.from_path(str(path))
        assert [replay.next_access() for _ in range(100)] == original


class TestWriteTermination:
    def _run(self, termination):
        cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                          capacity_scale=1 / 64,
                          write_termination=termination)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        return sim, sim.run(1000, warmup=400)

    def test_termination_saves_cycles(self):
        sim, _res = self._run(True)
        saved = sum(b.termination_cycles_saved for b in sim.banks)
        assert saved > 0

    def test_disabled_by_default(self):
        sim, _res = self._run(False)
        assert all(b.termination_cycles_saved == 0 for b in sim.banks)

    def test_termination_reduces_bank_queueing(self):
        _s1, plain = self._run(False)
        _s2, early = self._run(True)
        assert early.avg_bank_queue_wait < plain.avg_bank_queue_wait

    def test_service_bounds(self):
        cfg = make_config(Scheme.STTRAM_64TSB, write_termination=True,
                          mesh_width=4, capacity_scale=1 / 64)
        sim = CMPSimulator(cfg, homogeneous("tpcc", cfg))
        bank = sim.banks[0]
        for _ in range(200):
            cycles = bank._array_write_cycles()
            assert bank.read_cycles <= cycles <= bank.write_cycles

    def test_deterministic_per_seed(self):
        def saved(seed):
            cfg = make_config(Scheme.STTRAM_64TSB, mesh_width=4,
                              capacity_scale=1 / 64,
                              write_termination=True, seed=seed)
            sim = CMPSimulator(cfg, homogeneous("tpcc", cfg, seed=seed))
            sim.run(600, warmup=200)
            return sum(b.termination_cycles_saved for b in sim.banks)

        assert saved(3) == saved(3)
