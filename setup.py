"""Setup shim.

The sandboxed evaluation environment has no network access and no
``wheel`` package, so PEP 517/660 editable installs cannot build an
editable wheel.  ``pip install -e .`` falls back to this classic
``setup.py develop`` path (metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
