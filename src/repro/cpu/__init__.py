"""Trace-driven core models and access-stream protocol."""

from repro.cpu.core import Core, CoreStats
from repro.cpu.trace import (
    AccessStream, IdleStream, ScriptedStream, StridedStream, bank_block,
)
from repro.cpu.tracefile import (
    RecordingStream, TraceFileStream, read_trace, write_trace,
)

__all__ = [
    "Core", "CoreStats", "AccessStream", "IdleStream", "ScriptedStream",
    "StridedStream", "bank_block", "RecordingStream", "TraceFileStream",
    "read_trace", "write_trace",
]
