"""Access-stream protocol and simple deterministic streams.

A core consumes an *access stream*: an object with a ``next_access()``
method returning ``(gap, block, is_store)`` -- execute ``gap`` non-memory
instructions, then issue one memory operation on ``block``.  Streams are
infinite; finite scripted streams pad with an idle tail.

Synthetic streams calibrated to the paper's Table 3 live in
:mod:`repro.workloads.synthetic`; the classes here are deterministic
building blocks used by tests and examples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

Access = Tuple[int, int, bool]

#: Gap returned forever once a finite stream is exhausted.
IDLE_GAP = 1 << 30


class AccessStream:
    """Interface: infinite stream of ``(gap, block, is_store)`` tuples."""

    def next_access(self) -> Access:
        raise NotImplementedError


class ScriptedStream(AccessStream):
    """Replays an explicit access list, then idles (or loops).

    Args:
        accesses: Sequence of ``(gap, block, is_store)``.
        loop: Replay from the start when exhausted instead of idling.
    """

    def __init__(self, accesses: Sequence[Access], loop: bool = False):
        self._accesses: List[Access] = list(accesses)
        self._index = 0
        self.loop = loop

    def next_access(self) -> Access:
        if self._index >= len(self._accesses):
            if self.loop and self._accesses:
                self._index = 0
            else:
                return (IDLE_GAP, 0, False)
        access = self._accesses[self._index]
        self._index += 1
        return access


class StridedStream(AccessStream):
    """Endless strided sweep over a block range (streaming workload)."""

    def __init__(self, gap: int, start_block: int, stride: int,
                 n_blocks: int, store_every: int = 0):
        self.gap = gap
        self.start_block = start_block
        self.stride = stride
        self.n_blocks = max(1, n_blocks)
        self.store_every = store_every
        self._count = 0

    def next_access(self) -> Access:
        offset = (self._count * self.stride) % self.n_blocks
        block = self.start_block + offset
        is_store = bool(
            self.store_every and self._count % self.store_every == 0
        )
        self._count += 1
        return (self.gap, block, is_store)


class IdleStream(AccessStream):
    """A core that never touches memory."""

    def next_access(self) -> Access:
        return (IDLE_GAP, 0, False)


def bank_block(bank: int, index: int, n_banks: int) -> int:
    """Construct a block number that maps to ``bank`` under block-
    interleaved home-bank selection."""
    return index * n_banks + bank
