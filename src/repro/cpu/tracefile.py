"""Access-trace recording and replay.

The simulator is normally driven by synthetic streams; for repeatable
experiments and external trace exchange, any stream can be recorded to a
simple line-oriented text format and replayed later::

    gap block is_store
    2 6819843 1
    0 6819844 0

Recording wraps a live stream transparently; replay implements the
standard :class:`repro.cpu.trace.AccessStream` protocol.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TextIO

from repro.cpu.trace import Access, AccessStream, ScriptedStream
from repro.errors import WorkloadError


class RecordingStream(AccessStream):
    """Wraps a stream, recording every access it yields."""

    def __init__(self, inner: AccessStream,
                 limit: Optional[int] = None):
        self.inner = inner
        self.limit = limit
        self.recorded: List[Access] = []

    def next_access(self) -> Access:
        access = self.inner.next_access()
        if self.limit is None or len(self.recorded) < self.limit:
            self.recorded.append(access)
        return access

    def dump(self, fp: TextIO) -> int:
        """Write the recorded accesses; returns the line count."""
        return write_trace(fp, self.recorded)


def write_trace(fp: TextIO, accesses: Iterable[Access]) -> int:
    """Serialise accesses as ``gap block is_store`` lines."""
    count = 0
    fp.write("# repro access trace v1: gap block is_store\n")
    for gap, block, is_store in accesses:
        fp.write(f"{gap} {block} {1 if is_store else 0}\n")
        count += 1
    return count


def read_trace(fp: TextIO) -> List[Access]:
    """Parse a trace file back into an access list."""
    accesses: List[Access] = []
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise WorkloadError(
                f"trace line {lineno}: expected 3 fields, got "
                f"{len(parts)}")
        try:
            gap, block, store = int(parts[0]), int(parts[1]), parts[2]
        except ValueError as exc:
            raise WorkloadError(
                f"trace line {lineno}: non-integer field") from exc
        if gap < 0 or block < 0 or store not in ("0", "1"):
            raise WorkloadError(f"trace line {lineno}: invalid values")
        accesses.append((gap, block, store == "1"))
    return accesses


class TraceFileStream(ScriptedStream):
    """Replays a recorded trace file (idling when exhausted)."""

    def __init__(self, fp: TextIO, loop: bool = False):
        super().__init__(read_trace(fp), loop=loop)

    @classmethod
    def from_path(cls, path: str, loop: bool = False) -> "TraceFileStream":
        with open(path, "r", encoding="ascii") as fp:
            return cls(fp, loop=loop)
