"""Trace-driven out-of-order-lite core model (paper Table 1).

Each core commits up to two instructions per cycle, at most one of which
is a memory operation.  Memory operations probe a private write-back L1;
misses allocate an MSHR (32 per core) and issue a request packet to the
block's home L2 bank.  The 128-entry instruction window is approximated
by a retirement rule: the core stalls once the oldest outstanding *load*
is more than ``instruction_window`` committed instructions old.  Store
misses (read-for-ownership) occupy MSHRs but do not block retirement.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.cache.arrays import CacheArray
from repro.cache.messages import CoherenceMsg, CoherenceOp, Transaction
from repro.cache.mshr import MSHRFile
from repro.cpu.trace import AccessStream
from repro.noc.packet import Packet, PacketClass
from repro.sim.config import SystemConfig

SendFn = Callable[..., None]

#: Statuses returned by :meth:`Core.step`, used by the event-driven
#: scheduler to deregister cores whose following cycles are provably
#: pure counter bumps (see CMPSimulator's cycle-skip fast path).
CORE_RUN = 0           # did real work; must step next cycle
CORE_GAP = 1           # committed a full width of gap instructions
CORE_STALL_WINDOW = 2  # instruction window blocked on a load
CORE_STALL_NI = 3      # NI source queue full
CORE_STALL_MSHR = 4    # MSHR file full


class CoreStats:
    """Per-core instrumentation."""

    __slots__ = (
        "committed", "mem_ops", "l1_hits", "l1_misses", "stall_cycles",
        "mshr_stall_cycles", "ni_stall_cycles", "writebacks",
        "invalidations_received", "forwards_served", "miss_latency_sum",
        "miss_latency_samples",
    )

    def __init__(self):
        self.committed = 0
        self.mem_ops = 0
        self.l1_hits = 0
        self.l1_misses = 0
        self.stall_cycles = 0
        self.mshr_stall_cycles = 0
        self.ni_stall_cycles = 0
        self.writebacks = 0
        self.invalidations_received = 0
        self.forwards_served = 0
        self.miss_latency_sum = 0
        self.miss_latency_samples = 0

    def ipc(self, cycles: int) -> float:
        return self.committed / cycles if cycles else 0.0

    def average_miss_latency(self) -> float:
        if not self.miss_latency_samples:
            return 0.0
        return self.miss_latency_sum / self.miss_latency_samples

    def l1_mpki(self) -> float:
        if not self.committed:
            return 0.0
        return 1000.0 * self.l1_misses / self.committed


class Core:
    """One processing node in the core layer."""

    def __init__(
        self,
        core_id: int,
        node: int,
        config: SystemConfig,
        stream: AccessStream,
        send: SendFn,
        bank_node_for_block: Callable[[int], int],
        can_send: Optional[Callable[[], bool]] = None,
        ni_queue=None,
        ni_limit: int = 0,
    ):
        self.core_id = core_id
        self.node = node
        self.config = config
        self.stream = stream
        self.send = send
        self._bank_node_for_block = bank_node_for_block
        self._can_send = can_send
        #: direct view of the NI source queue (len(q) >= limit ≡ not
        #: can_inject); skips two call frames per L1 miss when set.
        self._ni_queue = ni_queue
        self._ni_limit = ni_limit

        self.l1 = CacheArray(
            config.l1_effective_bytes, config.l1_associativity,
            config.block_bytes, name=f"L1[{core_id}]",
        )
        self.mshrs = MSHRFile(config.l1_mshrs, name=f"L1MSHR[{core_id}]")
        self.stats = CoreStats()

        #: outstanding blocking loads: block -> (committed at issue,
        #: effective window before retirement stalls)
        self._blocking_loads: Dict[int, tuple] = {}
        self._rng = random.Random(0x5EED ^ (core_id * 65537))
        #: block -> issue cycle, for miss-latency accounting
        self._miss_issue_cycle: Dict[int, int] = {}

        self._gap_remaining = 0
        self._commit_width = config.commit_width
        self._pending_block: Optional[int] = None
        self._pending_store = False
        self._advance_stream()
        self.done = False

    # ------------------------------------------------------------------

    def _advance_stream(self) -> None:
        gap, block, is_store = self.stream.next_access()
        self._gap_remaining = gap
        self._pending_block = block
        self._pending_store = is_store

    def _window_blocked(self) -> bool:
        if not self._blocking_loads:
            return False
        committed = self.stats.committed
        for issued_at, window in self._blocking_loads.values():
            if committed - issued_at >= window:
                return True
        return False

    # ------------------------------------------------------------------

    def step(self, now: int) -> int:
        """Advance one cycle; return a ``CORE_*`` scheduling status.

        The status classifies what the *next* cycles would do if nothing
        external changes: pure stalls and pure gap-commits are
        replayable in bulk by :meth:`accrue_skipped` /
        :meth:`run_gap_cycles`, so the scheduler may put the core to
        sleep until a wake event (packet delivery, NI drain, gap/window
        boundary).
        """
        stats = self.stats
        blocking = self._blocking_loads
        if blocking:
            # Inline of _window_blocked (hottest entry check).
            committed = stats.committed
            for issued_at, window in blocking.values():
                if committed - issued_at >= window:
                    stats.stall_cycles += 1
                    return CORE_STALL_WINDOW
        mem_op_done = False
        attempted = False
        stall = CORE_RUN
        committed_before = stats.committed
        for _slot in range(self._commit_width):
            if self._gap_remaining > 0:
                self._gap_remaining -= 1
                stats.committed += 1
                continue
            if mem_op_done:
                break  # only one memory operation per cycle (Table 1)
            attempted = True
            if not self._issue_mem_op(now):
                stall = self._last_stall
                break  # NI / MSHRs full: retry next cycle
            mem_op_done = True
            if self._window_blocked():
                break
        if not attempted:
            return CORE_GAP
        if stall != CORE_RUN and self.stats.committed == committed_before:
            # Nothing committed and the first slot stalled: identical
            # cycles follow until the stall's wake event.
            return stall
        return CORE_RUN

    def pure_gap_cycles(self) -> int:
        """Upper bound on immediately-following cycles whose only effect
        is committing ``commit_width`` gap instructions each.

        The bound is limited by the remaining gap and by the first cycle
        an outstanding blocking load would trip the retirement window at
        cycle entry; within that horizon the scheduler may replay the
        cycles in bulk (``committed += k * width``) without stepping.
        """
        w = self.config.commit_width
        j = self._gap_remaining // w
        if j and self._blocking_loads:
            lim = min(
                issued + window
                for issued, window in self._blocking_loads.values()
            )
            d = lim - self.stats.committed
            if d <= 0:
                return 0
            m = (d + w - 1) // w
            if m < j:
                j = m
        return j

    def _issue_mem_op(self, now: int) -> bool:
        block = self._pending_block
        is_store = self._pending_store
        if self.l1.lookup(block):
            self.stats.l1_hits += 1
            if is_store:
                self.l1.mark_dirty(block)
            self.stats.committed += 1
            self.stats.mem_ops += 1
            self._advance_stream()
            return True
        ni_queue = self._ni_queue
        if ni_queue is None:
            blocked = self._can_send is not None and not self._can_send()
        else:
            blocked = len(ni_queue) >= self._ni_limit
        if blocked:
            # NI source queue / store buffer full: stall the stream.
            self.stats.ni_stall_cycles += 1
            self.l1.misses -= 1  # the retried lookup re-counts the miss
            self._last_stall = CORE_STALL_NI
            return False
        if is_store:
            # Store miss: write the line through to the home L2 bank
            # (write-no-allocate L1).  This is the paper's Table 3
            # accounting -- l2wpki counts store misses arriving at the
            # banks as long-latency write accesses -- and it is exactly
            # the traffic the STT-RAM-aware arbiter delays.  The store
            # retires through the store buffer without blocking.
            self.stats.l1_misses += 1
            self.stats.mem_ops += 1
            self.stats.committed += 1
            self._send_store_write(block, now)
            self._advance_stream()
            return True
        # Load miss
        outcome = self.mshrs.allocate(block, waiter=(now, is_store))
        if outcome is None:
            self.stats.mshr_stall_cycles += 1
            self.l1.misses -= 1  # retried access: count the miss once
            self._last_stall = CORE_STALL_MSHR
            return False
        self.stats.l1_misses += 1
        self.stats.mem_ops += 1
        self.stats.committed += 1
        if outcome:
            self._send_request(block, is_store, now)
            self._miss_issue_cycle[block] = now
        if not is_store and block not in self._blocking_loads:
            if self._rng.random() < self.config.load_dep_prob:
                window = self.config.load_dep_window
            else:
                window = self.config.instruction_window
            self._blocking_loads[block] = (self.stats.committed, window)
        self._advance_stream()
        return True

    def _send_request(self, block: int, is_store: bool, now: int) -> None:
        txn = Transaction(
            core=self.core_id, block=block, is_store=is_store,
            kind="read", issue_cycle=now,
        )
        dst = self._bank_node_for_block(block)
        self.send(
            PacketClass.REQUEST, self.node, dst,
            self.config.addr_packet_flits, False, None, txn, now,
        )

    def _send_store_write(self, block: int, now: int) -> None:
        txn = Transaction(
            core=self.core_id, block=block, is_store=True,
            kind="store", issue_cycle=now,
        )
        dst = self._bank_node_for_block(block)
        self.send(
            PacketClass.REQUEST, self.node, dst,
            self.config.data_packet_flits, True, None, txn, now,
        )

    def _send_writeback(self, block: int, now: int) -> None:
        txn = Transaction(
            core=self.core_id, block=block, is_store=True,
            kind="writeback", issue_cycle=now,
        )
        dst = self._bank_node_for_block(block)
        self.send(
            PacketClass.REQUEST, self.node, dst,
            self.config.data_packet_flits, True, None, txn, now,
        )
        self.stats.writebacks += 1

    # ------------------------------------------------------------------
    # Network-facing entry points
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet, now: int) -> None:
        if pkt.klass is PacketClass.RESPONSE:
            self._on_fill(pkt.payload, now)
        elif pkt.klass is PacketClass.COHERENCE:
            self._on_coherence(pkt.payload, now)

    def _on_fill(self, txn: Transaction, now: int) -> None:
        block = txn.block
        txn.complete_cycle = now
        issue = self._miss_issue_cycle.pop(block, None)
        if issue is not None:
            self.stats.miss_latency_sum += now - issue
            self.stats.miss_latency_samples += 1
        waiters = self.mshrs.complete(block)
        dirty = txn.is_store or any(st for (_c, st) in waiters)
        victim = self.l1.fill(block, dirty=dirty)
        if victim is not None:
            victim_block, victim_dirty = victim
            if victim_dirty:
                self._send_writeback(victim_block, now)
        self._blocking_loads.pop(block, None)

    def _on_coherence(self, msg: CoherenceMsg, now: int) -> None:
        if msg.op in (CoherenceOp.INVALIDATE, CoherenceOp.RECALL):
            self.stats.invalidations_received += 1
            present, dirty = self.l1.invalidate(msg.block)
            if present and dirty:
                self._send_writeback(msg.block, now)
            ack = CoherenceMsg(
                op=CoherenceOp.INV_ACK, block=msg.block,
                requester_core=None, home_bank=msg.home_bank,
                sharer=self.core_id,
            )
            bank_node = self._bank_node_for_block(msg.block)
            # INV_ACK returns to the *home bank* of the block.
            self.send(
                PacketClass.COHERENCE, self.node, bank_node,
                self.config.addr_packet_flits, False, None, ack, now,
            )
            # An invalidated block no longer blocks retirement... it was
            # resident, so it could not have been outstanding.
        elif msg.op is CoherenceOp.FORWARD:
            self.stats.forwards_served += 1
            # Supply the dirty line to the requester from our L1.
            if msg.exclusive:
                self.l1.invalidate(msg.block)
            else:
                self.l1.mark_clean(msg.block)
                # Downgrade implies writing the dirty data back home.
                self._send_writeback(msg.block, now)
            if msg.txn is not None:
                msg.txn.forwarded_from_owner = True
                requester_node = msg.txn.core
                self.send(
                    PacketClass.RESPONSE, self.node, requester_node,
                    self.config.data_packet_flits, False, None,
                    msg.txn, now,
                )

    # ------------------------------------------------------------------

    def outstanding_misses(self) -> int:
        return len(self.mshrs)

    def quiesced(self) -> bool:
        return not len(self.mshrs)
