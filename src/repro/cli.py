"""Command-line interface for the reproduction.

Subcommands::

    python -m repro run --app tpcc --scheme MRAM-4TSB-WB
    python -m repro compare --app tpcc --mesh-width 8
    python -m repro table3
    python -m repro fig3 --app tpcc
    python -m repro perf --out BENCH_perf.json
    python -m repro sweep --apps tpcc,mcf --workers 4 --out sweep.json
    python -m repro sweep --apps tpcc,mcf --backend batch
    python -m repro sweep --apps tpcc --progress rich --trace-out tr.json
    python -m repro chaos --app tpcc --fault crc --verify-determinism
    python -m repro trace --app tpcc --out trace.jsonl --chrome trace.json
    python -m repro report --app tpcc
    python -m repro report --compare -2 -1
    python -m repro ledger
    python -m repro ledger diff -2 -1 --threshold 0.3
    python -m repro list

All experiment subcommands accept ``--mesh-width``, ``--capacity-scale``,
``--cycles``, ``--warmup`` and ``--seed``; ``run`` also accepts
``--json`` for machine-readable output.

Configuration errors (and any other typed ``ReproError``) exit with
status 2 and a one-line message on stderr rather than a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.access_dist import distribution_for_app
from repro.analysis.tables import format_histogram, format_table
from repro.engine import BACKEND_NAMES
from repro.errors import ReproError
from repro.sim.config import ALL_SCHEMES, Scheme, make_config, parse_scheme
from repro.sim.experiment import app_factory, compare_schemes, run_scheme
from repro.workloads.benchmarks import (
    all_benchmarks, characterization_table,
)

_SCHEME_BY_NAME = {s.value: s for s in ALL_SCHEMES}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mesh-width", type=int, default=8)
    parser.add_argument("--capacity-scale", type=float, default=1 / 16)
    parser.add_argument("--cycles", type=int, default=2500)
    parser.add_argument("--warmup", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=1)


def _overrides(args) -> dict:
    return dict(mesh_width=args.mesh_width,
                capacity_scale=args.capacity_scale)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STT-RAM NoC reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scheme on one app")
    run_p.add_argument("--app", required=True)
    run_p.add_argument("--scheme", default=Scheme.STTRAM_4TSB_WB.value,
                       choices=sorted(_SCHEME_BY_NAME))
    run_p.add_argument("--json", action="store_true")
    _add_common(run_p)

    cmp_p = sub.add_parser("compare",
                           help="run all six schemes on one app")
    cmp_p.add_argument("--app", required=True)
    _add_common(cmp_p)

    sub.add_parser("table3", help="print the Table 3 characterisation")

    fig3_p = sub.add_parser("fig3",
                            help="print an app's Figure 3 histogram")
    fig3_p.add_argument("--app", required=True)
    _add_common(fig3_p)

    perf_p = sub.add_parser(
        "perf", help="benchmark the simulator itself (dense vs event)")
    perf_p.add_argument("--smoke", action="store_true",
                        help="quick CI variant: target config only")
    perf_p.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report (e.g. BENCH_perf.json)")
    perf_p.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed BENCH_perf.json to gate against "
                             "(fails on >20%% speedup regression)")
    perf_p.add_argument("--cycles", type=int, default=None)
    perf_p.add_argument("--warmup", type=int, default=None)
    perf_p.add_argument("--repeats", type=_positive_int, default=None)
    perf_p.add_argument("--seed", type=int, default=1)
    perf_p.add_argument("--profile", action="store_true",
                        help="profile the target config under cProfile "
                             "and report the top-N hotspots")
    perf_p.add_argument("--profile-out", default=None, metavar="PATH",
                        help="write the profile hotspot JSON dump "
                             "(with --profile)")
    perf_p.add_argument("--top", type=_positive_int, default=25,
                        help="hotspot rows in the profile report")
    perf_p.add_argument("--hotspots", type=_positive_int, default=None,
                        metavar="N",
                        help="with --profile: also print the top-N "
                             "by-cumulative rows as a JSON array "
                             "(machine-readable, next to the dump)")
    perf_p.add_argument("--scheduler", choices=("dense", "event"),
                        default="event",
                        help="scheduler to profile (with --profile)")
    perf_p.add_argument("--backend", choices=BACKEND_NAMES,
                        default="scalar",
                        help="execution backend for the sweep-throughput "
                             "benchmark ('batch' needs the repro[batch] "
                             "extra); with --profile, 'batch' profiles "
                             "the vectorized kernel path instead of one "
                             "scalar simulation")
    perf_p.add_argument("--strict-backend", action="store_true",
                        help="exit 2 when the batch-throughput section "
                             "was skipped or any measured width packed "
                             "zero lane groups (i.e. every point "
                             "silently fell back to the scalar engine)")

    sweep_p = sub.add_parser(
        "sweep", help="run an apps x schemes grid (parallel + cached)")
    sweep_p.add_argument("--apps", required=True, metavar="A,B,...",
                         help="comma-separated application list")
    sweep_p.add_argument("--schemes", default=None, metavar="S,T,...",
                         help="comma-separated scheme labels "
                              "(default: all six)")
    sweep_p.add_argument("--workers", type=int, default=0,
                         help="process-pool size; 0 = one per CPU, "
                              "1 = serial (default: 0)")
    sweep_p.add_argument("--cache", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="serve unchanged points from the "
                              "content-addressed result cache")
    sweep_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache location (default: "
                              "~/.cache/repro-sweeps or "
                              "$REPRO_SWEEP_CACHE_DIR)")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-point wall-clock budget")
    sweep_p.add_argument("--progress", nargs="?", const="plain",
                         default=None, choices=("plain", "rich"),
                         help="live progress: 'plain' prints one line "
                              "per point (CI-friendly), 'rich' renders "
                              "a rewritten status bar with ETA, worker "
                              "roster and straggler flags")
    sweep_p.add_argument("--telemetry", action="store_true",
                         help="record cross-worker spans and merged "
                              "worker metrics into the sweep metadata "
                              "(implied by --trace-out; --progress "
                              "alone keeps saved output telemetry-free)")
    sweep_p.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write the merged sweep Chrome trace "
                              "(one track per worker process)")
    sweep_p.add_argument("--ledger", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="append this run to the persistent run "
                              "ledger (also disabled by REPRO_LEDGER=0)")
    sweep_p.add_argument("--ledger-path", default=None, metavar="PATH",
                         help="ledger file location (default: "
                              "$REPRO_LEDGER_DIR or the sweep cache "
                              "root, ledger.jsonl)")
    sweep_p.add_argument("--out", default=None, metavar="PATH",
                         help="write the sweep results JSON")
    sweep_p.add_argument("--expect-min-hits", type=float, default=None,
                         metavar="FRACTION",
                         help="exit nonzero when the cache hit rate "
                              "falls below this fraction (CI gate)")
    sweep_p.add_argument("--checkpoint", default=None, metavar="PATH",
                         help="journal finished points to this snapshot "
                              "file; a killed sweep resumes from it")
    sweep_p.add_argument("--checkpoint-every", type=_positive_int,
                         default=1, metavar="N",
                         help="flush the checkpoint every N points")
    sweep_p.add_argument("--expect-min-resumed", type=int, default=None,
                         metavar="N",
                         help="exit nonzero when fewer than N points "
                              "were resumed from the checkpoint (CI gate)")
    sweep_p.add_argument("--backend", choices=BACKEND_NAMES,
                         default="scalar",
                         help="execution backend: 'scalar' runs points "
                              "one at a time, 'batch' packs compatible "
                              "points into lockstep lane groups "
                              "(byte-identical results; needs the "
                              "repro[batch] extra)")
    sweep_p.add_argument("--batch-width", type=_positive_int,
                         default=None, metavar="B",
                         help="max lanes per batch group "
                              "(default: engine default)")
    sweep_p.add_argument("--strict-backend", action="store_true",
                         help="exit 2 when --backend batch packed zero "
                              "lane groups (every simulated point "
                              "silently fell back to the scalar "
                              "engine); cache-only replays are exempt")
    _add_common(sweep_p)

    chaos_p = sub.add_parser(
        "chaos", help="run one scheme under deterministic fault "
                      "injection with invariant guards enabled")
    chaos_p.add_argument("--app", default="tpcc")
    chaos_p.add_argument("--scheme", default=Scheme.STTRAM_4TSB_WB.value,
                         choices=sorted(_SCHEME_BY_NAME))
    chaos_p.add_argument("--fault", default="all",
                         choices=("crc", "tsb", "bank-port", "all"),
                         help="which fault model(s) to inject")
    chaos_p.add_argument("--fault-seed", type=int, default=7,
                         help="seed of the fault plane's RNG (a fixed "
                              "seed makes the run exactly reproducible)")
    chaos_p.add_argument("--crc-rate", type=float, default=0.005,
                         help="per-link-traversal corruption probability")
    chaos_p.add_argument("--bank-fail-duration", type=int, default=500,
                         help="bank-port outage length in cycles "
                              "(0 = permanent)")
    chaos_p.add_argument("--scheduler", default="event",
                         choices=("event", "dense"))
    chaos_p.add_argument("--json", action="store_true")
    chaos_p.add_argument("--expect-retransmits", type=int, default=None,
                         metavar="N",
                         help="exit nonzero when fewer than N "
                              "retransmissions happened (CI gate)")
    chaos_p.add_argument("--verify-determinism", action="store_true",
                         help="run twice and require byte-identical "
                              "results")
    _add_common(chaos_p)

    trace_p = sub.add_parser(
        "trace", help="run one scheme with event tracing enabled")
    trace_p.add_argument("--app", required=True)
    trace_p.add_argument("--scheme", default=Scheme.STTRAM_4TSB_WB.value,
                         choices=sorted(_SCHEME_BY_NAME))
    trace_p.add_argument("--out", default="trace.jsonl", metavar="PATH",
                         help="JSONL event log destination")
    trace_p.add_argument("--chrome", default=None, metavar="PATH",
                         help="also write a Chrome/Perfetto trace file")
    trace_p.add_argument("--validate", action="store_true",
                         help="re-read the JSONL and check it against "
                              "the event schema")
    trace_p.add_argument("--epoch", type=_positive_int, default=256,
                         help="epoch sampler period in cycles")
    trace_p.add_argument("--scheduler", default="event",
                         choices=("event", "dense"))
    _add_common(trace_p)

    report_p = sub.add_parser(
        "report", help="run one scheme and print the observability report")
    report_p.add_argument("--app", default=None)
    report_p.add_argument("--scheme", default=Scheme.STTRAM_4TSB_WB.value,
                          choices=sorted(_SCHEME_BY_NAME))
    report_p.add_argument("--epoch", type=_positive_int, default=256,
                          help="epoch sampler period in cycles")
    report_p.add_argument("--scheduler", default="event",
                          choices=("event", "dense"))
    report_p.add_argument("--compare", nargs=2, default=None,
                          metavar=("A", "B"),
                          help="instead of simulating, diff two sweep "
                               "runs: each ref is a ledger run-id "
                               "prefix, a signed ledger index (-1 = "
                               "latest), or a BENCH_perf.json path")
    report_p.add_argument("--threshold", type=float, default=0.2,
                          metavar="FRACTION",
                          help="regression threshold for --compare "
                               "(default 0.2 = 20%%)")
    report_p.add_argument("--ledger-path", default=None, metavar="PATH",
                          help="ledger file for --compare refs")
    _add_common(report_p)

    ledger_p = sub.add_parser(
        "ledger", help="inspect the persistent sweep run ledger")
    ledger_p.add_argument("action", nargs="?", default="list",
                          choices=("list", "diff", "validate"),
                          help="list recent runs, diff two runs, or "
                               "validate every ledger row")
    ledger_p.add_argument("refs", nargs="*", metavar="REF",
                          help="for diff: two run refs (run-id prefix "
                               "or signed index, -1 = latest)")
    ledger_p.add_argument("--path", default=None, metavar="PATH",
                          help="ledger file (default: "
                               "$REPRO_LEDGER_DIR or the sweep cache "
                               "root, ledger.jsonl)")
    ledger_p.add_argument("--limit", type=_positive_int, default=20,
                          help="rows shown by list (default 20)")
    ledger_p.add_argument("--backend", default=None,
                          choices=BACKEND_NAMES,
                          help="list filter: only runs of this backend")
    ledger_p.add_argument("--spec", default=None, metavar="PREFIX",
                          help="list filter: grid spec digest prefix")
    ledger_p.add_argument("--threshold", type=float, default=0.2,
                          metavar="FRACTION",
                          help="regression threshold for diff "
                               "(default 0.2 = 20%%)")

    sub.add_parser("list", help="list benchmarks and schemes")
    return parser


def _cmd_run(args) -> int:
    scheme = _SCHEME_BY_NAME[args.scheme]
    result = run_scheme(
        scheme, app_factory(args.app, seed=args.seed),
        cycles=args.cycles, warmup=args.warmup, **_overrides(args),
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    summary = result.to_dict()
    rows = [[k, round(v, 4) if isinstance(v, float) else v]
            for k, v in summary.items() if not isinstance(v, dict)]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} under {scheme.value}"))
    return 0


def _cmd_compare(args) -> int:
    comparison = compare_schemes(
        app_factory(args.app, seed=args.seed), args.app,
        cycles=args.cycles, warmup=args.warmup, **_overrides(args),
    )
    throughput = comparison.normalized_throughput()
    energy = comparison.normalized_energy()
    rows = []
    for scheme in ALL_SCHEMES:
        result = comparison.results[scheme]
        rows.append([
            scheme.value, round(throughput[scheme], 3),
            round(result.avg_bank_queue_wait, 1),
            round(result.avg_packet_latency, 1),
            round(energy[scheme], 3),
        ])
    print(format_table(
        ["scheme", "throughput", "bank queue", "pkt latency", "energy"],
        rows, title=f"{args.app}: normalised to SRAM-64TSB"))
    return 0


def _cmd_table3(_args) -> int:
    rows = characterization_table()
    headers = list(rows[0].keys())
    print(format_table(headers,
                       [[r[h] for h in headers] for r in rows],
                       title="Table 3: application characterisation"))
    return 0


def _cmd_fig3(args) -> int:
    dist = distribution_for_app(
        args.app, mesh_width=args.mesh_width,
        capacity_scale=args.capacity_scale, cycles=args.cycles,
        warmup=args.warmup,
    )
    labels = ["<16", "<33", "<66", "<99", "<132", "<165", "165+"]
    print(format_histogram(
        labels, dist.percentages,
        title=f"{args.app}: gaps after a same-bank write "
              f"(queued {100 * dist.queued_fraction():.1f}%)"))
    return 0


def _cmd_perf(args) -> int:
    from repro.sim import perf as perf_mod

    if args.profile:
        if args.backend == "batch":
            kwargs = dict(seed=args.seed, top=args.top)
        else:
            kwargs = dict(seed=args.seed, scheduler=args.scheduler,
                          top=args.top)
        for name in ("cycles", "warmup"):
            value = getattr(args, name)
            if value is not None:
                kwargs[name] = value
        if args.backend == "batch":
            report = perf_mod.run_batch_profile(**kwargs)
        else:
            report = perf_mod.run_profile(**kwargs)
        print(perf_mod.format_profile(report))
        if args.hotspots:
            print(json.dumps(report["by_cumulative"][:args.hotspots],
                             indent=2))
        out = args.profile_out or args.out
        if out:
            perf_mod.write_report(report, out)
            print(f"wrote {out}")
        return 0

    kwargs = dict(seed=args.seed, backend=args.backend)
    if args.smoke:
        # Same window as the full run (speedups stay comparable with
        # the committed baseline), but one config and fewer repeats.
        kwargs.update(repeats=2, labels=(perf_mod.TARGET_CONFIG,))
    for name in ("cycles", "warmup", "repeats"):
        value = getattr(args, name)
        if value is not None:
            kwargs[name] = value
    report = perf_mod.run_perf(**kwargs)
    print(perf_mod.format_report(report))
    if args.out:
        perf_mod.write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.strict_backend:
        batch = report.get("batch_throughput", {})
        starved = [row["width"] for row in batch.get("widths", ())
                   if row["lane_groups"] == 0]
        if "skipped" in batch or starved:
            if "skipped" in batch:
                reason = batch["skipped"]
            else:
                # Explain *why* with the recorded lane-signature
                # bucket sizes: all-singleton buckets mean a fully
                # heterogeneous grid; multi-lane buckets that still
                # packed nothing point at the width.
                details = []
                for row in batch["widths"]:
                    if row["lane_groups"]:
                        continue
                    buckets = row.get("signature_buckets") or []
                    if not buckets:
                        why = "no pack attempt recorded"
                    elif max(buckets) < 2:
                        why = (f"all {len(buckets)} signature buckets "
                               "are singletons (no two points share a "
                               "lane signature)")
                    else:
                        why = (f"signature buckets {buckets} yielded "
                               "only width-1 chunks")
                    details.append(f"width {row['width']}: {why}")
                reason = ("zero lane groups packed -- "
                          + "; ".join(details))
            print(f"STRICT BACKEND: batch-sweep-throughput fell back "
                  f"to scalar -- {reason}", file=sys.stderr)
            return 2
        print("strict backend: every measured width ran lane groups")
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 1
        failures = perf_mod.check_regression(report, baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no perf regression vs {args.baseline}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.sim.parallel import SweepRunStats, resolve_workers
    from repro.sim.sweep import SweepGrid, run_sweep

    apps = [a for a in args.apps.split(",") if a]
    if args.schemes:
        schemes = tuple(
            parse_scheme(s) for s in args.schemes.split(",") if s
        )
    else:
        schemes = ALL_SCHEMES

    grid = SweepGrid(apps=apps, schemes=schemes, cycles=args.cycles,
                     warmup=args.warmup, seed=args.seed,
                     overrides=_overrides(args))
    telemetry = None
    if args.telemetry or args.trace_out or args.progress:
        from repro.obs.progress import ProgressRenderer
        from repro.obs.telemetry import SweepTelemetry

        telemetry = SweepTelemetry()
        if args.progress:
            telemetry.progress = ProgressRenderer(mode=args.progress)
    stats = SweepRunStats()
    sweep = run_sweep(
        grid, workers=args.workers, cache=args.cache,
        cache_dir=args.cache_dir, timeout=args.timeout, stats=stats,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        backend=args.backend, batch_width=args.batch_width,
        telemetry=telemetry, ledger=args.ledger,
        ledger_path=args.ledger_path,
    )
    if telemetry is not None and not (args.telemetry or args.trace_out):
        # --progress alone is a live display, not a telemetry request:
        # the saved JSON must stay identical to a progress-less run
        # (CI byte-compares warm replays against it).
        sweep.meta.pop("telemetry", None)

    throughput = sweep.normalized("instruction_throughput",
                                  baseline=Scheme.SRAM_64TSB.value)
    rows = [
        [app] + [round(throughput[app][s], 3) for s in sweep.schemes()]
        for app in sweep.apps()
    ]
    print(format_table(["app"] + sweep.schemes(), rows,
                       title="throughput normalised to SRAM-64TSB"))
    print(
        f"{stats.points} points in {stats.wall_seconds:.2f}s "
        f"({stats.points_per_sec:.2f} points/sec) -- "
        f"backend={stats.backend} "
        f"workers={resolve_workers(args.workers)} "
        f"hits={stats.cache_hits} misses={stats.cache_misses} "
        f"simulated={stats.simulated} retried={stats.retried} "
        f"resumed={stats.resumed_points} "
        f"evictions={stats.cache_evictions} "
        f"utilization={stats.utilization:.0%}"
    )
    if stats.backend == "batch":
        print(
            f"batch lanes: {stats.lanes_packed} packed in "
            f"{stats.lane_groups} groups, "
            f"{stats.scalar_fallbacks} scalar fallbacks "
            f"(packing deltas: {stats.pack_groups_delta:+d} groups, "
            f"{stats.pack_fallbacks_delta:+d} fallbacks vs naive)"
        )
    if telemetry is not None:
        rollups = telemetry.rollups()
        spanned = sum(r["total_s"] for name, r in rollups.items()
                      if name == "sweep.run")
        print(f"telemetry: {len(telemetry.spans())} spans from "
              f"{max(1, len(telemetry.workers()))} worker(s), "
              f"sweep.run {spanned:.2f}s")
    if args.trace_out:
        telemetry.write_chrome(args.trace_out)
        print(f"wrote {args.trace_out} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    if args.out:
        sweep.save(args.out)
        print(f"wrote {args.out}")
    if (args.strict_backend and args.backend == "batch"
            and stats.simulated > 0 and stats.lane_groups == 0):
        # Zero groups means the requested backend never actually ran:
        # every simulated point silently fell back to the scalar
        # engine.  Cache-only replays (simulated == 0) are exempt --
        # there was nothing to pack.
        buckets = stats.pack_signature_buckets
        if not buckets:
            why = "no lane packing was attempted"
        elif max(buckets) < 2:
            why = (f"all {len(buckets)} lane-signature buckets are "
                   "singletons: no two grid points share a lane "
                   "signature (vary fewer of app/topology at once)")
        else:
            width = args.batch_width or "the engine default"
            why = (f"signature buckets {buckets} yielded only width-1 "
                   f"chunks at batch width {width}")
        print(
            "STRICT BACKEND: --backend batch packed zero lane groups "
            f"({stats.scalar_fallbacks} scalar fallbacks) -- every "
            f"simulated point ran on the scalar engine; {why}",
            file=sys.stderr,
        )
        return 2
    if args.expect_min_hits is not None:
        if stats.hit_rate < args.expect_min_hits:
            print(
                f"CACHE MISS RATE TOO HIGH: hit rate {stats.hit_rate:.0%}"
                f" < required {args.expect_min_hits:.0%}",
                file=sys.stderr,
            )
            return 1
        print(f"cache hit rate {stats.hit_rate:.0%} >= "
              f"{args.expect_min_hits:.0%}")
    if args.expect_min_resumed is not None:
        if stats.resumed_points < args.expect_min_resumed:
            print(
                f"TOO FEW RESUMED POINTS: {stats.resumed_points} < "
                f"required {args.expect_min_resumed}",
                file=sys.stderr,
            )
            return 1
        print(f"resumed {stats.resumed_points} points >= "
              f"{args.expect_min_resumed}")
    return 0


def _chaos_fault_config(args, config):
    """Build the FaultConfig for the chaos subcommand's fault choice."""
    from repro.resilience import FaultConfig

    fire_at = max(1, args.warmup // 2)
    kwargs = dict(seed=args.fault_seed)
    if args.fault in ("crc", "all"):
        kwargs["crc_rate"] = args.crc_rate
    if args.fault in ("tsb", "all"):
        kwargs["tsb_failures"] = ((0, fire_at),)
    if args.fault in ("bank-port", "all"):
        duration = args.bank_fail_duration or None
        kwargs["bank_port_failures"] = (
            (config.n_banks // 2, fire_at, duration),
        )
    return FaultConfig(**kwargs)


def _cmd_chaos(args) -> int:
    from repro.noc.packet import reset_packet_ids
    from repro.sim.simulator import CMPSimulator

    scheme = _SCHEME_BY_NAME[args.scheme]
    config = make_config(scheme, **_overrides(args))
    faults = _chaos_fault_config(args, config)

    def one_run():
        reset_packet_ids()
        workload = app_factory(args.app, seed=args.seed)(config)
        sim = CMPSimulator(config, workload, scheduler=args.scheduler,
                           guard=True, faults=faults)
        result = sim.run(args.cycles, warmup=args.warmup)
        return sim, result

    sim, result = one_run()
    payload = {
        "app": args.app,
        "scheme": scheme.value,
        "fault": args.fault,
        "faults": sim.fault_plane.report(),
        "guard": sim.guard.report(),
        "result": result.to_dict(),
    }

    if args.verify_determinism:
        _sim2, result2 = one_run()
        identical = result.to_dict() == result2.to_dict()
        payload["deterministic"] = identical
        if not identical:
            print("DETERMINISM VIOLATION: two runs with the same fault "
                  "seed diverged", file=sys.stderr)
            return 1

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        fp = payload["faults"]
        print(format_table(
            ["counter", "value"],
            [[k, v] for k, v in sorted(fp.items())
             if not isinstance(v, dict)],
            title=f"{args.app} under {scheme.value} "
                  f"(fault={args.fault}, seed={args.fault_seed})"))
        print(f"guard: {payload['guard']['checks_run']} checks, "
              f"{payload['guard']['violations']} violations")
        if args.verify_determinism:
            print("determinism verified: two runs byte-identical")

    if args.expect_retransmits is not None:
        got = payload["faults"]["retransmits"]
        if got < args.expect_retransmits:
            print(f"TOO FEW RETRANSMITS: {got} < required "
                  f"{args.expect_retransmits}", file=sys.stderr)
            return 1
    return 0


def _instrumented_run(args, obs):
    """Build, attach and run one instrumented simulation."""
    from repro.noc.packet import reset_packet_ids
    from repro.sim.simulator import CMPSimulator

    reset_packet_ids()
    scheme = _SCHEME_BY_NAME[args.scheme]
    config = make_config(scheme, **_overrides(args))
    workload = app_factory(args.app, seed=args.seed)(config)
    sim = CMPSimulator(config, workload, scheduler=args.scheduler)
    obs.attach(sim)
    result = sim.run(args.cycles, warmup=args.warmup)
    return sim, result


def _cmd_trace(args) -> int:
    from repro.obs import (
        ChromeTraceSink, JSONLSink, Observability, validate_jsonl,
    )

    obs = Observability(epoch=args.epoch)
    jsonl = JSONLSink(args.out)
    obs.add_sink(jsonl)
    chrome = None
    if args.chrome:
        chrome = ChromeTraceSink()
        obs.add_sink(chrome)

    _sim, result = _instrumented_run(args, obs)
    obs.close()
    print(f"wrote {jsonl.events_written} events to {args.out}")
    if chrome is not None:
        chrome.write(args.chrome)
        print(f"wrote {len(chrome)} trace slices to {args.chrome} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    summary = result.to_dict()
    print(f"measured {summary['cycles']} cycles, "
          f"{summary['packets_delivered']} packets delivered, "
          f"p99 latency {summary['latency_p99']:.0f} cycles")

    if args.validate:
        rows, errors = validate_jsonl(args.out)
        if errors:
            for error in errors:
                print(f"SCHEMA VIOLATION: {error}", file=sys.stderr)
            return 1
        print(f"validated {rows} rows against the event schema")
    return 0


def _resolve_run_ref(ref: str, ledger):
    """A compare ref: a BENCH_perf.json path or a ledger run ref."""
    import os

    from repro.obs.ledger import record_from_bench

    if ref.endswith(".json") or os.path.sep in ref:
        with open(ref, "r", encoding="ascii") as fh:
            return record_from_bench(json.load(fh), ref)
    return ledger.resolve(ref)


def _cmd_report(args) -> int:
    if args.compare:
        from repro.obs.ledger import RunLedger, diff_records

        ledger = RunLedger(path=args.ledger_path)
        try:
            a = _resolve_run_ref(args.compare[0], ledger)
            b = _resolve_run_ref(args.compare[1], ledger)
        except (LookupError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines, failures = diff_records(a, b, threshold=args.threshold)
        print("\n".join(lines))
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression beyond {args.threshold:.0%} threshold")
        return 0

    if not args.app:
        print("error: report needs --app (or --compare A B)",
              file=sys.stderr)
        return 2

    from repro.obs import Observability
    from repro.obs.report import render_report

    obs = Observability(epoch=args.epoch)
    _sim, result = _instrumented_run(args, obs)
    print(render_report(result.to_dict(), obs, args.mesh_width))
    return 0


def _cmd_ledger(args) -> int:
    from repro.obs.ledger import RunLedger, diff_records, format_entries

    ledger = RunLedger(path=args.path)

    if args.action == "validate":
        rows, errors = ledger.validate()
        for error in errors:
            print(f"LEDGER VIOLATION: {error}", file=sys.stderr)
        print(f"{rows} valid record(s) in {ledger.path}")
        return 1 if errors else 0

    if args.action == "diff":
        if len(args.refs) != 2:
            print("error: ledger diff needs exactly two refs "
                  "(run-id prefix or signed index, -1 = latest)",
                  file=sys.stderr)
            return 2
        try:
            a = ledger.resolve(args.refs[0])
            b = ledger.resolve(args.refs[1])
        except LookupError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines, failures = diff_records(a, b, threshold=args.threshold)
        print("\n".join(lines))
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1 if failures else 0

    records = ledger.entries()
    if args.backend:
        records = [r for r in records if r["backend"] == args.backend]
    if args.spec:
        records = [r for r in records
                   if r["spec_digest"].startswith(args.spec)]
    if not records:
        print(f"no matching runs in {ledger.path}")
        return 0
    print(format_entries(records[-args.limit:]))
    if ledger.corrupt_dropped:
        print(f"({ledger.corrupt_dropped} corrupt line(s) skipped)",
              file=sys.stderr)
    return 0


def _cmd_list(_args) -> int:
    print("schemes:")
    for scheme in ALL_SCHEMES:
        print(f"  {scheme.value}")
    print("benchmarks:")
    for spec in all_benchmarks():
        kind = "bursty" if spec.bursty else "calm"
        print(f"  {spec.name:12s} [{spec.suite}] "
              f"l1mpki={spec.l1mpki:<7} {kind}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "table3": _cmd_table3,
    "fig3": _cmd_fig3,
    "perf": _cmd_perf,
    "sweep": _cmd_sweep,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "ledger": _cmd_ledger,
    "list": _cmd_list,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        # Typed simulator/config errors are user errors, not crashes:
        # one line on stderr and a distinct exit status.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
