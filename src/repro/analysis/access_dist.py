"""Cache-access distribution analysis (paper Figure 3, Section 3.3).

Two questions decide whether the re-ordering scheme can work for an
application:

1. How soon after a *write* to a bank do subsequent accesses to the same
   bank arrive?  Accesses within the 33-cycle write service inevitably
   queue; the histogram over Figure 3's bins (16, 33, 66, 99, 132, 165+)
   quantifies that.
2. How many request packets, on average, does a router in the cache
   layer hold whose destination is exactly H hops away?  That is the
   re-ordering opportunity (the inset numbers of Figure 3 and the
   Figure 13(a) sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Figure 3 bin upper bounds in cycles; the last bin is open-ended.
FIG3_BINS = (16, 33, 66, 99, 132, 165)


@dataclass
class AccessDistribution:
    """Histogram of same-bank access gaps following a write."""

    bins: Tuple[int, ...]
    counts: List[int]
    total_accesses: int
    writes: int

    @property
    def percentages(self) -> List[float]:
        if not self.total_accesses:
            return [0.0] * (len(self.bins) + 1)
        return [100.0 * c / self.total_accesses for c in self.counts]

    def queued_fraction(self, write_cycles: int = 33) -> float:
        """Fraction of accesses arriving within one write service of a
        preceding write to the same bank (the paper's 17%-average /
        27%-max observation)."""
        if not self.total_accesses:
            return 0.0
        queued = sum(
            count for bound, count in zip(self.bins, self.counts)
            if bound <= write_cycles
        )
        return queued / self.total_accesses


def access_distribution(
    bank_logs: Sequence[Sequence[Tuple[int, bool]]],
    bins: Tuple[int, ...] = FIG3_BINS,
) -> AccessDistribution:
    """Build the Figure 3 histogram from per-bank access logs.

    Args:
        bank_logs: For each bank, the chronological ``(cycle, is_write)``
            service log (collected with ``log_bank_accesses=True``).
        bins: Bin upper bounds in cycles.
    """
    counts = [0] * (len(bins) + 1)
    total = 0
    writes = 0
    for log in bank_logs:
        last_write: int = -1
        for cycle, is_write in log:
            if last_write >= 0:
                gap = cycle - last_write
                total += 1
                for i, bound in enumerate(bins):
                    if gap < bound:
                        counts[i] += 1
                        break
                else:
                    counts[-1] += 1
            if is_write:
                writes += 1
                last_write = cycle
    return AccessDistribution(
        bins=tuple(bins), counts=counts, total_accesses=total,
        writes=writes,
    )


def average_requests_at_distance(sim, hops: int, samples: int = 200,
                                 interval: int = 5) -> float:
    """Average #request packets per cache-layer router whose destination
    bank is exactly ``hops`` hops away (Figure 3 insets / Figure 13a).

    Advances the simulation ``samples * interval`` cycles, sampling the
    router-resident request population.
    """
    from repro.noc.packet import PacketClass

    topo = sim.topo
    total = 0.0
    observations = 0
    for _ in range(samples):
        for _ in range(interval):
            sim.step()
        for router in sim.network.routers:
            if topo.layer_of(router.node) != 1 or router.n_resident == 0:
                continue
            count = 0
            for entries in router.out_entries:
                for entry in entries:
                    pkt = entry[2]
                    if (
                        pkt.klass is PacketClass.REQUEST
                        and pkt.bank is not None
                        and topo.manhattan(router.node, pkt.dst) == hops
                    ):
                        count += 1
            total += count
            observations += 1
    return total / observations if observations else 0.0


def distribution_for_app(app: str, scheme=None, mesh_width: int = 8,
                         capacity_scale: float = 1 / 16,
                         cycles: int = 3000, warmup: int = 1200
                         ) -> AccessDistribution:
    """Run one application and return its Figure 3 histogram."""
    from repro.sim.config import Scheme, make_config
    from repro.sim.simulator import CMPSimulator
    from repro.workloads.mixes import homogeneous

    scheme = scheme or Scheme.STTRAM_64TSB
    config = make_config(
        scheme, mesh_width=mesh_width, capacity_scale=capacity_scale,
    )
    workload = homogeneous(app, config)
    sim = CMPSimulator(config, workload, log_bank_accesses=True)
    sim.run(cycles, warmup=warmup)
    return access_distribution([b.access_log for b in sim.banks])
