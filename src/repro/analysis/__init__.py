"""Analysis tooling: Figure 3 distributions, Figure 7 breakdowns, tables."""

from repro.analysis.access_dist import (
    FIG3_BINS, AccessDistribution, access_distribution,
    average_requests_at_distance, distribution_for_app,
)
from repro.analysis.breakdown import (
    LatencyBreakdown, breakdown_of, normalized_breakdowns,
)
from repro.analysis.tables import (
    format_histogram, format_table, normalized_series,
)
from repro.analysis.utilization import LinkSample, LinkUtilizationProbe

__all__ = [
    "FIG3_BINS", "AccessDistribution", "access_distribution",
    "average_requests_at_distance", "distribution_for_app",
    "LatencyBreakdown", "breakdown_of", "normalized_breakdowns",
    "format_table", "format_histogram", "normalized_series",
    "LinkSample", "LinkUtilizationProbe",
]
