"""Link-utilisation measurement and hotspot analysis.

The region-TSB scheme concentrates request traffic: X-Y flows converge
on the TSB columns in the core layer, and the TSB landing routers fan
the whole region's traffic back out in the cache layer.  This module
samples a running simulation and reports per-link utilisation so those
hotspots (and the relief provided by staggered TSB placement) can be
quantified -- the analysis behind the Figure 11/12 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.noc.topology import LOCAL, PORT_NAMES


@dataclass
class LinkSample:
    """Utilisation of one directed link over a measurement window."""

    node: int
    port: int
    flits: int
    cycles: int

    @property
    def utilization(self) -> float:
        return self.flits / self.cycles if self.cycles else 0.0

    def label(self, topo) -> str:
        layer, x, y = topo.coords(self.node)
        return (f"L{layer}({x},{y}) {PORT_NAMES[self.port]}")


class LinkUtilizationProbe:
    """Counts flits forwarded per (node, out_port) while attached.

    Wraps the network's forward path non-invasively::

        probe = LinkUtilizationProbe(sim.network)
        sim.run(2000, warmup=500)   # or manual stepping
        hot = probe.hottest(10)
    """

    def __init__(self, network):
        self.network = network
        self.flit_counts: Dict[Tuple[int, int], int] = {}
        self.cycles_observed = 0
        self._original_forward = network._forward
        network._forward = self._forward_hook
        self._start_cycle = None

    def _forward_hook(self, router, downstream, out_port, entry, index, now):
        if self._start_cycle is None:
            self._start_cycle = now
        pkt = entry[2]
        key = (router.node, out_port)
        self.flit_counts[key] = self.flit_counts.get(key, 0) + pkt.flits
        self.cycles_observed = max(self.cycles_observed,
                                   now - self._start_cycle + 1)
        self._original_forward(router, downstream, out_port, entry, index, now)

    def detach(self) -> None:
        """Restore the unwrapped forward path."""
        self.network._forward = self._original_forward

    # ------------------------------------------------------------------

    def samples(self, include_local: bool = False) -> List[LinkSample]:
        cycles = max(1, self.cycles_observed)
        return [
            LinkSample(node=node, port=port, flits=flits, cycles=cycles)
            for (node, port), flits in self.flit_counts.items()
            if include_local or port != LOCAL
        ]

    def hottest(self, n: int = 10) -> List[LinkSample]:
        """The ``n`` most utilised links, hottest first."""
        return sorted(self.samples(), key=lambda s: -s.utilization)[:n]

    def utilization_of(self, node: int, port: int) -> float:
        cycles = max(1, self.cycles_observed)
        return self.flit_counts.get((node, port), 0) / cycles

    def layer_average(self, topo, layer: int) -> float:
        """Mean utilisation over all sampled links of one layer."""
        samples = [s for s in self.samples()
                   if topo.layer_of(s.node) == layer]
        if not samples:
            return 0.0
        return sum(s.utilization for s in samples) / len(samples)

    def saturation_count(self, threshold: float = 0.8) -> int:
        """Number of links above a utilisation threshold."""
        return sum(1 for s in self.samples()
                   if s.utilization >= threshold)
