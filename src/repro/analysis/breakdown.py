"""Packet latency breakdown (paper Figure 7).

Splits a request's end-to-end latency into a *network* component (router
pipeline, link serialisation, congestion) and a *queuing* component
(wait at the bank interface before service starts).  The paper shows the
queuing component worsening when SRAM is replaced by STT-RAM and the
proposed schemes recovering up to 35% of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.sim.results import SimulationResult


@dataclass
class LatencyBreakdown:
    """Average per-request latency components, in cycles."""

    network_latency: float
    queuing_latency: float

    @property
    def total(self) -> float:
        return self.network_latency + self.queuing_latency

    def percentages(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {"network": 0.0, "queuing": 0.0}
        return {
            "network": 100.0 * self.network_latency / total,
            "queuing": 100.0 * self.queuing_latency / total,
        }


def breakdown_of(result: SimulationResult) -> LatencyBreakdown:
    parts = result.latency_breakdown()
    return LatencyBreakdown(
        network_latency=parts["network_latency"],
        queuing_latency=parts["bank_queuing_latency"],
    )


def normalized_breakdowns(
    results: Mapping, baseline_key
) -> Dict[object, Dict[str, float]]:
    """Figure 7 series: the baseline's components as exact percentages,
    every other scheme's components normalised to the baseline's."""
    base = breakdown_of(results[baseline_key])
    base_pct = base.percentages()
    out = {baseline_key: base_pct}
    for key, result in results.items():
        if key == baseline_key:
            continue
        b = breakdown_of(result)
        out[key] = {
            "network": (
                base_pct["network"] * b.network_latency
                / base.network_latency if base.network_latency else 0.0
            ),
            "queuing": (
                base_pct["queuing"] * b.queuing_latency
                / base.queuing_latency if base.queuing_latency else 0.0
            ),
        }
    return out
