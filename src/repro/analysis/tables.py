"""Plain-text table rendering for benchmark/analysis output.

The benchmark harness prints the same rows the paper's tables and figure
series report; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render an aligned fixed-width table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in rendered_rows)
    return "\n".join(parts)


def normalized_series(results: Mapping, metric) -> Dict:
    """Normalise ``metric(result)`` per key to the first key's value."""
    keys = list(results)
    if not keys:
        return {}
    base = metric(results[keys[0]])
    if base == 0:
        return {k: 0.0 for k in keys}
    return {k: metric(results[k]) / base for k in keys}


def format_histogram(labels: Sequence[str], percentages: Sequence[float],
                     width: int = 40, title: Optional[str] = None) -> str:
    """ASCII bar rendering of a Figure 3-style histogram."""
    peak = max(percentages) if percentages else 0.0
    parts = [title] if title else []
    for label, pct in zip(labels, percentages):
        bar = "#" * (int(width * pct / peak) if peak else 0)
        parts.append(f"{label:>6} {pct:5.1f}% {bar}")
    return "\n".join(parts)
