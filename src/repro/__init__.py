"""repro: reproduction of "Architecting On-Chip Interconnects for
Stacked 3D STT-RAM Caches in CMPs" (Mishra et al., ISCA 2011).

A pure-Python cycle-level model of a two-layer 3D CMP -- 64 cores over
64 STT-RAM L2 cache banks connected by a wormhole-switched NoC -- plus
the paper's network-level write-latency mitigation: region/TSB
serialisation, busy-duration estimation (SS/RCA/WB) and bank-aware
router arbitration.

Quickstart::

    from repro import Scheme, app_factory, compare_schemes

    cmp_ = compare_schemes(app_factory("tpcc"), "tpcc", mesh_width=4,
                           capacity_scale=1 / 64)
    print(cmp_.normalized_throughput())
"""

from repro.sim import (
    ALL_SCHEMES, CacheTechnology, CMPSimulator, Estimator, Scheme,
    SchemeComparison, SimulationResult, SweepGrid, SweepPoint,
    SweepResults, SystemConfig, TSBPlacement, WriteBufferConfig,
    app_factory, compare_schemes, instruction_throughput, make_config,
    max_slowdown, run_scheme, run_sweep, run_workload, weighted_speedup,
    with_extra_vc, with_write_buffer,
)
from repro.workloads import (
    BenchmarkSpec, Workload, all_benchmarks, case1, case2, case3_mixes,
    get_benchmark, homogeneous, mix, suite_benchmarks,
)

__version__ = "1.0.0"

__all__ = [
    "SystemConfig", "Scheme", "ALL_SCHEMES", "CacheTechnology",
    "Estimator", "TSBPlacement", "WriteBufferConfig", "make_config",
    "with_write_buffer", "with_extra_vc", "CMPSimulator",
    "SimulationResult", "SchemeComparison", "compare_schemes",
    "run_scheme", "run_workload", "app_factory",
    "instruction_throughput", "weighted_speedup", "max_slowdown",
    "SweepGrid", "SweepPoint", "SweepResults", "run_sweep",
    "BenchmarkSpec", "get_benchmark", "suite_benchmarks",
    "all_benchmarks", "Workload", "homogeneous", "mix", "case1", "case2",
    "case3_mixes", "__version__",
]
