"""Model specification for the execution-engine seam.

An :class:`EngineSpec` names *what* to simulate -- application, design
scheme, measurement window, seed and config overrides, i.e. everything
:class:`repro.sim.parallel.SweepPoint` already canonicalizes -- without
saying *how*.  Execution backends (:mod:`repro.engine.base`,
:mod:`repro.engine.batch`) consume specs and return the same summary
dicts regardless of backend; the spec also exposes the **lane
signature** the batch backend uses to decide which specs may share one
lockstep lane group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.config import Scheme

#: Default mesh width of :class:`repro.sim.config.SystemConfig`, used
#: when a spec carries no ``mesh_width`` override.
DEFAULT_MESH_WIDTH = 8


@dataclass(frozen=True)
class EngineSpec:
    """One self-contained simulation request.

    Mirrors :class:`~repro.sim.parallel.SweepPoint` field for field (it
    must: cache keys are derived from the point, and the two convert
    losslessly), but lives on the engine side of the seam so backends
    do not import the sweep machinery.
    """

    app: str
    scheme: Scheme
    cycles: int
    warmup: int
    seed: int
    #: Sorted ``(name, value)`` pairs of ``make_config`` overrides.
    overrides: Tuple[Tuple[str, object], ...] = ()

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, app: str, scheme: Scheme, cycles: int, warmup: int,
              seed: int, overrides: Optional[Dict] = None) -> "EngineSpec":
        items = tuple(sorted((overrides or {}).items()))
        return cls(app=app, scheme=scheme, cycles=cycles, warmup=warmup,
                   seed=seed, overrides=items)

    @classmethod
    def from_point(cls, point) -> "EngineSpec":
        """Lift a :class:`~repro.sim.parallel.SweepPoint` (duck-typed:
        anything with the same five fields plus ``overrides``)."""
        return cls(app=point.app, scheme=point.scheme,
                   cycles=point.cycles, warmup=point.warmup,
                   seed=point.seed, overrides=tuple(point.overrides))

    def to_point(self):
        """The equivalent sweep point (for cache keys and labels)."""
        from repro.sim.parallel import SweepPoint

        return SweepPoint(app=self.app, scheme=self.scheme,
                          cycles=self.cycles, warmup=self.warmup,
                          seed=self.seed, overrides=self.overrides)

    def overrides_dict(self) -> Dict:
        return dict(self.overrides)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    def mesh_width(self) -> int:
        for name, value in self.overrides:
            if name == "mesh_width":
                return int(value)
        return DEFAULT_MESH_WIDTH

    def lane_signature(self) -> Tuple:
        """Key under which specs may share one lockstep lane group.

        The group kernels index ``(B, node, port, vc)`` arrays, so the
        topology must match across lanes; scheme, application, seed and
        the measurement window are free to differ per lane (the
        lockstep driver advances every lane to its own per-phase
        budget, so a short run no longer needs its own group).
        """
        return (self.mesh_width(),)

    def cycle_budget(self) -> int:
        """Total simulated cycles (warm-up plus measurement): the lane
        packer's sort key, so similarly-sized runs share a group and a
        short lane does not pin a group open behind a long one."""
        return self.warmup + self.cycles

    def label(self) -> str:
        return f"{self.app}/{self.scheme.value}/seed{self.seed}"
