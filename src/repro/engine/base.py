"""Execution-engine protocol, the scalar reference backend, registry.

The seam: a backend turns :class:`~repro.engine.spec.EngineSpec` values
into the ``SimulationResult.to_dict()`` summary dicts that the sweep
cache, checkpoints and ``SweepResults.fingerprint`` are built on.  Two
rules every backend must obey:

* **Identity** -- the summary for a spec is byte-identical to what the
  scalar backend produces.  Backends trade *how* the work is scheduled
  (one simulation at a time vs many in lockstep), never *what* is
  simulated.
* **Hermeticity** -- a summary depends only on its spec, never on what
  else ran in the process (the scalar backend resets process-global
  state per spec; the batch backend isolates it per lane).

Because of the identity rule, cache keys and fingerprints never mention
the backend: entries written by one backend are served to any other.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import BackendUnavailableError, ConfigError
from repro.engine.spec import EngineSpec

#: Backend names accepted by ``run_sweep``/``run_points``/the CLI.
BACKEND_NAMES = ("scalar", "batch")


class ExecutionEngine:
    """Interface every execution backend implements.

    Not an ABC on purpose: backends are duck-typed (the registry is the
    contract), this class just documents the surface and provides the
    default ``run_specs`` loop over :meth:`run_one`.
    """

    #: registry name, recorded in sweep run stats/metadata
    name: str = "abstract"

    def run_one(self, spec: EngineSpec) -> Dict:
        """Simulate one spec and return its summary dict."""
        raise NotImplementedError

    def run_specs(self, specs: Sequence[EngineSpec],
                  done: Optional[Callable[[int, Dict], None]] = None,
                  ) -> List[Dict]:
        """Simulate every spec; summaries in input order.

        ``done(index, summary)`` fires as each spec finishes (backends
        may finish out of input order internally).
        """
        out: List[Optional[Dict]] = [None] * len(specs)
        for i, spec in enumerate(specs):
            out[i] = self.run_one(spec)
            if done is not None:
                done(i, out[i])
        return out


class ScalarEngine(ExecutionEngine):
    """The reference backend: one simulation at a time, dense/event
    scheduler, full process-global reset per spec.

    This is the execution path everything else is certified against --
    ``repro.sim.parallel.simulate_point`` delegates here, so the scalar
    backend and the historical sweep path are one and the same code.
    """

    name = "scalar"

    #: optional :class:`~repro.obs.telemetry.SpanRecorder`; when set,
    #: ``run_one`` times its setup and simulate stages as
    #: ``engine.setup`` / ``engine.simulate`` spans.  Pure reader: the
    #: recorded result is produced by the same calls either way.
    recorder = None

    def run_one(self, spec: EngineSpec) -> Dict:
        from repro.sim import reset_state
        from repro.sim.experiment import app_factory, run_scheme

        if self.recorder is None:
            reset_state()
            result = run_scheme(
                spec.scheme, app_factory(spec.app, seed=spec.seed),
                cycles=spec.cycles, warmup=spec.warmup,
                **spec.overrides_dict(),
            )
            return result.to_dict()

        # Instrumented path: the exact run_scheme/run_workload sequence,
        # unrolled so construction and execution time apart.
        from repro.sim.config import make_config
        from repro.sim.simulator import CMPSimulator

        with self.recorder.span("engine.setup", app=spec.app,
                                scheme=spec.scheme.value):
            reset_state()
            config = make_config(spec.scheme, **spec.overrides_dict())
            workload = app_factory(spec.app, seed=spec.seed)(config)
            sim = CMPSimulator(config, workload)
        with self.recorder.span("engine.simulate", app=spec.app,
                                scheme=spec.scheme.value):
            result = sim.run(spec.cycles, warmup=spec.warmup)
        return result.to_dict()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def batch_available() -> bool:
    """True when the optional numpy dependency is importable."""
    from repro.engine import batch

    return batch.numpy_available()


def available_backends() -> List[str]:
    return [
        name for name in BACKEND_NAMES
        if name != "batch" or batch_available()
    ]


def get_engine(name: str, **options) -> ExecutionEngine:
    """Construct the named backend.

    Raises :class:`~repro.errors.BackendUnavailableError` when the
    backend exists but its host dependencies are missing (the CLI turns
    this into a one-line exit-2 message) and
    :class:`~repro.errors.ConfigError` for unknown names.
    """
    if name == "scalar":
        return ScalarEngine()
    if name == "batch":
        from repro.engine.batch import BatchEngine

        if not batch_available():
            raise BackendUnavailableError(
                "the 'batch' execution backend needs numpy, which is not "
                "installed; install the optional extra with "
                "'pip install repro[batch]' or use --backend scalar"
            )
        return BatchEngine(**options)
    raise ConfigError(
        f"unknown execution backend {name!r}; "
        f"valid backends: {', '.join(BACKEND_NAMES)}"
    )
