"""Record/replay tapes for sharing synthetic streams across batch lanes.

Lanes of one batch group often differ only in scheme (same app, same
seed, same topology).  A :class:`SyntheticStream` is deterministic given
``(benchmark, core, seed)`` plus the handful of config fields it reads
-- so when those match, every lane's core ``i`` consumes the *same*
access sequence, and generating it once per group instead of once per
lane removes the per-lane RNG cost.

The tape is positional: the first lane to need emission ``k`` extends
the master stream (recording ``(tag, value)``), later lanes replay the
recorded value.  Lanes may be at different positions -- a stalled lane
consumes accesses more slowly -- and the master is only ever advanced
in its natural call order (constructor access, then the prewarm
protocol, then the access stream), because every reader requests the
same tag sequence.  A tag mismatch means two non-equivalent streams
were keyed together and raises rather than silently corrupting a lane.

Values stored on a tape are immutable (tuples/ranges), so replaying
shares them safely across lanes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.cpu.trace import AccessStream
from repro.errors import WorkloadError
from repro.sim.config import SystemConfig
from repro.workloads.benchmarks import BenchmarkSpec
from repro.workloads.mixes import make_stream, stream_signature

#: Tape event tags, in the per-stream lifecycle order the simulator
#: produces them: one constructor access, then the prewarm protocol
#: (``prewarm``/``hot``/optionally ``shared``), then accesses forever.
TAG_NEXT = "next"
TAG_PREWARM = "prewarm"
TAG_HOT = "hot"
TAG_SHARED = "shared"

#: Accesses recorded ahead per tape extension once a tape is in the
#: all-TAG_NEXT steady state (see :meth:`StreamTape.event`).
_CHUNK = 64


def _record_next(stream) -> Tuple:
    return stream.next_access()


def _record_prewarm(stream) -> Tuple:
    return tuple(stream.prewarm_blocks())


def _record_hot(stream) -> Tuple:
    return tuple(stream.hot_blocks())


def _record_shared(stream):
    return stream.shared_blocks()


_RECORDERS: Dict[str, Callable] = {
    TAG_NEXT: _record_next,
    TAG_PREWARM: _record_prewarm,
    TAG_HOT: _record_hot,
    TAG_SHARED: _record_shared,
}


class StreamTape:
    """Append-only event log backed by one lazily-built master stream."""

    __slots__ = ("_factory", "_master", "log", "vals", "base")

    def __init__(self, factory: Callable[[], AccessStream]):
        self._factory = factory
        self._master = None
        #: recorded ``(tag, value)`` events, index = emission position
        self.log: List[Tuple[str, object]] = []
        #: steady-state value shadow: once every further event is
        #: TAG_NEXT, ``vals[i]`` is ``log[base + i][1]`` -- a bare
        #: value list readers index without tuple unpacking or tag
        #: checks (the invariant is maintained, not assumed: chunks
        #: only extend ``vals`` while it is position-synced with the
        #: log, so a mis-keyed tape degrades to the checked path).
        self.vals: List[object] = []
        self.base: int = -1

    def event(self, index: int, tag: str):
        """The value of emission ``index``; extends the master on first
        request, replays otherwise."""
        log = self.log
        if index < len(log):
            recorded_tag, value = log[index]
            if recorded_tag != tag:
                raise WorkloadError(
                    f"stream tape divergence at position {index}: "
                    f"recorded {recorded_tag!r}, requested {tag!r} "
                    "(non-equivalent streams shared one tape)"
                )
            return value
        if index != len(log):  # pragma: no cover - reader misuse
            raise WorkloadError(
                f"stream tape read skipped ahead to {index} "
                f"(log has {len(log)} events)"
            )
        if self._master is None:
            self._master = self._factory()
        if tag is TAG_NEXT and len(log) >= 2 and log[-1][0] is TAG_NEXT:
            # Steady state: once two consecutive emissions are plain
            # accesses the prewarm protocol is over (its events all
            # precede the access stream in the lifecycle order above)
            # and every event from here on is TAG_NEXT.  Record a chunk
            # ahead so the leading lane amortises the per-event call
            # overhead; followers replay from the log as usual, and a
            # tag mismatch on a mis-keyed tape still raises (the replay
            # path checks every read).
            master_next = self._master.next_access
            append = log.append
            vals = self.vals
            if self.base < 0:
                self.base = len(log)
            if self.base + len(vals) == len(log):
                vappend = vals.append
                for _ in range(_CHUNK):
                    v = master_next()
                    append((TAG_NEXT, v))
                    vappend(v)
            else:  # pragma: no cover - mis-keyed tape fell out of
                # steady state; keep vals frozen so its position
                # invariant holds and readers take the checked path.
                for _ in range(_CHUNK):
                    append((TAG_NEXT, master_next()))
            return log[index][1]
        value = _RECORDERS[tag](self._master)
        log.append((tag, value))
        return value


class TapeStream(AccessStream):
    """One lane's reader over a shared :class:`StreamTape`.

    Implements the full synthetic-stream surface the simulator touches
    (``next_access`` plus the prewarm protocol) by replaying the tape
    at its own position.
    """

    __slots__ = ("_tape", "_log", "_pos")

    def __init__(self, tape: StreamTape):
        self._tape = tape
        self._log = tape.log
        self._pos = 0

    def _event(self, tag: str):
        value = self._tape.event(self._pos, tag)
        self._pos += 1
        return value

    def next_access(self):
        # Replay is the overwhelmingly common case once any sibling
        # lane has advanced past this position: serve it without the
        # dispatch through StreamTape.event.  In the all-TAG_NEXT
        # steady state the value shadow skips even the tuple unpack
        # and tag check (its position invariant guarantees log[pos]
        # is a TAG_NEXT event carrying vals[pos - base]).
        pos = self._pos
        tape = self._tape
        i = pos - tape.base
        if i >= 0:
            vals = tape.vals
            if i < len(vals):
                self._pos = pos + 1
                return vals[i]
        log = self._log
        if pos < len(log):
            tag, value = log[pos]
            if tag is TAG_NEXT:
                self._pos = pos + 1
                return value
        return self._event(TAG_NEXT)

    def prewarm_blocks(self):
        return self._event(TAG_PREWARM)

    def hot_blocks(self):
        return self._event(TAG_HOT)

    def shared_blocks(self):
        return self._event(TAG_SHARED)


class TapePool:
    """Group-scoped tape registry keyed by stream equivalence.

    Two lanes get readers over the same tape exactly when
    :func:`~repro.workloads.mixes.stream_signature` matches -- i.e. the
    underlying :class:`SyntheticStream` construction would be
    bit-identical.  The pool lives for one batch lane group and is
    discarded with it (never shared across process-pool tasks).
    """

    def __init__(self):
        self._tapes: Dict[Tuple, StreamTape] = {}
        #: readers handed out minus tapes created = generations saved
        self.streams_served = 0

    def stream_factory(self, spec: BenchmarkSpec, core: int,
                       config: SystemConfig, seed: int) -> TapeStream:
        """Drop-in replacement for the workload layer's stream builder
        (the ``stream_factory`` hook of ``homogeneous``)."""
        key = stream_signature(spec, core, config, seed)
        tape = self._tapes.get(key)
        if tape is None:
            tape = StreamTape(
                lambda s=spec, c=core, cfg=config, sd=seed:
                make_stream(s, c, cfg, sd)
            )
            self._tapes[key] = tape
        self.streams_served += 1
        return TapeStream(tape)

    @property
    def tapes_created(self) -> int:
        return len(self._tapes)
