"""Vectorized per-cycle kernels for the batch backend.

The lockstep driver in :mod:`repro.engine.batch` advances each lane
with the scalar per-cycle machine; this module hoists the hot per-lane
state into batched ``(B, ...)`` structure-of-arrays -- one group-wide
array per field, each lane owning a row view -- and replaces the
dominant per-cycle costs with vectorized/sleep-based kernels:

* **Route-scan sleeping** (:meth:`repro.noc.network.Network
  ._route_cycle_kernel`): the scalar active-set loop re-scans a router
  every cycle while a flow-control refusal is pending, because the
  sink predicate has no timer.  The kernel records the refusing bank
  (``Router.kblocked``) and a private wake hint (``Router.kwake``)
  that is *not* escalated on refusals; the due gate polls the bank's
  queue depth -- which is the entire refusal predicate for ejection
  flow control -- so blocked routers sleep instead of rescanning.
* **Vectorized estimator tick** (:meth:`LaneKernel.tick`): the RCA
  estimator's per-cycle propagation walks every router's candidate
  queues and output links in Python.  The kernel folds the
  incrementally-mirrored ``Router.kflits`` counters and the
  ``(B, n_nodes, N_PORTS)`` link-busy array with numpy, reproducing
  the scalar arithmetic operation for operation (same IEEE evaluation
  order, see the tick body) and writing the aggregate dict back every
  tick so estimator consumers observe identical values.
* **Full-cycle driver** (:meth:`LaneKernel.krun`): the whole executed
  cycle -- network step, core wake scan, memory-controller issue/drain,
  bank service countdowns, core commit/stall accounting, and the
  next-event fold -- runs as one loop owned by the kernel, with the
  scheduler state held in SoA rows (``core_state`` / ``core_slept`` /
  ``core_wake`` sleep columns, the ``bank_busy`` service-timer mirror)
  instead of the scalar machine's dict + heap + per-component
  ``next_event_cycle`` calls.  Rare events (a miss fill, an NI drain,
  a write-buffer interaction) route through the *existing scalar
  objects* -- the sinks call the kernel's wake hook, the banks call
  their busy/dequeue hooks -- and mirror state back into the SoA rows:
  the same dual-write discipline ``kwake`` established, extended to
  the core and bank models.

Full-cycle kernel: scheduling-state SoA
---------------------------------------
The scalar event scheduler keeps three structures the kernel replaces
with group arrays (rows are lanes, columns are components):

* ``core_state (n_cores,)`` -- the ``CORE_*`` status a sleeping
  core parked with; ``-1`` marks an active (non-sleeping) core.
* ``core_slept (n_cores,)`` -- the cycle the core last
  stepped, i.e. the accrual basis for the lazily-deferred commit/stall
  counters (mirrors ``_core_sleep[cid][1]``).
* ``core_wake (n_cores,)`` -- the timed wake bound (gap
  sleepers), ``NEVER`` for event-woken sleepers (mirrors the wake
  heap; ``kmin_wake`` caches the row minimum, maintained stale-low,
  which is always safe: a spurious due scan wakes nobody and
  recomputes the exact minimum).
* ``bank_busy (B, n_banks) int64`` -- every bank's ``busy_until``
  service timer, dual-written by the ``kern_busy`` hook at the three
  scalar write sites (op start, write-buffer drain start, read
  preemption).  This is the cross-lane seam future ``(B, n_banks)``
  countdown kernels index; today it feeds telemetry and the identity
  tests, which assert it never drifts from the scalar field.

The core columns are per-lane Python rows rather than numpy rows: the
access pattern is strictly scalar-indexed (one core per transition,
one element per due check), where numpy's scalar boxing costs 2-3x a
list index -- measured, not assumed.  The bank/link timers stay numpy
where whole-row mirrors and folds pay for themselves.

While the kernel owns a lane, ``sim._wake_core`` and
``sim._flush_lazy`` are instance-patched to the kernel's SoA
equivalents (every call site resolves them at call time), so sink
deliveries and phase-boundary flushes keep the rows -- not the scalar
dict/heap -- authoritative.  Suspend writes the rows back into
``_core_sleep``/``_wake_heap`` and removes the patches; resume drains
them into the rows again.  Memory controllers gain a ``kdue`` due
hint (recomputed from ``next_event_cycle`` after every step, zeroed on
packet arrival and on resume), letting the kernel skip the provably
no-op ``step`` calls the scalar loop makes while a controller merely
waits on DRAM latency.

Identity argument
-----------------
All kernels preserve the byte-identity contract the batch backend is
certified against:

* The kernel route loop runs every scan that could change state, in
  the same order, and assigns ``next_active`` the exact value the
  scalar scan would -- so the simulator's cycle-skip schedule never
  diverges.  Scans it skips are provably no-ops: parked-delay accrual
  is gap-based (``accrue_parked``), refusals cannot flip until the
  polled queue shrinks, and every event that could enable earlier
  progress (an accept, an upstream VC freeing, an estimator poke)
  lowers ``kwake`` at the same dual-write sites that lower
  ``next_active``.
* The vectorized tick performs the same float64 operations in the
  same order as the scalar tick, so aggregates (and hence every
  congestion estimate and arbitration decision) are value-identical.
* The full-cycle driver executes a superset of the scalar schedule's
  cycles (its next-event fold is a lower bound on the scalar fold:
  the bank/MC folds are value-equal by the gate proofs below and the
  ``kmin_wake`` cache is maintained stale-low), and every extra cycle
  is a provable no-op: all due gates exceed ``now``, no source can
  inject (the source fold bounds it), no blocked router's bank has
  space (a dequeue would have lowered ``kwake`` through its hook),
  and it is never an estimator-tick multiple (the tick fold bounds
  it).  Only ``executed_cycles`` -- explicitly outside the identity
  surface -- can differ.  Within an executed cycle the component
  order is the dense order (network, wakes, MCs, banks, cores), the
  wake scan wakes exactly the cores the validated heap pops would
  (ascending id instead of ascending wake time; accruals are
  independent and set insertion commutes), the MC gate skips only
  steps whose issue/completion conditions are all false (arrivals
  zero the gate), and the bank gate mirrors the scalar
  ``busy_until > now`` test verbatim.

Divergence protocol
-------------------
Lanes that cannot take the common path never attach a kernel
(:func:`lane_vectorizable` names the reason: fault plane, guard,
observability, tracing, dense reference loop, unknown estimator, or an
unmapped flow-control node).  A lane that must *temporarily* leave the
common path (``sim.force_scalar_until``) is suspended -- the scalar
machine advances it while the dual-write mirrors stay fresh -- and
re-synchronized on resume: ``kwake`` is reloaded from the
scalar-owned ``next_active`` (a blocked router's ``kwake`` may be
stale-high after a scalar interlude; stale-low is always safe), the
link-busy mirror and the aggregate row are reloaded from scalar
state, the core sleep columns are drained from the scalar dict and
the MC due hints are zeroed (stale-low, hence safe).

numpy is optional; without it every lane reports non-vectorizable and
the batch backend behaves exactly as before.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from repro.core.estimators import (
    RegionalCongestionEstimator,
    SimplisticEstimator,
    WindowEstimator,
)
from repro.cpu.core import (
    CORE_GAP, CORE_RUN, CORE_STALL_NI, CORE_STALL_WINDOW,
)
from repro.noc.router import NEVER
from repro.noc.topology import LOCAL, N_PORTS


def kernels_available() -> bool:
    return np is not None


def lane_vectorizable(sim) -> Optional[str]:
    """Why ``sim`` must stay on the scalar machine, or None.

    The checks are conservative: anything attached to the simulator
    that observes or perturbs per-cycle execution (fault plane, guard,
    observability, event tracing), any non-event scheduling mode, and
    any estimator whose tick the kernel does not model keep the lane
    scalar.  All conditions are static over a run -- resilience and
    observability attachments happen at construction time -- so the
    decision is made once, at lane build.
    """
    if np is None:
        return "numpy unavailable"
    if sim.scheduler != "event":
        return "dense scheduler"
    network = sim.network
    if network.use_reference_loop:
        return "reference route loop"
    if sim.fault_plane is not None:
        return "fault plane active"
    if sim.guard is not None:
        return "invariant guard attached"
    if sim._obs is not None:
        return "observability attached"
    if network.trace is not None:
        return "event tracing attached"
    est = network.estimator
    if est is not None and type(est) not in (
            RegionalCongestionEstimator, SimplisticEstimator,
            WindowEstimator):
        return f"unknown estimator {type(est).__name__}"
    # Every flow-controlled ejection node must map to a bank whose
    # queue depth the blocked-port due gate can poll.
    bank_node = sim.topo.bank_node
    bank_nodes = {bank_node(b) for b in range(len(sim.banks))}
    for node, flow in enumerate(network._flow_at):
        if flow is not None and node not in bank_nodes:
            return f"unmapped flow control at node {node}"
    return None


def _make_bank_wake(router, bank):
    """Dequeue hook: re-arm a router blocked on this bank's queue.

    A pop creates queue space -- the entire ejection-refusal predicate
    -- so the blocked router can forward the cycle after.  ``kblocked``
    is the unique token for "asleep awaiting space at this bank"; any
    other sleeping router's bound is unaffected by a dequeue, and a
    spurious poke would only force a no-op scan anyway (stale-low wake
    hints are always safe).
    """
    def wake(now: int) -> None:
        if router.kblocked is bank:
            t = now + 1
            if t < router.kwake:
                router.kwake = t
    return wake


def _make_bank_busy(row, bank_index: int):
    """Service-timer hook: mirror one bank's ``busy_until`` into its
    SoA slot.

    Installed at attach and left in place across suspend windows, so
    the mirror stays fresh no matter which machine advances the lane
    (the same unconditional dual-write discipline as ``kwake``).
    """
    def busy(until: int) -> None:
        row[bank_index] = until
    return busy


class GroupKernel:
    """Group-wide ``(B, ...)`` arrays; lanes index rows.

    Allocated once per lane group.  ``busy`` mirrors every router's
    ``out_busy_until`` and ``agg`` holds the RCA aggregate vector;
    ``bank_busy`` mirrors the bank service timers.  All are only
    *used* by lanes whose kernel reads them, but rows exist for every
    lane so indexing stays positional.  The core sleep columns live on
    each :class:`LaneKernel` as plain lists -- their access pattern is
    strictly scalar-indexed, where numpy boxing costs more than it
    saves (module docstring).
    """

    __slots__ = ("n_lanes", "n_nodes", "n_banks", "n_cores",
                 "busy", "agg", "bank_busy")

    def __init__(self, n_lanes: int, n_nodes: int,
                 n_banks: int = 1, n_cores: int = 1):
        self.n_lanes = n_lanes
        self.n_nodes = n_nodes
        self.n_banks = n_banks
        self.n_cores = n_cores
        self.busy = np.zeros((n_lanes, n_nodes, N_PORTS), dtype=np.int64)
        self.agg = np.zeros((n_lanes, n_nodes), dtype=np.float64)
        self.bank_busy = np.zeros((n_lanes, n_banks), dtype=np.int64)


class LaneKernel:
    """One lane's view into the group arrays plus its scalar hooks."""

    __slots__ = (
        "sim", "network", "rca", "busy", "agg", "agg_valid",
        "neigh_idx", "deg", "_pad", "_total", "_n", "_keys", "active",
        "bank_busy", "core_state", "core_slept", "core_wake",
        "kmin_wake",
    )

    def __init__(self, sim, group: GroupKernel, lane: int):
        self.sim = sim
        network = sim.network
        self.network = network
        est = network.estimator
        self.rca = est if isinstance(est, RegionalCongestionEstimator) \
            else None
        n = len(network.routers)
        self._n = n
        #: (n_nodes, N_PORTS) int64 row: out_busy_until mirror
        self.busy = group.busy[lane]
        #: (n_nodes,) float64 row: RCA aggregate vector
        self.agg = group.agg[lane]
        #: (n_banks,) int64 row: bank ``busy_until`` mirror
        self.bank_busy = group.bank_busy[lane]
        #: core sleep columns -- plain lists, scalar-indexed only
        #: (see module docstring for the measured boxing rationale)
        n_cores = len(sim.cores)
        self.core_state = [-1] * n_cores
        self.core_slept = [0] * n_cores
        self.core_wake = [NEVER] * n_cores
        #: cached min of ``core_wake``; maintained stale-low (never
        #: above the true minimum), recomputed exactly at due scans
        self.kmin_wake = NEVER
        self.agg_valid = False
        self.active = False
        if self.rca is not None:
            # Padded neighbour-index matrix: row j holds each node's
            # j-th neighbour (or the pad slot ``n``, which reads 0.0).
            # Summation proceeds row by row, reproducing the scalar
            # tick's left-to-right neighbour addition order exactly.
            neighbors_of = network.neighbors_of
            max_deg = max((len(x) for x in neighbors_of), default=0)
            idx = np.full((max_deg, n), n, dtype=np.intp)
            deg = np.ones(n, dtype=np.float64)
            for node, neigh in enumerate(neighbors_of):
                for j, other in enumerate(neigh):
                    idx[j, node] = other
                if neigh:
                    deg[node] = float(len(neigh))
            self.neigh_idx = idx
            self.deg = deg
            self._pad = np.zeros(n + 1, dtype=np.float64)
            self._total = np.zeros(n, dtype=np.float64)
            self._keys = tuple(range(n))
        else:
            self.neigh_idx = None
            self.deg = None
            self._pad = None
            self._total = None
            self._keys = None

    # ------------------------------------------------------------------
    # Attach / suspend / resume
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Install the kernel on the lane's network (initial sync)."""
        self.attach_banks()
        self.attach_cores()

    def attach_banks(self) -> None:
        """Wire the bank-model seam: dequeue wake hooks, the
        ``busy_until`` SoA mirror, and the blocked-port poll map."""
        network = self.network
        sim = self.sim
        bank_at: List = [None] * self._n
        routers = network.routers
        bank_busy = self.bank_busy
        for b, bank in enumerate(sim.banks):
            node = sim.topo.bank_node(b)
            bank_at[node] = bank
            bank.kern_wake = _make_bank_wake(routers[node], bank)
            bank.kern_busy = _make_bank_busy(bank_busy, b)
            bank_busy[b] = bank.busy_until
        network._bank_at = bank_at
        if self.rca is not None:
            network._kbusy = self.busy

    def attach_cores(self) -> None:
        """Wire the core/scheduler seam and perform the initial sync."""
        self.sim._lane_kernel = self
        self.resume()

    def suspend(self) -> None:
        """Drop to the scalar machine; mirrors keep updating (the
        dual-write sites are unconditional), so resume is cheap.

        The SoA sleep columns are written back into the scalar
        ``_core_sleep`` dict and wake heap, and the instance patches
        are removed, so the scalar machine resumes exactly where the
        kernel stopped.
        """
        self.network._kern = None
        self.active = False
        sim = self.sim
        state = self.core_state
        slept = self.core_slept
        wake = self.core_wake
        sleep = sim._core_sleep
        heap = sim._wake_heap
        for cid, st in enumerate(state):
            if st < 0:
                continue
            w = wake[cid]
            sleep[cid] = [st, slept[cid], w]
            if w < NEVER:
                heapq.heappush(heap, (w, cid))
            state[cid] = -1
            wake[cid] = NEVER
        self.kmin_wake = NEVER
        for attr in ("_wake_core", "_flush_lazy"):
            try:
                delattr(sim, attr)
            except AttributeError:
                pass

    def resume(self) -> None:
        """Re-synchronize from scalar-owned state and re-install.

        ``kwake`` is reloaded from ``next_active`` for every active
        router: after a scalar interlude a blocked router holds
        ``next_active = now + 1`` while its ``kwake`` may be stale-high
        with ``kblocked`` cleared -- the due gate would sleep through
        real work.  A stale-low ``kwake`` is always safe (a spurious
        scan is a no-op), so resync never needs to raise hints.  The
        core sleep dict/heap drain into the SoA columns, the MC due
        hints reset to zero (stale-low, safe), and the scheduler entry
        points are instance-patched to the kernel's SoA equivalents.
        """
        network = self.network
        routers = network.routers
        sim = self.sim
        for node in network._active_routers:
            router = routers[node]
            router.kwake = router.next_active
            router.kblocked = None
        rca = self.rca
        if rca is not None:
            busy = self.busy
            for node, router in enumerate(routers):
                busy[node, :] = router.out_busy_until
                router.kflits = router.queued_flits()
            agg_dict = rca.agg
            if agg_dict:
                get = agg_dict.get
                agg = self.agg
                for i in range(self._n):
                    agg[i] = get(i, 0.0)
                self.agg_valid = True
            else:
                self.agg_valid = False
        state = self.core_state
        slept = self.core_slept
        wake = self.core_wake
        for cid in range(len(state)):
            state[cid] = -1
            wake[cid] = NEVER
        kmin = NEVER
        for cid, st in sim._core_sleep.items():
            state[cid] = st[0]
            slept[cid] = st[1]
            w = st[2]
            wake[cid] = w
            if w < kmin:
                kmin = w
        sim._core_sleep.clear()
        del sim._wake_heap[:]
        self.kmin_wake = kmin
        for mc in sim.mcs:
            mc.kdue = 0
        sim._wake_core = self._kwake_core
        sim._flush_lazy = self._kflush
        network._kern = self
        self.active = True

    # ------------------------------------------------------------------
    # Core scheduler seam (SoA equivalents of the scalar entry points)
    # ------------------------------------------------------------------

    def _kwake_core(self, core_id: int, now: int) -> None:
        """SoA mirror of ``CMPSimulator._wake_core`` (instance-patched
        over it while the kernel owns the lane)."""
        state = self.core_state
        st = state[core_id]
        if st < 0:
            return
        skipped = now - 1 - self.core_slept[core_id]
        if skipped > 0:
            self._kaccrue(core_id, st, skipped)
        state[core_id] = -1
        self.core_wake[core_id] = NEVER
        self.sim._active_cores.add(core_id)

    def _kaccrue(self, core_id: int, status: int, k: int) -> None:
        """Bulk replay of ``k`` skipped sleeper cycles; arithmetic is
        ``CMPSimulator._accrue_core`` verbatim (Python ints in, Python
        ints out -- no numpy scalars leak into the stats)."""
        core = self.sim.cores[core_id]
        if status == CORE_GAP:
            n = k * core.config.commit_width
            core.stats.committed += n
            core._gap_remaining -= n
        elif status == CORE_STALL_WINDOW:
            core.stats.stall_cycles += k
        elif status == CORE_STALL_NI:
            core.stats.ni_stall_cycles += k
        else:  # CORE_STALL_MSHR
            core.stats.mshr_stall_cycles += k
            core.mshrs.full_stalls += k

    def _kflush(self) -> None:
        """SoA mirror of ``CMPSimulator._flush_lazy`` (instance-patched
        over it while the kernel owns the lane)."""
        sim = self.sim
        boundary = sim.cycle
        state = self.core_state
        slept = self.core_slept
        for cid, st in enumerate(state):
            if st < 0:
                continue
            skipped = boundary - 1 - slept[cid]
            if skipped > 0:
                self._kaccrue(cid, st, skipped)
                slept[cid] = boundary - 1
        sim.network.flush_parked(boundary)

    # ------------------------------------------------------------------
    # Full-cycle lockstep driver
    # ------------------------------------------------------------------

    def krun(self, limit: int, budget: int) -> None:
        """Advance the lane up to ``budget`` executed cycles or ``limit``.

        One loop owning the whole executed cycle, fused with the
        next-event fold: the scalar pair ``_event_step`` +
        ``_next_event`` re-derives every component bound per cycle
        through attribute lookups, a validated heap, and per-component
        ``next_event_cycle`` calls; here the bounds fold as the step
        loops run (post-step state, exactly what the scalar fold reads)
        and the scheduler state lives in the SoA sleep columns.
        Component order is the dense order; see the module docstring
        for the cycle-schedule identity argument.
        """
        sim = self.sim
        network = self.network
        # network.step inlined: in kernel mode it is exactly
        # inject -> kernel route -> periodic kernel tick, and the
        # method dispatch plus the redundant empty-source call are
        # per-cycle costs the batch side alone pays.
        net_inject = network._inject_sources
        net_route = network._route_cycle_kernel
        nonempty_sources = network._nonempty_sources
        tick_period = network._tick_period
        ktick = self.tick
        net_next = network.next_event_cycle
        mcs = sim.mcs
        banks = sim.banks
        cores = sim.cores
        active_mcs = sim._active_mcs
        active_banks = sim._active_banks
        active_cores = sim._active_cores
        state = self.core_state
        slept = self.core_slept
        wake = self.core_wake
        kwake_core = self._kwake_core
        never = NEVER
        kmin = self.kmin_wake
        cycle = sim.cycle
        executed = 0
        while cycle < limit and executed < budget:
            now = cycle
            if nonempty_sources:
                net_inject(now)
            net_route(now)
            if tick_period is not None and now % tick_period == 0:
                ktick(now)
            if kmin <= now:
                # Timed-wake scan: ascending core id instead of the
                # heap's ascending wake time -- equivalent outcome
                # (independent accruals, commuting set inserts), and
                # the exact-minimum recompute clears any staleness.
                kmin = never
                for cid, w in enumerate(wake):
                    if w <= now:
                        kwake_core(cid, now)
                    elif w < kmin:
                        kmin = w
            comp_next = never
            if active_mcs:
                for i in sorted(active_mcs):
                    mc = mcs[i]
                    d = mc.kdue
                    if d > now:
                        # Provably idle until ``kdue``: the skipped
                        # steps' issue/completion conditions are all
                        # false (arrivals zero the hint), and the fold
                        # value equals the scalar ``next_event_cycle``
                        # (its components are unchanged and > now).
                        if d < comp_next:
                            comp_next = d
                        continue
                    mc.step(now)
                    d = mc.next_event_cycle(now)
                    if d >= never:  # NEVER <=> idle()
                        active_mcs.discard(i)
                    else:
                        mc.kdue = d
                        if d < comp_next:
                            comp_next = d
            if active_banks:
                for b in sorted(active_banks):
                    bank = banks[b]
                    bu = bank.busy_until
                    if bu > now:
                        # Scalar gate verbatim; the fold value is what
                        # ``next_event_cycle`` returns for a busy bank.
                        if bu < comp_next:
                            comp_next = bu
                        continue
                    bank.step(now)
                    t = bank.next_event_cycle(now)
                    if t >= never:
                        active_banks.discard(b)
                    elif t < comp_next:
                        comp_next = t
            if active_cores:
                for cid in sorted(active_cores):
                    core = cores[cid]
                    status = core.step(now)
                    if status == CORE_RUN:
                        continue
                    if status == CORE_GAP:
                        horizon = core.pure_gap_cycles()
                        if horizon <= 0:
                            continue
                        w = now + horizon + 1
                    else:
                        w = never  # woken by delivery / NI drain
                    active_cores.discard(cid)
                    state[cid] = status
                    slept[cid] = now
                    wake[cid] = w
                    if w < kmin:
                        kmin = w
            executed += 1
            if active_cores:
                cycle = now + 1
            else:
                nxt = net_next(now)
                if comp_next < nxt:
                    nxt = comp_next
                if kmin < nxt:
                    nxt = kmin
                if nxt <= now:
                    nxt = now + 1
                cycle = nxt if nxt < limit else limit
        self.kmin_wake = kmin
        sim.cycle = cycle
        sim.executed_cycles += executed

    # ------------------------------------------------------------------
    # Vectorized estimator tick
    # ------------------------------------------------------------------

    def tick(self, now: int) -> None:
        """Estimator tick under kernel mode.

        RCA lanes run the vectorized propagation below; any other
        estimator with a tick period falls through to its scalar tick.
        The arithmetic mirrors
        :meth:`~repro.core.estimators.RegionalCongestionEstimator.tick`
        operation for operation: int local values, float64
        ``0.5 * local + 0.5 * downstream`` with neighbour addition in
        ``neighbors_of`` order, clamped to the 8-bit ceiling -- so the
        aggregates consumed by ``congestion_estimate`` (and therefore
        every arbitration decision) are value-identical.
        """
        est = self.rca
        if est is None:
            self.network.estimator.tick(now)
            return
        if now % est.update_period:
            return
        n = self._n
        routers = self.network.routers
        # local = min(255, queued_flits + max_output_residual)
        local = np.fromiter(
            (r.kflits for r in routers), dtype=np.int64, count=n)
        residual = self.busy[:, :LOCAL].max(axis=1)
        residual -= now
        np.maximum(residual, 0, out=residual)
        local += residual
        np.minimum(local, est.max_value, out=local)
        local_f = local.astype(np.float64)
        pad = self._pad
        if self.agg_valid:
            pad[:n] = self.agg
        else:
            # First tick: the scalar code seeds prev from this tick's
            # local values.
            pad[:n] = local_f
        pad[n] = 0.0
        total = self._total
        rows = pad[self.neigh_idx]
        nrows = len(rows)
        if nrows:
            # One gather, then sequential row adds: reproduces the
            # scalar tick's left-to-right neighbour addition order by
            # construction (no reliance on reduce internals).
            total[:] = rows[0]
            for j in range(1, nrows):
                total += rows[j]
        else:
            total[:] = 0.0
        downstream = total / self.deg
        agg = self.agg
        np.multiply(local_f, 0.5, out=agg)
        downstream *= 0.5
        agg += downstream
        np.minimum(agg, float(est.max_value), out=agg)
        self.agg_valid = True
        # Consumers (congestion_estimate, tests) read the dict; publish
        # every tick.  Replacing the dict is fine -- nothing caches a
        # reference across calls -- and the scalar tick keeps working
        # on the replacement during suspend windows.
        est.agg = dict(zip(self._keys, agg.tolist()))


def attach_group(sims, recorder=None) -> List[Optional["LaneKernel"]]:
    """Build group arrays and attach kernels to the eligible lanes.

    Returns one entry per lane: the attached :class:`LaneKernel`, or
    None for lanes that stay scalar (reason from
    :func:`lane_vectorizable`).  With a
    :class:`~repro.obs.telemetry.SpanRecorder`, the bank-seam and
    core-seam wiring times are recorded as ``batch.bank_kernel`` /
    ``batch.core_kernel`` spans (pure readers).
    """
    if np is None:
        return [None] * len(sims)
    reasons = [lane_vectorizable(sim) for sim in sims]
    if all(reason is not None for reason in reasons):
        return [None] * len(sims)
    n_nodes = max(len(sim.network.routers) for sim in sims)
    n_banks = max(len(sim.banks) for sim in sims)
    n_cores = max(len(sim.cores) for sim in sims)
    group = GroupKernel(len(sims), n_nodes, n_banks, n_cores)
    kernels: List[Optional[LaneKernel]] = []
    monotonic = time.monotonic
    t0 = monotonic()
    bank_t = core_t = 0.0
    attached = 0
    for lane, (sim, reason) in enumerate(zip(sims, reasons)):
        if reason is None:
            kernel = LaneKernel(sim, group, lane)
            tb = monotonic()
            kernel.attach_banks()
            tc = monotonic()
            kernel.attach_cores()
            bank_t += tc - tb
            core_t += monotonic() - tc
            attached += 1
            kernels.append(kernel)
        else:
            kernels.append(None)
    if recorder is not None and attached:
        recorder.add("batch.bank_kernel", t0, bank_t,
                     lanes=attached, banks=n_banks)
        recorder.add("batch.core_kernel", t0, core_t,
                     lanes=attached, cores=n_cores)
    return kernels
