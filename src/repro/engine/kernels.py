"""Vectorized per-cycle kernels for the batch backend.

The lockstep driver in :mod:`repro.engine.batch` advances each lane
with the scalar per-cycle machine; this module hoists the hot per-lane
state into batched ``(B, ...)`` structure-of-arrays -- one group-wide
array per field, each lane owning a row view -- and replaces the two
dominant per-cycle costs with vectorized/sleep-based kernels:

* **Route-scan sleeping** (:meth:`repro.noc.network.Network
  ._route_cycle_kernel`): the scalar active-set loop re-scans a router
  every cycle while a flow-control refusal is pending, because the
  sink predicate has no timer.  The kernel records the refusing bank
  (``Router.kblocked``) and a private wake hint (``Router.kwake``)
  that is *not* escalated on refusals; the due gate polls the bank's
  queue depth -- which is the entire refusal predicate for ejection
  flow control -- so blocked routers sleep instead of rescanning.
* **Vectorized estimator tick** (:meth:`LaneKernel.tick`): the RCA
  estimator's per-cycle propagation walks every router's candidate
  queues and output links in Python.  The kernel folds the
  incrementally-mirrored ``Router.kflits`` counters and the
  ``(B, n_nodes, N_PORTS)`` link-busy array with numpy, reproducing
  the scalar arithmetic operation for operation (same IEEE evaluation
  order, see the tick body) and writing the aggregate dict back every
  tick so estimator consumers observe identical values.

Identity argument
-----------------
Both kernels preserve the byte-identity contract the batch backend is
certified against:

* The kernel route loop runs every scan that could change state, in
  the same order, and assigns ``next_active`` the exact value the
  scalar scan would -- so the simulator's cycle-skip schedule never
  diverges.  Scans it skips are provably no-ops: parked-delay accrual
  is gap-based (``accrue_parked``), refusals cannot flip until the
  polled queue shrinks, and every event that could enable earlier
  progress (an accept, an upstream VC freeing, an estimator poke)
  lowers ``kwake`` at the same dual-write sites that lower
  ``next_active``.
* The vectorized tick performs the same float64 operations in the
  same order as the scalar tick, so aggregates (and hence every
  congestion estimate and arbitration decision) are value-identical.

Divergence protocol
-------------------
Lanes that cannot take the common path never attach a kernel
(:func:`lane_vectorizable` names the reason: fault plane, guard,
observability, tracing, dense reference loop, unknown estimator, or an
unmapped flow-control node).  A lane that must *temporarily* leave the
common path (``sim.force_scalar_until``) is suspended -- the scalar
machine advances it while the dual-write mirrors stay fresh -- and
re-synchronized on resume: ``kwake`` is reloaded from the
scalar-owned ``next_active`` (a blocked router's ``kwake`` may be
stale-high after a scalar interlude; stale-low is always safe), the
link-busy mirror and the aggregate row are reloaded from scalar state.

numpy is optional; without it every lane reports non-vectorizable and
the batch backend behaves exactly as before.
"""

from __future__ import annotations

from typing import List, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from repro.core.estimators import (
    RegionalCongestionEstimator,
    SimplisticEstimator,
    WindowEstimator,
)
from repro.noc.topology import LOCAL, N_PORTS


def kernels_available() -> bool:
    return np is not None


def lane_vectorizable(sim) -> Optional[str]:
    """Why ``sim`` must stay on the scalar machine, or None.

    The checks are conservative: anything attached to the simulator
    that observes or perturbs per-cycle execution (fault plane, guard,
    observability, event tracing), any non-event scheduling mode, and
    any estimator whose tick the kernel does not model keep the lane
    scalar.  All conditions are static over a run -- resilience and
    observability attachments happen at construction time -- so the
    decision is made once, at lane build.
    """
    if np is None:
        return "numpy unavailable"
    if sim.scheduler != "event":
        return "dense scheduler"
    network = sim.network
    if network.use_reference_loop:
        return "reference route loop"
    if sim.fault_plane is not None:
        return "fault plane active"
    if sim.guard is not None:
        return "invariant guard attached"
    if sim._obs is not None:
        return "observability attached"
    if network.trace is not None:
        return "event tracing attached"
    est = network.estimator
    if est is not None and type(est) not in (
            RegionalCongestionEstimator, SimplisticEstimator,
            WindowEstimator):
        return f"unknown estimator {type(est).__name__}"
    # Every flow-controlled ejection node must map to a bank whose
    # queue depth the blocked-port due gate can poll.
    bank_node = sim.topo.bank_node
    bank_nodes = {bank_node(b) for b in range(len(sim.banks))}
    for node, flow in enumerate(network._flow_at):
        if flow is not None and node not in bank_nodes:
            return f"unmapped flow control at node {node}"
    return None


def _make_bank_wake(router, bank):
    """Dequeue hook: re-arm a router blocked on this bank's queue.

    A pop creates queue space -- the entire ejection-refusal predicate
    -- so the blocked router can forward the cycle after.  ``kblocked``
    is the unique token for "asleep awaiting space at this bank"; any
    other sleeping router's bound is unaffected by a dequeue, and a
    spurious poke would only force a no-op scan anyway (stale-low wake
    hints are always safe).
    """
    def wake(now: int) -> None:
        if router.kblocked is bank:
            t = now + 1
            if t < router.kwake:
                router.kwake = t
    return wake


class GroupKernel:
    """Group-wide ``(B, ...)`` arrays; lanes index rows.

    Allocated once per lane group.  ``busy`` mirrors every router's
    ``out_busy_until`` and ``agg`` holds the RCA aggregate vector; both
    are only *used* by lanes whose estimator reads them, but rows exist
    for every lane so indexing stays positional.
    """

    __slots__ = ("n_lanes", "n_nodes", "busy", "agg")

    def __init__(self, n_lanes: int, n_nodes: int):
        self.n_lanes = n_lanes
        self.n_nodes = n_nodes
        self.busy = np.zeros((n_lanes, n_nodes, N_PORTS), dtype=np.int64)
        self.agg = np.zeros((n_lanes, n_nodes), dtype=np.float64)


class LaneKernel:
    """One lane's view into the group arrays plus its scalar hooks."""

    __slots__ = (
        "sim", "network", "rca", "busy", "agg", "agg_valid",
        "neigh_idx", "deg", "_pad", "_total", "_n", "active",
    )

    def __init__(self, sim, group: GroupKernel, lane: int):
        self.sim = sim
        network = sim.network
        self.network = network
        est = network.estimator
        self.rca = est if isinstance(est, RegionalCongestionEstimator) \
            else None
        n = len(network.routers)
        self._n = n
        #: (n_nodes, N_PORTS) int64 row: out_busy_until mirror
        self.busy = group.busy[lane]
        #: (n_nodes,) float64 row: RCA aggregate vector
        self.agg = group.agg[lane]
        self.agg_valid = False
        self.active = False
        if self.rca is not None:
            # Padded neighbour-index matrix: row j holds each node's
            # j-th neighbour (or the pad slot ``n``, which reads 0.0).
            # Summation proceeds row by row, reproducing the scalar
            # tick's left-to-right neighbour addition order exactly.
            neighbors_of = network.neighbors_of
            max_deg = max((len(x) for x in neighbors_of), default=0)
            idx = np.full((max_deg, n), n, dtype=np.intp)
            deg = np.ones(n, dtype=np.float64)
            for node, neigh in enumerate(neighbors_of):
                for j, other in enumerate(neigh):
                    idx[j, node] = other
                if neigh:
                    deg[node] = float(len(neigh))
            self.neigh_idx = idx
            self.deg = deg
            self._pad = np.zeros(n + 1, dtype=np.float64)
            self._total = np.zeros(n, dtype=np.float64)
        else:
            self.neigh_idx = None
            self.deg = None
            self._pad = None
            self._total = None

    # ------------------------------------------------------------------
    # Attach / suspend / resume
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Install the kernel on the lane's network (initial sync)."""
        network = self.network
        sim = self.sim
        bank_at: List = [None] * self._n
        routers = network.routers
        for b, bank in enumerate(sim.banks):
            node = sim.topo.bank_node(b)
            bank_at[node] = bank
            bank.kern_wake = _make_bank_wake(routers[node], bank)
        network._bank_at = bank_at
        if self.rca is not None:
            network._kbusy = self.busy
        sim._lane_kernel = self
        self.resume()

    def suspend(self) -> None:
        """Drop to the scalar machine; mirrors keep updating (the
        dual-write sites are unconditional), so resume is cheap."""
        self.network._kern = None
        self.active = False

    def resume(self) -> None:
        """Re-synchronize from scalar-owned state and re-install.

        ``kwake`` is reloaded from ``next_active`` for every active
        router: after a scalar interlude a blocked router holds
        ``next_active = now + 1`` while its ``kwake`` may be stale-high
        with ``kblocked`` cleared -- the due gate would sleep through
        real work.  A stale-low ``kwake`` is always safe (a spurious
        scan is a no-op), so resync never needs to raise hints.
        """
        network = self.network
        routers = network.routers
        for node in network._active_routers:
            router = routers[node]
            router.kwake = router.next_active
            router.kblocked = None
        rca = self.rca
        if rca is not None:
            busy = self.busy
            for node, router in enumerate(routers):
                busy[node, :] = router.out_busy_until
                router.kflits = router.queued_flits()
            agg_dict = rca.agg
            if agg_dict:
                get = agg_dict.get
                agg = self.agg
                for i in range(self._n):
                    agg[i] = get(i, 0.0)
                self.agg_valid = True
            else:
                self.agg_valid = False
        network._kern = self
        self.active = True

    # ------------------------------------------------------------------
    # Vectorized estimator tick
    # ------------------------------------------------------------------

    def tick(self, now: int) -> None:
        """Estimator tick under kernel mode.

        RCA lanes run the vectorized propagation below; any other
        estimator with a tick period falls through to its scalar tick.
        The arithmetic mirrors
        :meth:`~repro.core.estimators.RegionalCongestionEstimator.tick`
        operation for operation: int local values, float64
        ``0.5 * local + 0.5 * downstream`` with neighbour addition in
        ``neighbors_of`` order, clamped to the 8-bit ceiling -- so the
        aggregates consumed by ``congestion_estimate`` (and therefore
        every arbitration decision) are value-identical.
        """
        est = self.rca
        if est is None:
            self.network.estimator.tick(now)
            return
        if now % est.update_period:
            return
        n = self._n
        routers = self.network.routers
        # local = min(255, queued_flits + max_output_residual)
        local = np.fromiter(
            (r.kflits for r in routers), dtype=np.int64, count=n)
        residual = self.busy[:, :LOCAL].max(axis=1)
        residual -= now
        np.maximum(residual, 0, out=residual)
        local += residual
        np.minimum(local, est.max_value, out=local)
        local_f = local.astype(np.float64)
        pad = self._pad
        if self.agg_valid:
            pad[:n] = self.agg
        else:
            # First tick: the scalar code seeds prev from this tick's
            # local values.
            pad[:n] = local_f
        pad[n] = 0.0
        total = self._total
        rows = pad[self.neigh_idx]
        nrows = len(rows)
        if nrows:
            # One gather, then sequential row adds: reproduces the
            # scalar tick's left-to-right neighbour addition order by
            # construction (no reliance on reduce internals).
            total[:] = rows[0]
            for j in range(1, nrows):
                total += rows[j]
        else:
            total[:] = 0.0
        downstream = total / self.deg
        agg = self.agg
        np.multiply(local_f, 0.5, out=agg)
        downstream *= 0.5
        agg += downstream
        np.minimum(agg, float(est.max_value), out=agg)
        self.agg_valid = True
        # Consumers (congestion_estimate, tests) read the dict; publish
        # every tick.  Replacing the dict is fine -- nothing caches a
        # reference across calls -- and the scalar tick keeps working
        # on the replacement during suspend windows.
        est.agg = dict(enumerate(agg.tolist()))


def attach_group(sims) -> List[Optional["LaneKernel"]]:
    """Build group arrays and attach kernels to the eligible lanes.

    Returns one entry per lane: the attached :class:`LaneKernel`, or
    None for lanes that stay scalar (reason from
    :func:`lane_vectorizable`).
    """
    if np is None:
        return [None] * len(sims)
    reasons = [lane_vectorizable(sim) for sim in sims]
    if all(reason is not None for reason in reasons):
        return [None] * len(sims)
    n_nodes = max(len(sim.network.routers) for sim in sims)
    group = GroupKernel(len(sims), n_nodes)
    kernels: List[Optional[LaneKernel]] = []
    for lane, (sim, reason) in enumerate(zip(sims, reasons)):
        if reason is None:
            kernel = LaneKernel(sim, group, lane)
            kernel.attach()
            kernels.append(kernel)
        else:
            kernels.append(None)
    return kernels
