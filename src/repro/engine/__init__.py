"""Execution engines: the model-spec / execution seam.

``repro.engine`` separates *what* to simulate (:class:`EngineSpec`)
from *how* (:class:`ExecutionEngine` backends).  The ``scalar`` backend
is the historical one-simulation-at-a-time path; the optional ``batch``
backend (``pip install repro[batch]``) packs compatible sweep points
into lockstep lane groups.  Both produce byte-identical summaries --
see DESIGN.md, "Execution backends".
"""

from repro.engine.base import (
    BACKEND_NAMES, ExecutionEngine, ScalarEngine, available_backends,
    batch_available, get_engine,
)
from repro.engine.spec import EngineSpec

__all__ = [
    "BACKEND_NAMES",
    "EngineSpec",
    "ExecutionEngine",
    "ScalarEngine",
    "available_backends",
    "batch_available",
    "get_engine",
]
