"""Batched lockstep execution backend (structure-of-arrays, numpy).

Packs B compatible simulations ("lanes") from one sweep grid into a
lane group and steps them through their warm-up and measurement phases
in lockstep slices.  Per-lane simulated state remains the scalar
machine -- that is what makes the backend bit-identical to the scalar
engine, the acceptance bar everything here is certified against -- but
the group structure buys real work savings:

* **Shared stream tapes** -- lanes that differ only in scheme replay
  one recorded access stream per core instead of re-generating it
  (:mod:`repro.engine.tape`), eliminating duplicate RNG work.
* **Lane-group GC pause** -- the collector is disabled across a group
  (the simulator's steady state allocates in pools; cyclic garbage per
  group is bounded), removing collector passes from every lane.
* **SoA lane bookkeeping** -- per-lane cycle/limit/progress state lives
  in ``(B,)`` numpy arrays; the lockstep driver selects runnable lanes
  by mask.  This is the seam future vectorized route/arbitrate/credit
  kernels index with a leading lane axis: the phase structure, lane
  isolation and identity certification are in place, so kernels can be
  vectorized one at a time against a bit-identity gate.

Isolation: the only process-global mutable state in the simulator is
the packet-id counter (``repro.sim.reset_state`` resets exactly that).
Each lane owns a private counter, swapped into place around every call
that touches the lane (:class:`_LaneScope`), so interleaved lanes see
the same ids as a freshly reset scalar run.

numpy is an optional extra (``pip install repro[batch]``); this module
imports without it, and :func:`~repro.engine.base.get_engine` raises a
typed :class:`~repro.errors.BackendUnavailableError` when the backend
is requested without it.
"""

from __future__ import annotations

import gc
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

import repro.noc.packet as _packet_mod
from repro.errors import BackendUnavailableError, ConfigError
from repro.engine.base import ExecutionEngine, ScalarEngine
from repro.engine.kernels import attach_group
from repro.engine.spec import EngineSpec
from repro.engine.tape import TapePool

#: Default maximum lanes per lockstep group.
DEFAULT_MAX_WIDTH = 16

#: Executed cycles a lane advances per lockstep slice.  Large enough to
#: amortise the lane-switch overhead (measured best on the perf bench
#: grid), small enough that group lanes still interleave within a
#: long measurement phase.
SLICE_EXECUTED_CYCLES = 2048


def numpy_available() -> bool:
    return np is not None


class _LaneScope:
    """Per-lane isolation of the process-global packet-id counter.

    Entering swaps the lane's private ``itertools.count`` into
    ``repro.noc.packet._packet_ids``; exiting restores the previous
    counter.  Every lane-touching call (construction, lockstep slices,
    stat resets, collection) runs inside its lane's scope, so each lane
    numbers packets exactly like a freshly reset scalar run no matter
    how lanes interleave.
    """

    __slots__ = ("_counter", "_saved")

    def __init__(self):
        self._counter = itertools.count()
        self._saved = None

    def __enter__(self):
        self._saved = _packet_mod._packet_ids
        _packet_mod._packet_ids = self._counter
        return self

    def __exit__(self, exc_type, exc, tb):
        # Re-capture in case something inside replaced the global
        # (nothing in-tree does; cheap insurance against drift).
        self._counter = _packet_mod._packet_ids
        _packet_mod._packet_ids = self._saved
        self._saved = None
        return False


def pack_lanes(specs: Sequence[EngineSpec], max_width: int,
               deltas: Optional[Dict] = None,
               ) -> Tuple[List[List[int]], List[int]]:
    """Partition spec indices into lane groups and scalar fallbacks.

    Specs sharing a :meth:`~repro.engine.spec.EngineSpec.lane_signature`
    are bucketed, each bucket is sorted by
    :meth:`~repro.engine.spec.EngineSpec.cycle_budget` (ties broken by
    input order, so packing is deterministic), and split into
    ``ceil(n / max_width)`` near-equal chunks.  Near-equal chunking
    avoids the width waste of cutting at ``max_width`` in input order
    -- 4 compatible specs at width 3 pack as two pairs instead of a
    triple plus a scalar-fallback singleton -- and the budget sort
    keeps similarly-sized runs together so a short lane is not pinned
    to a group that keeps running long after it finished.  Chunks of a
    single lane gain nothing from the batch machinery and fall back to
    the scalar engine -- which is also where every point of a fully
    incompatible (mixed) grid lands.  Returns ``(groups, fallbacks)``
    of indices into ``specs``; together they cover every index exactly
    once.

    When ``deltas`` is given, it is filled with how this packing
    compares to naive input-order ``max_width`` chunking:
    ``{"pack_groups_delta": ..., "pack_fallbacks_delta": ...}``
    (balanced minus naive; a negative fallback delta means lanes were
    rescued from the scalar path).
    """
    if max_width < 1:
        raise ConfigError(f"batch width must be >= 1, got {max_width}")
    if not specs:
        raise ConfigError(
            "pack_lanes called with an empty spec list; nothing to pack "
            "(callers with legitimately empty grids should skip packing)"
        )
    buckets: Dict[Tuple, List[int]] = {}
    for i, spec in enumerate(specs):
        buckets.setdefault(spec.lane_signature(), []).append(i)
    groups: List[List[int]] = []
    fallbacks: List[int] = []
    naive_groups = 0
    naive_fallbacks = 0
    for indices in buckets.values():
        n = len(indices)
        if max_width == 1:
            naive_fallbacks += n
        else:
            naive_groups += n // max_width + (
                1 if n % max_width >= 2 else 0)
            naive_fallbacks += 1 if n % max_width == 1 else 0
        if n < 2:
            fallbacks.extend(indices)
            continue
        order = sorted(indices, key=lambda i: (specs[i].cycle_budget(), i))
        n_chunks = -(-n // max_width)
        base, extra = divmod(n, n_chunks)
        at = 0
        for c in range(n_chunks):
            size = base + (1 if c < extra else 0)
            chunk = order[at:at + size]
            at += size
            if len(chunk) >= 2:
                groups.append(chunk)
            else:
                fallbacks.extend(chunk)
    if deltas is not None:
        deltas["pack_groups_delta"] = len(groups) - naive_groups
        deltas["pack_fallbacks_delta"] = len(fallbacks) - naive_fallbacks
        # Diagnostic for --strict-backend: the signature-bucket sizes
        # explain *why* zero groups packed (all-singleton buckets mean
        # a fully heterogeneous grid; one big bucket at width 1 means
        # packing was disabled by width).
        deltas["signature_buckets"] = sorted(
            (len(v) for v in buckets.values()), reverse=True)
    return groups, fallbacks


@dataclass
class BatchEngineStats:
    """Lane-packing counters of one engine instance (mirrored into the
    sweep run stats and the ``sweep.backend.*`` metrics)."""

    lane_groups: int = 0
    #: specs executed in multi-lane lockstep groups
    lanes_packed: int = 0
    #: specs that fell back to the scalar engine (singleton signatures)
    scalar_fallbacks: int = 0
    #: width of each lane group run
    widths: List[int] = field(default_factory=list)
    #: master synthetic streams generated vs readers handed out
    tapes_created: int = 0
    tape_streams_served: int = 0
    #: lanes that attached a vectorized kernel (repro.engine.kernels)
    kernel_lanes: int = 0
    #: balanced packing vs naive input-order chunking (see pack_lanes);
    #: a negative fallback delta means lanes rescued from scalar
    pack_groups_delta: int = 0
    pack_fallbacks_delta: int = 0
    #: lane-signature bucket sizes from the last packing, largest first
    #: (diagnostic: explains why lanes did or did not pack)
    signature_buckets: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict:
        return {
            "lane_groups": self.lane_groups,
            "lanes_packed": self.lanes_packed,
            "scalar_fallbacks": self.scalar_fallbacks,
            "widths": list(self.widths),
            "tapes_created": self.tapes_created,
            "tape_streams_served": self.tape_streams_served,
            "kernel_lanes": self.kernel_lanes,
            "pack_groups_delta": self.pack_groups_delta,
            "pack_fallbacks_delta": self.pack_fallbacks_delta,
            "signature_buckets": list(self.signature_buckets),
        }


class BatchEngine(ExecutionEngine):
    """Lockstep lane-group backend; see the module docstring."""

    name = "batch"

    def __init__(self, max_width: int = DEFAULT_MAX_WIDTH,
                 slice_cycles: int = SLICE_EXECUTED_CYCLES):
        if np is None:
            raise BackendUnavailableError(
                "the 'batch' execution backend needs numpy, which is not "
                "installed; install the optional extra with "
                "'pip install repro[batch]'"
            )
        if max_width < 1:
            raise ConfigError(
                f"batch width must be >= 1, got {max_width}")
        if slice_cycles < 1:
            raise ConfigError(
                f"slice_cycles must be >= 1, got {slice_cycles}")
        self.max_width = max_width
        self.slice_cycles = slice_cycles
        self.stats = BatchEngineStats()
        self._scalar = ScalarEngine()
        #: optional :class:`~repro.obs.telemetry.SpanRecorder`; times
        #: the lane-group phases as ``batch.*`` spans.  Pure reader.
        self.recorder = None

    # ------------------------------------------------------------------
    # Engine surface
    # ------------------------------------------------------------------

    def run_one(self, spec: EngineSpec) -> Dict:
        """A single spec is by definition a width-1 group: scalar."""
        self.stats.scalar_fallbacks += 1
        self._scalar.recorder = self.recorder
        if self.recorder is not None:
            with self.recorder.span("batch.scalar_fallback",
                                    app=spec.app,
                                    scheme=spec.scheme.value):
                return self._scalar.run_one(spec)
        return self._scalar.run_one(spec)

    def run_specs(self, specs: Sequence[EngineSpec],
                  done: Optional[Callable[[int, Dict], None]] = None,
                  ) -> List[Dict]:
        if not specs:
            return []
        out: List[Optional[Dict]] = [None] * len(specs)
        deltas: Dict = {}
        groups, fallbacks = pack_lanes(specs, self.max_width,
                                       deltas=deltas)
        self.stats.pack_groups_delta += deltas["pack_groups_delta"]
        self.stats.pack_fallbacks_delta += deltas["pack_fallbacks_delta"]
        self.stats.signature_buckets = deltas["signature_buckets"]
        for group in groups:
            results = self.run_group([specs[i] for i in group])
            for i, result in zip(group, results):
                out[i] = result
                if done is not None:
                    done(i, result)
        for i in fallbacks:
            out[i] = self.run_one(specs[i])
            if done is not None:
                done(i, out[i])
        return out

    # ------------------------------------------------------------------
    # Lane groups
    # ------------------------------------------------------------------

    def run_group(self, specs: Sequence[EngineSpec]) -> List[Dict]:
        """Run one compatible lane group in lockstep; summaries in order.

        Every spec must share one lane signature (same topology);
        callers normally get groups from :func:`pack_lanes`, which
        guarantees that.  Warm-up and measurement windows may differ
        per lane: each phase advances every lane to its own budget, and
        a lane that arrives early simply waits at the phase barrier.
        """
        signatures = {spec.lane_signature() for spec in specs}
        if len(signatures) != 1:
            raise ConfigError(
                f"lane group mixes {len(signatures)} signatures; "
                "group specs by EngineSpec.lane_signature() first"
            )
        self.stats.lane_groups += 1
        self.stats.lanes_packed += len(specs)
        self.stats.widths.append(len(specs))

        tape_pool = TapePool()
        rec = self.recorder

        def mark(name: str, t0: float) -> None:
            if rec is not None:
                rec.add(name, t0, time.monotonic() - t0,
                        lanes=len(specs))

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.monotonic()
            lanes = [
                self._build_lane(spec, tape_pool) for spec in specs
            ]
            kernels = attach_group([sim for sim, _scope in lanes],
                                   recorder=rec)
            self.stats.kernel_lanes += sum(
                1 for k in kernels if k is not None)
            mark("batch.lane_build", t0)
            t0 = time.monotonic()
            self._run_phase(lanes, [spec.warmup for spec in specs])
            snapshots = []
            for sim, scope in lanes:
                with scope:
                    committed = [c.stats.committed for c in sim.cores]
                    start_cycle = sim.cycle
                    sim._reset_measurement_stats()
                snapshots.append((start_cycle, committed))
            mark("batch.warmup", t0)
            t0 = time.monotonic()
            self._run_phase(lanes, [spec.cycles for spec in specs])
            mark("batch.measure", t0)
            t0 = time.monotonic()
            out = []
            for (sim, scope), (start_cycle, committed) in zip(
                    lanes, snapshots):
                with scope:
                    from repro.sim.results import SimulationResult

                    result = SimulationResult.collect(
                        sim, start_cycle, committed)
                out.append(result.to_dict())
            mark("batch.collect", t0)
        finally:
            if gc_was_enabled:
                t0 = time.monotonic()
                gc.enable()
                mark("batch.gc_reenable", t0)
        self.stats.tapes_created += tape_pool.tapes_created
        self.stats.tape_streams_served += tape_pool.streams_served
        return out

    def _build_lane(self, spec: EngineSpec, tape_pool: TapePool):
        """Construct one lane under its own packet-id scope."""
        from repro.sim.config import make_config
        from repro.sim.simulator import CMPSimulator
        from repro.workloads.mixes import homogeneous

        scope = _LaneScope()
        with scope:
            config = make_config(spec.scheme, **spec.overrides_dict())
            workload = homogeneous(
                spec.app, config, seed=spec.seed,
                stream_factory=tape_pool.stream_factory,
            )
            sim = CMPSimulator(config, workload)
        return sim, scope

    # ------------------------------------------------------------------
    # Lockstep driver
    # ------------------------------------------------------------------

    def _run_phase(self, lanes, n_cycles) -> None:
        """Advance each lane its own phase budget, lockstep.

        ``n_cycles`` is one budget per lane (an int applies to all).
        Mirrors ``CMPSimulator._run_event`` phase semantics exactly,
        per lane: a non-positive phase is a no-op for that lane (no
        boundary flush), otherwise the lane's lazily-deferred counters
        are flushed at the phase boundary, after the whole group
        arrives.
        """
        n_lanes = len(lanes)
        if isinstance(n_cycles, int):
            per_lane = [n_cycles] * n_lanes
        else:
            per_lane = list(n_cycles)
        if all(n <= 0 for n in per_lane):
            return
        # SoA lane state: one (B,) array per field, mask-selected.
        limits = np.fromiter(
            (sim.cycle + n
             for (sim, _scope), n in zip(lanes, per_lane)),
            dtype=np.int64, count=n_lanes,
        )
        cycles = np.fromiter(
            (sim.cycle for sim, _scope in lanes),
            dtype=np.int64, count=n_lanes,
        )
        active = cycles < limits
        budget = self.slice_cycles
        rec = self.recorder
        monotonic = time.monotonic
        while True:
            runnable = np.nonzero(active)[0]
            if runnable.size == 0:
                break
            for i in runnable:
                sim, scope = lanes[i]
                limit = int(limits[i])
                kern = getattr(sim, "_lane_kernel", None)
                with scope:
                    if kern is None:
                        self._advance_lane(sim, limit, budget)
                    elif sim.cycle < sim.force_scalar_until:
                        # Diverged lane: drop to the scalar machine up
                        # to the divergence bound, then re-sync.
                        if kern.active:
                            kern.suspend()
                        bound = sim.force_scalar_until
                        if limit < bound:
                            bound = limit
                        t0 = monotonic()
                        self._advance_lane(sim, bound, budget)
                        if rec is not None:
                            rec.add("batch.scalar_sync", t0,
                                    monotonic() - t0, lane=int(i))
                    else:
                        if not kern.active:
                            kern.resume()
                        t0 = monotonic()
                        kern.krun(limit, budget)
                        if rec is not None:
                            rec.add("batch.kernel_step", t0,
                                    monotonic() - t0, lane=int(i))
                cycles[i] = sim.cycle
                if sim.cycle >= limit:
                    active[i] = False
        for (sim, scope), n in zip(lanes, per_lane):
            if n <= 0:
                continue  # no-op phase for this lane: no boundary flush
            with scope:
                sim._flush_lazy()

    @staticmethod
    def _advance_lane(sim, limit: int, budget: int) -> None:
        """Up to ``budget`` executed cycles of one lane.

        Byte-for-byte mirror of the loop body of
        ``CMPSimulator._run_event`` (batch lanes never attach an
        Observability session, so the ``obs`` branches vanish); the
        boundary ``_flush_lazy`` is the phase driver's job.
        """
        executed = 0
        while sim.cycle < limit and executed < budget:
            now = sim.cycle
            sim._event_step(now)
            sim.executed_cycles += 1
            executed += 1
            nxt = sim._next_event(now)
            sim.cycle = nxt if nxt < limit else limit
