"""Exception types used across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.sim.config.SystemConfig`."""


class TopologyError(ReproError):
    """A malformed topology query (bad node id, port, or coordinate)."""


class RoutingError(ReproError):
    """A packet could not be routed (unreachable destination or bad port)."""


class ProtocolError(ReproError):
    """A cache-coherence or bank-protocol invariant was violated."""


class WorkloadError(ReproError):
    """An unknown benchmark name or invalid workload specification."""


class BackendUnavailableError(ReproError):
    """An execution backend was requested whose host dependencies are
    missing (e.g. ``--backend batch`` without the optional numpy extra;
    install with ``pip install repro[batch]``)."""


class FaultConfigError(ConfigError):
    """An invalid :class:`repro.resilience.FaultConfig` (bad rate, an
    out-of-range region/bank index, or a fault model the simulated
    scheme cannot express)."""


class FaultError(ReproError):
    """The fault-injection machinery could not recover from an injected
    fault (e.g. a packet exhausted its retransmission budget)."""


class GuardError(ReproError):
    """Base class for invariant-guard failures.  Instances carry a
    ``diagnostic`` dict describing the simulator state at detection."""

    def __init__(self, message, diagnostic=None):
        super().__init__(message)
        self.diagnostic = diagnostic or {}


class GuardViolationError(GuardError):
    """A conservation invariant failed: flit/credit bookkeeping drifted
    from router contents, or in-flight packet accounting went negative."""


class DeadlockError(GuardError):
    """The watchdog saw no forward progress for a full progress window
    while the network still held packets (deadlock or livelock)."""
