"""Exception types used across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.sim.config.SystemConfig`."""


class TopologyError(ReproError):
    """A malformed topology query (bad node id, port, or coordinate)."""


class RoutingError(ReproError):
    """A packet could not be routed (unreachable destination or bad port)."""


class ProtocolError(ReproError):
    """A cache-coherence or bank-protocol invariant was violated."""


class WorkloadError(ReproError):
    """An unknown benchmark name or invalid workload specification."""
