"""Workload characterisation (Table 3) and synthetic stream generation."""

from repro.workloads.benchmarks import (
    PARSEC, SERVER, SPEC, BenchmarkSpec, all_benchmarks,
    characterization_table, get_benchmark, suite_benchmarks,
)
from repro.workloads.mixes import (
    CASE1_APPS, CASE2_APPS, Workload, case1, case2, case3_mixes,
    homogeneous, mix,
)
from repro.workloads.synthetic import SyntheticStream

__all__ = [
    "BenchmarkSpec", "get_benchmark", "suite_benchmarks", "all_benchmarks",
    "characterization_table", "SERVER", "PARSEC", "SPEC",
    "Workload", "homogeneous", "mix", "case1", "case2", "case3_mixes",
    "CASE1_APPS", "CASE2_APPS", "SyntheticStream",
]
