"""Workload construction: homogeneous runs and the Case 1-3 mixes.

Section 4.2 evaluates three multi-programmed scenarios:

* **Case 1**: 16 copies each of four write-intensive applications
  (soplex, cactus, lbm, hmmer) -- the worst case for a naive SRAM to
  STT-RAM swap.
* **Case 2**: 16 copies each of two bursty+write-intensive (lbm, hmmer)
  and two read-intensive (bzip2, libquantum) applications -- the
  fairness study (Figure 10).
* **Case 3**: 32 mixes of 8 applications x 8 copies, spread across
  read-intensive, write-intensive and balanced categories.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.cpu.trace import AccessStream
from repro.errors import WorkloadError
from repro.sim.config import SystemConfig
from repro.workloads.benchmarks import (
    BenchmarkSpec, all_benchmarks, get_benchmark,
)
from repro.workloads.synthetic import SyntheticStream

CASE1_APPS = ("soplex", "cactus", "lbm", "hmmer")
CASE2_APPS = ("lbm", "hmmer", "bzip2", "libquantum")

#: Shared-pool size (blocks) for shared-memory applications, scaled to
#: the L2 so the pool is L2-resident but far exceeds any L1.
SHARED_POOL_L2_FRACTION = 0.25


class Workload:
    """Per-core access streams plus bookkeeping for metrics.

    Attributes:
        streams: One :class:`AccessStream` per core.
        app_of_core: Benchmark name running on each core.
        name: Human-readable workload label.
    """

    def __init__(self, streams: List[AccessStream],
                 app_of_core: List[str], name: str):
        if len(streams) != len(app_of_core):
            raise WorkloadError("streams/app list length mismatch")
        self.streams = streams
        self.app_of_core = app_of_core
        self.name = name

    @property
    def n_cores(self) -> int:
        return len(self.streams)

    def cores_of_app(self, app: str) -> List[int]:
        return [i for i, a in enumerate(self.app_of_core) if a == app]

    def apps(self) -> List[str]:
        seen: List[str] = []
        for app in self.app_of_core:
            if app not in seen:
                seen.append(app)
        return seen


def _shared_pool_blocks(config: SystemConfig) -> int:
    total_l2_blocks = (
        config.n_banks * config.l2_bank_bytes // config.block_bytes
    )
    return max(128, int(total_l2_blocks * SHARED_POOL_L2_FRACTION))


def make_stream(spec: BenchmarkSpec, core: int, config: SystemConfig,
                seed: int) -> SyntheticStream:
    """Build the canonical synthetic stream for one (app, core) slot."""
    shared_blocks = _shared_pool_blocks(config) if spec.shared else None
    return SyntheticStream(
        spec, core, config, seed=seed, shared_pool_blocks=shared_blocks,
    )


#: kept under the historical private name for in-tree callers
_stream_for = make_stream


def stream_signature(spec: BenchmarkSpec, core: int, config: SystemConfig,
                     seed: int) -> tuple:
    """Equivalence key of :func:`make_stream`'s output.

    Two slots whose signatures match produce bit-identical access
    sequences, so an execution backend may generate the stream once and
    replay it (see :mod:`repro.engine.tape`).  The key covers every
    config input :class:`SyntheticStream` reads -- note
    ``shared_pool_blocks`` derives from ``l2_bank_bytes`` and therefore
    differs across cache technologies for shared applications, while
    private applications are technology-independent.
    """
    shared_blocks = _shared_pool_blocks(config) if spec.shared else None
    return (
        spec.name, core, seed,
        config.n_banks, config.block_bytes, config.l1_effective_bytes,
        config.sram_equivalent_bank_bytes, shared_blocks,
    )


def homogeneous(app: str, config: SystemConfig, seed: int = 1,
                stream_factory=None) -> Workload:
    """All cores run (copies/threads of) one application.

    For shared applications (server/PARSEC) the copies share an address
    pool, modelling one multi-threaded process; SPEC copies are private
    (the paper's 64-copies-per-CMP methodology).

    ``stream_factory(spec, core, config, seed)`` overrides how each
    core's stream is built -- it must return a stream observationally
    identical to :func:`make_stream`'s (the batch execution backend
    substitutes shared replay tapes here).
    """
    spec = get_benchmark(app)
    factory = stream_factory if stream_factory is not None else make_stream
    streams = [
        factory(spec, core, config, seed)
        for core in range(config.n_cores)
    ]
    return Workload(streams, [spec.name] * config.n_cores, spec.name)


def mix(apps: Sequence[str], config: SystemConfig, seed: int = 1,
        name: Optional[str] = None) -> Workload:
    """Evenly interleave several applications across the cores."""
    if not apps:
        raise WorkloadError("empty application mix")
    specs = [get_benchmark(a) for a in apps]
    streams: List[AccessStream] = []
    app_of_core: List[str] = []
    for core in range(config.n_cores):
        spec = specs[core % len(specs)]
        streams.append(_stream_for(spec, core, config, seed))
        app_of_core.append(spec.name)
    return Workload(
        streams, app_of_core, name or "+".join(s.name for s in specs)
    )


def case1(config: SystemConfig, seed: int = 1) -> Workload:
    """Worst case: four co-scheduled write-intensive applications."""
    return mix(CASE1_APPS, config, seed, name="case1")


def case2(config: SystemConfig, seed: int = 1) -> Workload:
    """Bursty write-intensive + read-intensive fairness mix."""
    return mix(CASE2_APPS, config, seed, name="case2")


def case3_mixes(config: SystemConfig, n_mixes: int = 32,
                apps_per_mix: int = 8, seed: int = 7) -> List[Workload]:
    """The paper's 32 random mixes spread over the design space.

    8 mixes are read-intensive, 8 write-intensive and the rest draw from
    the full benchmark set (read + write + compute intensive).
    """
    rng = random.Random(seed)
    pool = all_benchmarks()
    read_heavy = [b.name for b in pool if b.read_intensive]
    write_heavy = [b.name for b in pool if b.write_intensive]
    everything = [b.name for b in pool]
    workloads = []
    for i in range(n_mixes):
        if i < n_mixes // 4:
            source, tag = read_heavy, "read"
        elif i < n_mixes // 2:
            source, tag = write_heavy, "write"
        else:
            source, tag = everything, "mixed"
        k = min(apps_per_mix, len(source))
        chosen = rng.sample(source, k)
        workloads.append(
            mix(chosen, config, seed=seed + i, name=f"case3-{tag}-{i}")
        )
    return workloads
