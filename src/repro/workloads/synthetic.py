"""Synthetic access streams calibrated to the paper's Table 3.

The paper drives its simulator with traces of 42 real applications; we
cannot (Python-only reproduction, no proprietary traces), so each core
instead consumes a stochastic stream whose first-order statistics match
the paper's own per-application characterisation:

* memory operations every ``1/mem_op_rate`` instructions,
* an L1 miss probability matching ``l1mpki``,
* a write(-back) share of L2 traffic matching ``l2wpki / l1mpki``,
* an L2 miss share of L2 reads matching ``l2mpki / l2rpki``,
* "High"-burstiness applications emit misses in same-bank bursts
  (the Figure 3 behaviour the mechanism exploits), and
* a working set sized relative to the *SRAM* L2 capacity so that the
  4x-denser STT-RAM configuration naturally enjoys a lower L2 miss
  rate -- the capacity effect of simply swapping SRAM for STT-RAM.

Address-space layout: each core owns a private block range; threads of
shared-memory applications additionally sample a common shared pool,
which exercises the MESI directory (invalidations and forwards).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from repro.cpu.trace import AccessStream
from repro.sim.config import SystemConfig
from repro.workloads.benchmarks import BenchmarkSpec

#: Memory operations per instruction (Table 1: at most 1 of 2 commits).
MEM_OP_RATE = 0.30
#: Private address-space stride between cores, in blocks.
PRIVATE_SPACE_BLOCKS = 1 << 26
#: Fraction of misses a shared-memory thread directs at the shared pool.
SHARED_POOL_FRACTION = 0.10
#: Mean burst length (accesses) for bursty applications.
MEAN_BURST_LENGTH = 5


class SyntheticStream(AccessStream):
    """One core's calibrated random access stream.

    Args:
        spec: Table 3 characterisation of the application.
        core_id: The consuming core (selects the private address range).
        config: System configuration (sizes the working set).
        seed: RNG seed; streams are deterministic given (spec, core, seed).
        shared_pool_blocks: Size of the process-shared hot pool (only for
            ``spec.shared`` applications).
    """

    def __init__(
        self,
        spec: BenchmarkSpec,
        core_id: int,
        config: SystemConfig,
        seed: int = 1,
        shared_pool_blocks: Optional[int] = None,
    ):
        self.spec = spec
        self.core_id = core_id
        self.config = config
        self._rng = random.Random((seed * 1_000_003) ^ (core_id * 7919))

        self.n_banks = config.n_banks
        block_bytes = config.block_bytes

        # Probabilities derived from Table 3.
        self.miss_prob = min(0.9, spec.l1mpki / 1000.0 / MEM_OP_RATE)
        self.store_prob = spec.write_fraction
        #: probability an L1-miss block is brand new (and so misses L2):
        #: l2mpki of every l1mpki L2 accesses miss the big L2.
        self.l2_miss_prob = (
            min(1.0, spec.l2mpki / spec.l1mpki) if spec.l1mpki > 0 else 0.0
        )

        # Gap between memory operations so that mem-op rate ~ MEM_OP_RATE:
        # each access costs 1 instruction plus `gap` non-memory ones.
        self._mean_gap = max(0.0, 1.0 / MEM_OP_RATE - 1.0)

        # Address-space layout (block numbers).
        self._private_base = (core_id + 1) * PRIVATE_SPACE_BLOCKS
        l1_blocks = config.l1_effective_bytes // block_bytes
        self._hot_set = [
            self._private_base + i for i in range(max(4, l1_blocks // 8))
        ]
        self._hot_ptr = 0

        # L2-resident reuse pool: 1.5x the per-core share of an SRAM L2,
        # so the STT-RAM's 4x capacity turns pool accesses into hits.
        sram_share_blocks = config.sram_equivalent_bank_bytes // block_bytes
        self._pool_capacity = max(64, int(1.5 * sram_share_blocks))
        self._pool: deque = deque(maxlen=self._pool_capacity)
        self._skip_newest = max(8, l1_blocks)
        #: per-bank recent blocks, for same-bank L2-hit bursts
        self._bank_pools = {}
        self._bank_pool_depth = max(16, self._pool_capacity // 8)

        # Decorrelate cores: a shared starting index and stride would
        # march every core through the same bank sequence in lockstep,
        # hot-spotting a rolling subset of banks.
        self._stream_counter = self._rng.randrange(1 << 20)
        self._stride = 2 * self._rng.randrange(1, 512) + 1  # odd: co-prime
        # with any power-of-two bank count

        self.shared = spec.shared and shared_pool_blocks
        self._shared_pool_blocks = shared_pool_blocks or 0

        # Burst state.
        self.bursty = spec.bursty
        self._burst_remaining = 0
        self._burst_bank = 0
        #: bursty applications still issue a share of isolated misses
        #: (shared-pool and scattered reads).
        self._solo_miss_fraction = 0.3
        burst_share = 1.0 - self._solo_miss_fraction
        self._burst_enter_prob = (
            self.miss_prob * burst_share / MEAN_BURST_LENGTH
            if self.bursty else 0.0
        )

        # instrumentation
        self.accesses = 0
        self.generated_misses = 0
        self.generated_stores = 0

    # ------------------------------------------------------------------
    # Address selection helpers
    # ------------------------------------------------------------------

    def _fresh_block(self, bank: Optional[int] = None) -> int:
        """A never-seen streaming block, optionally pinned to a bank."""
        self._stream_counter += 1
        index = self._stream_counter
        if bank is None:
            # Wrap within the private space; the modulus is a multiple of
            # any power-of-two bank count, preserving the uniform spread.
            offset = (index * self._stride) % (PRIVATE_SPACE_BLOCKS // 2)
            block = self._private_base + offset
        else:
            wrap = PRIVATE_SPACE_BLOCKS // (2 * self.n_banks)
            block = (
                self._private_base
                + (index % wrap) * self.n_banks + bank
            )
            pool = self._bank_pools.get(bank)
            if pool is None:
                pool = deque(maxlen=self._bank_pool_depth)
                self._bank_pools[bank] = pool
            pool.append(block)
        self._pool.append(block)
        return block

    def _burst_block(self, bank: int) -> int:
        """Block for a mid-burst access: usually an L2-resident reuse of
        the burst bank, an L2 miss with the calibrated probability."""
        pool = self._bank_pools.get(bank)
        usable = (len(pool) - 2) if pool else 0
        if usable <= 0 or self._rng.random() < self.l2_miss_prob:
            return self._fresh_block(bank=bank)
        return pool[self._rng.randrange(usable)]

    def _pool_block(self) -> int:
        """An older streamed block: misses L1, usually hits a big L2."""
        usable = len(self._pool) - self._skip_newest
        if usable <= 0:
            return self._fresh_block()
        idx = self._rng.randrange(usable)
        return self._pool[idx]

    def _shared_block(self) -> int:
        return self._rng.randrange(self._shared_pool_blocks)

    def _hot_block(self) -> int:
        self._hot_ptr = (self._hot_ptr + 1) % len(self._hot_set)
        return self._hot_set[self._hot_ptr]

    # ------------------------------------------------------------------

    def _gap(self, small: bool = False) -> int:
        if small:
            # Mid-burst inter-access gap: close enough that successive
            # same-bank accesses land within one 33-cycle write service
            # (the Figure 3 pattern), loose enough not to flood the NI
            # in a single cycle.
            return self._rng.randrange(2, 9)
        # Geometric-ish gap with the calibrated mean.
        mean = self._mean_gap
        return max(0, int(self._rng.expovariate(1.0 / mean))) if mean else 0

    def _miss_block(self) -> int:
        """Choose the block for a (non-burst) L1 miss."""
        if self.shared and self._rng.random() < SHARED_POOL_FRACTION:
            return self._shared_block()
        if self._rng.random() < self.l2_miss_prob:
            return self._fresh_block()
        return self._pool_block()

    def prewarm_blocks(self):
        """Blocks to install in the L2 before measurement.

        Generates the reuse pool analytically so short measurement
        windows start from the steady state a long warm-up would reach:
        bursty applications pre-pin part of the pool to per-bank lists,
        the rest is scattered.  Returns the block list (home banks are
        implied by ``block % n_banks``).
        """
        blocks = []
        if self.bursty:
            per_bank = max(8, self._pool_capacity // (2 * self.n_banks))
            for bank in range(self.n_banks):
                for _ in range(per_bank):
                    blocks.append(self._fresh_block(bank=bank))
        while len(self._pool) < self._pool_capacity:
            blocks.append(self._fresh_block())
        return blocks

    def hot_blocks(self):
        """The L1-resident hot set (pre-installed in L1 and L2)."""
        return list(self._hot_set)

    def shared_blocks(self):
        """The shared pool range, or empty for private applications."""
        return range(self._shared_pool_blocks) if self.shared else range(0)

    def next_access(self):
        self.accesses += 1
        rng = self._rng

        if self._burst_remaining > 0:
            # Mid-burst: back-to-back misses pinned to the burst bank.
            self._burst_remaining -= 1
            self.generated_misses += 1
            is_store = rng.random() < self.store_prob
            if is_store:
                self.generated_stores += 1
            return (self._gap(small=True),
                    self._burst_block(self._burst_bank), is_store)

        if self.bursty:
            if rng.random() < self._burst_enter_prob:
                self._burst_bank = rng.randrange(self.n_banks)
                self._burst_remaining = max(
                    1, int(rng.expovariate(1.0 / MEAN_BURST_LENGTH)))
                self._burst_remaining -= 1
                self.generated_misses += 1
                is_store = rng.random() < self.store_prob
                if is_store:
                    self.generated_stores += 1
                return (self._gap(),
                        self._burst_block(self._burst_bank), is_store)
            if rng.random() < self.miss_prob * self._solo_miss_fraction:
                self.generated_misses += 1
                is_store = rng.random() < self.store_prob
                if is_store:
                    self.generated_stores += 1
                return (self._gap(), self._miss_block(), is_store)
            return (self._gap(), self._hot_block(), False)

        if rng.random() < self.miss_prob:
            self.generated_misses += 1
            is_store = rng.random() < self.store_prob
            if is_store:
                self.generated_stores += 1
            return (self._gap(), self._miss_block(), is_store)
        return (self._gap(), self._hot_block(), False)
