"""The paper's 42-application characterisation (Table 3).

Each application is described by its L1 misses, L2 misses, L2 writes and
L2 reads per kilo-instruction, plus a burstiness class ("High"/"Low"
based on the latency between two consecutive requests to an L2 bank).
These are the paper's own measured numbers for applications running alone
on the baseline CMP with an STT-RAM L2, and they fully parameterise the
synthetic access streams in :mod:`repro.workloads.synthetic`.

Note the identity visible in Table 3: ``l1mpki == l2wpki + l2rpki`` --
every L1 miss turns into exactly one L2 access, classified as a read
(demand fetch) or a write (write-back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorkloadError

SERVER = "server"
PARSEC = "parsec"
SPEC = "spec"


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 3 row."""

    name: str
    suite: str
    l1mpki: float
    l2mpki: float
    l2wpki: float
    l2rpki: float
    bursty: bool
    #: True for workloads with a shared address space (threads of one
    #: application); multi-programmed SPEC copies are private.
    shared: bool

    @property
    def write_fraction(self) -> float:
        """Fraction of L2 accesses that are writes (write-backs)."""
        if self.l1mpki <= 0:
            return 0.0
        return min(0.95, self.l2wpki / self.l1mpki)

    @property
    def l2_miss_fraction(self) -> float:
        """Fraction of L2 *reads* that miss the (4 MB-bank) L2."""
        if self.l2rpki <= 0:
            return 0.0
        return min(1.0, self.l2mpki / self.l2rpki)

    @property
    def read_intensive(self) -> bool:
        return self.l2rpki > 2.0 * self.l2wpki

    @property
    def write_intensive(self) -> bool:
        return self.l2wpki >= self.l2rpki


def _spec_row(name, suite, l1, l2m, l2w, l2r, bursty):
    return BenchmarkSpec(
        name=name, suite=suite, l1mpki=l1, l2mpki=l2m, l2wpki=l2w,
        l2rpki=l2r, bursty=(bursty == "High"),
        shared=(suite in (SERVER, PARSEC)),
    )


#: Table 3, transcribed row by row.
_TABLE3: Tuple[BenchmarkSpec, ...] = (
    _spec_row("tpcc", SERVER, 51.47, 6.06, 40.9, 10.57, "High"),
    _spec_row("sjas", SERVER, 41.54, 4.48, 35.06, 6.48, "High"),
    _spec_row("sap", SERVER, 29.91, 3.84, 23.57, 6.15, "High"),
    _spec_row("sjbb", SERVER, 25.52, 7.01, 19.42, 6.09, "High"),
    _spec_row("sclust", PARSEC, 29.28, 8.34, 15.23, 14.05, "High"),
    _spec_row("vips", PARSEC, 13.51, 8.07, 6.61, 6.89, "High"),
    _spec_row("canneal", PARSEC, 12.8, 5.47, 6.52, 6.27, "Low"),
    _spec_row("dedup", PARSEC, 12.8, 4.59, 7.42, 5.36, "High"),
    _spec_row("ferret", PARSEC, 11.62, 9.16, 6.39, 5.22, "Low"),
    _spec_row("facesim", PARSEC, 10.62, 6.82, 6.15, 4.46, "Low"),
    _spec_row("swptns", PARSEC, 5.47, 6.35, 2.46, 3.00, "Low"),
    _spec_row("bscls", PARSEC, 5.29, 3.73, 2.80, 2.48, "Low"),
    _spec_row("bdtrk", PARSEC, 5.62, 5.71, 2.81, 2.81, "Low"),
    _spec_row("rtrce", PARSEC, 5.65, 4.98, 3.62, 2.03, "Low"),
    _spec_row("x264", PARSEC, 4.17, 4.62, 1.87, 2.29, "Low"),
    _spec_row("fldnmt", PARSEC, 4.89, 4.41, 2.68, 2.2, "Low"),
    _spec_row("frqmn", PARSEC, 2.29, 3.96, 1.31, 0.98, "Low"),
    _spec_row("gemsfdtd", SPEC, 104.04, 94.62, 0.8, 103.23, "Low"),
    _spec_row("mcf", SPEC, 99.81, 64.47, 5.45, 94.37, "Low"),
    _spec_row("soplex", SPEC, 48.54, 16.88, 19.59, 28.95, "Low"),
    _spec_row("cactus", SPEC, 43.81, 15.64, 18.65, 25.16, "Low"),
    _spec_row("lbm", SPEC, 36.49, 18.88, 30.76, 5.73, "High"),
    _spec_row("hmmer", SPEC, 34.36, 3.31, 12.5, 21.86, "High"),
    _spec_row("xalancbmk", SPEC, 29.7, 21.07, 3.02, 26.68, "Low"),
    _spec_row("leslie", SPEC, 26.09, 18.06, 7.65, 18.45, "Low"),
    _spec_row("sphinx", SPEC, 25.55, 10.91, 0.97, 24.58, "High"),
    _spec_row("gobmk", SPEC, 22.81, 8.68, 8.02, 14.79, "High"),
    _spec_row("astar", SPEC, 20.03, 4.21, 6.11, 13.92, "Low"),
    _spec_row("bzip2", SPEC, 19.29, 10.02, 2.66, 16.63, "High"),
    _spec_row("milc", SPEC, 19.12, 18.67, 0.05, 19.06, "Low"),
    _spec_row("libquantum", SPEC, 12.5, 12.5, 0.0, 12.5, "Low"),
    _spec_row("omnetpp", SPEC, 10.92, 10.15, 0.25, 10.67, "Low"),
    _spec_row("povray", SPEC, 9.63, 7.86, 0.88, 8.75, "High"),
    _spec_row("gcc", SPEC, 9.39, 8.51, 0.06, 9.34, "High"),
    _spec_row("namd", SPEC, 8.85, 5.11, 0.65, 8.19, "High"),
    _spec_row("gromacs", SPEC, 5.36, 3.18, 0.32, 5.05, "High"),
    _spec_row("tonto", SPEC, 5.26, 0.55, 3.52, 1.74, "High"),
    _spec_row("h264", SPEC, 4.81, 2.74, 2.03, 2.78, "High"),
    _spec_row("dealII", SPEC, 4.41, 2.36, 0.35, 4.06, "High"),
    _spec_row("sjeng", SPEC, 3.93, 2.0, 0.92, 3.01, "Low"),
    _spec_row("wrf", SPEC, 1.8, 0.75, 0.88, 0.92, "Low"),
    _spec_row("calculix", SPEC, 0.33, 0.23, 0.03, 0.29, "Low"),
)

BENCHMARKS: Dict[str, BenchmarkSpec] = {b.name: b for b in _TABLE3}

#: Aliases used in the paper's prose and figures.
_ALIASES = {
    "streamcluster": "sclust",
    "swaptions": "swptns",
    "blackscholes": "bscls",
    "bodytrack": "bdtrk",
    "raytrace": "rtrce",
    "fluidanimate": "fldnmt",
    "freqmine": "frqmn",
    "sphinx3": "sphinx",
    "libqntm": "libquantum",
    "gems": "gemsfdtd",
    "xalan": "xalancbmk",
    "omnet": "omnetpp",
    "bzip": "bzip2",
}


_BY_LOWER = {b.name.lower(): b for b in _TABLE3}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look a benchmark up by Table 3 name (case-insensitive) or alias."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    spec = _BY_LOWER.get(key)
    if spec is None:
        raise WorkloadError(f"unknown benchmark {name!r}")
    return spec


def suite_benchmarks(suite: str) -> List[BenchmarkSpec]:
    """All Table 3 entries of one suite (server / parsec / spec)."""
    if suite not in (SERVER, PARSEC, SPEC):
        raise WorkloadError(f"unknown suite {suite!r}")
    return [b for b in _TABLE3 if b.suite == suite]


def all_benchmarks() -> List[BenchmarkSpec]:
    return list(_TABLE3)


def characterization_table() -> List[dict]:
    """Rows for regenerating Table 3 from the spec data."""
    return [
        {
            "benchmark": b.name,
            "suite": b.suite,
            "l1mpki": b.l1mpki,
            "l2mpki": b.l2mpki,
            "l2wpki": b.l2wpki,
            "l2rpki": b.l2rpki,
            "bursty": "High" if b.bursty else "Low",
        }
        for b in _TABLE3
    ]
