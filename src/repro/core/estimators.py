"""Congestion estimation schemes for the busy-duration prediction.

Section 3.5 of the paper introduces three ways a parent router can
estimate the congestion component of the parent->child latency:

* **SS** (Simplistic Scheme): ignore congestion entirely (estimate 0).
* **RCA** (Regional Congestion Aware): aggregate buffer-utilisation
  estimates propagated from neighbouring routers over dedicated 8-bit
  side-band wires (after Gratz/Grot/Keckler, HPCA'08).
* **WB** (Window Based): every ``N`` packets, tag one request with an
  8-bit timestamp; the child acknowledges it, and the parent estimates
  congestion as half the round-trip time minus the known base latency.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.noc.packet import Packet, PacketClass
from repro.obs.events import EV_EST_UPDATE
from repro.sim.config import Estimator, SystemConfig


class CongestionEstimator:
    """Interface shared by the three schemes."""

    name = "none"

    #: observability emit callable; None when tracing is detached
    trace = None

    #: Cycle period at which :meth:`tick` must be invoked, or ``None``
    #: when the estimator needs no per-cycle updates at all (the network
    #: then never calls ``tick`` and the event-driven scheduler does not
    #: wake for it).
    tick_period = None

    #: True when ``congestion_estimate`` can only change at observable
    #: events (packet forwards/acks), so the event-driven arbiter may
    #: cache busy-bank release times between events.  Estimators whose
    #: estimates drift on their own clock (RCA) must set this False.
    estimates_stable = True

    def bind(self, network) -> None:
        """Give the estimator access to live network state."""
        self.network = network

    def congestion_estimate(self, parent_node: int, bank: int,
                            now: int) -> int:
        """Estimated congestion cycles on the parent->child path."""
        return 0

    def on_forward(self, parent_node: int, pkt: Packet, now: int) -> None:
        """Hook: a parent forwarded a request packet toward a child."""

    def on_ack(self, parent_node: int, bank: int, elapsed: int,
               now: int) -> None:
        """Hook: a WB acknowledgement arrived back at the parent."""

    def tick(self, now: int) -> None:
        """Per-cycle update (RCA propagation)."""

    def on_topology_change(self, banks, now: int) -> None:
        """Hook: the parent set of ``banks`` changed (TSB remap).

        Fault-injection only; estimators drop state keyed under the
        stale parents so new samples rebuild it for the new paths.
        """


class SimplisticEstimator(CongestionEstimator):
    """SS: the parent assumes zero congestion.

    Packets are delayed for exactly the base travel time plus the 33-cycle
    write service; under load they arrive early and queue at the bank.
    """

    name = "ss"


class RegionalCongestionEstimator(CongestionEstimator):
    """RCA: neighbour-aggregated buffer utilisation.

    Every ``update_period`` cycles each router publishes a local congestion
    value (flits queued at the router plus residual output-link busy time).
    Neighbouring values are aggregated with equal weights (as in the paper)
    into a regional value clamped to 8 bits; a parent estimates the
    congestion toward a child as half the sum of the aggregated values at
    the intermediate node and at the child itself.
    """

    name = "rca"
    estimates_stable = False

    def __init__(self, config: SystemConfig):
        self.update_period = max(1, config.rca_update_period)
        self.tick_period = self.update_period
        self.max_value = 255  # 8-bit side-band wires
        self.local: Dict[int, float] = {}
        self.agg: Dict[int, float] = {}
        self.network = None
        #: bank -> (intermediate node, child node) cached per parent query.
        self._path_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def tick(self, now: int) -> None:
        if self.network is None or now % self.update_period:
            return
        topo = self.network.topo
        routers = self.network.routers
        local = self.local
        max_value = self.max_value
        for router in routers:
            value = router.queued_flits()
            busy = router.max_output_residual(now)
            local[router.node] = min(max_value, value + busy)
        # One aggregation step per update: equal weighting of the local
        # value and the mean of the neighbours' previous aggregates gives
        # the coarse regional view of the original RCA proposal.
        prev = dict(self.agg) if self.agg else local
        prev_get = prev.get
        local_get = local.get
        agg = self.agg
        neighbors_of = self.network.neighbors_of
        for node in range(topo.n_nodes):
            neigh = neighbors_of[node]
            if neigh:
                total = 0.0
                for n in neigh:
                    total += prev_get(n, 0.0)
                downstream = total / len(neigh)
            else:  # pragma: no cover - every mesh node has neighbours
                downstream = 0.0
            agg[node] = min(
                max_value, 0.5 * local_get(node, 0.0) + 0.5 * downstream
            )

    def on_topology_change(self, banks, now: int) -> None:
        drop = set(banks)
        for key in [k for k in self._path_cache if k[1] in drop]:
            del self._path_cache[key]

    def _path_nodes(self, parent_node: int, bank: int) -> Tuple[int, ...]:
        key = (parent_node, bank)
        cached = self._path_cache.get(key)
        if cached is None:
            topo = self.network.topo
            bank_node = topo.bank_node(bank)
            if topo.layer_of(parent_node) == 1:
                path = topo.xy_path(parent_node, bank_node)
            else:
                # Parent is the region-TSB core node: descend then X-Y.
                below = parent_node + topo.nodes_per_layer
                path = [parent_node] + topo.xy_path(below, bank_node)
            cached = tuple(path[1:])  # downstream nodes only
            self._path_cache[key] = cached
        return cached

    def congestion_estimate(self, parent_node: int, bank: int,
                            now: int) -> int:
        if self.network is None:
            return 0
        nodes = self._path_nodes(parent_node, bank)
        if not nodes:
            return 0
        agg_get = self.agg.get
        total = 0.0
        for n in nodes:
            total += agg_get(n, 0.0)
        return int(min(self.max_value, total / 2.0))


class WindowEstimator(CongestionEstimator):
    """WB: timestamp/ACK round-trip sampling with window size 1.

    For every ``sample_period`` request packets a parent forwards toward a
    given child, one is tagged with the current cycle (8-bit timestamp in
    hardware; we model saturation at 255 cycles).  The child's network
    interface answers with a single-flit ACK carrying the tag, and the
    parent sets its congestion estimate for that child to
    ``max(0, rtt/2 - base_one_way_latency)``.
    """

    name = "wb"

    def __init__(self, config: SystemConfig):
        self.sample_period = max(1, config.wb_sample_period)
        self.max_elapsed = (1 << config.wb_timestamp_bits) - 1
        self.hop_cycles = config.hop_cycles
        #: (parent, bank) -> packets forwarded since the last tag.
        self._counters: Dict[Tuple[int, int], int] = {}
        #: (parent, bank) -> latest congestion estimate in cycles.
        self._estimates: Dict[Tuple[int, int], int] = {}
        #: instrumentation
        self.tags_sent = 0
        self.acks_received = 0
        self.network = None

    def on_forward(self, parent_node: int, pkt: Packet, now: int) -> None:
        if pkt.klass is not PacketClass.REQUEST or pkt.bank is None:
            return
        key = (parent_node, pkt.bank)
        count = self._counters.get(key, 0) + 1
        if count >= self.sample_period or key not in self._estimates:
            pkt.wb_timestamp = now
            self.tags_sent += 1
            count = 0
            self._estimates.setdefault(key, 0)
        self._counters[key] = count

    def on_ack(self, parent_node: int, bank: int, elapsed: int,
               now: int) -> None:
        elapsed = min(elapsed, self.max_elapsed)
        # One-way latency is roughly half the round trip; the congestion
        # component is what exceeds the known two-hop base latency.
        base_one_way = 2 * self.hop_cycles - self.hop_cycles // 2
        estimate = max(0, elapsed // 2 - base_one_way)
        self._estimates[(parent_node, bank)] = estimate
        self.acks_received += 1
        trace = self.trace
        if trace is not None:
            trace(now, EV_EST_UPDATE, {
                "node": parent_node, "bank": bank,
                "estimate": estimate, "elapsed": elapsed,
            })
        # A changed estimate can make a parked request eligible earlier
        # than the parent router's cached wake hint assumed; wake it.
        if self.network is not None:
            self.network.poke_router(parent_node, now + 1)

    def on_topology_change(self, banks, now: int) -> None:
        drop = set(banks)
        for table in (self._counters, self._estimates):
            for key in [k for k in table if k[1] in drop]:
                del table[key]

    def congestion_estimate(self, parent_node: int, bank: int,
                            now: int) -> int:
        return self._estimates.get((parent_node, bank), 0)


def make_estimator(config: SystemConfig) -> Optional[CongestionEstimator]:
    """Instantiate the estimator selected by the configuration."""
    kind = config.estimator
    if kind is Estimator.NONE:
        return None
    if kind is Estimator.SIMPLE:
        return SimplisticEstimator()
    if kind is Estimator.RCA:
        return RegionalCongestionEstimator(config)
    if kind is Estimator.WINDOW:
        return WindowEstimator(config)
    raise ValueError(f"unknown estimator {kind}")  # pragma: no cover
