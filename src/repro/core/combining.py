"""Flit combining over the high-density region TSBs (Section 3.4).

Restricting requests to a few TSBs raises hop counts, so the paper widens
the region TSBs to 256 bits and -- XShare-style -- transmits two 128-bit
flits side by side whenever possible.  At packet granularity this halves
the serialisation time of multi-flit packets crossing a region TSB (two
flits per cycle instead of one) and lets an address flit ride along with
a data flit.
"""

from __future__ import annotations

from repro.noc.packet import Packet


class FlitCombiner:
    """Serialisation-time calculator for links with widened TSBs.

    Args:
        width_factor: Number of 128-bit flits the link moves per cycle
            (2 for the paper's 256-bit region TSBs, 1 for normal links).
    """

    def __init__(self, width_factor: int = 2):
        if width_factor < 1:
            raise ValueError("width_factor must be >= 1")
        self.width_factor = width_factor
        self.combined_flit_pairs = 0
        self.packets_combined = 0

    def serialization_cycles(self, pkt: Packet) -> int:
        """Cycles the widened link stays busy transmitting ``pkt``."""
        cycles = -(-pkt.flits // self.width_factor)  # ceil division
        if self.width_factor > 1 and pkt.flits > 1:
            saved = pkt.flits - cycles
            if saved > 0:
                self.combined_flit_pairs += saved
                self.packets_combined += 1
                pkt.combined = True
        return cycles
