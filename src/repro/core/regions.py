"""Logical partitioning of the cache layer and TSB placement (Section 3.4).

The paper's key structural idea: divide the cache layer into a few logical
regions and force *all* core->cache request packets for a region through a
single designated vertical through-silicon bus (TSB).  Combined with X-Y
routing inside the cache layer this creates serialisation points: every
request for a given bank passes through one fixed upstream router (its
*parent*, ``H`` hops before the bank on the TSB->bank path), which can then
estimate the bank's busy status and re-order packets (Sections 3.4-3.5).

This module computes, for a given mesh and region count:

* the region of every bank,
* the TSB node of every region (corner or staggered placement, Figure 11),
* the parent router of every bank and the child set of every parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.noc.topology import Mesh3D
from repro.sim.config import SystemConfig, TSBPlacement


def _region_grid(n_regions: int, width: int) -> Tuple[int, int]:
    """Pick a ``(cols, rows)`` region grid that tiles a ``width**2`` mesh.

    Prefers the squarest factorisation whose tile dimensions divide the
    mesh width: 4 regions on an 8x8 mesh -> 2x2 grid of 4x4 tiles,
    8 regions -> 2x4 grid of 4x2 tiles, 16 regions -> 4x4 grid of 2x2.
    """
    best: Optional[Tuple[int, int]] = None
    for cols in range(1, n_regions + 1):
        if n_regions % cols:
            continue
        rows = n_regions // cols
        if width % cols or width % rows:
            continue
        if best is None or abs(cols - rows) < abs(best[0] - best[1]):
            best = (cols, rows)
    if best is None:
        raise ConfigError(
            f"cannot tile a {width}x{width} mesh into {n_regions} regions"
        )
    return best


@dataclass
class Region:
    """One logical region of the cache layer."""

    index: int
    #: Inclusive coordinate bounds within the cache layer: (x0, y0, x1, y1).
    bounds: Tuple[int, int, int, int]
    #: Cache-layer router node hosting this region's TSB.
    tsb_cache_node: int
    #: Core-layer router node directly above the TSB.
    tsb_core_node: int
    #: Bank indices belonging to this region.
    banks: List[int] = field(default_factory=list)


class RegionMap:
    """Region partition, TSB placement and parent/child maps.

    Args:
        topo: The two-layer mesh.
        n_regions: Number of logical regions (and region TSBs).
        placement: Corner or staggered TSB placement (Figure 11).
        hop_distance: Parent-to-child distance ``H`` (Section 4.3; the
            paper's sweet spot is 2).
    """

    def __init__(
        self,
        topo: Mesh3D,
        n_regions: int,
        placement: TSBPlacement = TSBPlacement.CORNER,
        hop_distance: int = 2,
    ):
        if hop_distance < 1:
            raise ConfigError("hop_distance must be >= 1")
        self.topo = topo
        self.n_regions = n_regions
        self.placement = placement
        self.hop_distance = hop_distance
        #: bank -> parent-to-bank hop distance (arbitration hot path)
        self._child_distance: dict = {}
        #: failed region index -> healthy region index it degraded onto
        #: (stuck-at TSB fault injection; empty on fault-free runs)
        self.failed_regions: Dict[int, int] = {}

        width = topo.width
        cols, rows = _region_grid(n_regions, width)
        self.tile_w = width // cols
        self.tile_h = width // rows
        self._grid = (cols, rows)

        self.regions: List[Region] = []
        self.region_of_bank: List[int] = [0] * topo.nodes_per_layer
        self._build_regions()

        #: bank index -> parent router node id (core- or cache-layer).
        self.parent_of_bank: Dict[int, int] = {}
        #: parent router node id -> tuple of child bank indices.
        self.children_of: Dict[int, Tuple[int, ...]] = {}
        self._build_parent_maps()

    # ------------------------------------------------------------------

    def _tsb_coords(self, rx: int, ry: int,
                    bounds: Tuple[int, int, int, int]) -> Tuple[int, int]:
        """Coordinates of the region TSB given the region's grid cell."""
        x0, y0, x1, y1 = bounds
        cx = (self.topo.width - 1) / 2.0
        cy = cx
        # Corner placement: the region corner nearest the mesh centre
        # ("innermost corner", Section 3.4 / Figure 4).
        corner_x = x0 if abs(x0 - cx) <= abs(x1 - cx) else x1
        corner_y = y0 if abs(y0 - cy) <= abs(y1 - cy) else y1
        if self.placement is TSBPlacement.CORNER:
            return corner_x, corner_y
        # Staggered placement: keep the innermost row, but spread TSBs
        # across distinct columns so Y-direction flows toward different
        # TSBs do not overlap (Figure 11b/c).
        cols, _rows = self._grid
        offset = (rx + ry * cols) % (x1 - x0 + 1)
        return x0 + offset, corner_y

    def _build_regions(self) -> None:
        cols, rows = self._grid
        for ry in range(rows):
            for rx in range(cols):
                idx = ry * cols + rx
                x0, y0 = rx * self.tile_w, ry * self.tile_h
                x1, y1 = x0 + self.tile_w - 1, y0 + self.tile_h - 1
                tsb_x, tsb_y = self._tsb_coords(rx, ry, (x0, y0, x1, y1))
                cache_node = self.topo.node_id(1, tsb_x, tsb_y)
                core_node = self.topo.node_id(0, tsb_x, tsb_y)
                region = Region(idx, (x0, y0, x1, y1), cache_node, core_node)
                for y in range(y0, y1 + 1):
                    for x in range(x0, x1 + 1):
                        bank = self.topo.node_id(1, x, y) - \
                            self.topo.nodes_per_layer
                        region.banks.append(bank)
                        self.region_of_bank[bank] = idx
                self.regions.append(region)

    def _build_parent_maps(self) -> None:
        children: Dict[int, List[int]] = {}
        for region in self.regions:
            for bank in region.banks:
                bank_node = self.topo.bank_node(bank)
                path = self.topo.xy_path(region.tsb_cache_node, bank_node)
                # path[-1] is the bank itself; the parent sits H hops
                # upstream on the deterministic X-Y route from the TSB.
                if len(path) - 1 >= self.hop_distance:
                    parent = path[-(self.hop_distance + 1)]
                else:
                    # Banks closer than H hops to the TSB are managed by
                    # the region-TSB node vertically above in the core
                    # layer (Section 3.4).
                    parent = region.tsb_core_node
                self.parent_of_bank[bank] = parent
                children.setdefault(parent, []).append(bank)
        self.children_of = {
            node: tuple(sorted(banks)) for node, banks in children.items()
        }

    # ------------------------------------------------------------------
    # Degraded operation (stuck-at TSB faults)
    # ------------------------------------------------------------------

    def remap_tsb(self, region_index: int,
                  to_region: Optional[int] = None) -> int:
        """Degrade a region whose TSB went stuck-at onto a neighbour.

        The failed region keeps its banks but borrows the TSB of the
        nearest healthy region (ties broken toward the lowest region
        index), so its request traffic serialises through the
        neighbour's vertical link; parent/child maps are rebuilt for
        the new TSB->bank X-Y paths.  Returns the donor region's index.
        """
        region = self.regions[region_index]
        if to_region is None:
            candidates = [
                r for r in self.regions
                if r.index != region_index
                and r.index not in self.failed_regions
                and r.tsb_cache_node != region.tsb_cache_node
            ]
            if not candidates:
                from repro.errors import FaultError

                raise FaultError(
                    f"no healthy region TSB left to remap region "
                    f"{region_index} onto"
                )
            donor = min(candidates, key=lambda r: (
                self.topo.manhattan(region.tsb_cache_node,
                                    r.tsb_cache_node),
                r.index,
            ))
        else:
            donor = self.regions[to_region]
        self.failed_regions[region_index] = donor.index
        region.tsb_cache_node = donor.tsb_cache_node
        region.tsb_core_node = donor.tsb_core_node
        self._child_distance.clear()
        self._build_parent_maps()
        return donor.index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def region_of(self, bank: int) -> Region:
        return self.regions[self.region_of_bank[bank]]

    def request_via(self, bank: int) -> int:
        """Core-layer node through which requests for ``bank`` must pass."""
        return self.region_of(bank).tsb_core_node

    def tsb_cache_nodes(self) -> Tuple[int, ...]:
        return tuple(r.tsb_cache_node for r in self.regions)

    def parent_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self.children_of))

    def is_parent(self, node: int) -> bool:
        return node in self.children_of

    def expected_child_distance(self, bank: int) -> int:
        """Hop distance from a bank's parent to the bank itself.

        Memoised: this sits on the arbitration hot path (one call per
        managed candidate per scan).
        """
        cached = self._child_distance.get(bank)
        if cached is None:
            parent = self.parent_of_bank[bank]
            cached = self.topo.manhattan(parent, self.topo.bank_node(bank))
            self._child_distance[bank] = cached
        return cached


def build_region_map(config: SystemConfig,
                     topo: Optional[Mesh3D] = None) -> Optional[RegionMap]:
    """Region map for a configuration, or None for unrestricted routing."""
    if config.n_region_tsbs is None:
        return None
    topo = topo or Mesh3D(config.mesh_width)
    return RegionMap(
        topo,
        config.n_region_tsbs,
        placement=config.tsb_placement,
        hop_distance=config.parent_hop_distance,
    )
