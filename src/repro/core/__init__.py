"""The paper's contribution: STT-RAM-aware NoC scheduling.

Region/TSB partitioning of the cache layer, per-parent busy-duration
tracking, the SS/RCA/WB congestion estimators, the bank-aware router
arbiter, and flit combining over widened TSBs.
"""

from repro.core.arbitration import BankAwareArbiter, RoundRobinArbiter
from repro.core.busy import BankBusyTracker
from repro.core.combining import FlitCombiner
from repro.core.estimators import (
    CongestionEstimator, RegionalCongestionEstimator, SimplisticEstimator,
    WindowEstimator, make_estimator,
)
from repro.core.regions import Region, RegionMap, build_region_map

__all__ = [
    "BankAwareArbiter", "RoundRobinArbiter", "BankBusyTracker",
    "FlitCombiner", "CongestionEstimator", "SimplisticEstimator",
    "RegionalCongestionEstimator", "WindowEstimator", "make_estimator",
    "Region", "RegionMap", "build_region_map",
]
