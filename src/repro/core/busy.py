"""Per-parent busy-duration bookkeeping for child STT-RAM banks.

Section 3.5: each parent router keeps a busy-bit and a counter per child
bank.  When it forwards a request to a child it charges the bank for the
travel time (``4`` cycles base for a two-hop path, plus the congestion
estimate supplied by the active estimation scheme) and the bank service
time (33-cycle writes dominate).  Subsequent requests to the same child
are predicted to find the bank busy until the counter expires.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.noc.packet import Packet
from repro.sim.config import SystemConfig


class BankBusyTracker:
    """Predicted ``busy_until`` cycle per bank, maintained by parents.

    Because the region/TSB scheme guarantees that every request for a bank
    flows through that bank's unique parent, a single shared table indexed
    by bank is exactly equivalent to per-parent tables and cheaper to
    simulate.
    """

    def __init__(self, config: SystemConfig):
        self.read_cycles = config.l2_read_cycles
        self.write_cycles = config.l2_write_cycles
        self.hop_cycles = config.hop_cycles
        self.busy_until: Dict[int, int] = {}
        #: instrumentation: predicted-busy hits seen by the arbiter.
        self.delays_predicted = 0
        #: Always-on prediction log consumed by the accuracy analysis:
        #: one ``(bank, predicted arrival cycle, predicted busy)`` row per
        #: forwarded managed request.  Recorded here (not in
        #: ``predicted_busy``) because ``charge`` runs exactly once per
        #: forward under both the dense and event schedulers, whereas
        #: ``predicted_busy`` call counts differ (the event scheduler
        #: bulk-compensates parked cycles).
        self.predictions: List[Tuple[int, int, bool]] = []

    def travel_cycles(self, hops: int) -> int:
        """Base parent->child latency: intermediate routers plus links.

        For the paper's two-hop case this is 4 cycles: one intermediate
        2-stage router and two 1-cycle link traversals (Section 3.5).
        """
        if hops <= 0:
            return 0
        # hops-1 intermediate routers, each a full pipeline, plus links.
        return (hops - 1) * (self.hop_cycles - 1) + hops

    def charge(self, pkt: Packet, now: int, hops: int,
               congestion_estimate: int) -> Tuple[int, bool]:
        """Account for a request just forwarded toward its child bank.

        The hardware keeps one busy-bit and one counter per child
        (Section 3.5): the counter is re-armed for the most recently
        forwarded request, it does not accumulate a virtual queue --
        under a sustained write stream the parent would otherwise
        predict the bank busy arbitrarily far into the future and
        degenerate into delaying everything.

        Returns ``(predicted arrival cycle, predicted busy at arrival)``
        -- the state *before* this charge, i.e. the prediction the
        arbiter acted on when it released this packet.
        """
        bank = pkt.bank
        if bank is None:
            return now, False
        arrival = now + self.travel_cycles(hops) + congestion_estimate
        predicted = arrival < self.busy_until.get(bank, 0)
        self.predictions.append((bank, arrival, predicted))
        service = self.write_cycles if pkt.is_write else self.read_cycles
        free_at = arrival + service
        if free_at > self.busy_until.get(bank, 0):
            self.busy_until[bank] = free_at
        return arrival, predicted

    def predicted_busy(self, bank: int, now: int, hops: int,
                       congestion_estimate: int) -> bool:
        """Would a request forwarded now arrive before the bank is free?"""
        free_at = self.busy_until.get(bank, 0)
        if free_at <= now:
            return False
        arrival = now + self.travel_cycles(hops) + congestion_estimate
        busy = arrival < free_at
        if busy:
            self.delays_predicted += 1
        return busy

    def predicted_free_at(self, bank: int) -> int:
        return self.busy_until.get(bank, 0)
