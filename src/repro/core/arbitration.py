"""Router arbitration policies: round-robin and STT-RAM bank-aware.

The paper's mechanism (Sections 3.1-3.2) replaces the local, memory-
technology-oblivious round-robin arbiter with one that, at *parent*
routers, withholds request packets headed to a predicted-busy child bank
and instead grants the crossbar/VC to requests for idle banks, coherence
traffic and memory-controller traffic.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.busy import BankBusyTracker
from repro.core.estimators import CongestionEstimator
from repro.core.regions import RegionMap
from repro.noc.packet import Packet, PacketClass
from repro.obs.events import EV_ARB_REORDER, EV_EST_PREDICT
from repro.noc.router import NEVER
from repro.sim.config import SystemConfig

# An arbitration entry as kept by the router output queues:
# [in_port, vc, packet, arrival_cycle]
ENTRY_PKT = 2
ENTRY_ARRIVAL = 3


class RoundRobinArbiter:
    """Oblivious baseline: rotate over the requesting (port, vc) pairs."""

    name = "rr"

    #: True when the network must invoke :meth:`on_forward` per packet
    #: (plain RR has no forward hook, so the network skips the call).
    needs_forward_hook = False

    def __init__(self):
        #: (node << 3 | out_port) -> rotation pointer
        self._pointers = {}
        self.network = None
        #: observability emit callable; None when tracing is detached
        self.trace = None

    def bind(self, network) -> None:
        """Give the arbiter access to live router state."""
        self.network = network
        #: node-indexed choose dispatch table; subclasses that specialise
        #: per node (bank-aware parents vs plain RR elsewhere) override
        #: rows so the route loop skips the delegation chain entirely.
        #: None for topology-less stand-ins (unit-test fakes).
        topo = getattr(network, "topo", None)
        self.choose_at = (
            None if topo is None else [self.choose] * topo.n_nodes
        )

    def on_forward(self, node: int, pkt: Packet, now: int,
                   out_port: int) -> None:
        """Hook invoked for every forwarded packet (no-op for RR)."""

    def choose(self, node: int, out_port: int, entries: List[list],
               now: int) -> Optional[int]:
        """Pick the index of the winning entry, or None to idle.

        ``entries`` only contains candidates that are ready and whose
        downstream VC is available.
        """
        if not entries:
            return None
        key = (node << 3) | out_port
        if len(entries) == 1:
            # Sole candidate: skip the scan, advance the pointer exactly
            # as the general path would.
            e = entries[0]
            self._pointers[key] = (e[0] * 64 + e[1] + 1) % 4096
            return 0
        pointer = self._pointers.get(key, 0)
        # Rotate over (in_port, vc) identities for classic RR fairness.
        # (in_port, vc) pairs are unique within one output queue, so the
        # minimum rotation distance picks the same winner a full sort
        # would -- without building the order list.
        winner = 0
        best = (entries[0][0] * 64 + entries[0][1] - pointer) % 4096
        for i in range(1, len(entries)):
            e = entries[i]
            distance = (e[0] * 64 + e[1] - pointer) % 4096
            if distance < best:
                best = distance
                winner = i
        self._pointers[key] = (
            entries[winner][0] * 64 + entries[winner][1] + 1
        ) % 4096
        return winner

    # -- event-driven scheduling hooks ---------------------------------

    def release_hint(self, node: int, out_port: int, entries: List[list],
                     now: int) -> int:
        """Earliest cycle a ``choose`` that returned None could pick a
        winner, assuming no further activity at the router.  RR never
        returns None for a non-empty pool, so the conservative bound is
        the next cycle."""
        return now + 1

    def accrue_parked(self, entries, cycles: int) -> None:
        """Book ``cycles`` of per-cycle delay accrual for entries parked
        while their router slept (no-op for plain round-robin)."""


class BankAwareArbiter(RoundRobinArbiter):
    """STT-RAM-aware packet re-ordering at parent routers (Section 3.2).

    At a parent router, a ``REQUEST`` whose destination bank is one of the
    parent's children and is predicted busy at the packet's arrival time
    is *delayed*: it is removed from the candidate pool while any other
    candidate exists, and the output is left idle rather than feeding a
    busy bank when only delayed candidates remain.  A starvation valve
    releases any packet delayed longer than ``max_delay_cycles``.

    Non-parent routers fall back to plain round-robin.
    """

    name = "bank-aware"

    needs_forward_hook = True

    def __init__(
        self,
        config: SystemConfig,
        region_map: RegionMap,
        tracker: BankBusyTracker,
        estimator: CongestionEstimator,
    ):
        super().__init__()
        self.config = config
        self.region_map = region_map
        self.tracker = tracker
        self.estimator = estimator
        self.hop_distance = config.parent_hop_distance
        self.max_delay = config.max_delay_cycles
        #: instrumentation
        self.packets_delayed = 0
        self.delay_cycles = 0
        self.reorders = 0
        self.vc_pressure_releases = 0
        #: Delay a packet only while its input port retains at least this
        #: many free VCs: the paper buffers delayed requests in the
        #: *available* VCs, and parking packets on a starved port would
        #: block unrelated through-traffic (tree saturation).
        self.min_free_vcs = config.arbiter_min_free_vcs
        self.read_priority = config.arbiter_read_priority
        #: parent node -> frozenset of managed child banks (set lookup on
        #: the per-candidate hot path instead of a tuple scan)
        self._children = {
            node: frozenset(banks)
            for node, banks in region_map.children_of.items()
        }
        #: bank -> base parent->child travel cycles.  Hop distance and
        #: travel time are static per bank, so the hot paths replace the
        #: ``expected_child_distance``/``travel_cycles`` call pair with
        #: one list index.
        self._travel = [
            tracker.travel_cycles(region_map.expected_child_distance(b))
            for b in range(config.n_banks)
        ]
        self._read_cycles = tracker.read_cycles
        self._write_cycles = tracker.write_cycles

    # ------------------------------------------------------------------

    def _is_managed(self, node: int, pkt: Packet) -> bool:
        if pkt.klass is not PacketClass.REQUEST or pkt.bank is None:
            return False
        children = self._children.get(node)
        return children is not None and pkt.bank in children

    def on_forward(self, node: int, pkt: Packet, now: int,
                   out_port: int) -> None:
        """Charge the busy tracker and let the estimator tag packets.

        The body of :meth:`BankBusyTracker.charge` is inlined (with the
        precomputed per-bank travel time) -- this runs once per forwarded
        managed request and must stay exactly equivalent to it.
        """
        bank = pkt.bank
        if pkt.klass is not PacketClass.REQUEST or bank is None:
            return
        children = self._children.get(node)
        if children is None or bank not in children:
            return
        tracker = self.tracker
        est = self.estimator.congestion_estimate(node, bank, now)
        arrival = now + self._travel[bank] + est
        busy_until = tracker.busy_until
        prev = busy_until.get(bank, 0)
        predicted = arrival < prev
        tracker.predictions.append((bank, arrival, predicted))
        service = self._write_cycles if pkt.is_write else self._read_cycles
        if arrival + service > prev:
            busy_until[bank] = arrival + service
        self.estimator.on_forward(node, pkt, now)
        trace = self.trace
        if trace is not None:
            trace(now, EV_EST_PREDICT, {
                "node": node, "bank": bank, "estimate": est,
                "arrival": arrival, "predicted_busy": predicted,
            })

    def bind(self, network) -> None:
        super().bind(network)
        if self.choose_at is None:
            return
        # Parent nodes take the bank-aware path; every other node is
        # plain round-robin, dispatched without the per-call delegation.
        rr_choose = RoundRobinArbiter.choose.__get__(self)
        for node in range(len(self.choose_at)):
            if node in self._children:
                self.choose_at[node] = self._choose_parent
            else:
                self.choose_at[node] = rr_choose
        #: node-indexed forward hook: only parent nodes charge the busy
        #: tracker, every other node's hook is a no-op the network skips.
        #: Mutated in place on rebind: the network captured this exact
        #: list at construction, and ``refresh_topology`` (TSB-failure
        #: remap) must update it through that alias.
        hooks = [
            self.on_forward if node in self._children else None
            for node in range(len(self.choose_at))
        ]
        existing = getattr(self, "forward_hook_at", None)
        if existing is None:
            self.forward_hook_at = hooks
        else:
            existing[:] = hooks

    def refresh_topology(self) -> None:
        """Rebuild parent/child state after a region-map change.

        Fault injection (stuck-at TSB remap) rewrites the region map's
        parent/child assignment; the arbiter's cached child sets, travel
        times and per-node dispatch tables must follow.
        """
        region_map = self.region_map
        self._children = {
            node: frozenset(banks)
            for node, banks in region_map.children_of.items()
        }
        self._travel = [
            self.tracker.travel_cycles(
                region_map.expected_child_distance(b))
            for b in range(self.config.n_banks)
        ]
        if self.network is not None:
            self.bind(self.network)

    def choose(self, node: int, out_port: int, entries: List[list],
               now: int) -> Optional[int]:
        if node not in self._children:
            return super().choose(node, out_port, entries, now)
        return self._choose_parent(node, out_port, entries, now)

    def _choose_parent(self, node: int, out_port: int, entries: List[list],
                       now: int) -> Optional[int]:
        if not entries:
            return None
        children = self._children[node]
        if len(entries) == 1:
            # Sole candidate: it wins outright unless it is a managed
            # request headed to a possibly-busy bank (then the general
            # path decides whether to park it).
            entry = entries[0]
            pkt = entry[ENTRY_PKT]
            bank = pkt.bank
            if (
                pkt.klass is not PacketClass.REQUEST
                or bank is None
                or bank not in children
                or now - entry[ENTRY_ARRIVAL] >= self.max_delay
                or self.tracker.busy_until.get(bank, 0) <= now
            ):
                return 0

        router = (
            self.network.routers[node] if self.network is not None else None
        )
        tracker = self.tracker
        estimate = self.estimator.congestion_estimate
        busy_get = tracker.busy_until.get
        travel = self._travel
        max_delay = self.max_delay
        min_free_vcs = self.min_free_vcs
        request = PacketClass.REQUEST
        eligible: List[int] = []
        delayed: List[int] = []
        for i, entry in enumerate(entries):
            pkt = entry[ENTRY_PKT]
            bank = pkt.bank
            if (
                pkt.klass is request
                and bank is not None
                and bank in children
                and now - entry[ENTRY_ARRIVAL] < max_delay
            ):
                # Inline of tracker.predicted_busy with the precomputed
                # travel time; the estimate is only needed (and the
                # estimator call only paid) once the bank looks busy.
                free_at = busy_get(bank, 0)
                if free_at > now and (
                    now + travel[bank] + estimate(node, bank, now) < free_at
                ):
                    tracker.delays_predicted += 1
                    if (
                        router is not None
                        and router.free_vc_count(entry[0], now)
                        < min_free_vcs
                    ):
                        # Port under VC pressure: parking this packet
                        # would block through-traffic; release it.
                        self.vc_pressure_releases += 1
                    else:
                        delayed.append(i)
                        continue
            eligible.append(i)

        for i in delayed:
            entries[i][ENTRY_PKT].delayed_cycles += 1
            self.delay_cycles += 1
        if delayed:
            self.packets_delayed += len(delayed)

        if not eligible:
            # All candidates head to busy banks: leave the output idle so
            # the network buffers them instead of the bank interface.
            return None
        if delayed:
            self.reorders += 1
        if len(eligible) == 1:
            winner = eligible[0]
        else:
            # Among eligible packets: boost coherence, memory-controller
            # and response traffic over ordinary requests (Figure 2c);
            # among requests, let latency-critical reads pass non-blocking
            # write data (Section 3.2: not all requests are equally
            # critical from the network standpoint); break ties
            # oldest-first.  (Manual min over (boost, inject, arrival) --
            # no per-call key closure; first minimum wins, like min().)
            read_priority = self.read_priority
            winner = -1
            b_boost = b_inject = b_arrival = 0
            for i in eligible:
                e = entries[i]
                pkt = e[ENTRY_PKT]
                if pkt.klass is not request:
                    boost = 0
                elif not pkt.is_write or not read_priority:
                    boost = 1
                else:
                    boost = 2
                if winner < 0:
                    take = True
                elif boost != b_boost:
                    take = boost < b_boost
                elif pkt.inject_cycle != b_inject:
                    take = pkt.inject_cycle < b_inject
                else:
                    take = e[ENTRY_ARRIVAL] < b_arrival
                if take:
                    winner = i
                    b_boost = boost
                    b_inject = pkt.inject_cycle
                    b_arrival = e[ENTRY_ARRIVAL]
        if delayed:
            trace = self.trace
            if trace is not None:
                trace(now, EV_ARB_REORDER, {
                    "node": node, "port": out_port,
                    "delayed": len(delayed),
                    "granted_pid": entries[winner][ENTRY_PKT].pid,
                })
        return winner

    # -- event-driven scheduling hooks ---------------------------------

    def release_hint(self, node: int, out_port: int, entries: List[list],
                     now: int) -> int:
        """Earliest cycle one of these all-delayed candidates becomes
        eligible, barring new activity at the router.

        Each candidate is released at the earlier of its starvation-valve
        expiry (``arrival + max_delay``) and the first cycle the bank
        busy prediction clears (``free_at - travel - estimate``).  Both
        only move *earlier* through events that poke the router (a WB
        ack, a new charge happens on a scan), so the minimum is a safe
        wake bound -- but only while the congestion estimates themselves
        are event-stable; RCA drifts on its own clock, so fall back to
        dense re-scanning under it.
        """
        if not self.estimator.estimates_stable:
            return now + 1
        tracker = self.tracker
        estimator = self.estimator
        travel = self._travel
        best = NEVER
        for entry in entries:
            pkt = entry[ENTRY_PKT]
            t = entry[ENTRY_ARRIVAL] + self.max_delay
            est = estimator.congestion_estimate(node, pkt.bank, now)
            t2 = (tracker.predicted_free_at(pkt.bank)
                  - travel[pkt.bank] - est)
            if t2 < t:
                t = t2
            if t < best:
                best = t
        return best if best > now else now + 1

    def accrue_parked(self, entries, cycles: int) -> None:
        """Replay the per-cycle delay accrual the dense loop performs for
        candidates that stayed parked while their router slept."""
        n = len(entries) * cycles
        for entry in entries:
            entry[ENTRY_PKT].delayed_cycles += cycles
        self.delay_cycles += n
        self.packets_delayed += n
        self.tracker.delays_predicted += n
