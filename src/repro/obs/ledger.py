"""Persistent run ledger: one JSONL record per completed sweep.

Perf regressions are only diagnosable after the fact if the facts were
written down.  Every ``run_sweep`` appends one schema-versioned record
-- spec digest, backend, worker count, cache behaviour, wall time, span
rollups and host info -- to ``~/.cache/repro-sweeps/ledger.jsonl``
(same root as the result cache; ``$REPRO_LEDGER_DIR`` overrides,
``REPRO_LEDGER=0`` disables).

Durability mirrors the result cache's corrupt-entry handling:

* **Atomic writes** -- the ledger is rewritten whole through a temp
  file + ``os.replace``, so a crash mid-append leaves the previous
  (complete) file behind, never a torn one.
* **Corrupt-tail recovery** -- a record that fails to parse or fails
  schema validation is skipped on read and dropped on the next append;
  a power cut that truncates the final line costs exactly that line.
* **Size-capped rotation** -- only the newest ``max_entries`` records
  are kept (``$REPRO_LEDGER_MAX`` overrides the default), so the
  ledger never grows without bound.

``repro.cli ledger`` lists, filters, validates and diffs the records;
``repro.cli report --compare`` reuses :func:`diff_records` to gate two
runs against a regression threshold.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

#: Bumped when the record layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Default number of records kept by rotation.
DEFAULT_MAX_ENTRIES = 200

LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
LEDGER_MAX_ENV = "REPRO_LEDGER_MAX"
LEDGER_ENABLE_ENV = "REPRO_LEDGER"

#: Fields every valid record must carry (type-checked by validation).
REQUIRED_FIELDS: Dict[str, tuple] = {
    "schema": (int,),
    "run_id": (str,),
    "ts": (int, float),
    "spec_digest": (str,),
    "fingerprint": (str,),
    "backend": (str,),
    "workers": (int,),
    "points": (int,),
    "cache_hits": (int,),
    "cache_misses": (int,),
    "cache_evictions": (int,),
    "resumed_points": (int,),
    "simulated": (int,),
    "wall_seconds": (int, float),
    "points_per_sec": (int, float),
    "spans": (dict,),
    "host": (dict,),
}


def default_ledger_path() -> str:
    """``$REPRO_LEDGER_DIR``, else the sweep-cache root, plus
    ``ledger.jsonl``."""
    override = os.environ.get(LEDGER_DIR_ENV)
    if override:
        return os.path.join(override, "ledger.jsonl")
    from repro.sim.parallel import default_cache_dir

    return os.path.join(default_cache_dir(), "ledger.jsonl")


def ledger_enabled() -> bool:
    return os.environ.get(LEDGER_ENABLE_ENV, "1").lower() not in (
        "0", "off", "false", "no",
    )


def _default_max_entries() -> int:
    try:
        return max(1, int(os.environ.get(LEDGER_MAX_ENV, "")))
    except ValueError:
        return DEFAULT_MAX_ENTRIES


def validate_record(record: Dict) -> List[str]:
    """Schema violations of one ledger record (empty when valid)."""
    if not isinstance(record, dict):
        return ["record is not an object"]
    errors: List[str] = []
    for name, types in REQUIRED_FIELDS.items():
        if name not in record:
            errors.append(f"missing field {name!r}")
        elif (not isinstance(record[name], types)
              or isinstance(record[name], bool)):
            errors.append(
                f"field {name!r} is {type(record[name]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    schema = record.get("schema")
    if isinstance(schema, int) and schema > LEDGER_SCHEMA_VERSION:
        errors.append(f"schema {schema} is newer than supported "
                      f"{LEDGER_SCHEMA_VERSION}")
    return errors


def build_record(grid_spec: Dict, fingerprint: str, stats,
                 telemetry=None) -> Dict:
    """Assemble one ledger record from a finished sweep.

    ``stats`` is a :class:`~repro.sim.parallel.SweepRunStats`;
    ``telemetry`` (optional) contributes span rollups and the worker
    roster.  The record is pure observation: nothing in it feeds back
    into cache keys or fingerprints.
    """
    blob = json.dumps(grid_spec, sort_keys=True, separators=(",", ":"))
    spec_digest = hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]
    now = time.time()
    run_id = hashlib.sha256(
        f"{spec_digest}:{now:.6f}:{os.getpid()}".encode("ascii")
    ).hexdigest()[:12]
    record = {
        "schema": LEDGER_SCHEMA_VERSION,
        "run_id": run_id,
        "ts": round(now, 3),
        "spec_digest": spec_digest,
        "grid": grid_spec,
        "fingerprint": fingerprint[:16],
        "backend": stats.backend,
        "workers": stats.workers,
        "points": stats.points,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "cache_evictions": stats.cache_evictions,
        "resumed_points": stats.resumed_points,
        "simulated": stats.simulated,
        "retried": stats.retried,
        "wall_seconds": round(stats.wall_seconds, 6),
        "points_per_sec": round(stats.points_per_sec, 3),
        "hit_rate": round(stats.hit_rate, 4),
        "spans": telemetry.rollups() if telemetry is not None else {},
        "host": {
            "node": platform.node(),
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
            "platform": sys.platform,
        },
    }
    if stats.backend == "batch":
        record["lane_groups"] = stats.lane_groups
        record["lanes_packed"] = stats.lanes_packed
        record["scalar_fallbacks"] = stats.scalar_fallbacks
    return record


class RunLedger:
    """Schema-versioned JSONL ledger with rotation and recovery."""

    def __init__(self, path: Optional[str] = None,
                 max_entries: Optional[int] = None):
        self.path = path or default_ledger_path()
        self.max_entries = (max_entries if max_entries is not None
                            else _default_max_entries())
        if self.max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {self.max_entries}")
        #: lines discarded as corrupt by the last read
        self.corrupt_dropped = 0

    # ------------------------------------------------------------------

    def _read_lines(self) -> List[str]:
        """Raw lines whose records parse and validate; drops the rest."""
        self.corrupt_dropped = 0
        kept: List[str] = []
        try:
            with open(self.path, "r", encoding="ascii") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        self.corrupt_dropped += 1
                        continue
                    if validate_record(record):
                        self.corrupt_dropped += 1
                        continue
                    kept.append(line)
        except FileNotFoundError:
            pass
        except OSError:
            pass
        return kept

    def entries(self) -> List[Dict]:
        """Every valid record, oldest first."""
        return [json.loads(line) for line in self._read_lines()]

    def append(self, record: Dict) -> None:
        """Append one record, rotating to the newest ``max_entries``.

        Read-modify-replace through a temp file: a crash mid-append
        leaves the previous complete ledger, and a corrupt tail from an
        earlier crash is healed (dropped) by the rewrite.
        """
        errors = validate_record(record)
        if errors:
            raise ValueError(f"refusing to append invalid record: "
                             f"{'; '.join(errors)}")
        lines = self._read_lines()
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
        lines = lines[-self.max_entries:]
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        tmp = self.path + f".tmp.{os.getpid()}"
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write("\n".join(lines))
            fh.write("\n")
        os.replace(tmp, self.path)

    def validate(self) -> Tuple[int, List[str]]:
        """Validate the whole file; returns (valid rows, errors)."""
        errors: List[str] = []
        rows = 0
        try:
            with open(self.path, "r", encoding="ascii") as fh:
                for lineno, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError as exc:
                        errors.append(f"line {lineno}: not JSON ({exc})")
                        continue
                    row_errors = validate_record(record)
                    if row_errors:
                        errors.extend(
                            f"line {lineno}: {msg}" for msg in row_errors
                        )
                    else:
                        rows += 1
        except FileNotFoundError:
            errors.append(f"no ledger at {self.path}")
        return rows, errors[:20]

    # ------------------------------------------------------------------

    def resolve(self, ref: str) -> Dict:
        """A record by run-id prefix or signed index (``-1`` = newest)."""
        records = self.entries()
        if not records:
            raise LookupError(f"ledger {self.path} holds no runs")
        try:
            index = int(ref)
        except ValueError:
            matches = [r for r in records
                       if r["run_id"].startswith(ref)]
            if len(matches) == 1:
                return matches[0]
            raise LookupError(
                f"run id {ref!r} matches {len(matches)} ledger records"
            )
        try:
            return records[index]
        except IndexError:
            raise LookupError(
                f"index {index} out of range for {len(records)} records"
            )


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------


def record_from_bench(payload: Dict, path: str) -> Dict:
    """A pseudo ledger record lifted from a ``BENCH_perf.json`` report,
    so ``report --compare`` can diff a live run against the committed
    sweep-throughput baseline."""
    sweep = payload.get("sweep_throughput")
    if not isinstance(sweep, dict):
        raise LookupError(f"{path} has no sweep_throughput section")
    return {
        "run_id": f"bench:{os.path.basename(path)}",
        "backend": sweep.get("backend", "scalar"),
        "workers": sweep.get("workers", 1),
        "points": sweep.get("points", 0),
        "wall_seconds": (
            sweep["points"] / sweep["serial_points_per_sec"]
            if sweep.get("serial_points_per_sec") else 0.0
        ),
        "points_per_sec": sweep.get("serial_points_per_sec", 0.0),
        "hit_rate": sweep.get("warm_hit_rate", 0.0),
        "cache_hits": 0, "cache_misses": 0, "cache_evictions": 0,
        "resumed_points": 0, "simulated": sweep.get("points", 0),
        "spans": {},
    }


#: Headline scalars diffed between two records (name, lower-is-better).
_DIFF_FIELDS: Tuple[Tuple[str, bool], ...] = (
    ("wall_seconds", True),
    ("points_per_sec", False),
    ("hit_rate", False),
    ("simulated", True),
    ("cache_evictions", True),
)


def diff_records(a: Dict, b: Dict,
                 threshold: float = 0.2) -> Tuple[List[str], List[str]]:
    """Compare run ``b`` against baseline ``a``.

    Returns ``(report_lines, failures)``: the lines render the headline
    and per-span deltas; a failure is recorded when throughput drops --
    or the total of a shared span grows -- by more than ``threshold``
    (a fraction, e.g. ``0.2`` for 20%).
    """
    lines: List[str] = []
    failures: List[str] = []
    lines.append(f"baseline A: {a.get('run_id', '?')} "
                 f"(backend={a.get('backend')}, workers={a.get('workers')}, "
                 f"points={a.get('points')})")
    lines.append(f"candidate B: {b.get('run_id', '?')} "
                 f"(backend={b.get('backend')}, workers={b.get('workers')}, "
                 f"points={b.get('points')})")
    lines.append(f"{'metric':<22} {'A':>12} {'B':>12} {'delta':>9}")
    for field, lower_better in _DIFF_FIELDS:
        va, vb = a.get(field), b.get(field)
        if va is None or vb is None:
            continue
        delta = (vb - va) / va if va else 0.0
        lines.append(f"{field:<22} {va:>12.3f} {vb:>12.3f} "
                     f"{delta:>+8.1%}")
        if field == "points_per_sec" and va and vb < va * (1 - threshold):
            failures.append(
                f"points_per_sec regressed {-delta:.0%} "
                f"(> {threshold:.0%} threshold)"
            )
    spans_a = a.get("spans") or {}
    spans_b = b.get("spans") or {}
    shared = sorted(set(spans_a) & set(spans_b))
    if shared:
        lines.append("")
        lines.append(f"{'span':<22} {'A total_s':>12} {'B total_s':>12} "
                     f"{'delta':>9}")
        for name in shared:
            ta = spans_a[name].get("total_s", 0.0)
            tb = spans_b[name].get("total_s", 0.0)
            delta = (tb - ta) / ta if ta else 0.0
            lines.append(f"{name:<22} {ta:>12.3f} {tb:>12.3f} "
                         f"{delta:>+8.1%}")
            if ta > 0.01 and tb > ta * (1 + threshold):
                failures.append(
                    f"span {name} grew {delta:.0%} "
                    f"(> {threshold:.0%} threshold)"
                )
    only_a = sorted(set(spans_a) - set(spans_b))
    only_b = sorted(set(spans_b) - set(spans_a))
    if only_a:
        lines.append(f"spans only in A: {', '.join(only_a)}")
    if only_b:
        lines.append(f"spans only in B: {', '.join(only_b)}")
    return lines, failures


def format_entries(records: Sequence[Dict]) -> str:
    """Aligned listing for ``repro.cli ledger``."""
    lines = [
        f"{'run_id':<13} {'when':<20} {'backend':<7} {'wkrs':>4} "
        f"{'points':>6} {'hits':>5} {'sim':>5} {'wall_s':>8} {'pts/s':>8}"
    ]
    for record in records:
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.localtime(record["ts"]))
        lines.append(
            f"{record['run_id']:<13} {when:<20} {record['backend']:<7} "
            f"{record['workers']:>4} {record['points']:>6} "
            f"{record['cache_hits']:>5} {record['simulated']:>5} "
            f"{record['wall_seconds']:>8.2f} "
            f"{record['points_per_sec']:>8.2f}"
        )
    return "\n".join(lines)
