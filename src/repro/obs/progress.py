"""Live sweep progress rendering off the telemetry stream.

Two modes, selected by ``repro.cli sweep --progress={plain,rich}``:

* ``plain`` -- one line per completed point (CI-log friendly, no
  control characters): label, counter, rolling points/sec and ETA.
* ``rich`` -- a single carriage-return-rewritten status line: progress
  bar, points/sec, ETA, cache-hit rate, per-worker completion counts
  and straggler flagging.

The renderer is a passive consumer of
:class:`~repro.obs.telemetry.SweepTelemetry` point-completion
callbacks; it never touches simulation state, so rendering cannot
perturb results (the pure-reader guarantee).

Straggler heuristic: completions are chunk-granular, so the renderer
cannot see *inside* a worker's in-flight chunk.  It tracks each
worker's last completion time and flags a worker when work remains
pending and that worker has been silent for more than
``STRAGGLER_FACTOR`` times the rolling mean point wall time.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Rolling window (completions) for the points/sec and ETA estimate.
ETA_WINDOW = 24

#: A worker silent for this multiple of the rolling mean point time
#: (while points remain pending) is flagged as a straggler.
STRAGGLER_FACTOR = 3.0

#: Floor on the silence time before flagging, so fast sweeps with
#: sub-millisecond points do not flag on scheduling noise.
STRAGGLER_MIN_S = 1.0


class ProgressRenderer:
    """Terminal renderer for live sweep progress."""

    def __init__(self, mode: str = "plain", out=None, now=time.monotonic):
        if mode not in ("plain", "rich"):
            raise ValueError(f"progress mode must be plain or rich, "
                             f"got {mode!r}")
        self.mode = mode
        self.out = out if out is not None else sys.stderr
        self._now = now
        self.total = 0
        self.done = 0
        self.hits = 0
        self.workers = 0
        self._t0 = now()
        #: completion timestamps of the rolling ETA window
        self._ticks: Deque[float] = deque(maxlen=ETA_WINDOW)
        #: rolling simulated-point wall times (seconds)
        self._walls: Deque[float] = deque(maxlen=ETA_WINDOW)
        #: worker pid -> (points completed, last completion timestamp)
        self.per_worker: Dict[int, Tuple[int, float]] = {}
        self._line_open = False

    # ------------------------------------------------------------------
    # Telemetry callbacks
    # ------------------------------------------------------------------

    def begin(self, total: int, workers: int) -> None:
        self.total = total
        self.workers = workers
        self._t0 = self._now()

    def on_point(self, label: str, source: str, wall_ms: float,
                 worker: Optional[int], done: int, total: int) -> None:
        now = self._now()
        self.done = done
        self.total = total or self.total
        if source == "hit":
            self.hits += 1
        if source == "sim":
            self._ticks.append(now)
            self._walls.append(wall_ms / 1e3)
        if worker is not None:
            count, _last = self.per_worker.get(worker, (0, now))
            self.per_worker[worker] = (count + 1, now)
        if self.mode == "plain":
            self._render_plain(label, source)
        else:
            self._render_rich(now)

    def close(self) -> None:
        if self._line_open:
            self.out.write("\n")
            self.out.flush()
            self._line_open = False

    # ------------------------------------------------------------------
    # Rate / ETA / straggler estimation
    # ------------------------------------------------------------------

    def points_per_sec(self) -> float:
        """Rolling simulated-point rate (cache hits excluded: they
        complete in microseconds and would make the ETA lie)."""
        if len(self._ticks) >= 2:
            span = self._ticks[-1] - self._ticks[0]
            if span > 0:
                return (len(self._ticks) - 1) / span
        elapsed = self._now() - self._t0
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> Optional[float]:
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        # The rolling rate is measured over completions from *all*
        # workers, so it already reflects pool-level throughput.
        rate = self.points_per_sec()
        if rate <= 0:
            return None
        return remaining / rate

    def mean_point_seconds(self) -> float:
        if not self._walls:
            return 0.0
        return sum(self._walls) / len(self._walls)

    def stragglers(self, now: Optional[float] = None) -> Dict[int, float]:
        """Workers silent beyond the straggler bound -> silence seconds."""
        if self.done >= self.total:
            return {}
        now = self._now() if now is None else now
        bound = max(STRAGGLER_MIN_S,
                    STRAGGLER_FACTOR * self.mean_point_seconds())
        return {
            pid: round(now - last, 2)
            for pid, (_count, last) in self.per_worker.items()
            if now - last > bound
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    @staticmethod
    def _fmt_eta(eta: Optional[float]) -> str:
        if eta is None:
            return "eta ?"
        if eta >= 90:
            return f"eta {eta / 60:.1f}m"
        return f"eta {eta:.0f}s"

    def _render_plain(self, label: str, source: str) -> None:
        eta = self._fmt_eta(self.eta_seconds())
        self.out.write(
            f"  [{self.done}/{self.total}] {source:<7} {label}  "
            f"{self.points_per_sec():.2f} pts/s  {eta}\n"
        )
        self.out.flush()

    def _render_rich(self, now: float) -> None:
        width = 20
        frac = self.done / self.total if self.total else 0.0
        filled = int(frac * width)
        bar = "#" * filled + "-" * (width - filled)
        hit_rate = self.hits / self.done if self.done else 0.0
        parts = [
            f"[{bar}] {self.done}/{self.total}",
            f"{self.points_per_sec():.2f} pts/s",
            self._fmt_eta(self.eta_seconds()),
            f"hits {hit_rate:.0%}",
        ]
        if self.per_worker:
            roster = " ".join(
                f"w{pid}:{count}"
                for pid, (count, _last) in sorted(self.per_worker.items())
            )
            parts.append(roster)
        stragglers = self.stragglers(now)
        if stragglers:
            slowest = max(stragglers.items(), key=lambda kv: kv[1])
            parts.append(f"STRAGGLER w{slowest[0]} "
                         f"silent {slowest[1]:.1f}s")
        line = "  ".join(parts)
        self.out.write("\r\x1b[2K" + line)
        self.out.flush()
        self._line_open = True
