"""Structured event model for the observability layer.

Every instrumented component (network, banks, arbiter, estimators,
scheduler) emits *typed lifecycle events* through a single callable --
the :class:`~repro.obs.observability.Observability` facade's ``emit`` --
when (and only when) an observability session is attached.  The guard
pattern at every emission site is::

    trace = self.trace          # None when observability is detached
    if trace is not None:
        trace(now, EV_PKT_FORWARD, {"pid": pkt.pid, ...})

so a disabled run pays one attribute load and an ``is None`` test per
site, nothing else: no event objects, no dict allocation, no sink calls.

Event kinds are plain interned strings (cheap identity comparison, JSON
friendly); the authoritative field list per kind lives in
:mod:`repro.obs.schema`.
"""

from __future__ import annotations

from typing import Dict, List

# -- packet lifecycle ---------------------------------------------------
#: a packet entered its source NI queue
EV_PKT_INJECT = "pkt.inject"
#: a router forwarded a packet over an inter-router link
EV_PKT_FORWARD = "pkt.forward"
#: a packet was ejected at its destination's local port
EV_PKT_DELIVER = "pkt.deliver"

# -- bank service lifecycle ---------------------------------------------
#: a bank began servicing an operation (read/write/fill/drain/migrate)
EV_BANK_START = "bank.service_start"
#: the bank finished (or a read preempted) that operation
EV_BANK_END = "bank.service_end"

# -- paper mechanism ----------------------------------------------------
#: a parent router's busy-duration prediction for a forwarded request
EV_EST_PREDICT = "est.predict"
#: a congestion estimator absorbed feedback (WB ack round trip)
EV_EST_UPDATE = "est.update"
#: the bank-aware arbiter delayed >= 1 candidate and granted another
EV_ARB_REORDER = "arb.reorder"
#: two request packets shared one region-TSB traversal slot
EV_TSB_COMBINE = "tsb.combine"

# -- event scheduler ----------------------------------------------------
#: the event scheduler executed one cycle (event scheduler only)
EV_SCHED_EXEC = "sched.exec"
#: the event scheduler skipped a provably-idle cycle range
EV_SCHED_SKIP = "sched.skip"

# -- fault injection (repro.resilience) ---------------------------------
#: a CRC check at a downstream router ingress caught a corrupted flit
EV_FAULT_CRC = "fault.crc"
#: the source NI scheduled a retransmission for a NACKed packet
EV_FAULT_RETRANSMIT = "fault.retransmit"
#: a region TSB went stuck-at; its region was remapped to a neighbour
EV_FAULT_TSB = "fault.tsb_fail"
#: a bank's array port failed (no operation can start until healed)
EV_FAULT_BANK = "fault.bank_port"
#: a queued bank request timed out and was redirected around the array
EV_FAULT_REDIRECT = "fault.bank_redirect"

# -- invariant guard (repro.sim.guard) ----------------------------------
#: a conservation invariant failed (credit leak, accounting drift)
EV_GUARD_VIOLATION = "guard.violation"
#: the watchdog saw no forward progress for a full progress window
EV_GUARD_DEADLOCK = "guard.deadlock"

#: Every event kind, in taxonomy order.
ALL_KINDS = (
    EV_PKT_INJECT, EV_PKT_FORWARD, EV_PKT_DELIVER,
    EV_BANK_START, EV_BANK_END,
    EV_EST_PREDICT, EV_EST_UPDATE, EV_ARB_REORDER, EV_TSB_COMBINE,
    EV_SCHED_EXEC, EV_SCHED_SKIP,
    EV_FAULT_CRC, EV_FAULT_RETRANSMIT, EV_FAULT_TSB, EV_FAULT_BANK,
    EV_FAULT_REDIRECT,
    EV_GUARD_VIOLATION, EV_GUARD_DEADLOCK,
)

#: Kinds that describe scheduler bookkeeping rather than simulated
#: behaviour.  The dense and event schedulers are observationally
#: identical *modulo these*: equivalence checks must filter them out.
SCHEDULER_KINDS = frozenset((EV_SCHED_EXEC, EV_SCHED_SKIP))


class Event:
    """One recorded event: ``(cycle, kind, data)``.

    Kept as a tiny slotted object rather than a dict so in-memory traces
    of a few hundred thousand events stay compact and hashable-by-id.
    """

    __slots__ = ("cycle", "kind", "data")

    def __init__(self, cycle: int, kind: str, data: Dict):
        self.cycle = cycle
        self.kind = kind
        self.data = data

    def as_dict(self) -> Dict:
        """JSONL row: cycle and kind first, then the payload fields."""
        row = {"cycle": self.cycle, "kind": self.kind}
        row.update(self.data)
        return row

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Event)
            and self.cycle == other.cycle
            and self.kind == other.kind
            and self.data == other.data
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.cycle}, {self.kind!r}, {self.data!r})"


class InMemorySink:
    """Buffers every event as an :class:`Event`; consumed by tests and
    the analysis/report modules."""

    def __init__(self):
        self.events: List[Event] = []

    def on_event(self, cycle: int, kind: str, data: Dict) -> None:
        self.events.append(Event(cycle, kind, data))

    def close(self) -> None:
        """Nothing to flush; kept for sink-protocol uniformity."""

    # -- query helpers ---------------------------------------------------

    def by_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)
