"""Event sinks: JSONL export and Chrome-trace (Perfetto) timelines.

The in-memory sink lives in :mod:`repro.obs.events`; this module holds
the file-producing sinks:

* :class:`JSONLSink` -- one JSON object per line, schema-checked by
  :func:`repro.obs.schema.validate_jsonl`; the stable machine-readable
  export.
* :class:`ChromeTraceSink` -- the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: bank service
  operations become duration slices on one track per bank, delivered
  packets become slices on one track per packet class, and scheduler
  skips become slices on a scheduler track.  One simulated cycle maps
  to one microsecond of trace time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.events import (
    EV_BANK_END, EV_BANK_START, EV_PKT_DELIVER, EV_SCHED_SKIP,
)


class JSONLSink:
    """Streams events to ``path`` as JSON Lines."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="ascii")
        self.events_written = 0

    def on_event(self, cycle: int, kind: str, data: Dict) -> None:
        row = {"cycle": cycle, "kind": kind}
        row.update(data)
        self._fh.write(json.dumps(row, sort_keys=True))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


#: Synthetic process ids for the Chrome-trace tracks.
_PID_PACKETS = 1
_PID_BANKS = 2
_PID_SCHED = 3


class ChromeTraceSink:
    """Builds a Trace Event Format document from the event stream.

    Only timeline-shaped events are materialised (delivered packets,
    completed bank operations, scheduler skips); counter-shaped events
    are better served by the JSONL export and the epoch sampler.
    """

    def __init__(self, clock_label: str = "cycles"):
        self.clock_label = clock_label
        self._events: List[Dict] = []
        #: bank -> (service_start_cycle, op kind) for the open slice
        self._open_banks: Dict[int, tuple] = {}
        self._class_tracks: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def on_event(self, cycle: int, kind: str, data: Dict) -> None:
        if kind is EV_PKT_DELIVER or kind == EV_PKT_DELIVER:
            self._on_deliver(cycle, data)
        elif kind == EV_BANK_START:
            self._open_banks[data["bank"]] = (cycle, data["op"])
        elif kind == EV_BANK_END:
            self._on_bank_end(cycle, data)
        elif kind == EV_SCHED_SKIP:
            self._events.append({
                "name": "skip",
                "ph": "X",
                "pid": _PID_SCHED,
                "tid": 0,
                "ts": data["start"],
                "dur": data["span"],
                "args": {"span": data["span"]},
            })

    def _on_deliver(self, cycle: int, data: Dict) -> None:
        klass = data["klass"]
        tid = self._class_tracks.setdefault(klass, len(self._class_tracks))
        inject = data["inject_cycle"]
        self._events.append({
            "name": f"{klass} {data['src']}->{data['dst']}",
            "ph": "X",
            "pid": _PID_PACKETS,
            "tid": tid,
            "ts": inject,
            "dur": max(1, cycle - inject),
            "args": {
                "pid": data["pid"],
                "bank": data.get("bank"),
                "hops": data.get("hops"),
                "delayed_cycles": data.get("delayed_cycles"),
            },
        })

    def _on_bank_end(self, cycle: int, data: Dict) -> None:
        bank = data["bank"]
        opened = self._open_banks.pop(bank, None)
        if opened is None:
            return  # end without a recorded start (trace began mid-op)
        start, op = opened
        self._events.append({
            "name": op,
            "ph": "X",
            "pid": _PID_BANKS,
            "tid": bank,
            "ts": start,
            "dur": max(1, cycle - start),
            "args": {"bank": bank, "op": op, "preempted":
                     bool(data.get("preempted", False))},
        })

    # ------------------------------------------------------------------

    def document(self) -> Dict:
        """The complete Trace Event Format document."""
        meta: List[Dict] = [
            self._process_name(_PID_PACKETS, "packets"),
            self._process_name(_PID_BANKS, "banks"),
            self._process_name(_PID_SCHED, "scheduler"),
        ]
        for klass, tid in sorted(self._class_tracks.items(),
                                 key=lambda kv: kv[1]):
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_PACKETS,
                "tid": tid,
                "args": {"name": klass},
            })
        return {
            "traceEvents": meta + self._events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": self.clock_label,
                          "note": "1 trace us == 1 simulated cycle"},
        }

    @staticmethod
    def _process_name(pid: int, name: str) -> Dict:
        return {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as fh:
            json.dump(self.document(), fh)
            fh.write("\n")

    def close(self) -> None:
        """Nothing held open; files are written explicitly."""

    def __len__(self) -> int:
        return len(self._events)
