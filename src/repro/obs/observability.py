"""The observability session: wiring, dispatch and live aggregation.

One :class:`Observability` instance represents one *enabled* tracing /
metrics session over one :class:`~repro.sim.simulator.CMPSimulator`.
Attaching installs the ``emit`` callable as the ``trace`` attribute of
every instrumented component (network, banks, arbiter, estimator) and
hooks the simulator's per-executed-cycle and measurement-boundary
callbacks.  Detached simulators keep ``trace = None`` everywhere and pay
only the ``is None`` guard at each emission site.

Responsibilities:

* fan every event out to the registered sinks (JSONL, Chrome trace,
  in-memory),
* keep the :class:`~repro.obs.metrics.MetricsRegistry` live (packet
  counters, per-class latency histograms, bank/arbiter/estimator
  counters),
* account per-region TSB link flits (consumed by the epoch sampler),
* drive the :class:`~repro.obs.sampler.EpochSampler`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    EV_ARB_REORDER, EV_BANK_START, EV_EST_PREDICT, EV_EST_UPDATE,
    EV_FAULT_BANK, EV_FAULT_CRC, EV_FAULT_REDIRECT, EV_FAULT_RETRANSMIT,
    EV_FAULT_TSB, EV_GUARD_DEADLOCK, EV_GUARD_VIOLATION, EV_PKT_DELIVER,
    EV_PKT_FORWARD, EV_PKT_INJECT, EV_SCHED_EXEC, EV_SCHED_SKIP,
    EV_TSB_COMBINE,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import EpochSampler


class Observability:
    """One tracing + metrics + sampling session.

    Args:
        epoch: Sampling period of the epoch sampler, in cycles.
        sample: Disable the epoch sampler entirely when False (pure
            event tracing, slightly cheaper).
    """

    def __init__(self, epoch: int = 256, sample: bool = True):
        self.registry = MetricsRegistry()
        self.sampler: Optional[EpochSampler] = (
            EpochSampler(epoch) if sample else None
        )
        self.sinks: List = []
        #: region index -> cumulative flits carried by that region's TSB
        self.tsb_flits: Dict[int, int] = {}
        self._tsb_port_region: Dict[Tuple[int, int], int] = {}
        self._sim = None
        self._handlers = {
            EV_PKT_INJECT: self._on_inject,
            EV_PKT_FORWARD: self._on_forward,
            EV_PKT_DELIVER: self._on_deliver,
            EV_BANK_START: self._on_bank_start,
            EV_EST_PREDICT: self._on_est_predict,
            EV_EST_UPDATE: self._on_est_update,
            EV_ARB_REORDER: self._on_reorder,
            EV_TSB_COMBINE: self._on_combine,
            EV_SCHED_SKIP: self._on_sched_skip,
            EV_FAULT_CRC: self._on_fault_crc,
            EV_FAULT_RETRANSMIT: self._on_fault_retransmit,
            EV_FAULT_TSB: self._on_fault_tsb,
            EV_FAULT_BANK: self._on_fault_bank,
            EV_FAULT_REDIRECT: self._on_fault_redirect,
            EV_GUARD_VIOLATION: self._on_guard_violation,
            EV_GUARD_DEADLOCK: self._on_guard_deadlock,
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, sim) -> None:
        """Install this session on a simulator (one session per sim)."""
        if self._sim is not None:
            raise RuntimeError("Observability session already attached")
        self._sim = sim
        sim._obs = self
        sim.network.trace = self.emit
        sim.arbiter.trace = self.emit
        if sim.estimator is not None:
            sim.estimator.trace = self.emit
        for bank in sim.banks:
            bank.trace = self.emit
        if sim.region_map is not None:
            from repro.noc.topology import DOWN

            for region in sim.region_map.regions:
                self._tsb_port_region[(region.tsb_core_node, DOWN)] = \
                    region.index
                self.tsb_flits.setdefault(region.index, 0)
        if self.sampler is not None:
            self.sampler.bind(sim, self)

    def detach(self) -> None:
        """Remove every trace hook; the simulator runs dark again."""
        sim = self._sim
        if sim is None:
            return
        sim.network.trace = None
        sim.arbiter.trace = None
        if sim.estimator is not None:
            sim.estimator.trace = None
        for bank in sim.banks:
            bank.trace = None
        sim._obs = None
        self._sim = None

    def add_sink(self, sink) -> "Observability":
        self.sinks.append(sink)
        return self

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def emit(self, cycle: int, kind: str, data: Dict) -> None:
        handler = self._handlers.get(kind)
        if handler is not None:
            handler(data)
        for sink in self.sinks:
            sink.on_event(cycle, kind, data)

    # -- internal aggregation handlers ----------------------------------

    def _on_inject(self, data: Dict) -> None:
        self.registry.counter("net.injected").inc()

    def _on_forward(self, data: Dict) -> None:
        self.registry.counter("net.forwards").inc()
        region = self._tsb_port_region.get((data["node"], data["port"]))
        if region is not None:
            self.tsb_flits[region] += data["flits"]

    def _on_deliver(self, data: Dict) -> None:
        self.registry.counter("net.delivered").inc()
        latency = data["latency"]
        self.registry.histogram("net.latency").observe(latency)
        self.registry.histogram(
            f"net.latency.{data['klass']}").observe(latency)

    def _on_bank_start(self, data: Dict) -> None:
        self.registry.counter("bank.ops").inc()
        self.registry.counter(f"bank.ops.{data['op']}").inc()
        self.registry.histogram("bank.service").observe(data["service"])
        self.registry.histogram(
            "bank.queue_depth").observe(data["queue_depth"])

    def _on_est_predict(self, data: Dict) -> None:
        self.registry.counter("est.predictions").inc()
        if data["predicted_busy"]:
            self.registry.counter("est.predicted_busy").inc()
        self.registry.histogram("est.estimate").observe(data["estimate"])

    def _on_est_update(self, data: Dict) -> None:
        self.registry.counter("est.updates").inc()

    def _on_reorder(self, data: Dict) -> None:
        self.registry.counter("arb.reorders").inc()
        self.registry.counter("arb.delayed").inc(data["delayed"])

    def _on_combine(self, data: Dict) -> None:
        self.registry.counter("tsb.combines").inc()

    def _on_sched_skip(self, data: Dict) -> None:
        self.registry.counter("sched.skipped_cycles").inc(data["span"])

    def _on_fault_crc(self, data: Dict) -> None:
        self.registry.counter("fault.crc_detected").inc()

    def _on_fault_retransmit(self, data: Dict) -> None:
        self.registry.counter("fault.retransmits").inc()
        self.registry.histogram("fault.backoff").observe(data["backoff"])

    def _on_fault_tsb(self, data: Dict) -> None:
        self.registry.counter("fault.tsb_failures").inc()
        self.registry.counter("fault.packets_rerouted").inc(
            data["rerouted"])

    def _on_fault_bank(self, data: Dict) -> None:
        self.registry.counter("fault.bank_port_failures").inc()

    def _on_fault_redirect(self, data: Dict) -> None:
        self.registry.counter("fault.bank_redirects").inc()
        self.registry.histogram(
            "fault.redirect_wait").observe(data["waited"])

    def _on_guard_violation(self, data: Dict) -> None:
        self.registry.counter("guard.violations").inc()

    def _on_guard_deadlock(self, data: Dict) -> None:
        self.registry.counter("guard.deadlocks").inc()

    # ------------------------------------------------------------------
    # Simulator lifecycle hooks
    # ------------------------------------------------------------------

    def on_cycle(self, now: int) -> None:
        """One executed cycle under the *dense* scheduler."""
        if self.sampler is not None:
            self.sampler.on_cycle(now)

    def on_executed_cycle(self, now: int) -> None:
        """One executed cycle under the *event* scheduler."""
        if self.sampler is not None:
            self.sampler.on_cycle(now)
        self.registry.counter("sched.executed_cycles").inc()
        if self.sinks:
            self.emit(now, EV_SCHED_EXEC, {})

    def on_measurement_start(self, sim) -> None:
        """Measurement stats were reset; re-baseline the sampler."""
        if self.sampler is not None:
            self.sampler.reset(sim.cycle)

    def on_run_end(self, sim) -> None:
        """A run() window completed; close the sampler's last epoch."""
        if self.sampler is not None:
            self.sampler.final_sample(sim.cycle)

    # ------------------------------------------------------------------

    @property
    def samples(self):
        """The epoch sampler's time-series (empty when sampling is off)."""
        return [] if self.sampler is None else self.sampler.samples
