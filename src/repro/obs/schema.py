"""Event schema: the authoritative field contract per event kind.

Every event emitted through the bus must carry exactly the fields its
kind declares here (plus the envelope's ``cycle`` and ``kind``).  The
schema is enforced three ways:

* unit tests validate every event of an instrumented run,
* ``repro.cli trace --validate`` re-reads the JSONL it wrote and fails
  on any violation (the CI trace-smoke job runs this), and
* downstream consumers (the Chrome exporter, the report renderer) may
  rely on declared fields existing without defensive ``get`` chains.

Types are given as Python type tuples; ``NoneType`` membership marks a
nullable field.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.events import (
    ALL_KINDS, EV_ARB_REORDER, EV_BANK_END, EV_BANK_START, EV_EST_PREDICT,
    EV_EST_UPDATE, EV_FAULT_BANK, EV_FAULT_CRC, EV_FAULT_REDIRECT,
    EV_FAULT_RETRANSMIT, EV_FAULT_TSB, EV_GUARD_DEADLOCK,
    EV_GUARD_VIOLATION, EV_PKT_DELIVER, EV_PKT_FORWARD, EV_PKT_INJECT,
    EV_SCHED_EXEC, EV_SCHED_SKIP, EV_TSB_COMBINE,
)

_NONE = type(None)

#: kind -> {field: allowed types}
EVENT_SCHEMA: Dict[str, Dict[str, Tuple[type, ...]]] = {
    EV_PKT_INJECT: {
        "pid": (int,),
        "klass": (str,),
        "src": (int,),
        "dst": (int,),
        "flits": (int,),
        "is_write": (bool,),
        "bank": (int, _NONE),
    },
    EV_PKT_FORWARD: {
        "pid": (int,),
        "klass": (str,),
        "node": (int,),
        "port": (int,),
        "flits": (int,),
        "bank": (int, _NONE),
    },
    EV_PKT_DELIVER: {
        "pid": (int,),
        "klass": (str,),
        "src": (int,),
        "dst": (int,),
        "bank": (int, _NONE),
        "inject_cycle": (int,),
        "latency": (int,),
        "hops": (int,),
        "delayed_cycles": (int,),
    },
    EV_BANK_START: {
        "bank": (int,),
        "op": (str,),
        "service": (int,),
        "queue_depth": (int,),
    },
    EV_BANK_END: {
        "bank": (int,),
        "op": (str,),
        "preempted": (bool,),
    },
    EV_EST_PREDICT: {
        "node": (int,),
        "bank": (int,),
        "estimate": (int,),
        "arrival": (int,),
        "predicted_busy": (bool,),
    },
    EV_EST_UPDATE: {
        "node": (int,),
        "bank": (int,),
        "estimate": (int,),
        "elapsed": (int,),
    },
    EV_ARB_REORDER: {
        "node": (int,),
        "port": (int,),
        "delayed": (int,),
        "granted_pid": (int,),
    },
    EV_TSB_COMBINE: {
        "node": (int,),
        "port": (int,),
        "pid": (int,),
    },
    EV_SCHED_EXEC: {},
    EV_SCHED_SKIP: {
        "start": (int,),
        "span": (int,),
    },
    EV_FAULT_CRC: {
        "pid": (int,),
        "node": (int,),
        "port": (int,),
        "attempt": (int,),
        "syndrome": (int,),
    },
    EV_FAULT_RETRANSMIT: {
        "pid": (int,),
        "src": (int,),
        "attempt": (int,),
        "backoff": (int,),
        "ready_at": (int,),
    },
    EV_FAULT_TSB: {
        "region": (int,),
        "to_region": (int,),
        "rerouted": (int,),
    },
    EV_FAULT_BANK: {
        "bank": (int,),
        "until": (int,),
    },
    EV_FAULT_REDIRECT: {
        "bank": (int,),
        "op": (str,),
        "waited": (int,),
    },
    EV_GUARD_VIOLATION: {
        "check": (str,),
        "detail": (str,),
    },
    EV_GUARD_DEADLOCK: {
        "since": (int,),
        "window": (int,),
        "resident": (int,),
        "queued": (int,),
    },
}

assert set(EVENT_SCHEMA) == set(ALL_KINDS)

#: Envelope fields present on every JSONL row.
ENVELOPE = {"cycle": (int,), "kind": (str,)}


def validate_event(row: Dict) -> List[str]:
    """Schema violations of one event row (empty list when valid).

    ``row`` is the JSONL form: envelope fields plus the kind's payload.
    """
    errors: List[str] = []
    for name, types in ENVELOPE.items():
        if name not in row:
            return [f"missing envelope field {name!r}"]
        if not isinstance(row[name], types) or isinstance(row[name], bool):
            errors.append(f"envelope field {name!r} has wrong type")
    kind = row.get("kind")
    fields = EVENT_SCHEMA.get(kind)
    if fields is None:
        return errors + [f"unknown event kind {kind!r}"]
    payload = {k: v for k, v in row.items() if k not in ENVELOPE}
    for name, types in fields.items():
        if name not in payload:
            errors.append(f"{kind}: missing field {name!r}")
            continue
        value = payload.pop(name)
        # bool is an int subclass: only accept it where declared.
        if isinstance(value, bool) and bool not in types:
            errors.append(f"{kind}: field {name!r} must not be bool")
        elif not isinstance(value, types):
            errors.append(
                f"{kind}: field {name!r} is {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    for name in payload:
        errors.append(f"{kind}: undeclared field {name!r}")
    return errors


def validate_jsonl(path: str, max_errors: int = 20) -> Tuple[int, List[str]]:
    """Validate a JSONL event log; returns (rows checked, errors).

    Stops accumulating after ``max_errors`` messages so a systematically
    broken file does not produce megabytes of diagnostics.
    """
    errors: List[str] = []
    rows = 0
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            rows += 1
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
            else:
                errors.extend(
                    f"line {lineno}: {msg}" for msg in validate_event(row)
                )
            if len(errors) >= max_errors:
                errors.append("... (further errors suppressed)")
                break
    return rows, errors
