"""Human-readable reports over traces, metrics and epoch samples.

Renders the observability session's accumulated state as aligned text
tables (estimator accuracy, latency percentiles, per-bank busy heatmap,
epoch time-series).  Consumed by ``repro.cli report`` and the examples.

All imports of :mod:`repro.analysis` are local to the formatting
functions: :mod:`repro.sim.results` imports :mod:`repro.obs.accuracy`,
so a top-level import here would close an import cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Ten-step density ramp used for the busy-fraction heatmap.
_SHADES = " .:-=+*#%@"


def shade(fraction: float) -> str:
    """One heatmap character for a utilisation fraction in [0, 1]."""
    idx = int(fraction * (len(_SHADES) - 1) + 0.5)
    return _SHADES[max(0, min(idx, len(_SHADES) - 1))]


def format_accuracy_table(summaries: Sequence[Dict]) -> str:
    """Table of per-estimator prediction outcomes.

    ``summaries`` holds :meth:`AccuracySummary.as_dict` rows (one per
    estimator/run being compared).
    """
    from repro.analysis.tables import format_table

    rows = [
        [
            s["estimator"].upper(),
            s["samples"],
            s["correct"],
            s["over_predictions"],
            s["under_predictions"],
            100.0 * s["accuracy"],
        ]
        for s in summaries
    ]
    return format_table(
        ["estimator", "samples", "correct", "over", "under", "accuracy %"],
        rows,
        title="Busy-prediction accuracy (predicted vs actual bank state)",
        float_format="{:.1f}",
    )


def format_latency_percentiles(stats_dict: Dict) -> str:
    """Latency summary line from a ``NetworkStats.as_dict()`` payload."""
    return (
        "packet latency: mean {mean:.2f}  p50 {p50:.0f}  "
        "p95 {p95:.0f}  p99 {p99:.0f} cycles ({n} delivered)".format(
            mean=stats_dict.get("avg_latency", 0.0),
            p50=stats_dict.get("latency_p50", 0.0),
            p95=stats_dict.get("latency_p95", 0.0),
            p99=stats_dict.get("latency_p99", 0.0),
            n=stats_dict.get("total_delivered", 0),
        )
    )


def format_bank_heatmap(busy_frac: Sequence[float], mesh_width: int,
                        title: str = "Bank busy fraction") -> str:
    """ASCII heatmap of per-bank busy fractions over the mesh grid.

    One character per bank, laid out row-major exactly like the cache
    layer of the mesh, so hot regions are visually adjacent.
    """
    lines = [f"{title} (scale '{_SHADES}' = 0..1):"]
    for y in range(0, len(busy_frac), mesh_width):
        row = busy_frac[y:y + mesh_width]
        lines.append("  " + " ".join(shade(f) for f in row))
    peak = max(busy_frac, default=0.0)
    mean = sum(busy_frac) / len(busy_frac) if busy_frac else 0.0
    lines.append(f"  mean {mean:.3f}  peak {peak:.3f}")
    return "\n".join(lines)


def format_epoch_table(samples: Sequence, max_rows: int = 20) -> str:
    """Epoch time-series: one row per sample (tail-truncated evenly).

    ``samples`` holds :class:`~repro.obs.sampler.EpochSample` objects.
    """
    from repro.analysis.tables import format_table

    picked = list(samples)
    if len(picked) > max_rows:
        step = len(picked) / max_rows
        picked = [picked[int(i * step)] for i in range(max_rows - 1)]
        picked.append(samples[-1])

    rows: List[List] = []
    for s in picked:
        occ = s.router_occupancy
        busy = s.bank_busy_frac
        tsb = s.tsb_flits_per_cycle
        acc = s.estimator_accuracy
        rows.append([
            s.cycle,
            s.span,
            s.injected,
            s.delivered,
            sum(occ),
            (sum(busy) / len(busy)) if busy else 0.0,
            (sum(tsb) / len(tsb)) if tsb else 0.0,
            100.0 * acc["accuracy"] if acc else 0.0,
        ])
    return format_table(
        ["cycle", "span", "inj", "dlv", "net flits",
         "bank busy", "tsb f/cyc", "est acc %"],
        rows,
        title="Epoch samples",
        float_format="{:.3f}",
    )


def format_metrics(registry) -> str:
    """Flat listing of every metric in the registry."""
    lines = ["metrics:"]
    for name, payload in registry.as_dict().items():
        kind = payload.pop("type")
        detail = "  ".join(
            f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in payload.items()
        )
        lines.append(f"  {name:<28} {kind:<9} {detail}")
    return "\n".join(lines)


def render_report(result_dict: Dict, obs, mesh_width: int) -> str:
    """The full ``repro.cli report`` body for one instrumented run.

    ``result_dict`` is a ``SimulationResult.to_dict()`` payload.
    """
    sections: List[str] = [
        "packet latency: mean {mean:.2f}  p50 {p50:.0f}  p95 {p95:.0f}  "
        "p99 {p99:.0f} cycles ({n} delivered)".format(
            mean=result_dict.get("avg_packet_latency", 0.0),
            p50=result_dict.get("latency_p50", 0.0),
            p95=result_dict.get("latency_p95", 0.0),
            p99=result_dict.get("latency_p99", 0.0),
            n=result_dict.get("packets_delivered", 0),
        )
    ]
    acc = result_dict.get("estimator_accuracy")
    if acc:
        sections.append(format_accuracy_table([acc]))
    samples = obs.samples
    if samples:
        last = samples[-1]
        sections.append(format_bank_heatmap(last.bank_busy_frac, mesh_width))
        sections.append(format_epoch_table(samples))
    sections.append(format_metrics(obs.registry))
    return "\n\n".join(sections)
