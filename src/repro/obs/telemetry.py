"""Sweep-scoped telemetry plane: cross-worker spans and merged metrics.

``repro.obs`` (events, metrics, sampler) sees *inside one simulation*;
this module observes the orchestration layers above it -- the sweep
engine, the process pool and the execution backends -- and answers the
questions the per-simulation stream cannot: where did a sweep spend its
wall time, which worker is the straggler, how much of a lane group went
to tape building versus lockstep execution.

Three cooperating pieces:

* :class:`SpanRecorder` -- a flat list of named wall-clock spans
  recorded against :func:`time.monotonic` (``CLOCK_MONOTONIC`` is
  system-wide on the supported platforms, so spans recorded in worker
  processes land on the same timeline as the parent's).
* :class:`WorkerTelemetry` -- the in-worker bundle: one recorder plus
  one fresh per-chunk :class:`~repro.obs.metrics.MetricsRegistry`,
  exported as a JSON-safe payload that rides home on the existing
  chunk-result path.
* :class:`SweepTelemetry` -- the parent-side aggregator: absorbs
  worker payloads, merges metric snapshots (counters sum, histograms
  bucket-merge, gauges gain a worker label), keeps every span, and
  renders the whole sweep as one Chrome-trace document with one track
  per worker process.

Telemetry is a **pure reader**: nothing here feeds back into cache
keys, checkpoints or ``SweepResults.fingerprint`` -- the identity
matrices in ``tests/test_telemetry.py`` certify that a telemetry-on
sweep is byte-identical to a telemetry-off one.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Span names the sweep engine and backends emit.  Documented here (and
#: in DESIGN.md) so trace consumers can rely on the taxonomy:
#:
#: parent side --
#:   ``sweep.run``        whole ``run_points`` invocation
#:   ``sweep.plan``       cache scan + lane packing
#:   ``sweep.dispatch``   pool fan-out / serial execution window
#:   ``point.cache_write``  one cache store
#: worker side --
#:   ``chunk.queue_wait`` submit-to-start wait of one chunk
#:   ``chunk.run``        whole chunk in the worker
#:   ``engine.setup``     config + workload + simulator construction
#:   ``engine.simulate``  the measured simulation itself
#: batch backend --
#:   ``batch.lane_build`` lane construction incl. tape building
#:   ``batch.warmup`` / ``batch.measure``  lockstep phases
#:   ``batch.collect``    per-lane result collection
#:   ``batch.gc_reenable``  deferred collection when the group ends
#:   ``batch.scalar_fallback``  a point the packer sent to the scalar path
#:   ``batch.kernel_step``  one lockstep slice of a kernel-attached lane
#:   ``batch.scalar_sync``  one scalar-machine slice of a diverged lane
#:   ``batch.bank_kernel``  group attach: bank-seam wiring (hooks + SoA)
#:   ``batch.core_kernel``  group attach: core/scheduler-seam wiring
SPAN_NAMES: Tuple[str, ...] = (
    "sweep.run", "sweep.plan", "sweep.dispatch", "point.cache_write",
    "chunk.queue_wait", "chunk.run", "engine.setup", "engine.simulate",
    "batch.lane_build", "batch.warmup", "batch.measure", "batch.collect",
    "batch.gc_reenable", "batch.scalar_fallback",
    "batch.kernel_step", "batch.scalar_sync",
    "batch.bank_kernel", "batch.core_kernel",
)


class SpanRecorder:
    """Flat recorder of ``(name, ts, dur, args)`` wall-clock spans.

    Timestamps are raw :func:`time.monotonic` seconds; rebasing onto a
    sweep-relative timeline is the aggregator's job, so one recorder
    can run in any process without knowing the sweep start.
    """

    __slots__ = ("worker", "spans")

    def __init__(self, worker: Optional[int] = None):
        self.worker = worker if worker is not None else os.getpid()
        self.spans: List[Dict] = []

    def add(self, name: str, start: float, dur: float, **args) -> None:
        span = {"name": name, "ts": start, "dur": max(0.0, dur),
                "worker": self.worker}
        if args:
            span["args"] = args
        self.spans.append(span)

    def instant(self, name: str, **args) -> None:
        self.add(name, time.monotonic(), 0.0, **args)

    @contextmanager
    def span(self, name: str, **args):
        t0 = time.monotonic()
        try:
            yield
        finally:
            self.add(name, t0, time.monotonic() - t0, **args)

    def export(self) -> List[Dict]:
        return list(self.spans)

    def __len__(self) -> int:
        return len(self.spans)


def rollup_spans(spans: List[Dict]) -> Dict[str, Dict]:
    """Aggregate spans by name: count and summed duration (seconds)."""
    out: Dict[str, Dict] = {}
    for span in spans:
        row = out.setdefault(span["name"], {"count": 0, "total_s": 0.0})
        row["count"] += 1
        row["total_s"] += span["dur"]
    for row in out.values():
        row["total_s"] = round(row["total_s"], 6)
    return {name: out[name] for name in sorted(out)}


class WorkerTelemetry:
    """In-worker telemetry bundle for one chunk of sweep points.

    A fresh instance is created per chunk call, so the exported metric
    snapshot is a *delta* -- the parent can sum snapshots across chunks
    without double counting, whatever worker a chunk landed on.
    ``submit_ts`` is the parent's monotonic timestamp at submission;
    the difference to the chunk's start is the queue-wait span.
    """

    def __init__(self, submit_ts: Optional[float] = None):
        self.pid = os.getpid()
        self.recorder = SpanRecorder(worker=self.pid)
        self.registry = MetricsRegistry()
        now = time.monotonic()
        if submit_ts is not None:
            # Clamp: clocks agree across processes on one host, but a
            # fork that wins the race could start marginally "early".
            self.recorder.add("chunk.queue_wait", min(submit_ts, now),
                              max(0.0, now - submit_ts))

    def point_done(self, wall_ms: float) -> None:
        self.registry.counter("worker.points").inc()
        self.registry.histogram("worker.point_ms").observe(int(wall_ms))
        self.registry.gauge("worker.last_point_ms").set(round(wall_ms, 3))

    def export(self) -> Dict:
        self.registry.counter("worker.chunks").inc()
        return {
            "pid": self.pid,
            "spans": self.recorder.export(),
            "metrics": self.registry.snapshot(),
        }


class SweepTelemetry:
    """Parent-side aggregator of one sweep's telemetry.

    Created by the caller (or ``repro.cli sweep --telemetry``) and
    passed into ``run_points``/``run_sweep``; afterwards it holds the
    merged registry, the full cross-process span list and everything
    needed to render a Chrome trace or a ledger record.
    """

    def __init__(self):
        self.t0 = time.monotonic()
        self.parent_pid = os.getpid()
        self.recorder = SpanRecorder(worker=self.parent_pid)
        #: sweep-wide merged registry (counters summed, histograms
        #: bucket-merged, worker gauges labeled per pid)
        self.registry = MetricsRegistry()
        self.worker_pids: List[int] = []
        self._worker_spans: List[Dict] = []
        #: optional live renderer (see :mod:`repro.obs.progress`)
        self.progress = None
        #: per-point completion counters driving the progress stream
        self.points_total = 0
        self.points_done = 0
        self.sources: Dict[str, int] = {"sim": 0, "hit": 0, "resumed": 0}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def begin(self, points_total: int, workers: int) -> None:
        self.points_total = points_total
        if self.progress is not None:
            self.progress.begin(points_total, workers)

    def absorb(self, payload: Optional[Dict]) -> None:
        """Fold one worker chunk's exported telemetry into the sweep."""
        if not payload:
            return
        pid = payload.get("pid")
        if pid is not None and pid not in self.worker_pids:
            self.worker_pids.append(pid)
        self._worker_spans.extend(payload.get("spans", ()))
        metrics = payload.get("metrics")
        if metrics:
            self.registry.merge_snapshot(metrics, worker=f"w{pid}")

    def point_done(self, label: str, source: str, wall_ms: float = 0.0,
                   worker: Optional[int] = None) -> None:
        """One grid point finished (``source`` in sim/hit/resumed)."""
        self.points_done += 1
        self.sources[source] = self.sources.get(source, 0) + 1
        if self.progress is not None:
            self.progress.on_point(label=label, source=source,
                                   wall_ms=wall_ms, worker=worker,
                                   done=self.points_done,
                                   total=self.points_total)

    def finish(self) -> None:
        if self.progress is not None:
            self.progress.close()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def spans(self) -> List[Dict]:
        """Every span, parent and workers, in recorded order."""
        return self.recorder.export() + list(self._worker_spans)

    def rollups(self) -> Dict[str, Dict]:
        return rollup_spans(self.spans())

    def workers(self) -> List[int]:
        return sorted(self.worker_pids)

    def as_meta(self) -> Dict:
        """The ``SweepResults.meta['telemetry']`` payload.

        Informational only -- ``meta`` is never hashed into the sweep
        fingerprint or any cache key.
        """
        return {
            "spans": self.rollups(),
            "workers": [f"w{pid}" for pid in self.workers()],
            "points": {
                "total": self.points_total,
                "done": self.points_done,
                **{k: v for k, v in sorted(self.sources.items())},
            },
            "metrics": self.registry.as_dict(),
        }

    # ------------------------------------------------------------------
    # Chrome trace
    # ------------------------------------------------------------------

    def chrome_document(self) -> Dict:
        """One Trace Event Format document, one track per process.

        The parent's spans land on a ``sweep parent`` track; every
        worker process gets its own track named by pid.  Timestamps are
        rebased to the sweep start (``t0``) with one microsecond of
        trace time per wall-clock microsecond.
        """
        events: List[Dict] = []
        # The parent also acts as a worker on serial and retry paths,
        # so its pid can appear in the worker set too -- dedupe, parent
        # label wins.
        pids = [self.parent_pid] + [
            pid for pid in self.workers() if pid != self.parent_pid
        ]
        for pid in pids:
            name = ("sweep parent" if pid == self.parent_pid
                    else f"worker {pid}")
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        for span in self.spans():
            ts_us = max(0.0, (span["ts"] - self.t0) * 1e6)
            event = {
                "name": span["name"],
                "ph": "X",
                "pid": span["worker"],
                "tid": 0,
                "ts": round(ts_us, 1),
                "dur": max(1, int(span["dur"] * 1e6)),
            }
            if "args" in span:
                event["args"] = span["args"]
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "monotonic-wall",
                "parent_pid": self.parent_pid,
                "workers": self.workers(),
                "note": "1 trace us == 1 wall-clock us since sweep start",
            },
        }

    def write_chrome(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as fh:
            json.dump(self.chrome_document(), fh)
            fh.write("\n")


def validate_chrome_trace(path: str) -> Tuple[int, int, List[str]]:
    """Validate a merged sweep trace file.

    Returns ``(slice_count, worker_track_count, errors)``.  Checks the
    document shape, the required fields of every duration slice, and
    that every slice's pid appears in the declared track set; the
    worker-track count excludes the parent track (the CI smoke gate
    requires >= 2 worker tracks on a 2-worker sweep).
    """
    errors: List[str] = []
    try:
        with open(path, "r", encoding="ascii") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return 0, 0, [f"unreadable trace: {exc}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return 0, 0, ["traceEvents missing or not a list"]
    other = doc.get("otherData", {})
    parent_pid = other.get("parent_pid")
    slices = 0
    pids = set()
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            errors.append(f"event {i}: unexpected phase {ph!r}")
            continue
        slices += 1
        for field in ("name", "pid", "tid", "ts", "dur"):
            if field not in event:
                errors.append(f"event {i}: missing field {field!r}")
        if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            errors.append(f"event {i}: negative duration")
        if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
            errors.append(f"event {i}: negative timestamp")
        pids.add(event.get("pid"))
    worker_tracks = len(pids - {parent_pid})
    if slices == 0:
        errors.append("trace holds no duration slices")
    return slices, worker_tracks, errors[:20]
