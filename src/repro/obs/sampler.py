"""Epoch sampler: compact time-series snapshots of live system state.

Every ``epoch`` cycles the sampler captures one :class:`EpochSample`:
per-router buffered-flit occupancy, per-bank busy fraction over the
epoch (from the ground-truth service intervals), per-region TSB link
load, cumulative estimator accuracy and packet counters.

Scheduler invariance
--------------------
The sampler is driven from *executed* cycles only.  Under the dense
scheduler that is every cycle, so samples land exactly on epoch
boundaries.  Under the event scheduler a boundary cycle may be skipped
(provably nothing happened), in which case the sample is taken at the
first executed cycle past the boundary and records its true ``cycle``
and ``span`` -- busy fractions and rates stay exact because they are
normalised by the real span, not the nominal epoch.  Samples taken at
the same cycle under both schedulers are identical; samples displaced by
cycle skipping differ only in their boundary cycle (and say so).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.accuracy import AccuracySummary


class EpochSample:
    """One snapshot; all rate fields are normalised by ``span``."""

    __slots__ = (
        "cycle", "span", "executed", "injected", "delivered",
        "router_occupancy", "bank_busy_frac", "tsb_flits_per_cycle",
        "estimator_accuracy",
    )

    def __init__(self, cycle: int, span: int, executed: int,
                 injected: int, delivered: int,
                 router_occupancy: List[int],
                 bank_busy_frac: List[float],
                 tsb_flits_per_cycle: Optional[List[float]],
                 estimator_accuracy: Optional[Dict]):
        self.cycle = cycle
        self.span = span
        self.executed = executed
        self.injected = injected
        self.delivered = delivered
        self.router_occupancy = router_occupancy
        self.bank_busy_frac = bank_busy_frac
        self.tsb_flits_per_cycle = tsb_flits_per_cycle
        self.estimator_accuracy = estimator_accuracy

    def as_dict(self) -> Dict:
        return {
            "cycle": self.cycle,
            "span": self.span,
            "executed": self.executed,
            "injected": self.injected,
            "delivered": self.delivered,
            "router_occupancy": list(self.router_occupancy),
            "bank_busy_frac": [round(f, 6) for f in self.bank_busy_frac],
            "tsb_flits_per_cycle": (
                None if self.tsb_flits_per_cycle is None
                else [round(f, 6) for f in self.tsb_flits_per_cycle]
            ),
            "estimator_accuracy": self.estimator_accuracy,
        }


class EpochSampler:
    """Samples a bound simulator every ``epoch`` cycles."""

    def __init__(self, epoch: int = 256):
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        self.epoch = epoch
        self.samples: List[EpochSample] = []
        self._sim = None
        self._obs = None
        self._last = 0
        self._next = 0
        self._executed = 0
        # Incremental cursors (reset with the measurement stats).
        self._interval_ptr: List[int] = []
        self._prediction_ptr = 0
        self._pending_predictions: List = []
        self._accuracy: Optional[AccuracySummary] = None
        self._tsb_base: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def bind(self, sim, obs) -> None:
        self._sim = sim
        self._obs = obs
        self.reset(sim.cycle)

    def reset(self, now: int) -> None:
        """Re-baseline at a measurement boundary (stats were replaced)."""
        sim = self._sim
        self.samples = []
        self._last = now
        self._next = (now // self.epoch + 1) * self.epoch
        self._executed = 0
        self._interval_ptr = [0] * len(sim.banks)
        self._prediction_ptr = 0
        self._pending_predictions = []
        if sim.estimator is not None and sim.tracker is not None:
            self._accuracy = AccuracySummary(sim.estimator.name)
        else:
            self._accuracy = None
        self._tsb_base = dict(self._obs.tsb_flits)

    # ------------------------------------------------------------------

    def on_cycle(self, now: int) -> None:
        """Called once per *executed* cycle, before components step."""
        self._executed += 1
        if now >= self._next:
            self._snapshot(now)
            self._next = (now // self.epoch + 1) * self.epoch

    def final_sample(self, now: int) -> None:
        """Force a closing sample at the end of a run."""
        if now > self._last:
            self._snapshot(now)
            self._next = (now // self.epoch + 1) * self.epoch

    # ------------------------------------------------------------------

    def _snapshot(self, now: int) -> None:
        sim = self._sim
        span = now - self._last
        net = sim.network

        occupancy = [r.queued_flits() for r in net.routers]
        busy_frac = self._bank_busy_fractions(now, span)

        tsb: Optional[List[float]] = None
        if sim.region_map is not None:
            flits = self._obs.tsb_flits
            base = self._tsb_base
            tsb = []
            for region in range(len(sim.region_map.regions)):
                total = flits.get(region, 0)
                tsb.append((total - base.get(region, 0)) / span)
                base[region] = total
        accuracy = self._resolve_accuracy(now)

        self.samples.append(EpochSample(
            cycle=now,
            span=span,
            executed=self._executed,
            injected=net.stats.total_injected,
            delivered=net.stats.total_delivered,
            router_occupancy=occupancy,
            bank_busy_frac=busy_frac,
            tsb_flits_per_cycle=tsb,
            estimator_accuracy=accuracy,
        ))
        self._last = now
        self._executed = 0

    def _bank_busy_fractions(self, now: int, span: int) -> List[float]:
        """Per-bank fraction of [last, now) spent in service.

        Walks each bank's append-only service-interval log from a saved
        cursor, so the whole run is O(total intervals), not O(samples x
        intervals).  The cursor stays on any interval still open past
        ``now`` (it may still be truncated by a read preemption, which
        can only move its end *earlier*, and never earlier than a cycle
        we already accounted for).
        """
        window = max(1, span)
        out: List[float] = []
        for b, bank in enumerate(self._sim.banks):
            intervals = bank.stats.service_intervals
            ptr = self._interval_ptr[b]
            busy = 0
            while ptr < len(intervals):
                start, end = intervals[ptr]
                lo = max(start, self._last)
                hi = min(end, now)
                if hi > lo:
                    busy += hi - lo
                if end > now:
                    break
                ptr += 1
            self._interval_ptr[b] = ptr
            out.append(busy / window)
        return out

    def _resolve_accuracy(self, now: int) -> Optional[Dict]:
        """Fold newly-resolvable predictions into the running summary.

        A prediction is resolvable once its arrival cycle has passed;
        later ones wait in a pending list.  Ground truth is read from
        the banks' service-interval logs (linear scan per bank per
        resolution is fine: arrivals lag ``now`` by tens of cycles, so
        the matching interval sits at the tail of the log).
        """
        summary = self._accuracy
        if summary is None:
            return None
        from repro.obs.accuracy import busy_at

        tracker = self._sim.tracker
        predictions = tracker.predictions
        fresh = predictions[self._prediction_ptr:]
        self._prediction_ptr = len(predictions)
        pending = self._pending_predictions + fresh
        still_pending = []
        banks = self._sim.banks
        splits: Dict[int, tuple] = {}
        for bank, arrival, predicted in pending:
            if arrival >= now:
                still_pending.append((bank, arrival, predicted))
                continue
            split = splits.get(bank)
            if split is None:
                ivals = banks[bank].stats.service_intervals
                split = ([iv[0] for iv in ivals], [iv[1] for iv in ivals])
                splits[bank] = split
            summary.add(predicted, busy_at(split[0], split[1], arrival))
        self._pending_predictions = still_pending
        return summary.as_dict()
