"""Metrics registry: counters, gauges and percentile histograms.

The simulator's per-subsystem stats objects (``NetworkStats``,
``BankStats``) stay the bit-identical source of truth for the
scheduler-equivalence contract; the registry is the *serving-stack*
view layered on top of them -- named metrics an observability session
accumulates from the event stream and exports to reports and JSON.

The histogram implementation is shared with ``NetworkStats.as_dict``:
both store exact ``value -> count`` maps (packet latencies are small
integers, so the exact form is cheaper than bucketing) and derive tail
percentiles through :func:`percentiles_from_hist`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: The default percentile set reported everywhere (p50/p95/p99).
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def percentiles_from_hist(
    hist: Mapping[int, int],
    percentiles: Iterable[float] = DEFAULT_PERCENTILES,
) -> Dict[float, float]:
    """Percentiles of an exact ``value -> count`` histogram.

    Uses the nearest-rank definition (the smallest value whose
    cumulative count reaches ``ceil(q/100 * total)``), which is exact
    for integer-valued distributions and never interpolates between
    observed values.  An empty histogram yields 0.0 for every quantile.
    """
    qs = list(percentiles)
    if not hist:
        return {q: 0.0 for q in qs}
    total = sum(hist.values())
    # ceil without floats drifting: rank q = smallest k with
    # k * 100 >= q * total.
    targets = sorted(
        (max(1, -(-int(q * total) // 100)), q) for q in qs
    )
    out: Dict[float, float] = {}
    cumulative = 0
    idx = 0
    for value in sorted(hist):
        cumulative += hist[value]
        while idx < len(targets) and cumulative >= targets[idx][0]:
            out[targets[idx][1]] = float(value)
            idx += 1
        if idx == len(targets):
            break
    # Ranks beyond the total (q > 100) clamp to the maximum.
    if idx < len(targets):
        top = float(max(hist))
        for rank, q in targets[idx:]:
            out[q] = top
    return out


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict:
        return {"type": "gauge", "value": self.value}


class LabeledGauge:
    """Instantaneous values keyed by a label dimension.

    A plain :class:`Gauge` is last-write-wins, which silently loses
    information when several writers (e.g. pool workers) share one
    merged registry.  A labeled gauge keeps one value per label, so
    ``sweep.workers.active{worker=w123}`` and ``{worker=w456}`` coexist
    instead of overwriting each other.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: Dict[str, float] = {}

    def set(self, value: float, label: str = "default") -> None:
        self.values[label] = float(value)

    def get(self, label: str = "default") -> float:
        return self.values.get(label, 0.0)

    def labels(self) -> List[str]:
        return sorted(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self) -> Dict:
        return {
            "type": "labeled_gauge",
            "values": {k: self.values[k] for k in sorted(self.values)},
        }


class Histogram:
    """Exact integer-valued distribution with tail percentiles."""

    __slots__ = ("name", "hist", "count", "total")

    def __init__(self, name: str):
        self.name = name
        self.hist: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: int, n: int = 1) -> None:
        self.hist[value] = self.hist.get(value, 0) + n
        self.count += n
        self.total += value * n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentiles_from_hist(self.hist, (q,))[q]

    def percentiles(
        self, qs: Iterable[float] = DEFAULT_PERCENTILES,
    ) -> Dict[float, float]:
        return percentiles_from_hist(self.hist, qs)

    def as_dict(self) -> Dict:
        ps = self.percentiles()
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "p50": ps[50.0],
            "p95": ps[95.0],
            "p99": ps[99.0],
            "max": float(max(self.hist)) if self.hist else 0.0,
        }


class MetricsRegistry:
    """Named metrics, created on first use.

    A name is bound to exactly one metric type for the registry's
    lifetime; asking for the same name with a different type is a
    programming error and raises.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def labeled_gauge(self, name: str) -> LabeledGauge:
        return self._get(name, LabeledGauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Dict]:
        return {
            name: self._metrics[name].as_dict() for name in self.names()
        }

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    # Serialisation and cross-registry merge (sweep telemetry)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-serialisable dump of every metric's raw state.

        Unlike :meth:`as_dict` (which renders derived views such as
        percentiles), the snapshot preserves the exact histogram
        buckets so a receiving registry can merge it losslessly with
        :meth:`merge_snapshot`.  Histogram bucket keys are stringified
        for JSON; the merge converts them back.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        labeled: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, Dict[str, int]] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, LabeledGauge):
                labeled[name] = dict(metric.values)
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            elif isinstance(metric, Histogram):
                histograms[name] = {
                    str(value): count for value, count in metric.hist.items()
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "labeled_gauges": labeled,
            "histograms": histograms,
        }

    def merge_snapshot(self, snapshot: Mapping,
                       worker: Optional[str] = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Merge semantics (the sweep-wide aggregation contract):

        * **counters** sum,
        * **histograms** bucket-merge (exact: both sides hold raw
          ``value -> count`` maps),
        * **gauges** become a :class:`LabeledGauge` entry under the
          ``worker`` label when one is given -- per-worker values
          coexist instead of overwriting each other -- and fall back to
          last-write-wins without a label,
        * **labeled gauges** merge their label maps (same-label values
          are last-write-wins).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, buckets in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            for value, count in buckets.items():
                hist.observe(int(value), count)
        for name, value in snapshot.get("gauges", {}).items():
            if worker is not None:
                self.labeled_gauge(name).set(value, label=worker)
            else:
                self.gauge(name).set(value)
        for name, values in snapshot.get("labeled_gauges", {}).items():
            gauge = self.labeled_gauge(name)
            for label, value in values.items():
                gauge.set(value, label=label)
