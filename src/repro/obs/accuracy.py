"""Estimator accuracy: predicted vs. actual bank busy windows.

The paper's mechanism stands or falls on how well a parent router's
busy-duration estimate matches reality (Sections 3.5, 4.2).  Two
always-on recordings make that measurable:

* :class:`~repro.core.busy.BankBusyTracker` logs, for every managed
  request it charges, the predicted arrival cycle and whether the bank
  was predicted busy at that arrival (``tracker.predictions``), and
* each :class:`~repro.cache.bank.BankStats` logs the ground-truth
  ``(service_start, service_end)`` interval of every bank operation
  (``stats.service_intervals``).

Both recordings happen at points that are bit-identical under the dense
and event schedulers (a forward, a bank service start), so the resolved
accuracy is scheduler-invariant.  This module joins the two streams:

* **correct**: predicted state matched the bank's actual state at the
  packet's predicted arrival cycle,
* **over-prediction**: predicted busy, bank actually idle (the arbiter
  delayed a packet for nothing),
* **under-prediction**: predicted idle, bank actually busy (the packet
  arrived to queue at the bank interface anyway).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: One prediction record: (bank, predicted arrival cycle, predicted busy).
Prediction = Tuple[int, int, bool]
#: One ground-truth service interval: [start, end) in cycles.
Interval = Tuple[int, int]


def busy_at(starts: Sequence[int], ends: Sequence[int], cycle: int) -> bool:
    """Was the bank in service at ``cycle``, given sorted intervals?

    ``starts``/``ends`` are parallel arrays of non-overlapping,
    start-sorted ``[start, end)`` service intervals (bank service is
    serial, so recording order is already sorted).
    """
    i = bisect_right(starts, cycle) - 1
    return i >= 0 and cycle < ends[i]


class AccuracySummary:
    """Aggregated prediction outcomes for one estimator."""

    __slots__ = (
        "estimator", "samples", "correct",
        "over_predictions", "under_predictions",
    )

    def __init__(self, estimator: str):
        self.estimator = estimator
        self.samples = 0
        self.correct = 0
        self.over_predictions = 0
        self.under_predictions = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.samples if self.samples else 0.0

    def add(self, predicted_busy: bool, actually_busy: bool) -> None:
        self.samples += 1
        if predicted_busy == actually_busy:
            self.correct += 1
        elif predicted_busy:
            self.over_predictions += 1
        else:
            self.under_predictions += 1

    def as_dict(self) -> Dict:
        return {
            "estimator": self.estimator,
            "samples": self.samples,
            "correct": self.correct,
            "over_predictions": self.over_predictions,
            "under_predictions": self.under_predictions,
            "accuracy": self.accuracy,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccuracySummary({self.estimator}: {self.correct}/"
            f"{self.samples}, over={self.over_predictions}, "
            f"under={self.under_predictions})"
        )


def resolve_predictions(
    predictions: Iterable[Prediction],
    intervals_by_bank: Mapping[int, Sequence[Interval]],
    estimator: str = "none",
    horizon: Optional[int] = None,
) -> AccuracySummary:
    """Join predictions against ground-truth bank service intervals.

    ``horizon`` (when given) drops predictions whose arrival cycle lies
    at or beyond it: the bank's true state there is not yet known (the
    run ended first), so counting them would bias toward "idle".
    """
    summary = AccuracySummary(estimator)
    # Split the interval lists once per bank for bisection.
    split: Dict[int, Tuple[List[int], List[int]]] = {}
    for bank, ivals in intervals_by_bank.items():
        split[bank] = (
            [iv[0] for iv in ivals], [iv[1] for iv in ivals],
        )
    empty: Tuple[List[int], List[int]] = ([], [])
    for bank, arrival, predicted in predictions:
        if horizon is not None and arrival >= horizon:
            continue
        starts, ends = split.get(bank, empty)
        summary.add(predicted, busy_at(starts, ends, arrival))
    return summary


def per_bank_busy_fraction(
    intervals_by_bank: Mapping[int, Sequence[Interval]],
    start: int,
    end: int,
) -> Dict[int, float]:
    """Fraction of ``[start, end)`` each bank spent in service."""
    span = max(1, end - start)
    out: Dict[int, float] = {}
    for bank, ivals in intervals_by_bank.items():
        busy = 0
        for s, e in ivals:
            lo = max(s, start)
            hi = min(e, end)
            if hi > lo:
                busy += hi - lo
        out[bank] = busy / span
    return out
