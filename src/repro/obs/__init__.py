"""Unified observability layer: events, metrics, sampling, sinks.

Usage::

    from repro.obs import Observability, InMemorySink

    sim = CMPSimulator(config, workload)
    obs = Observability(epoch=256)
    sink = InMemorySink()
    obs.add_sink(sink)
    obs.attach(sim)
    result = sim.run(cycles=2000, warmup=500)
    obs.on_run_end(sim)     # close the final epoch sample

Tracing is strictly opt-in: an unattached simulator holds ``trace =
None`` in every instrumented component and pays one ``is None`` test
per emission site.
"""

from repro.obs.accuracy import (
    AccuracySummary, busy_at, per_bank_busy_fraction, resolve_predictions,
)
from repro.obs.events import (
    ALL_KINDS, SCHEDULER_KINDS, Event, InMemorySink,
    EV_ARB_REORDER, EV_BANK_END, EV_BANK_START, EV_EST_PREDICT,
    EV_EST_UPDATE, EV_FAULT_BANK, EV_FAULT_CRC, EV_FAULT_REDIRECT,
    EV_FAULT_RETRANSMIT, EV_FAULT_TSB, EV_GUARD_DEADLOCK,
    EV_GUARD_VIOLATION, EV_PKT_DELIVER, EV_PKT_FORWARD, EV_PKT_INJECT,
    EV_SCHED_EXEC, EV_SCHED_SKIP, EV_TSB_COMBINE,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION, RunLedger, build_record, diff_records,
    validate_record,
)
from repro.obs.metrics import (
    DEFAULT_PERCENTILES, Counter, Gauge, Histogram, LabeledGauge,
    MetricsRegistry, percentiles_from_hist,
)
from repro.obs.observability import Observability
from repro.obs.progress import ProgressRenderer
from repro.obs.sampler import EpochSample, EpochSampler
from repro.obs.schema import EVENT_SCHEMA, validate_event, validate_jsonl
from repro.obs.sinks import ChromeTraceSink, JSONLSink
from repro.obs.telemetry import (
    SPAN_NAMES, SpanRecorder, SweepTelemetry, WorkerTelemetry,
    rollup_spans, validate_chrome_trace,
)

__all__ = [
    "AccuracySummary", "busy_at", "per_bank_busy_fraction",
    "resolve_predictions",
    "ALL_KINDS", "SCHEDULER_KINDS", "Event", "InMemorySink",
    "EV_ARB_REORDER", "EV_BANK_END", "EV_BANK_START", "EV_EST_PREDICT",
    "EV_EST_UPDATE", "EV_FAULT_BANK", "EV_FAULT_CRC", "EV_FAULT_REDIRECT",
    "EV_FAULT_RETRANSMIT", "EV_FAULT_TSB", "EV_GUARD_DEADLOCK",
    "EV_GUARD_VIOLATION", "EV_PKT_DELIVER", "EV_PKT_FORWARD",
    "EV_PKT_INJECT", "EV_SCHED_EXEC", "EV_SCHED_SKIP", "EV_TSB_COMBINE",
    "DEFAULT_PERCENTILES", "Counter", "Gauge", "Histogram",
    "LabeledGauge", "MetricsRegistry", "percentiles_from_hist",
    "Observability",
    "ProgressRenderer",
    "EpochSample", "EpochSampler",
    "EVENT_SCHEMA", "validate_event", "validate_jsonl",
    "ChromeTraceSink", "JSONLSink",
    "LEDGER_SCHEMA_VERSION", "RunLedger", "build_record", "diff_records",
    "validate_record",
    "SPAN_NAMES", "SpanRecorder", "SweepTelemetry", "WorkerTelemetry",
    "rollup_spans", "validate_chrome_trace",
]
