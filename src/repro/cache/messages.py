"""Payload types carried by network packets between endpoints."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CoherenceOp(enum.IntEnum):
    """Directory-protocol messages (two-level MESI, Table 1)."""

    INVALIDATE = 0   # home -> sharer: drop your copy
    INV_ACK = 1      # sharer -> home: dropped
    FORWARD = 2      # home -> dirty owner: send data to requester
    OWNER_DATA = 3   # owner -> requester: forwarded dirty data
    RECALL = 4       # home -> sharer: inclusive-L2 eviction recall


@dataclass(slots=True)
class Transaction:
    """One core-initiated L2 access travelling through the system."""

    core: int
    block: int
    is_store: bool
    #: "read" (demand fetch / RFO) or "writeback" (dirty L1 eviction)
    kind: str
    issue_cycle: int
    #: filled by the bank: cycle the request started bank service
    service_start: Optional[int] = None
    #: filled on completion
    complete_cycle: Optional[int] = None
    l2_hit: Optional[bool] = None
    forwarded_from_owner: bool = False


@dataclass(slots=True)
class CoherenceMsg:
    op: CoherenceOp
    block: int
    requester_core: Optional[int]
    home_bank: int
    #: whether the requester needs exclusive ownership (store)
    exclusive: bool = False
    #: for INVALIDATE/RECALL: the sharer core the message targets
    sharer: Optional[int] = None
    txn: Optional[Transaction] = None


@dataclass(slots=True)
class MemMsg:
    """L2 bank <-> memory controller message."""

    block: int
    is_write: bool
    bank: int
    #: True on the MC -> bank data-return leg
    response: bool = False
    txn: Optional[Transaction] = None


@dataclass(slots=True)
class AckMsg:
    """WB-estimator timestamp acknowledgement (child -> parent)."""

    bank: int
    timestamp: int
