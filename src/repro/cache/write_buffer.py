"""Read-preemptive SRAM write buffer (Sun et al., HPCA'09; Section 4.4).

The comparator scheme the paper evaluates against: each STT-RAM bank gets
a small (20-entry) SRAM buffer.  Writes complete into the buffer at SRAM
speed and are drained into the STT-RAM array when the bank is otherwise
idle; reads search the buffer in parallel with the array, and -- with
read-preemption enabled -- an incoming read may cancel an in-progress
drain (the write restarts later).  Every request pays a one-cycle
read/write detection overhead on the critical path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.sim.config import WriteBufferConfig


class WriteBuffer:
    """Per-bank write buffer state."""

    def __init__(self, config: WriteBufferConfig):
        self.config = config
        #: capacity, hoisted off the config: ``absorb`` is on the
        #: per-write critical path of every buffered bank.
        self._capacity = config.entries
        #: block -> pending-write marker (insertion ordered = drain order)
        self._entries: "OrderedDict[int, bool]" = OrderedDict()
        self.writes_absorbed = 0
        self.writes_stalled = 0
        self.drains_completed = 0
        self.read_hits = 0
        self.preemptions = 0
        #: block currently being drained into the array, if any
        self._draining: Optional[int] = None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries) + (1 if self._draining is not None else 0)

    @property
    def full(self) -> bool:
        return len(self) >= self._capacity

    def absorb(self, block: int) -> bool:
        """Try to complete a write into the buffer.

        Returns False when the buffer is full (the write must go straight
        to the slow array instead).
        """
        entries = self._entries
        if block in entries:
            entries.move_to_end(block)
            self.writes_absorbed += 1
            return True
        # Inline of ``self.full`` (property + __len__ dispatch costs
        # more than the test on this path).
        if len(entries) + (self._draining is not None) >= self._capacity:
            self.writes_stalled += 1
            return False
        entries[block] = True
        self.writes_absorbed += 1
        return True

    def probe(self, block: int) -> bool:
        """Read lookup (searched in parallel with the STT-RAM array)."""
        hit = block in self._entries or block == self._draining
        if hit:
            self.read_hits += 1
        return hit

    # ------------------------------------------------------------------
    # Drain management (driven by the bank controller)
    # ------------------------------------------------------------------

    def start_drain(self) -> Optional[int]:
        """Pop the oldest buffered write for draining into the array."""
        if self._draining is not None or not self._entries:
            return None
        block, _ = self._entries.popitem(last=False)
        self._draining = block
        return block

    def finish_drain(self) -> None:
        if self._draining is not None:
            self._draining = None
            self.drains_completed += 1

    def preempt_drain(self) -> Optional[int]:
        """Cancel the in-progress drain (read preemption).

        The unfinished write returns to the buffer head and will restart
        later.  Returns the preempted block, or None if nothing was
        draining or preemption is disabled.
        """
        if self._draining is None or not self.config.read_preemption:
            return None
        block = self._draining
        self._draining = None
        self._entries[block] = True
        self._entries.move_to_end(block, last=False)
        self.preemptions += 1
        return block

    @property
    def draining(self) -> Optional[int]:
        return self._draining

    def pending_drains(self) -> int:
        return len(self._entries)
