"""SRAM and STT-RAM device models (paper Table 2, 32 nm).

The paper derives these from CACTI 6.0 (SRAM) and from scaling the
Hosomi et al. 0.18um STT-RAM prototype to 32 nm with a 10 ns write-pulse
floor.  We transcribe the resulting table and expose it as first-class
model objects consumed by the timing and energy models.
"""

from __future__ import annotations

from dataclasses import dataclass

CLOCK_GHZ = 3.0
CYCLE_SECONDS = 1.0 / (CLOCK_GHZ * 1e9)


@dataclass(frozen=True)
class MemoryDevice:
    """A cache-bank memory macro.

    Attributes mirror Table 2: area, per-access read/write energy,
    leakage power at 80C, and read/write latency in nanoseconds and in
    3 GHz cycles.
    """

    name: str
    capacity_bytes: int
    area_mm2: float
    read_energy_nj: float
    write_energy_nj: float
    leakage_mw: float
    read_latency_ns: float
    write_latency_ns: float
    read_cycles: int
    write_cycles: int
    nonvolatile: bool

    @property
    def density_mb_per_mm2(self) -> float:
        return (self.capacity_bytes / (1 << 20)) / self.area_mm2

    @property
    def leakage_joules_per_cycle(self) -> float:
        return self.leakage_mw * 1e-3 * CYCLE_SECONDS

    def access_energy_joules(self, is_write: bool) -> float:
        nj = self.write_energy_nj if is_write else self.read_energy_nj
        return nj * 1e-9

    def write_read_latency_ratio(self) -> float:
        return self.write_cycles / self.read_cycles


#: 1 MB SRAM bank at 32 nm (Table 2 row 1).
SRAM_1MB = MemoryDevice(
    name="1MB SRAM",
    capacity_bytes=1 << 20,
    area_mm2=3.03,
    read_energy_nj=0.168,
    write_energy_nj=0.168,
    leakage_mw=444.6,
    read_latency_ns=0.702,
    write_latency_ns=0.702,
    read_cycles=3,
    write_cycles=3,
    nonvolatile=False,
)

#: 4 MB STT-RAM bank at 32 nm (Table 2 row 2).
STTRAM_4MB = MemoryDevice(
    name="4MB STT-RAM",
    capacity_bytes=4 << 20,
    area_mm2=3.39,
    read_energy_nj=0.278,
    write_energy_nj=0.765,
    leakage_mw=190.5,
    read_latency_ns=0.880,
    write_latency_ns=10.67,
    read_cycles=3,
    write_cycles=33,
    nonvolatile=True,
)


def device_for(cache_technology) -> MemoryDevice:
    """Map a :class:`repro.sim.config.CacheTechnology` to its device."""
    from repro.sim.config import CacheTechnology

    if cache_technology is CacheTechnology.SRAM:
        return SRAM_1MB
    return STTRAM_4MB


def comparison_table() -> list:
    """Rows of Table 2 for the device-model benchmark."""
    rows = []
    for device in (SRAM_1MB, STTRAM_4MB):
        rows.append({
            "name": device.name,
            "area_mm2": device.area_mm2,
            "read_energy_nj": device.read_energy_nj,
            "write_energy_nj": device.write_energy_nj,
            "leakage_mw": device.leakage_mw,
            "read_lat_ns": device.read_latency_ns,
            "write_lat_ns": device.write_latency_ns,
            "read_cycles": device.read_cycles,
            "write_cycles": device.write_cycles,
            "density_mb_per_mm2": round(device.density_mb_per_mm2, 3),
        })
    return rows
