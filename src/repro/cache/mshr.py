"""Miss status holding registers (MSHRs).

Tracks outstanding misses at a cache and coalesces secondary misses to a
block already being fetched (Table 1: 32 MSHRs per L1 / L2 bank).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MSHRFile:
    """A fixed-size file of miss-status holding registers."""

    def __init__(self, n_entries: int, name: str = "mshr"):
        self.n_entries = n_entries
        self.name = name
        #: block -> list of opaque waiter tokens
        self._entries: Dict[int, List] = {}
        self.allocations = 0
        self.coalesced = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.n_entries

    def outstanding(self, block: int) -> bool:
        return block in self._entries

    def allocate(self, block: int, waiter=None) -> Optional[bool]:
        """Register a miss.

        Returns True for a new (primary) miss, False when coalesced onto
        an outstanding one, and None when the file is full and the miss
        must stall.
        """
        waiters = self._entries.get(block)
        if waiters is not None:
            if waiter is not None:
                waiters.append(waiter)
            self.coalesced += 1
            return False
        if self.full:
            self.full_stalls += 1
            return None
        self._entries[block] = [waiter] if waiter is not None else []
        self.allocations += 1
        return True

    def force_allocate(self, block: int, waiter=None) -> bool:
        """Allocate ignoring the size limit (overflow modelling).

        Returns True when this created a new (primary) entry.
        """
        waiters = self._entries.get(block)
        if waiters is not None:
            if waiter is not None:
                waiters.append(waiter)
            self.coalesced += 1
            return False
        self._entries[block] = [waiter] if waiter is not None else []
        self.allocations += 1
        return True

    def complete(self, block: int) -> List:
        """Retire a miss; return the coalesced waiter tokens."""
        return self._entries.pop(block, [])

    def blocks(self):
        return self._entries.keys()
