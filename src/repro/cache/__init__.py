"""Cache hierarchy substrate: arrays, banks, coherence, memory."""

from repro.cache.arrays import CacheArray
from repro.cache.bank import BankController, BankStats
from repro.cache.coherence import Directory, DirectoryEntry
from repro.cache.device import (
    SRAM_1MB, STTRAM_4MB, MemoryDevice, comparison_table, device_for,
)
from repro.cache.memory import MemoryController, mc_for_block
from repro.cache.messages import (
    AckMsg, CoherenceMsg, CoherenceOp, MemMsg, Transaction,
)
from repro.cache.hybrid import HybridPartition
from repro.cache.mshr import MSHRFile
from repro.cache.write_buffer import WriteBuffer

__all__ = [
    "CacheArray", "BankController", "BankStats", "Directory",
    "DirectoryEntry", "MemoryDevice", "SRAM_1MB", "STTRAM_4MB",
    "device_for", "comparison_table", "MemoryController", "mc_for_block",
    "AckMsg", "CoherenceMsg", "CoherenceOp", "MemMsg", "Transaction",
    "MSHRFile", "WriteBuffer", "HybridPartition",
]
