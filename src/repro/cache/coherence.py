"""Distributed two-level MESI directory (Table 1).

Each L2 bank is the *home* of the blocks that map to it and keeps a
directory entry per cached block: the set of L1 sharers and, when some
L1 holds the block modified, the owning core.  The directory emits
coherence actions -- invalidations, forwards, recalls -- that the bank
controller turns into ``COHERENCE``-class network packets; those packets
are exactly the traffic the paper's bank-aware arbiter boosts past
requests headed to busy banks.

The protocol is intentionally weakly-ordered (invalidation acknowledg-
ements are collected but do not gate completion): the reproduced
mechanism is a *network scheduling* technique, and what matters is that
realistic coherence traffic with correct sharers flows on the NoC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cache.messages import CoherenceMsg, CoherenceOp


@dataclass
class DirectoryEntry:
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None  # core holding the block Modified

    @property
    def dirty_elsewhere(self) -> bool:
        return self.owner is not None


class Directory:
    """Directory slice for one home bank."""

    def __init__(self, bank: int):
        self.bank = bank
        self._entries: Dict[int, DirectoryEntry] = {}
        self.invalidations_sent = 0
        self.forwards_sent = 0
        self.recalls_sent = 0

    # ------------------------------------------------------------------

    def entry(self, block: int) -> Optional[DirectoryEntry]:
        return self._entries.get(block)

    def sharers_of(self, block: int) -> Set[int]:
        entry = self._entries.get(block)
        return set(entry.sharers) if entry else set()

    # ------------------------------------------------------------------

    def on_request(self, core: int, block: int,
                   exclusive: bool) -> List[CoherenceMsg]:
        """Handle a demand fetch (read or read-for-ownership).

        Returns the coherence messages the home bank must send.  The
        caller learns whether the data will be supplied by a dirty owner
        from the presence of a FORWARD message.
        """
        entry = self._entries.setdefault(block, DirectoryEntry())
        msgs: List[CoherenceMsg] = []

        if entry.owner is not None and entry.owner != core:
            # A dirty owner must supply (and, on RFO, relinquish) the data.
            previous_owner = entry.owner
            msgs.append(CoherenceMsg(
                op=CoherenceOp.FORWARD, block=block, requester_core=core,
                home_bank=self.bank, exclusive=exclusive,
                sharer=previous_owner,
            ))
            self.forwards_sent += 1
            if exclusive:
                entry.sharers = {core}
                entry.owner = core
            else:
                entry.sharers = {previous_owner, core}
                entry.owner = None
            return msgs

        if exclusive:
            for sharer in sorted(entry.sharers - {core}):
                msgs.append(CoherenceMsg(
                    op=CoherenceOp.INVALIDATE, block=block,
                    requester_core=core, home_bank=self.bank,
                    exclusive=True, sharer=sharer,
                ))
                self.invalidations_sent += 1
            entry.sharers = {core}
            entry.owner = core
        else:
            entry.sharers.add(core)
        return msgs

    def on_store_write(self, core: int, block: int) -> List[CoherenceMsg]:
        """A write-through store-miss write arrived at the home bank.

        All L1 copies (the writer holds none: write-no-allocate) become
        stale and must be invalidated.
        """
        entry = self._entries.get(block)
        if entry is None:
            return []
        msgs = []
        targets = set(entry.sharers)
        if entry.owner is not None:
            targets.add(entry.owner)
        for sharer in sorted(targets - {core}):
            msgs.append(CoherenceMsg(
                op=CoherenceOp.INVALIDATE, block=block,
                requester_core=core, home_bank=self.bank,
                exclusive=True, sharer=sharer,
            ))
            self.invalidations_sent += 1
        del self._entries[block]
        return msgs

    def on_writeback(self, core: int, block: int) -> None:
        """A dirty L1 eviction arrived at the home bank."""
        entry = self._entries.get(block)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if not entry.sharers and entry.owner is None:
            del self._entries[block]

    def on_inv_ack(self, core: int, block: int) -> None:
        """A sharer confirmed an invalidation (weakly ordered: counted
        for traffic realism, nothing gates on it)."""

    def on_l2_eviction(self, block: int) -> List[CoherenceMsg]:
        """Inclusive-L2 eviction: recall the block from all L1 sharers."""
        entry = self._entries.pop(block, None)
        if entry is None:
            return []
        msgs = []
        targets = set(entry.sharers)
        if entry.owner is not None:
            targets.add(entry.owner)
        for sharer in sorted(targets):
            msgs.append(CoherenceMsg(
                op=CoherenceOp.RECALL, block=block, requester_core=None,
                home_bank=self.bank, sharer=sharer,
            ))
            self.recalls_sent += 1
        return msgs

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Protocol invariant: an owned block has exactly one sharer set
        containing the owner."""
        for block, entry in self._entries.items():
            if entry.owner is not None:
                assert entry.owner in entry.sharers or not entry.sharers, (
                    f"bank {self.bank} block {block}: owner "
                    f"{entry.owner} missing from sharers {entry.sharers}"
                )
