"""Set-associative tag arrays with LRU replacement.

Shared by the private L1 caches and the banked shared L2.  Arrays are
addressed in *block* units: callers pass block numbers (byte address
divided by the block size) and the array handles set indexing, hit/miss
determination, fills, evictions, invalidations and dirty tracking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.errors import ConfigError


class CacheArray:
    """An LRU set-associative cache tag/state array.

    Args:
        capacity_bytes: Total data capacity.
        associativity: Ways per set.
        block_bytes: Cache-line size.
        name: For diagnostics.
        index_stride: Divisor applied to the block number before set
            indexing.  A bank of a block-interleaved shared cache only
            sees blocks with ``block % n_banks == bank``; its set index
            must therefore come from the bits *above* the bank-select
            bits (``index_stride = n_banks``) or all blocks alias into
            ``n_sets / n_banks`` sets.
    """

    def __init__(self, capacity_bytes: int, associativity: int,
                 block_bytes: int, name: str = "cache",
                 index_stride: int = 1):
        if capacity_bytes < associativity * block_bytes:
            raise ConfigError(
                f"{name}: capacity {capacity_bytes} below one set"
            )
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_blocks = capacity_bytes // block_bytes
        self.n_sets = max(1, self.n_blocks // associativity)
        self.name = name
        self.index_stride = max(1, index_stride)
        #: each set maps block -> dirty flag, in LRU order (MRU last)
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # ------------------------------------------------------------------

    def _set_of(self, block: int) -> OrderedDict:
        return self._sets[(block // self.index_stride) % self.n_sets]

    def lookup(self, block: int, touch: bool = True) -> bool:
        """Hit test; updates LRU order and hit/miss counters."""
        entry = self._set_of(block)
        if block in entry:
            self.hits += 1
            if touch:
                entry.move_to_end(block)
            return True
        self.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Presence test without statistics or LRU side effects."""
        return block in self._set_of(block)

    def is_dirty(self, block: int) -> bool:
        return self._set_of(block).get(block, False)

    def mark_dirty(self, block: int) -> None:
        entry = self._set_of(block)
        if block in entry:
            entry[block] = True
            entry.move_to_end(block)

    def mark_clean(self, block: int) -> None:
        entry = self._set_of(block)
        if block in entry:
            entry[block] = False

    def fill(self, block: int, dirty: bool = False
             ) -> Optional[Tuple[int, bool]]:
        """Insert a block; return ``(victim_block, victim_dirty)`` if an
        eviction was necessary, else None."""
        entry = self._set_of(block)
        if block in entry:
            entry[block] = entry[block] or dirty
            entry.move_to_end(block)
            return None
        victim = None
        if len(entry) >= self.associativity:
            victim_block, victim_dirty = entry.popitem(last=False)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
            victim = (victim_block, victim_dirty)
        entry[block] = dirty
        return victim

    def invalidate(self, block: int) -> Tuple[bool, bool]:
        """Remove a block; return ``(was_present, was_dirty)``."""
        entry = self._set_of(block)
        if block in entry:
            dirty = entry.pop(block)
            return True, dirty
        return False, False

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident_blocks(self):
        """Iterate over all resident block numbers (for invariants)."""
        for entry in self._sets:
            yield from entry.keys()
