"""Main memory and memory controllers (Table 1).

Four memory controllers sit at the corner nodes of the cache layer.  Each
access costs 320 cycles; a controller can issue a new DRAM access every
``issue_interval`` cycles and supports a bounded number of outstanding
requests (back-pressuring the banks' miss streams).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.cache.messages import MemMsg
from repro.noc.packet import Packet, PacketClass
from repro.noc.router import NEVER
from repro.sim.config import SystemConfig

ResponseSender = Callable[[MemMsg, int], None]


class MemoryController:
    """One corner-node DRAM channel controller."""

    def __init__(self, index: int, node: int, config: SystemConfig,
                 issue_interval: int = 4):
        self.index = index
        self.node = node
        self.latency = config.memory_latency_cycles
        self.issue_interval = issue_interval
        self.max_outstanding = config.max_outstanding_memory * 4
        #: (completion_cycle, seq, msg) — reads awaiting data return
        self._pending: List[Tuple[int, int, MemMsg]] = []
        #: FIFO of not-yet-issued requests (deque: O(1) popleft)
        self._waiting: Deque[Tuple[MemMsg, int]] = deque()
        self._next_issue = 0
        #: batch-kernel due hint (repro.engine.kernels): earliest cycle
        #: ``step`` could make progress, recomputed by the kernel after
        #: every step it executes and zeroed on arrival (and on kernel
        #: resume) -- stale-low is safe, a premature step is a no-op.
        self.kdue = 0
        self._seq = 0
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0
        self.send_response: Optional[ResponseSender] = None

    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet, now: int) -> None:
        """A MEMORY-class packet arrived from an L2 bank."""
        msg = pkt.payload
        assert pkt.klass is PacketClass.MEMORY
        self._waiting.append((msg, now))
        self.kdue = 0

    def _issue(self, msg: MemMsg, now: int) -> None:
        start = max(now, self._next_issue)
        self._next_issue = start + self.issue_interval
        if msg.is_write:
            # Writes (dirty L2 evictions) complete silently.
            self.writes += 1
            return
        self.reads += 1
        completion = start + self.latency
        self._seq += 1
        heapq.heappush(self._pending, (completion, self._seq, msg))

    def step(self, now: int) -> None:
        while (
            self._waiting
            and len(self._pending) < self.max_outstanding
            and self._next_issue <= now
        ):
            msg, _arrival = self._waiting.popleft()
            self._issue(msg, now)
        while self._pending and self._pending[0][0] <= now:
            _completion, _seq, msg = heapq.heappop(self._pending)
            if self.send_response is not None:
                self.send_response(msg, now)

    # ------------------------------------------------------------------

    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle ``step`` could make progress, barring
        new request arrivals (which re-activate the controller)."""
        nxt = NEVER
        if self._pending:
            t = self._pending[0][0]
            nxt = t if t > now else now + 1
        if self._waiting and len(self._pending) < self.max_outstanding:
            t = self._next_issue if self._next_issue > now else now + 1
            if t < nxt:
                nxt = t
        return nxt

    def outstanding(self) -> int:
        return len(self._pending) + len(self._waiting)

    def idle(self) -> bool:
        return not self._pending and not self._waiting


def place_memory_controllers(config: SystemConfig, topo) -> List[int]:
    """Corner cache-layer nodes that host the memory controllers."""
    corners = topo.corner_nodes(layer=1)
    return corners[: config.n_memory_controllers]


def mc_for_block(block: int, n_mcs: int) -> int:
    """Address-interleaved memory-controller selection."""
    return block % n_mcs if n_mcs else 0
