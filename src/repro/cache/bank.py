"""L2 bank controller.

Each cache-layer node hosts one L2 bank: a request queue fed by the
node's network interface, a single-ported SRAM or STT-RAM data array
(Table 2 service times), the block's directory slice, and optionally the
Sun et al. read-preemptive write buffer (Section 4.4 comparator).

The controller is where the paper's problem lives: a 33-cycle STT-RAM
write occupies the bank while subsequent requests queue at the bank
interface.  The proposed network schemes shift that queueing upstream
into router buffers; this model therefore measures *bank queueing
latency* (wait between arrival and service start) separately from
network latency, which is exactly the Figure 7 breakdown.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.arrays import CacheArray
from repro.cache.coherence import Directory
from repro.cache.messages import (
    CoherenceMsg, CoherenceOp, MemMsg, Transaction,
)
from repro.cache.mshr import MSHRFile
from repro.cache.write_buffer import WriteBuffer
from repro.noc.packet import Packet, PacketClass
from repro.noc.router import NEVER
from repro.obs.events import EV_BANK_END, EV_BANK_START, EV_FAULT_REDIRECT
from repro.sim.config import SystemConfig

#: send(klass, dst_node, flits, is_write, bank, payload) -> None
SendFn = Callable[..., None]


class BankStats:
    """Per-bank instrumentation."""

    __slots__ = (
        "reads", "writes", "fills", "drains", "l2_hits", "l2_misses",
        "queue_wait_sum", "queue_wait_samples", "busy_cycles",
        "max_queue_depth", "service_intervals",
    )

    def __init__(self):
        self.reads = 0
        self.writes = 0
        self.fills = 0
        self.drains = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.queue_wait_sum = 0
        self.queue_wait_samples = 0
        self.busy_cycles = 0
        self.max_queue_depth = 0
        #: Always-on ground-truth service log: one ``[start, end)``
        #: interval per bank operation, appended at service start.  A
        #: read preemption truncates the last interval's end to the
        #: preemption cycle.  This is the "actual busy" side of the
        #: estimator-accuracy analysis (repro.obs.accuracy) and the
        #: source of the epoch sampler's per-bank busy fractions.
        self.service_intervals: List[Tuple[int, int]] = []

    def record_wait(self, wait: int) -> None:
        self.queue_wait_sum += wait
        self.queue_wait_samples += 1

    def average_queue_wait(self) -> float:
        if not self.queue_wait_samples:
            return 0.0
        return self.queue_wait_sum / self.queue_wait_samples


class BankController:
    """One shared-L2 bank and its directory slice."""

    def __init__(
        self,
        bank: int,
        node: int,
        config: SystemConfig,
        send: SendFn,
        mc_node_for_block: Callable[[int], int],
        core_node_for: Callable[[int], int],
        log_accesses: bool = False,
    ):
        self.bank = bank
        self.node = node
        self.config = config
        self.send = send
        self._mc_node_for_block = mc_node_for_block
        self._core_node_for = core_node_for

        self.array = CacheArray(
            config.l2_bank_bytes, config.l2_associativity,
            config.block_bytes, name=f"L2[{bank}]",
            index_stride=config.n_banks,
        )
        self.directory = Directory(bank)
        self.mshrs = MSHRFile(32, name=f"L2MSHR[{bank}]")
        self.write_buffer: Optional[WriteBuffer] = None
        if config.write_buffer is not None:
            self.write_buffer = WriteBuffer(config.write_buffer)
        self.hybrid = None
        if config.hybrid_sram_ways > 0:
            from repro.cache.hybrid import HybridPartition
            self.hybrid = HybridPartition(config, bank)

        self.read_cycles = config.l2_read_cycles
        self.write_cycles = config.l2_write_cycles
        self._termination_rng: Optional[random.Random] = None
        if config.write_termination:
            self._termination_rng = random.Random(
                (config.seed << 8) ^ bank)
        self.termination_cycles_saved = 0

        #: queued work: (kind, payload, arrival_cycle)
        self.queue: deque = deque()
        self.queue_limit = config.bank_queue_entries
        #: kernel-mode dequeue hook (see repro.engine.kernels): invoked
        #: with ``now`` whenever the interface queue pops, because queue
        #: space is the ejection flow-control predicate and a blocked
        #: router sleeping on its wake hint must be re-armed for the
        #: cycle after space appears.  None outside kernel mode.
        self.kern_wake = None
        #: kernel-mode service-timer hook (see repro.engine.kernels):
        #: invoked with the new ``busy_until`` at every write site so
        #: the lane's ``(n_banks,)`` SoA mirror never drifts from the
        #: scalar field.  None outside kernel mode.
        self.kern_busy = None
        self.busy_until = 0
        self._current_op: Optional[Tuple] = None
        self.stats = BankStats()
        #: observability emit callable; None when tracing is detached
        self.trace = None

        # Fault model: while ``now < port_failed_until`` the array port
        # is dead.  Queued work that has waited ``port_redirect_after``
        # cycles times out and is redirected around the array (reads
        # fetch from memory, writes write through).  Both stay 0 in
        # fault-free runs, so the hot path pays one integer compare.
        self.port_failed_until = 0
        self.port_redirect_after = 0
        self.redirected_reads = 0
        self.redirected_writes = 0
        self.redirected_fills = 0

        self.log_accesses = log_accesses
        #: (cycle, is_write) service-start log for the Figure 3 analysis
        self.access_log: List[Tuple[int, bool]] = []

    # ------------------------------------------------------------------
    # Network-facing entry points
    # ------------------------------------------------------------------

    def can_accept(self, pkt: Packet) -> bool:
        """Ejection flow control: is there bank-interface queue space?

        Coherence acknowledgements carry no queue entry and are always
        accepted; requests and fills stall at the router when the finite
        interface queue is full (back-pressuring the network, which is
        what makes STT-RAM-oblivious arbitration congest the mesh).
        """
        if pkt.klass is PacketClass.COHERENCE:
            return True
        return len(self.queue) < self.queue_limit

    def on_packet(self, pkt: Packet, now: int) -> None:
        """A packet for this bank was ejected at the local NI."""
        if pkt.klass is PacketClass.REQUEST:
            txn: Transaction = pkt.payload
            kind = "read" if txn.kind == "read" else "write"
            self._enqueue(kind, txn, now)
        elif pkt.klass is PacketClass.MEMORY:
            msg: MemMsg = pkt.payload
            self._enqueue("fill", msg, now)
        elif pkt.klass is PacketClass.COHERENCE:
            msg = pkt.payload
            if msg.op is CoherenceOp.INV_ACK:
                self.directory.on_inv_ack(msg.sharer, msg.block)
        # ACK packets are consumed by the simulator's dispatch layer.

    def _enqueue(self, kind: str, payload, now: int) -> None:
        if self.log_accesses and kind in ("read", "write"):
            # Figure 3 measures the *arrival* separation of requests at
            # a bank, before any service queueing.
            self.access_log.append((now, kind == "write"))
        self.queue.append((kind, payload, now))
        depth = len(self.queue)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        # Read preemption: an arriving read may cancel an in-flight
        # write-buffer drain so the bank can serve the read immediately.
        if (
            kind == "read"
            and self.write_buffer is not None
            and self._current_op is not None
            and self._current_op[0] == "drain"
            and self.busy_until > now
        ):
            if self.write_buffer.preempt_drain() is not None:
                self.busy_until = now
                kb = self.kern_busy
                if kb is not None:
                    kb(now)
                self._current_op = None
                intervals = self.stats.service_intervals
                if intervals:
                    intervals[-1] = (intervals[-1][0], now)
                trace = self.trace
                if trace is not None:
                    trace(now, EV_BANK_END, {
                        "bank": self.bank, "op": "drain", "preempted": True,
                    })

    # ------------------------------------------------------------------
    # Simulation step
    # ------------------------------------------------------------------

    def step(self, now: int) -> None:
        if self.busy_until > now:
            return
        if self._current_op is not None:
            self._complete_op(now)
        if now < self.port_failed_until:
            self._step_port_failed(now)
            return
        queue = self.queue
        if queue:
            kind, payload, arrival = queue.popleft()
            kw = self.kern_wake
            if kw is not None:
                kw(now)
            stats = self.stats
            stats.queue_wait_sum += now - arrival
            stats.queue_wait_samples += 1
            self._start_op(kind, payload, now)
        elif self.write_buffer is not None:
            block = self.write_buffer.start_drain()
            if block is not None:
                self._current_op = ("drain", block, None)
                service = self._array_write_cycles()
                self.busy_until = now + service
                kb = self.kern_busy
                if kb is not None:
                    kb(self.busy_until)
                stats = self.stats
                stats.busy_cycles += service
                stats.service_intervals.append((now, now + service))
                trace = self.trace
                if trace is not None:
                    trace(now, EV_BANK_START, {
                        "bank": self.bank, "op": "drain",
                        "service": service,
                        "queue_depth": len(queue),
                    })

    # ------------------------------------------------------------------
    # Port-failure fault model
    # ------------------------------------------------------------------

    def fail_port(self, now: int, until: int, redirect_after: int) -> None:
        """Kill the array port until ``until`` (NEVER = permanent).

        Queued work times out after ``redirect_after`` cycles of waiting
        and is redirected around the dead array.
        """
        self.port_failed_until = until
        self.port_redirect_after = redirect_after

    def _step_port_failed(self, now: int) -> None:
        """Drain timed-out queue entries while the array port is dead.

        The array itself is unreachable (the port is the fault), so no
        lookups, fills or drains happen here -- only redirects.
        """
        queue = self.queue
        redirect_after = self.port_redirect_after
        stats = self.stats
        while queue and now - queue[0][2] >= redirect_after:
            kind, payload, arrival = queue.popleft()
            waited = now - arrival
            stats.queue_wait_sum += waited
            stats.queue_wait_samples += 1
            trace = self.trace
            if trace is not None:
                trace(now, EV_FAULT_REDIRECT, {
                    "bank": self.bank, "op": kind, "waited": waited,
                })
            self._redirect(kind, payload, now)

    def _redirect(self, kind: str, payload, now: int) -> None:
        """Service one request without touching the failed array."""
        if kind == "read":
            self.redirected_reads += 1
            txn: Transaction = payload
            txn.service_start = now
            txn.l2_hit = False
            primary = self.mshrs.allocate(txn.block, waiter=txn)
            if primary is None:
                primary = self.mshrs.force_allocate(txn.block, waiter=txn)
            if primary:
                self._emit_memory_read(txn.block, now)
        elif kind == "write":
            self.redirected_writes += 1
            txn = payload
            txn.service_start = now
            self._emit_memory_write(txn.block, now)
            if txn.kind == "writeback":
                self.directory.on_writeback(txn.core, txn.block)
            elif txn.kind == "store":
                invals = self.directory.on_store_write(txn.core, txn.block)
                self._emit_coherence(invals, None, now)
        elif kind == "fill":
            # Bypass-respond: forward the returned data to all waiters
            # without installing the block (the array is unreachable).
            self.redirected_fills += 1
            msg: MemMsg = payload
            block = msg.block
            for txn in self.mshrs.complete(block):
                msgs = self.directory.on_request(
                    txn.core, block, txn.is_store)
                owner_forward = self._emit_coherence(msgs, txn, now)
                txn.l2_hit = False
                if not owner_forward:
                    self._emit_response(txn, now)
        elif kind == "migrate":
            # The dirty SRAM victim cannot land in the STT-RAM array;
            # write it through to memory instead.
            self.redirected_writes += 1
            self._emit_memory_write(payload, now)

    # ------------------------------------------------------------------
    # Operation lifecycle
    # ------------------------------------------------------------------

    def _array_write_cycles(self) -> int:
        """Service time of one array write, with optional early write
        termination (the write ends when the last bit has switched)."""
        if self._termination_rng is None:
            return self.write_cycles
        min_cycles = max(
            self.read_cycles,
            int(self.write_cycles
                * self.config.write_termination_min_fraction),
        )
        cycles = self._termination_rng.randint(min_cycles,
                                               self.write_cycles)
        self.termination_cycles_saved += self.write_cycles - cycles
        return cycles

    def _start_op(self, kind: str, payload, now: int) -> None:
        detect = 0
        if self.write_buffer is not None:
            detect = self.write_buffer.config.detect_cycles

        if kind == "read":
            service = detect + self.read_cycles
            self._current_op = ("read", payload, now)
        elif kind == "write":
            if (
                self.write_buffer is not None
                and self.write_buffer.absorb(payload.block)
            ):
                service = detect + self.write_buffer.config.sram_write_cycles
                self._current_op = ("write_buffered", payload, now)
            elif self.hybrid is not None:
                # Hybrid bank: the write lands in the SRAM ways.
                service = detect + self.hybrid.write_cycles
                self._current_op = ("write_hybrid", payload, now)
            else:
                service = detect + self._array_write_cycles()
                self._current_op = ("write", payload, now)
        elif kind == "migrate":
            # Background SRAM -> STT-RAM migration of a dirty victim.
            service = self._array_write_cycles()
            self._current_op = ("migrate", payload, now)
        elif kind == "fill":
            service = self._array_write_cycles()
            self._current_op = ("fill", payload, now)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown bank op {kind}")

        self.busy_until = now + service
        kb = self.kern_busy
        if kb is not None:
            kb(self.busy_until)
        stats = self.stats
        stats.busy_cycles += service
        stats.service_intervals.append((now, now + service))
        trace = self.trace
        if trace is not None:
            trace(now, EV_BANK_START, {
                "bank": self.bank, "op": self._current_op[0],
                "service": service, "queue_depth": len(self.queue),
            })

    def _complete_op(self, now: int) -> None:
        kind, payload, start = self._current_op
        self._current_op = None
        trace = self.trace
        if trace is not None:
            trace(now, EV_BANK_END, {
                "bank": self.bank, "op": kind, "preempted": False,
            })
        if kind == "read":
            self._finish_read(payload, now)
        elif kind == "write_hybrid":
            self._finish_hybrid_write(payload, now)
        elif kind in ("write", "write_buffered"):
            self._finish_write(payload, now)
        elif kind == "fill":
            self._finish_fill(payload, now)
        elif kind == "migrate":
            self._finish_migrate(payload, now)
        elif kind == "drain":
            self.write_buffer.finish_drain()
            self.stats.drains += 1

    # -- reads ------------------------------------------------------------

    def _finish_read(self, txn: Transaction, now: int) -> None:
        self.stats.reads += 1
        block = txn.block
        txn.service_start = now
        buffered = (
            self.write_buffer is not None and self.write_buffer.probe(block)
        )
        hybrid_hit = self.hybrid is not None and self.hybrid.lookup(block)
        hit = self.array.lookup(block) or buffered or hybrid_hit
        txn.l2_hit = hit
        if hit:
            self.stats.l2_hits += 1
            msgs = self.directory.on_request(txn.core, block, txn.is_store)
            owner_forward = self._emit_coherence(msgs, txn, now)
            if not owner_forward:
                self._emit_response(txn, now)
        else:
            self.stats.l2_misses += 1
            primary = self.mshrs.allocate(block, waiter=txn)
            if primary is None:
                # MSHR file full: the bank never drops a request -- model
                # the overflow entry and fetch anyway.
                primary = self.mshrs.force_allocate(block, waiter=txn)
            if primary:
                self._emit_memory_read(block, now)

    # -- writes (L1 write-backs) -------------------------------------------

    def _finish_write(self, txn: Transaction, now: int) -> None:
        self.stats.writes += 1
        txn.service_start = now
        block = txn.block
        if self.array.contains(block):
            self.array.mark_dirty(block)
        else:
            # Write-allocate: a full-line write installs the block
            # without fetching it from memory.
            victim = self.array.fill(block, dirty=True)
            if victim is not None:
                victim_block, victim_dirty = victim
                if victim_dirty:
                    self._emit_memory_write(victim_block, now)
                recalls = self.directory.on_l2_eviction(victim_block)
                self._emit_coherence(recalls, None, now)
        if txn.kind == "writeback":
            self.directory.on_writeback(txn.core, block)
        elif txn.kind == "store":
            invals = self.directory.on_store_write(txn.core, block)
            self._emit_coherence(invals, None, now)

    def _finish_hybrid_write(self, txn: Transaction, now: int) -> None:
        """A write completed into the SRAM ways of a hybrid bank."""
        self.stats.writes += 1
        txn.service_start = now
        block = txn.block
        if self.array.contains(block):
            # Keep a single copy: the SRAM partition now owns it.
            self.array.invalidate(block)
        victim = self.hybrid.absorb_write(block)
        if victim is not None:
            # Dirty SRAM victim migrates into the STT-RAM array when the
            # bank next picks the internal migrate op up.
            self.queue.append(("migrate", victim[0], now))
        if txn.kind == "writeback":
            self.directory.on_writeback(txn.core, block)
        elif txn.kind == "store":
            invals = self.directory.on_store_write(txn.core, block)
            self._emit_coherence(invals, None, now)

    def _finish_migrate(self, block: int, now: int) -> None:
        victim = self.array.fill(block, dirty=True)
        if victim is not None:
            victim_block, victim_dirty = victim
            if victim_dirty:
                self._emit_memory_write(victim_block, now)
            recalls = self.directory.on_l2_eviction(victim_block)
            self._emit_coherence(recalls, None, now)

    # -- fills ------------------------------------------------------------

    def _finish_fill(self, msg: MemMsg, now: int) -> None:
        self.stats.fills += 1
        block = msg.block
        victim = self.array.fill(block, dirty=False)
        if victim is not None:
            victim_block, victim_dirty = victim
            if victim_dirty:
                self._emit_memory_write(victim_block, now)
            recalls = self.directory.on_l2_eviction(victim_block)
            self._emit_coherence(recalls, None, now)
        for txn in self.mshrs.complete(block):
            msgs = self.directory.on_request(
                txn.core, block, txn.is_store)
            owner_forward = self._emit_coherence(msgs, txn, now)
            txn.l2_hit = False
            if not owner_forward:
                self._emit_response(txn, now)

    # ------------------------------------------------------------------
    # Packet emission
    # ------------------------------------------------------------------

    def _emit_response(self, txn: Transaction, now: int) -> None:
        dst = self._core_node_for(txn.core)
        self.send(
            PacketClass.RESPONSE, self.node, dst,
            self.config.data_packet_flits, False, None, txn, now,
        )

    def _emit_coherence(self, msgs: List[CoherenceMsg],
                        txn: Optional[Transaction], now: int) -> bool:
        """Send directory messages; return True if a dirty owner will
        forward the data to the requester instead of this bank."""
        owner_forward = False
        for msg in msgs:
            if msg.op is CoherenceOp.FORWARD:
                owner_forward = True
                msg.txn = txn
                # The forward goes to the current owner recorded before
                # the directory transition; requester field names target.
                dst_core = self._owner_for_forward(msg)
            else:
                dst_core = msg.sharer
            dst = self._core_node_for(dst_core)
            self.send(
                PacketClass.COHERENCE, self.node, dst,
                self.config.addr_packet_flits, False, None, msg, now,
            )
        return owner_forward

    def _owner_for_forward(self, msg: CoherenceMsg) -> int:
        # The directory already rotated ownership; the owner to poke is
        # remembered in the message's sharer slot when provided.
        if msg.sharer is not None:
            return msg.sharer
        raise RuntimeError("FORWARD message without an owner target")

    def _emit_memory_read(self, block: int, now: int) -> None:
        dst = self._mc_node_for_block(block)
        msg = MemMsg(block=block, is_write=False, bank=self.bank)
        self.send(
            PacketClass.MEMORY, self.node, dst,
            self.config.addr_packet_flits, False, None, msg, now,
        )

    def _emit_memory_write(self, block: int, now: int) -> None:
        dst = self._mc_node_for_block(block)
        msg = MemMsg(block=block, is_write=True, bank=self.bank)
        self.send(
            PacketClass.MEMORY, self.node, dst,
            self.config.data_packet_flits, True, None, msg, now,
        )

    # ------------------------------------------------------------------

    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle ``step`` could do anything, barring new
        packet arrivals (which re-activate the bank via its sink).  Used
        by the event-driven scheduler's cycle-skip fast path."""
        if self.busy_until > now:
            return self.busy_until
        if now < self.port_failed_until:
            if self._current_op is not None:
                return now + 1  # completion still pending
            heal = self.port_failed_until
            if self.queue:
                timeout = self.queue[0][2] + self.port_redirect_after
                return min(max(timeout, now + 1), heal)
            if (
                self.write_buffer is not None
                and self.write_buffer.pending_drains() > 0
            ):
                return heal
            return NEVER
        if self._current_op is not None or self.queue:
            return now + 1
        if (
            self.write_buffer is not None
            and self.write_buffer.pending_drains() > 0
        ):
            return now + 1
        return NEVER

    def idle(self, now: int) -> bool:
        busy = self.busy_until > now or self._current_op is not None
        drains = (
            self.write_buffer is not None
            and self.write_buffer.pending_drains() > 0
        )
        return not busy and not self.queue and not drains

    def outstanding_misses(self) -> int:
        return len(self.mshrs)
