"""Hybrid SRAM/STT-RAM bank partition (extension).

The paper's related work mitigates the STT-RAM write penalty with
*hybrid* designs: a few SRAM ways per set absorb write-hot blocks while
the dense STT-RAM ways hold the read-mostly majority (Sun et al.
HPCA'09, Qureshi et al.).  This module models that partition at the
granularity the bank controller needs:

* writes allocate into the SRAM partition and complete at SRAM speed;
* reads hit either partition;
* a dirty block evicted from the SRAM partition migrates into the
  STT-RAM array, charging one full STT-RAM write.

Enable with ``SystemConfig(hybrid_sram_ways=n)``; the main array keeps
its full capacity, so the hybrid adds area exactly like the paper's
write-buffer comparator does.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.arrays import CacheArray
from repro.sim.config import SRAM_WRITE_CYCLES, SystemConfig


class HybridPartition:
    """The SRAM way-group of a hybrid bank."""

    def __init__(self, config: SystemConfig, bank: int):
        n_sets = max(
            1,
            config.l2_bank_bytes
            // (config.block_bytes * config.l2_associativity),
        )
        ways = config.hybrid_sram_ways
        self.array = CacheArray(
            n_sets * ways * config.block_bytes, ways,
            config.block_bytes, name=f"L2hybrid[{bank}]",
            index_stride=config.n_banks,
        )
        self.write_cycles = SRAM_WRITE_CYCLES
        self.writes_absorbed = 0
        self.read_hits = 0
        self.migrations = 0

    # ------------------------------------------------------------------

    def lookup(self, block: int) -> bool:
        hit = self.array.contains(block)
        if hit:
            self.array.lookup(block)  # refresh LRU
            self.read_hits += 1
        return hit

    def absorb_write(self, block: int) -> Optional[Tuple[int, bool]]:
        """Install a written block in the SRAM partition.

        Returns a dirty victim ``(block, True)`` that must migrate into
        the STT-RAM array, or None.
        """
        victim = self.array.fill(block, dirty=True)
        self.writes_absorbed += 1
        if victim is not None and victim[1]:
            self.migrations += 1
            return victim
        return None

    def invalidate(self, block: int) -> Tuple[bool, bool]:
        return self.array.invalidate(block)

    def occupancy(self) -> int:
        return self.array.occupancy()
