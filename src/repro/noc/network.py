"""Cycle-driven 3D NoC built from :class:`repro.noc.router.Router` nodes.

The network advances one cycle at a time.  Each cycle it:

1. drains per-node injection queues into free local-port VCs,
2. lets every router with buffered packets arbitrate each idle output
   port among ready candidates (policy-pluggable: round-robin or the
   paper's bank-aware arbiter) and forward the winner, and
3. ticks the congestion estimator on its own period (RCA propagation).

Endpoints register *sinks*: callables invoked when a packet is ejected at
its destination node.

Active-set scheduling
---------------------
``step`` normally runs the *active-set* route cycle: only routers in
``_active_routers`` (maintained incrementally by injection/forwarding)
whose ``next_active`` wake hint has come due are scanned, port by port
in dense order.  Each scan recomputes the router's wake hint as a
*lower bound* on the next cycle anything at the router could move --
output-link busy expiry, earliest ``ready_at`` among parked entries,
earliest downstream VC drain, or the bank-aware arbiter's release hint.
Lower bounds are safe: a spurious early scan is a no-op, and every state
change that could enable earlier progress (a new entry arriving, an
upstream VC freeing, a WB estimate update) pokes the hint back down.

Cycles delayed-by-arbiter packets spend parked while their router sleeps
are booked in ``_parked`` and flushed into the arbiter's per-cycle
accrual (``accrue_parked``) on the next scan, keeping
``delayed_cycle_sum`` bit-identical to the dense reference loop, which
is preserved as ``_route_cycle_reference`` (``use_reference_loop``).

``next_event_cycle`` folds the router hints, source-NI heads and the
estimator tick period into one lower bound the simulator uses for its
cycle-skip fast path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.core.combining import FlitCombiner
from repro.errors import RoutingError
from repro.noc.packet import Packet
from repro.noc.router import NEVER, Router
from repro.noc.routing import RoutingPolicy
from repro.noc.stats import NetworkStats
from repro.noc.topology import DOWN, LOCAL, N_PORTS, OPPOSITE, Mesh3D
from repro.obs.events import (
    EV_PKT_DELIVER, EV_PKT_FORWARD, EV_PKT_INJECT, EV_TSB_COMBINE,
)
from repro.sim.config import SystemConfig

Sink = Callable[[Packet, int], None]


class Network:
    """The interconnect substrate shared by cores, banks and controllers."""

    def __init__(
        self,
        config: SystemConfig,
        topo: Mesh3D,
        routing: RoutingPolicy,
        arbiter,
        estimator=None,
    ):
        self.config = config
        self.topo = topo
        self.routing = routing
        self.arbiter = arbiter
        self.estimator = estimator
        self.stats = NetworkStats()
        #: observability emit callable; None when tracing is detached
        self.trace = None
        self.routers: List[Router] = [
            Router(node, config.n_vcs) for node in range(topo.n_nodes)
        ]
        #: per-node NI source queues
        self.source_queues: List[deque] = [
            deque() for _ in range(topo.n_nodes)
        ]
        self.sinks: Dict[int, Sink] = {}
        #: optional per-node ejection flow control: node -> (pkt -> bool)
        self.flow_control: Dict[int, Callable[[Packet], bool]] = {}
        self.hop_cycles = config.hop_cycles

        # Precompute neighbours and link serialisation factors.
        self.neighbor_node: List[List[Optional[int]]] = []
        for node in range(topo.n_nodes):
            self.neighbor_node.append(
                [topo.neighbor(node, port) for port in range(N_PORTS)]
            )
        self.neighbors_of: List[List[int]] = [
            [n for n in row[:6] if n is not None]
            for row in self.neighbor_node
        ]
        self._combiners: Dict[tuple, FlitCombiner] = {}
        if routing.region_map is not None and \
                config.region_tsb_width_factor > 1:
            for cache_node in routing.region_map.tsb_cache_nodes():
                core_node = cache_node - topo.nodes_per_layer
                self._combiners[(core_node, DOWN)] = FlitCombiner(
                    config.region_tsb_width_factor
                )
        if estimator is not None:
            estimator.bind(self)
        if hasattr(arbiter, "bind"):
            arbiter.bind(self)

        self._nonempty_sources = set()
        #: routers currently holding at least one resident packet
        self._active_routers = set()
        #: (node, out_port) -> (last scan cycle, parked delayed entries);
        #: cycles elapsed between scans are flushed into the arbiter's
        #: per-cycle delay accrual on the next scan of that port.
        self._parked: Dict[tuple, tuple] = {}
        #: use the dense every-router/every-port reference loop instead of
        #: the active-set loop (kept for equivalence testing and as the
        #: perf baseline).
        self.use_reference_loop = False
        #: invoked with the node id whenever a source NI queue pops at
        #: least one packet (NI-stalled cores re-register on this).
        self.on_source_drain: Optional[Callable[[int, int], None]] = None
        # `tick_period is None` => the estimator never needs ticking.
        if estimator is None:
            self._tick_period = None
        else:
            self._tick_period = getattr(estimator, "tick_period", 1)

    # ------------------------------------------------------------------
    # Endpoint API
    # ------------------------------------------------------------------

    def register_sink(self, node: int, sink: Sink,
                      flow_control: Optional[Callable[[Packet], bool]] = None
                      ) -> None:
        self.sinks[node] = sink
        if flow_control is not None:
            self.flow_control[node] = flow_control

    def can_inject(self, node: int) -> bool:
        """Source-side flow control: is there NI queue space at ``node``?

        Only cores consult this (and stall their streams when it fails);
        banks and controllers mid-transaction may exceed the limit.
        """
        return len(self.source_queues[node]) < self.config.ni_queue_entries

    def inject(self, pkt: Packet, now: int) -> None:
        """Queue a packet at its source NI."""
        self.routing.prepare(pkt)
        self.stats.on_inject(pkt, now)
        trace = self.trace
        if trace is not None:
            trace(now, EV_PKT_INJECT, {
                "pid": pkt.pid, "klass": pkt.klass.name,
                "src": pkt.src, "dst": pkt.dst, "flits": pkt.flits,
                "is_write": pkt.is_write, "bank": pkt.bank,
            })
        self.source_queues[pkt.src].append(pkt)
        self._nonempty_sources.add(pkt.src)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self, now: int) -> None:
        self._inject_sources(now)
        if self.use_reference_loop:
            self._route_cycle_reference(now)
        else:
            self._route_cycle(now)
        if self._tick_period is not None and now % self._tick_period == 0:
            self.estimator.tick(now)

    def _inject_sources(self, now: int) -> None:
        done = []
        drained = self.on_source_drain
        for node in self._nonempty_sources:
            queue = self.source_queues[node]
            router = self.routers[node]
            popped = False
            while queue:
                vc = router.free_vc(LOCAL, now)
                if vc < 0:
                    break
                pkt = queue[0]
                if pkt.ready_at > now:
                    break
                queue.popleft()
                popped = True
                pkt.network_cycle = now
                out_port = self.routing.next_port(node, pkt)
                router.accept(LOCAL, vc, pkt, out_port, now)
            if popped:
                self._active_routers.add(node)
                if drained is not None:
                    drained(node, now)
            if not queue:
                done.append(node)
        for node in done:
            self._nonempty_sources.discard(node)

    def _route_cycle(self, now: int) -> None:
        """Active-set route cycle: scan only due routers/occupied ports.

        Scans the same (router, port) pairs the dense reference loop
        would act on, in the same order, so every arbitration decision
        and its side effects are identical; all other pairs are provably
        no-ops until the recorded wake hints come due.
        """
        active = self._active_routers
        if not active:
            return
        arbiter = self.arbiter
        routers = self.routers
        neighbor_node = self.neighbor_node
        flow_control = self.flow_control
        parked_map = self._parked
        for node in sorted(active):
            router = routers[node]
            if router.next_active > now or router.n_resident == 0:
                continue
            out_entries = router.out_entries
            out_busy_until = router.out_busy_until
            wake = NEVER
            forwarded = False
            for out_port in range(N_PORTS):
                entries = out_entries[out_port]
                if not entries:
                    continue
                busy = out_busy_until[out_port]
                if busy > now:
                    if busy < wake:
                        wake = busy
                    continue
                if out_port == LOCAL:
                    downstream = None
                else:
                    down_node = neighbor_node[node][out_port]
                    if down_node is None:  # pragma: no cover
                        raise RoutingError(
                            f"packet routed off-mesh at node {node}"
                        )
                    downstream = routers[down_node]
                    vc_at = downstream.next_free_vc_at(
                        OPPOSITE[out_port], now)
                    if vc_at > now:
                        if vc_at < wake:
                            wake = vc_at
                        continue
                candidates = []
                min_ready = NEVER
                blocked = False
                if out_port == LOCAL:
                    accept = flow_control.get(node)
                    for e in entries:
                        ra = e[2].ready_at
                        if ra <= now:
                            if accept is None or accept(e[2]):
                                candidates.append(e)
                            else:
                                blocked = True
                        elif ra < min_ready:
                            min_ready = ra
                else:
                    for e in entries:
                        ra = e[2].ready_at
                        if ra <= now:
                            candidates.append(e)
                        elif ra < min_ready:
                            min_ready = ra
                parked = parked_map.pop((node, out_port), None)
                if parked is not None:
                    gap = now - parked[0] - 1
                    if gap > 0:
                        arbiter.accrue_parked(parked[1], gap)
                if not candidates:
                    # A flow-control refusal has no timer: the sink's
                    # predicate may open at any cycle, so re-arm densely.
                    if blocked:
                        wake = now + 1
                    elif min_ready < wake:
                        wake = min_ready
                    continue
                winner = arbiter.choose(node, out_port, candidates, now)
                if winner is None:
                    # Every candidate heads to a predicted-busy bank: park
                    # them and sleep until the arbiter's release bound.
                    parked_map[(node, out_port)] = (now, tuple(candidates))
                    hint = arbiter.release_hint(
                        node, out_port, candidates, now)
                    if hint < wake:
                        wake = hint
                    if min_ready < wake:
                        wake = min_ready
                    continue
                self._forward(
                    router, downstream, out_port, candidates[winner], now)
                forwarded = True
            router.next_active = now + 1 if forwarded else wake

    def _route_cycle_reference(self, now: int) -> None:
        """Dense reference loop: poll every router and port each cycle.

        Behaviourally authoritative; the active-set loop must match it
        bit for bit (see tests/test_scheduler_equivalence.py).
        """
        arbiter = self.arbiter
        for router in self.routers:
            if router.n_resident == 0:
                continue
            node = router.node
            for out_port in range(N_PORTS):
                entries = router.out_entries[out_port]
                if not entries or router.out_busy_until[out_port] > now:
                    continue
                if out_port == LOCAL:
                    downstream = None
                else:
                    down_node = self.neighbor_node[node][out_port]
                    if down_node is None:  # pragma: no cover
                        raise RoutingError(
                            f"packet routed off-mesh at node {node}"
                        )
                    downstream = self.routers[down_node]
                    if downstream.free_vc(OPPOSITE[out_port], now) < 0:
                        continue
                if out_port == LOCAL:
                    accept = self.flow_control.get(node)
                    candidates = [
                        e for e in entries
                        if e[2].ready_at <= now
                        and (accept is None or accept(e[2]))
                    ]
                else:
                    candidates = [e for e in entries if e[2].ready_at <= now]
                if not candidates:
                    continue
                winner = arbiter.choose(node, out_port, candidates, now)
                if winner is None:
                    continue
                entry = candidates[winner]
                self._forward(router, downstream, out_port, entry, now)

    def _forward(self, router: Router, downstream: Optional[Router],
                 out_port: int, entry: list, now: int) -> None:
        pkt = entry[2]
        router.remove_entry(out_port, entry, now)
        node = router.node

        # The freed input VC may unblock the upstream router that feeds
        # this input port; wake it when the tail has drained.
        in_port = entry[0]
        if in_port != LOCAL:
            up_node = self.neighbor_node[node][in_port]
            if up_node is not None:
                up = self.routers[up_node]
                t = now + pkt.flits
                if t < up.next_active:
                    up.next_active = t

        trace = self.trace
        combiner = self._combiners.get((node, out_port))
        if combiner is not None:
            before = combiner.packets_combined
            serialization = combiner.serialization_cycles(pkt)
            self.stats.tsb_combined_flit_pairs = combiner.combined_flit_pairs
            if trace is not None and combiner.packets_combined != before:
                trace(now, EV_TSB_COMBINE, {
                    "node": node, "port": out_port, "pid": pkt.pid,
                })
        else:
            serialization = pkt.flits
        router.out_busy_until[out_port] = now + serialization

        if out_port == LOCAL:
            if router.n_resident == 0:
                self._active_routers.discard(node)
            self.stats.on_deliver(pkt, now)
            if trace is not None:
                trace(now, EV_PKT_DELIVER, {
                    "pid": pkt.pid, "klass": pkt.klass.name,
                    "src": pkt.src, "dst": pkt.dst, "bank": pkt.bank,
                    "inject_cycle": pkt.inject_cycle,
                    "latency": pkt.latency(now), "hops": pkt.hops,
                    "delayed_cycles": pkt.delayed_cycles,
                })
            sink = self.sinks.get(node)
            if sink is not None:
                sink(pkt, now)
            return

        self.arbiter.on_forward(node, pkt, now, out_port)
        self.stats.on_forward(pkt, now)
        if trace is not None:
            trace(now, EV_PKT_FORWARD, {
                "pid": pkt.pid, "klass": pkt.klass.name,
                "node": node, "port": out_port, "flits": pkt.flits,
                "bank": pkt.bank,
            })
        pkt.hops += 1
        pkt.ready_at = now + self.hop_cycles
        down_node = downstream.node
        in_p = OPPOSITE[out_port]
        vc = downstream.free_vc(in_p, now)
        next_out = self.routing.next_port(down_node, pkt)
        downstream.accept(in_p, vc, pkt, next_out, pkt.ready_at)
        # The accept consumed a downstream VC, which can flip the
        # bank-aware arbiter's VC-pressure release.  The dense loop sees
        # that this very cycle when the downstream router is scanned
        # after this one (higher node id), else the next cycle.
        t = now if down_node > node else now + 1
        if t < downstream.next_active:
            downstream.next_active = t
        self._active_routers.add(down_node)
        if router.n_resident == 0:
            self._active_routers.discard(node)

    # ------------------------------------------------------------------
    # Event-driven scheduling support
    # ------------------------------------------------------------------

    def poke_router(self, node: int, cycle: int) -> None:
        """Lower a router's wake hint (estimate changes, bank dequeues)."""
        router = self.routers[node]
        if cycle < router.next_active:
            router.next_active = cycle

    def next_event_cycle(self, now: int) -> int:
        """Lower bound (> ``now``) on the next cycle the network can act.

        :data:`repro.noc.router.NEVER` when nothing is pending.
        """
        nxt = NEVER
        period = self._tick_period
        if period is not None:
            nxt = now + period - now % period
        routers = self.routers
        for node in self._active_routers:
            t = routers[node].next_active
            if t < nxt:
                nxt = t
        for node in self._nonempty_sources:
            queue = self.source_queues[node]
            if not queue:
                continue
            t = queue[0].ready_at
            v = routers[node].next_free_vc_at(LOCAL, now)
            if v > t:
                t = v
            if t < nxt:
                nxt = t
        if nxt <= now:
            return now + 1
        return nxt

    def flush_parked(self, now: int) -> None:
        """Accrue pending parked-delay cycles up to (excluding) ``now``.

        Called at measurement/run boundaries so the delay accrual of
        still-parked packets matches the dense loop through cycle
        ``now - 1`` even though their routers are asleep.
        """
        arbiter = self.arbiter
        for key, (since, entries) in list(self._parked.items()):
            gap = now - since - 1
            if gap > 0:
                arbiter.accrue_parked(entries, gap)
                self._parked[key] = (now - 1, entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def quiesced(self) -> bool:
        """True when no packets remain anywhere in the network."""
        if self._nonempty_sources:
            return False
        if not self._active_routers:
            return True
        return all(
            self.routers[n].n_resident == 0 for n in self._active_routers
        )

    def total_resident(self) -> int:
        return sum(r.n_resident for r in self.routers)
