"""Cycle-driven 3D NoC built from :class:`repro.noc.router.Router` nodes.

The network advances one cycle at a time.  Each cycle it:

1. drains per-node injection queues into free local-port VCs,
2. lets every router with buffered packets arbitrate each idle output
   port among ready candidates (policy-pluggable: round-robin or the
   paper's bank-aware arbiter) and forward the winner, and
3. ticks the congestion estimator on its own period (RCA propagation).

Endpoints register *sinks*: callables invoked when a packet is ejected at
its destination node.

Active-set scheduling
---------------------
``step`` normally runs the *active-set* route cycle: only routers in
``_active_routers`` (maintained incrementally by injection/forwarding)
whose ``next_active`` wake hint has come due are scanned, port by port
in dense order.  Each scan recomputes the router's wake hint as a
*lower bound* on the next cycle anything at the router could move --
output-link busy expiry, earliest ``ready_at`` among parked entries,
earliest downstream VC drain, or the bank-aware arbiter's release hint.
Lower bounds are safe: a spurious early scan is a no-op, and every state
change that could enable earlier progress (a new entry arriving, an
upstream VC freeing, a WB estimate update) pokes the hint back down.

Cycles delayed-by-arbiter packets spend parked while their router sleeps
are booked in ``_parked`` and flushed into the arbiter's per-cycle
accrual (``accrue_parked``) on the next scan, keeping
``delayed_cycle_sum`` bit-identical to the dense reference loop, which
is preserved as ``_route_cycle_reference`` (``use_reference_loop``).

``next_event_cycle`` folds the router hints, source-NI heads and the
estimator tick period into one lower bound the simulator uses for its
cycle-skip fast path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.core.combining import FlitCombiner
from repro.errors import RoutingError
from repro.noc.packet import Packet
from repro.noc.router import MASK_PORTS, NEVER, Router
from repro.noc.routing import RoutingPolicy
from repro.noc.stats import NetworkStats
from repro.noc.topology import DOWN, LOCAL, N_PORTS, OPPOSITE, Mesh3D
from repro.obs.events import (
    EV_PKT_DELIVER, EV_PKT_FORWARD, EV_PKT_INJECT, EV_TSB_COMBINE,
)
from repro.sim.config import SystemConfig

Sink = Callable[[Packet, int], None]


class Network:
    """The interconnect substrate shared by cores, banks and controllers."""

    def __init__(
        self,
        config: SystemConfig,
        topo: Mesh3D,
        routing: RoutingPolicy,
        arbiter,
        estimator=None,
    ):
        self.config = config
        self.topo = topo
        self.routing = routing
        self.arbiter = arbiter
        self.estimator = estimator
        self.stats = NetworkStats()
        #: observability emit callable; None when tracing is detached
        self.trace = None
        #: fault-injection hook (:class:`repro.resilience.FaultPlane`);
        #: None on fault-free runs, which then pay one ``is None`` test
        #: per link traversal and nothing else.
        self.faults = None
        #: monotonic in-flight accounting -- unlike ``self.stats`` these
        #: are never reset at measurement boundaries, so the invariant
        #: guard can check ``injected - delivered == queued + resident``
        #: at any cycle of a run.
        self.packets_injected_total = 0
        self.packets_delivered_total = 0
        self.routers: List[Router] = [
            Router(node, config.n_vcs) for node in range(topo.n_nodes)
        ]
        #: per-node NI source queues
        self.source_queues: List[deque] = [
            deque() for _ in range(topo.n_nodes)
        ]
        self.sinks: Dict[int, Sink] = {}
        #: optional per-node ejection flow control: node -> (pkt -> bool)
        self.flow_control: Dict[int, Callable[[Packet], bool]] = {}
        #: flat node-indexed views of ``sinks``/``flow_control`` (the
        #: route loop does one list index instead of a dict probe)
        self._sink_at: List[Optional[Sink]] = [None] * topo.n_nodes
        self._flow_at: List[Optional[Callable[[Packet], bool]]] = (
            [None] * topo.n_nodes
        )
        self.hop_cycles = config.hop_cycles

        # Precompute neighbours and link serialisation factors.
        self.neighbor_node: List[List[Optional[int]]] = []
        for node in range(topo.n_nodes):
            self.neighbor_node.append(
                [topo.neighbor(node, port) for port in range(N_PORTS)]
            )
        self.neighbors_of: List[List[int]] = [
            [n for n in row[:6] if n is not None]
            for row in self.neighbor_node
        ]
        self._combiners: Dict[tuple, FlitCombiner] = {}
        #: (node << 3 | port)-indexed view of ``_combiners``
        self._combiner_at: List[Optional[FlitCombiner]] = (
            [None] * (topo.n_nodes << 3)
        )
        if routing.region_map is not None and \
                config.region_tsb_width_factor > 1:
            for cache_node in routing.region_map.tsb_cache_nodes():
                core_node = cache_node - topo.nodes_per_layer
                combiner = FlitCombiner(config.region_tsb_width_factor)
                self._combiners[(core_node, DOWN)] = combiner
                self._combiner_at[(core_node << 3) | DOWN] = combiner
        if estimator is not None:
            estimator.bind(self)
        if hasattr(arbiter, "bind"):
            arbiter.bind(self)
        #: pre-bound hot callables (skip the attribute chain per call)
        self._next_port = routing.next_port
        #: arbiter forward hook, or None when it is a no-op (plain RR)
        self._arb_on_forward = (
            arbiter.on_forward
            if getattr(arbiter, "needs_forward_hook", True) else None
        )
        #: node-indexed forward hook (bank-aware arbiters only charge the
        #: tracker at parent nodes; everywhere else the hook is skipped)
        hook_at = getattr(arbiter, "forward_hook_at", None)
        if hook_at is not None:
            self._arb_fwd_at: List = hook_at
        else:
            self._arb_fwd_at = [self._arb_on_forward] * topo.n_nodes

        self._nonempty_sources = set()
        #: routers currently holding at least one resident packet (the
        #: mesh has 128+ nodes; tracking the ~tens that are occupied
        #: beats a dense guard scan of the full router list each cycle)
        self._active_routers = set()
        #: (node, out_port) -> (last scan cycle, parked delayed entries);
        #: cycles elapsed between scans are flushed into the arbiter's
        #: per-cycle delay accrual on the next scan of that port.
        self._parked: Dict[tuple, tuple] = {}
        #: bit (node << 3 | port) set iff ``_parked`` holds that key --
        #: the route loop tests one bit instead of building a tuple key
        #: and probing the dict on every port scan.
        self._parked_mask = 0
        #: reusable candidate scratch lists for the route loop (cleared
        #: per port scan; parking snapshots them with ``tuple()``)
        self._scratch_cand: List[list] = []
        self._scratch_idx: List[int] = []
        #: use the dense every-router/every-port reference loop instead of
        #: the active-set loop (kept for equivalence testing and as the
        #: perf baseline).
        self.use_reference_loop = False
        #: invoked with the node id whenever a source NI queue pops at
        #: least one packet (NI-stalled cores re-register on this).
        self.on_source_drain: Optional[Callable[[int, int], None]] = None
        # `tick_period is None` => the estimator never needs ticking.
        if estimator is None:
            self._tick_period = None
        else:
            self._tick_period = getattr(estimator, "tick_period", 1)
        #: attached :class:`repro.engine.kernels.LaneKernel`, or None for
        #: the scalar machine.  While attached, ``step`` routes through
        #: ``_route_cycle_kernel`` and the vectorized estimator tick.
        self._kern = None
        #: kernel-lane mirror of every router's ``out_busy_until`` -- an
        #: ``(n_nodes, N_PORTS)`` int64 row of the group busy array (set
        #: only for lanes whose estimator reads link residuals), or None.
        self._kbusy = None
        #: node-indexed list of the BankController whose queue is the
        #: ejection flow control at that node (None elsewhere); the
        #: kernel's blocked-port due gate polls its queue depth directly.
        self._bank_at = None

    # ------------------------------------------------------------------
    # Endpoint API
    # ------------------------------------------------------------------

    def register_sink(self, node: int, sink: Sink,
                      flow_control: Optional[Callable[[Packet], bool]] = None
                      ) -> None:
        self.sinks[node] = sink
        self._sink_at[node] = sink
        if flow_control is not None:
            self.flow_control[node] = flow_control
            self._flow_at[node] = flow_control

    def can_inject(self, node: int) -> bool:
        """Source-side flow control: is there NI queue space at ``node``?

        Only cores consult this (and stall their streams when it fails);
        banks and controllers mid-transaction may exceed the limit.
        """
        return len(self.source_queues[node]) < self.config.ni_queue_entries

    def inject(self, pkt: Packet, now: int) -> None:
        """Queue a packet at its source NI."""
        self.routing.prepare(pkt)
        self.packets_injected_total += 1
        self.stats.on_inject(pkt, now)
        trace = self.trace
        if trace is not None:
            trace(now, EV_PKT_INJECT, {
                "pid": pkt.pid, "klass": pkt.klass.name,
                "src": pkt.src, "dst": pkt.dst, "flits": pkt.flits,
                "is_write": pkt.is_write, "bank": pkt.bank,
            })
        self.source_queues[pkt.src].append(pkt)
        self._nonempty_sources.add(pkt.src)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self, now: int) -> None:
        self._inject_sources(now)
        kern = self._kern
        if kern is not None:
            self._route_cycle_kernel(now)
            if self._tick_period is not None and \
                    now % self._tick_period == 0:
                kern.tick(now)
            return
        if self.use_reference_loop:
            self._route_cycle_reference(now)
        else:
            self._route_cycle(now)
        if self._tick_period is not None and now % self._tick_period == 0:
            self.estimator.tick(now)

    def _inject_sources(self, now: int) -> None:
        sources = self._nonempty_sources
        if not sources:
            return
        done = []
        drained = self.on_source_drain
        routers = self.routers
        next_port = self._next_port
        for node in sources:
            queue = self.source_queues[node]
            router = routers[node]
            popped = False
            while queue:
                # Ready check first: it is the cheap predicate, and
                # ``free_vc`` is a pure scan, so order cannot matter.
                pkt = queue[0]
                if pkt.ready_at > now:
                    break
                vc = router.free_vc(LOCAL, now)
                if vc < 0:
                    break
                queue.popleft()
                popped = True
                pkt.network_cycle = now
                router.accept(LOCAL, vc, pkt, next_port(node, pkt), now)
            if popped:
                self._active_routers.add(node)
                if drained is not None:
                    drained(node, now)
            if not queue:
                done.append(node)
        for node in done:
            sources.discard(node)

    def _route_cycle(self, now: int) -> None:
        """Active-set route cycle: scan only due routers/occupied ports.

        Scans the same (router, port) pairs the dense reference loop
        would act on, in the same order, so every arbitration decision
        and its side effects are identical; all other pairs are provably
        no-ops until the recorded wake hints come due.
        """
        arbiter = self.arbiter
        choose = arbiter.choose
        # Per-node dispatch (bank-aware parents vs plain RR) skips the
        # subclass delegation chain; absent on bare test arbiters.
        choose_at = getattr(arbiter, "choose_at", None)
        forward = self._forward
        routers = self.routers
        neighbor_node = self.neighbor_node
        flow_at = self._flow_at
        parked_map = self._parked
        mask_ports = MASK_PORTS
        opposite = OPPOSITE
        local = LOCAL
        never = NEVER
        n_vcs = self.config.n_vcs
        parked_mask = self._parked_mask
        candidates: list = self._scratch_cand
        cand_index: list = self._scratch_idx
        active = self._active_routers
        if not active:
            return
        # ``sorted`` snapshots the set, so routers activated mid-cycle
        # (a downstream accept) join the scan next cycle -- which is
        # equivalent: a just-accepted packet is not ready before
        # ``now + hop_cycles``, and if the downstream router already held
        # candidates it was already in the snapshot.
        for node in sorted(active):
            router = routers[node]
            if router.next_active > now or router.n_resident == 0:
                continue
            node_choose = choose_at[node] if choose_at is not None else choose
            out_entries = router.out_entries
            out_busy_until = router.out_busy_until
            neighbors = neighbor_node[node]
            wake = never
            forwarded = False
            for out_port in mask_ports[router.port_mask]:
                entries = out_entries[out_port]
                busy = out_busy_until[out_port]
                if busy > now:
                    if busy < wake:
                        wake = busy
                    continue
                if out_port == local:
                    downstream = None
                else:
                    down_node = neighbors[out_port]
                    if down_node is None:  # pragma: no cover
                        raise RoutingError(
                            f"packet routed off-mesh at node {node}"
                        )
                    downstream = routers[down_node]
                    # Inline of ``downstream.next_free_vc_at`` (the most
                    # frequent gate in the loop; must stay equivalent).
                    d_pkt = downstream.vc_pkt
                    d_free = downstream.vc_free_at
                    base = opposite[out_port] * n_vcs
                    vc_at = never
                    for s in range(base, base + n_vcs):
                        if d_pkt[s] is None:
                            t = d_free[s]
                            if t <= now:
                                vc_at = now
                                break
                            if t < vc_at:
                                vc_at = t
                    if vc_at > now:
                        if vc_at < wake:
                            wake = vc_at
                        continue
                del candidates[:]
                del cand_index[:]
                min_ready = never
                blocked = False
                if out_port == local:
                    accept = flow_at[node]
                    for i, e in enumerate(entries):
                        ra = e[3]  # == e[2].ready_at for live entries
                        if ra <= now:
                            if accept is None or accept(e[2]):
                                candidates.append(e)
                                cand_index.append(i)
                            else:
                                blocked = True
                        elif ra < min_ready:
                            min_ready = ra
                else:
                    for i, e in enumerate(entries):
                        ra = e[3]  # == e[2].ready_at for live entries
                        if ra <= now:
                            candidates.append(e)
                            cand_index.append(i)
                        elif ra < min_ready:
                            min_ready = ra
                if parked_mask and (
                        parked_mask >> ((node << 3) | out_port)) & 1:
                    parked_mask &= ~(1 << ((node << 3) | out_port))
                    self._parked_mask = parked_mask
                    parked = parked_map.pop((node, out_port))
                    gap = now - parked[0] - 1
                    if gap > 0:
                        arbiter.accrue_parked(parked[1], gap)
                if not candidates:
                    # A flow-control refusal has no timer: the sink's
                    # predicate may open at any cycle, so re-arm densely.
                    if blocked:
                        wake = now + 1
                    elif min_ready < wake:
                        wake = min_ready
                    continue
                winner = node_choose(node, out_port, candidates, now)
                if winner is None:
                    # Every candidate heads to a predicted-busy bank: park
                    # them and sleep until the arbiter's release bound.
                    parked_map[(node, out_port)] = (now, tuple(candidates))
                    parked_mask |= 1 << ((node << 3) | out_port)
                    self._parked_mask = parked_mask
                    hint = arbiter.release_hint(
                        node, out_port, candidates, now)
                    if hint < wake:
                        wake = hint
                    if min_ready < wake:
                        wake = min_ready
                    continue
                forward(router, downstream, out_port,
                        candidates[winner], cand_index[winner], now)
                forwarded = True
            router.next_active = now + 1 if forwarded else wake

    def _route_cycle_kernel(self, now: int) -> None:
        """Kernel-mode route cycle: the active-set scan plus blocked-port
        sleeping.

        Identical decision sequence to :meth:`_route_cycle` -- it runs
        every scan that could change state, in the same order, and
        assigns ``next_active`` the exact value the scalar scan would, so
        the simulator's cycle-skip schedule never diverges.  What it adds
        is a second, private wake hint (``kwake``/``kblocked``): a router
        whose only pending work is a flow-control-refused LOCAL candidate
        is *not* rescanned densely (the scalar loop re-arms ``now + 1``
        because the sink predicate has no timer); instead the refusing
        bank is recorded and the gate polls its queue depth, which is the
        entire refusal predicate for ejection flow control (COHERENCE /
        ACK / MC-bound packets are never refused).  Skipped scans are
        provably no-ops: parked-delay accrual is gap-based
        (``accrue_parked``), and every event that could enable earlier
        progress lowers ``kwake`` at the same sites that lower
        ``next_active``.
        """
        arbiter = self.arbiter
        choose = arbiter.choose
        choose_at = getattr(arbiter, "choose_at", None)
        forward = self._forward
        routers = self.routers
        neighbor_node = self.neighbor_node
        flow_at = self._flow_at
        bank_at = self._bank_at
        parked_map = self._parked
        mask_ports = MASK_PORTS
        opposite = OPPOSITE
        local = LOCAL
        never = NEVER
        n_vcs = self.config.n_vcs
        parked_mask = self._parked_mask
        candidates: list = self._scratch_cand
        cand_index: list = self._scratch_idx
        active = self._active_routers
        if not active:
            return
        for node in sorted(active):
            router = routers[node]
            if router.n_resident == 0:
                continue
            if router.kwake > now:
                kb = router.kblocked
                if kb is None or len(kb.queue) >= kb.queue_limit:
                    continue
                router.kblocked = None
            node_choose = choose_at[node] if choose_at is not None else choose
            out_entries = router.out_entries
            out_busy_until = router.out_busy_until
            neighbors = neighbor_node[node]
            wake = never
            kwake = never
            kblocked_new = None
            forwarded = False
            # The scan owns the kernel hint from here: it re-derives a
            # complete bound below, and anything that fires *during* the
            # scan (a WB ack delivered by this router's own LOCAL
            # forward poking this very node) re-lowers it; the scan-end
            # assignment takes the minimum so such pokes survive.
            router.kwake = never
            for out_port in mask_ports[router.port_mask]:
                entries = out_entries[out_port]
                busy = out_busy_until[out_port]
                if busy > now:
                    if busy < wake:
                        wake = busy
                    if busy < kwake:
                        kwake = busy
                    continue
                if out_port == local:
                    downstream = None
                else:
                    down_node = neighbors[out_port]
                    if down_node is None:  # pragma: no cover
                        raise RoutingError(
                            f"packet routed off-mesh at node {node}"
                        )
                    downstream = routers[down_node]
                    d_pkt = downstream.vc_pkt
                    d_free = downstream.vc_free_at
                    base = opposite[out_port] * n_vcs
                    vc_at = never
                    for s in range(base, base + n_vcs):
                        if d_pkt[s] is None:
                            t = d_free[s]
                            if t <= now:
                                vc_at = now
                                break
                            if t < vc_at:
                                vc_at = t
                    if vc_at > now:
                        if vc_at < wake:
                            wake = vc_at
                        if vc_at < kwake:
                            kwake = vc_at
                        continue
                del candidates[:]
                del cand_index[:]
                min_ready = never
                blocked = False
                if len(entries) == 1:
                    # Single-occupant port -- the common case on a
                    # lightly loaded mesh; same decisions as the
                    # general loops below without the enumerate
                    # machinery (kernel loop only).
                    e = entries[0]
                    ra = e[3]  # == e[2].ready_at for live entries
                    if ra > now:
                        min_ready = ra
                    elif out_port != local:
                        candidates.append(e)
                        cand_index.append(0)
                    else:
                        accept = flow_at[node]
                        if accept is None or accept(e[2]):
                            candidates.append(e)
                            cand_index.append(0)
                        else:
                            blocked = True
                elif out_port == local:
                    accept = flow_at[node]
                    for i, e in enumerate(entries):
                        ra = e[3]  # == e[2].ready_at for live entries
                        if ra <= now:
                            if accept is None or accept(e[2]):
                                candidates.append(e)
                                cand_index.append(i)
                            else:
                                blocked = True
                        elif ra < min_ready:
                            min_ready = ra
                else:
                    for i, e in enumerate(entries):
                        ra = e[3]  # == e[2].ready_at for live entries
                        if ra <= now:
                            candidates.append(e)
                            cand_index.append(i)
                        elif ra < min_ready:
                            min_ready = ra
                if parked_mask and (
                        parked_mask >> ((node << 3) | out_port)) & 1:
                    parked_mask &= ~(1 << ((node << 3) | out_port))
                    self._parked_mask = parked_mask
                    parked = parked_map.pop((node, out_port))
                    gap = now - parked[0] - 1
                    if gap > 0:
                        arbiter.accrue_parked(parked[1], gap)
                if not candidates:
                    if blocked:
                        # Scalar semantics: re-arm densely.  Kernel: the
                        # refusal only flips when the bank queue shrinks
                        # (polled by the due gate) or a recorded wake
                        # event fires -- including a not-yet-ready
                        # COHERENCE/ACK packet becoming ready, which a
                        # full queue never refuses, hence the min_ready
                        # fold below.
                        wake = now + 1
                        kblocked_new = bank_at[node]
                        if min_ready < kwake:
                            kwake = min_ready
                    else:
                        if min_ready < wake:
                            wake = min_ready
                        if min_ready < kwake:
                            kwake = min_ready
                    continue
                winner = node_choose(node, out_port, candidates, now)
                if winner is None:
                    parked_map[(node, out_port)] = (now, tuple(candidates))
                    parked_mask |= 1 << ((node << 3) | out_port)
                    self._parked_mask = parked_mask
                    hint = arbiter.release_hint(
                        node, out_port, candidates, now)
                    if hint < wake:
                        wake = hint
                    if min_ready < wake:
                        wake = min_ready
                    if hint < kwake:
                        kwake = hint
                    if min_ready < kwake:
                        kwake = min_ready
                    continue
                forward(router, downstream, out_port,
                        candidates[winner], cand_index[winner], now)
                forwarded = True
                # Post-forward bound for the kernel hint only: entries
                # remaining on this port cannot move before the link
                # frees (ready losers) or before min_ready (future
                # arrivals); an empty port contributes nothing.  The
                # scalar ``next_active`` below still takes ``now + 1``,
                # so the executed-cycle schedule is untouched -- the
                # scalar post-forward rescans this hint skips are
                # no-ops: every occupied port resolved this scan and
                # folded its own wake bound.
                if entries:
                    busy = out_busy_until[out_port]
                    if len(candidates) > 1 or blocked:
                        # Ready losers (or refused ejections) wait only
                        # for the link to free.
                        bound = busy
                    elif busy > min_ready:
                        # Only future arrivals remain: nothing can move
                        # before BOTH the link frees and the earliest
                        # entry is ready.
                        bound = busy
                    else:
                        bound = min_ready
                    if bound < kwake:
                        kwake = bound
            # ``next_active`` mirrors the scalar loop's unconditional
            # overwrite exactly; the kernel hint takes the minimum of
            # the scan's folded bound and any mid-scan re-lowering.
            router.next_active = now + 1 if forwarded else wake
            if kwake < router.kwake:
                router.kwake = kwake
            router.kblocked = kblocked_new

    def _route_cycle_reference(self, now: int) -> None:
        """Dense reference loop: poll every router and port each cycle.

        Behaviourally authoritative; the active-set loop must match it
        bit for bit (see tests/test_scheduler_equivalence.py).
        """
        arbiter = self.arbiter
        for router in self.routers:
            if router.n_resident == 0:
                continue
            node = router.node
            for out_port in range(N_PORTS):
                entries = router.out_entries[out_port]
                if not entries or router.out_busy_until[out_port] > now:
                    continue
                if out_port == LOCAL:
                    downstream = None
                else:
                    down_node = self.neighbor_node[node][out_port]
                    if down_node is None:  # pragma: no cover
                        raise RoutingError(
                            f"packet routed off-mesh at node {node}"
                        )
                    downstream = self.routers[down_node]
                    if downstream.free_vc(OPPOSITE[out_port], now) < 0:
                        continue
                candidates = []
                cand_index = []
                if out_port == LOCAL:
                    accept = self.flow_control.get(node)
                    for i, e in enumerate(entries):
                        if e[2].ready_at <= now and (
                                accept is None or accept(e[2])):
                            candidates.append(e)
                            cand_index.append(i)
                else:
                    for i, e in enumerate(entries):
                        if e[2].ready_at <= now:
                            candidates.append(e)
                            cand_index.append(i)
                if not candidates:
                    continue
                winner = arbiter.choose(node, out_port, candidates, now)
                if winner is None:
                    continue
                self._forward(router, downstream, out_port,
                              candidates[winner], cand_index[winner], now)

    def _forward(self, router: Router, downstream: Optional[Router],
                 out_port: int, entry: list, index: int, now: int) -> None:
        # Entry fields must be read before removal: the removal path
        # recycles the entry list into the router's allocation pool.
        in_port = entry[0]
        pkt = entry[2]
        # Inline of ``router.remove_entry_at`` (one call per forwarded
        # packet; must stay exactly equivalent to it).
        entries = router.out_entries[out_port]
        del entries[index]
        if not entries:
            router.port_mask &= ~(1 << out_port)
        slot = in_port * router.n_vcs + entry[1]
        router.vc_pkt[slot] = None
        router.vc_free_at[slot] = now + pkt.flits
        router.n_resident -= 1
        router.kflits -= pkt.flits
        entry[2] = None  # drop the packet reference before pooling
        router._entry_pool.append(entry)
        node = router.node

        # The freed input VC may unblock the upstream router that feeds
        # this input port; wake it when the tail has drained.
        if in_port != LOCAL:
            up_node = self.neighbor_node[node][in_port]
            if up_node is not None:
                up = self.routers[up_node]
                t = now + pkt.flits
                if t < up.next_active:
                    up.next_active = t
                if t < up.kwake:
                    up.kwake = t

        trace = self.trace
        combiner = self._combiner_at[(node << 3) | out_port]
        if combiner is not None:
            before = combiner.packets_combined
            serialization = combiner.serialization_cycles(pkt)
            self.stats.tsb_combined_flit_pairs = combiner.combined_flit_pairs
            if trace is not None and combiner.packets_combined != before:
                trace(now, EV_TSB_COMBINE, {
                    "node": node, "port": out_port, "pid": pkt.pid,
                })
        else:
            serialization = pkt.flits
        router.out_busy_until[out_port] = now + serialization
        kb = self._kbusy
        if kb is not None:
            kb[node, out_port] = now + serialization

        if out_port == LOCAL:
            if router.n_resident == 0:
                self._active_routers.discard(node)
            self.packets_delivered_total += 1
            self.stats.on_deliver(pkt, now)
            if trace is not None:
                trace(now, EV_PKT_DELIVER, {
                    "pid": pkt.pid, "klass": pkt.klass.name,
                    "src": pkt.src, "dst": pkt.dst, "bank": pkt.bank,
                    "inject_cycle": pkt.inject_cycle,
                    "latency": pkt.latency(now), "hops": pkt.hops,
                    "delayed_cycles": pkt.delayed_cycles,
                })
            sink = self._sink_at[node]
            if sink is not None:
                sink(pkt, now)
            return

        arb_forward = self._arb_fwd_at[node]
        if arb_forward is not None:
            arb_forward(node, pkt, now, out_port)
        stats = self.stats
        stats.link_traversals += 1
        stats.flits_forwarded += pkt.flits
        if trace is not None:
            trace(now, EV_PKT_FORWARD, {
                "pid": pkt.pid, "klass": pkt.klass.name,
                "node": node, "port": out_port, "flits": pkt.flits,
                "bank": pkt.bank,
            })
        pkt.hops += 1
        faults = self.faults
        if faults is not None and faults.on_link_traversal(
                pkt, node, out_port, now):
            # The downstream ingress CRC check caught a corrupted flit:
            # the packet is dropped on the wire and the fault plane has
            # already requeued it at its source NI for retransmission.
            if router.n_resident == 0:
                self._active_routers.discard(node)
            return
        ready_at = pkt.ready_at = now + self.hop_cycles
        down_node = downstream.node
        in_p = OPPOSITE[out_port]
        # Inline of ``downstream.free_vc`` + ``downstream.accept`` (one
        # call pair per forwarded packet; must stay exactly equivalent).
        # Both route loops verified a free VC exists before arbitrating,
        # so the claim scan always breaks.
        n_vcs = downstream.n_vcs
        base = in_p * n_vcs
        pkts = downstream.vc_pkt
        free_at = downstream.vc_free_at
        for slot in range(base, base + n_vcs):
            if pkts[slot] is None and free_at[slot] <= now:
                break
        pkts[slot] = pkt
        pool = downstream._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = in_p
            entry[1] = slot - base
            entry[2] = pkt
            entry[3] = ready_at
        else:
            entry = [in_p, slot - base, pkt, ready_at]
        out_p = self._next_port(down_node, pkt)
        downstream.out_entries[out_p].append(entry)
        downstream.port_mask |= 1 << out_p
        downstream.n_resident += 1
        downstream.kflits += pkt.flits
        if ready_at < downstream.next_active:
            downstream.next_active = ready_at
        if ready_at < downstream.kwake:
            downstream.kwake = ready_at
        # The accept consumed a downstream VC, which can flip the
        # bank-aware arbiter's VC-pressure release.  The dense loop sees
        # that this very cycle when the downstream router is scanned
        # after this one (higher node id), else the next cycle.
        t = now if down_node > node else now + 1
        if t < downstream.next_active:
            downstream.next_active = t
        # Kernel hint: the pressure flip only matters where a parked
        # arbitration could be released by it; everywhere else the
        # ``ready_at`` fold above already bounds the next real action
        # (ready candidates are never idle without a pending wake, and
        # the scan a pressure poke forces is a provable no-op there).
        if t < downstream.kwake and (
                self._parked_mask >> (down_node << 3)) & 0x7F:
            downstream.kwake = t
        self._active_routers.add(down_node)
        if router.n_resident == 0:
            self._active_routers.discard(node)

    # ------------------------------------------------------------------
    # Event-driven scheduling support
    # ------------------------------------------------------------------

    def poke_router(self, node: int, cycle: int) -> None:
        """Lower a router's wake hint (estimate changes, bank dequeues)."""
        router = self.routers[node]
        if cycle < router.next_active:
            router.next_active = cycle
        if cycle < router.kwake:
            router.kwake = cycle

    def next_event_cycle(self, now: int) -> int:
        """Lower bound (> ``now``) on the next cycle the network can act.

        :data:`repro.noc.router.NEVER` when nothing is pending.
        """
        nxt = NEVER
        period = self._tick_period
        if period is not None:
            nxt = now + period - now % period
        routers = self.routers
        if self._kern is not None:
            # Kernel mode: the private wake hint bounds the next cycle a
            # scan could change state, so the event scheduler skips the
            # dense ``now + 1`` re-arms entirely (a blocked router sleeps
            # until its bank's dequeue poke, a post-forward router until
            # its link frees).  Soundness: every event that could enable
            # earlier progress lowers ``kwake`` at the same dual-write
            # sites that lower ``next_active``, and the scans (hence
            # steps) this skips are provable no-ops, so simulated state
            # and all counters are untouched -- only ``executed_cycles``
            # shrinks.
            for node in self._active_routers:
                router = routers[node]
                if router.n_resident:
                    t = router.kwake
                    if t < nxt:
                        nxt = t
        else:
            for node in self._active_routers:
                router = routers[node]
                if router.n_resident:
                    t = router.next_active
                    if t < nxt:
                        nxt = t
        for node in self._nonempty_sources:
            queue = self.source_queues[node]
            if not queue:
                continue
            t = queue[0].ready_at
            v = routers[node].next_free_vc_at(LOCAL, now)
            if v > t:
                t = v
            if t < nxt:
                nxt = t
        if nxt <= now:
            return now + 1
        return nxt

    def flush_parked(self, now: int) -> None:
        """Accrue pending parked-delay cycles up to (excluding) ``now``.

        Called at measurement/run boundaries so the delay accrual of
        still-parked packets matches the dense loop through cycle
        ``now - 1`` even though their routers are asleep.
        """
        arbiter = self.arbiter
        for key, (since, entries) in list(self._parked.items()):
            gap = now - since - 1
            if gap > 0:
                arbiter.accrue_parked(entries, gap)
                self._parked[key] = (now - 1, entries)

    # ------------------------------------------------------------------
    # Fault-injection support
    # ------------------------------------------------------------------

    def requeue_at_source(self, pkt: Packet, now: int,
                          ready_at: int) -> None:
        """Re-queue a NACKed packet at its source NI (retransmission).

        The packet restarts its journey from scratch -- fresh waypoint,
        zeroed hop count -- and becomes eligible for injection at
        ``ready_at`` (NACK return latency plus the source NI's backoff).
        The NI queue is FIFO, so a backing-off head blocks younger
        packets behind it exactly like a blocked store buffer would.
        """
        pkt.hops = 0
        pkt.via = None
        self.routing.prepare(pkt)
        pkt.ready_at = ready_at
        self.source_queues[pkt.src].append(pkt)
        self._nonempty_sources.add(pkt.src)

    def release_parked(self, node: int, out_port: int, now: int) -> None:
        """Flush and drop one parked-port record.

        Fault handling (TSB remap) moves entries between output queues;
        the parked snapshot for the affected port would go stale, so the
        pending delay accrual is flushed and the record dropped.  The
        next scan of the port re-parks whatever is still blocked.
        """
        parked = self._parked.pop((node, out_port), None)
        if parked is None:
            return
        self._parked_mask &= ~(1 << ((node << 3) | out_port))
        gap = now - parked[0] - 1
        if gap > 0:
            self.arbiter.accrue_parked(parked[1], gap)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def quiesced(self) -> bool:
        """True when no packets remain anywhere in the network."""
        if self._nonempty_sources:
            return False
        if not self._active_routers:
            return True
        return all(
            self.routers[n].n_resident == 0 for n in self._active_routers
        )

    def total_resident(self) -> int:
        return sum(r.n_resident for r in self.routers)
