"""Cycle-driven 3D NoC built from :class:`repro.noc.router.Router` nodes.

The network advances one cycle at a time.  Each cycle it:

1. drains per-node injection queues into free local-port VCs,
2. lets every router with buffered packets arbitrate each idle output
   port among ready candidates (policy-pluggable: round-robin or the
   paper's bank-aware arbiter) and forward the winner, and
3. ticks the congestion estimator (RCA propagation).

Endpoints register *sinks*: callables invoked when a packet is ejected at
its destination node.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.core.combining import FlitCombiner
from repro.errors import RoutingError
from repro.noc.packet import Packet
from repro.noc.router import Router
from repro.noc.routing import RoutingPolicy
from repro.noc.stats import NetworkStats
from repro.noc.topology import DOWN, LOCAL, N_PORTS, OPPOSITE, Mesh3D
from repro.sim.config import SystemConfig

Sink = Callable[[Packet, int], None]


class Network:
    """The interconnect substrate shared by cores, banks and controllers."""

    def __init__(
        self,
        config: SystemConfig,
        topo: Mesh3D,
        routing: RoutingPolicy,
        arbiter,
        estimator=None,
    ):
        self.config = config
        self.topo = topo
        self.routing = routing
        self.arbiter = arbiter
        self.estimator = estimator
        self.stats = NetworkStats()
        self.routers: List[Router] = [
            Router(node, config.n_vcs) for node in range(topo.n_nodes)
        ]
        #: per-node NI source queues
        self.source_queues: List[deque] = [
            deque() for _ in range(topo.n_nodes)
        ]
        self.sinks: Dict[int, Sink] = {}
        #: optional per-node ejection flow control: node -> (pkt -> bool)
        self.flow_control: Dict[int, Callable[[Packet], bool]] = {}
        self.hop_cycles = config.hop_cycles

        # Precompute neighbours and link serialisation factors.
        self.neighbor_node: List[List[Optional[int]]] = []
        for node in range(topo.n_nodes):
            self.neighbor_node.append(
                [topo.neighbor(node, port) for port in range(N_PORTS)]
            )
        self.neighbors_of: List[List[int]] = [
            [n for n in row[:6] if n is not None]
            for row in self.neighbor_node
        ]
        self._combiners: Dict[tuple, FlitCombiner] = {}
        if routing.region_map is not None and \
                config.region_tsb_width_factor > 1:
            for cache_node in routing.region_map.tsb_cache_nodes():
                core_node = cache_node - topo.nodes_per_layer
                self._combiners[(core_node, DOWN)] = FlitCombiner(
                    config.region_tsb_width_factor
                )
        if estimator is not None:
            estimator.bind(self)
        if hasattr(arbiter, "bind"):
            arbiter.bind(self)

        self._nonempty_sources = set()

    # ------------------------------------------------------------------
    # Endpoint API
    # ------------------------------------------------------------------

    def register_sink(self, node: int, sink: Sink,
                      flow_control: Optional[Callable[[Packet], bool]] = None
                      ) -> None:
        self.sinks[node] = sink
        if flow_control is not None:
            self.flow_control[node] = flow_control

    def can_inject(self, node: int) -> bool:
        """Source-side flow control: is there NI queue space at ``node``?

        Only cores consult this (and stall their streams when it fails);
        banks and controllers mid-transaction may exceed the limit.
        """
        return len(self.source_queues[node]) < self.config.ni_queue_entries

    def inject(self, pkt: Packet, now: int) -> None:
        """Queue a packet at its source NI."""
        self.routing.prepare(pkt)
        self.stats.on_inject(pkt, now)
        self.source_queues[pkt.src].append(pkt)
        self._nonempty_sources.add(pkt.src)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self, now: int) -> None:
        self._inject_sources(now)
        self._route_cycle(now)
        if self.estimator is not None:
            self.estimator.tick(now)

    def _inject_sources(self, now: int) -> None:
        done = []
        for node in self._nonempty_sources:
            queue = self.source_queues[node]
            router = self.routers[node]
            while queue:
                vc = router.free_vc(LOCAL, now)
                if vc < 0:
                    break
                pkt = queue[0]
                if pkt.ready_at > now:
                    break
                queue.popleft()
                pkt.network_cycle = now
                out_port = self.routing.next_port(node, pkt)
                router.accept(LOCAL, vc, pkt, out_port, now)
            if not queue:
                done.append(node)
        for node in done:
            self._nonempty_sources.discard(node)

    def _route_cycle(self, now: int) -> None:
        arbiter = self.arbiter
        for router in self.routers:
            if router.n_resident == 0:
                continue
            node = router.node
            for out_port in range(N_PORTS):
                entries = router.out_entries[out_port]
                if not entries or router.out_busy_until[out_port] > now:
                    continue
                if out_port == LOCAL:
                    downstream = None
                else:
                    down_node = self.neighbor_node[node][out_port]
                    if down_node is None:  # pragma: no cover
                        raise RoutingError(
                            f"packet routed off-mesh at node {node}"
                        )
                    downstream = self.routers[down_node]
                    if downstream.free_vc(OPPOSITE[out_port], now) < 0:
                        continue
                if out_port == LOCAL:
                    accept = self.flow_control.get(node)
                    candidates = [
                        e for e in entries
                        if e[2].ready_at <= now
                        and (accept is None or accept(e[2]))
                    ]
                else:
                    candidates = [e for e in entries if e[2].ready_at <= now]
                if not candidates:
                    continue
                winner = arbiter.choose(node, out_port, candidates, now)
                if winner is None:
                    continue
                entry = candidates[winner]
                self._forward(router, downstream, out_port, entry, now)

    def _forward(self, router: Router, downstream: Optional[Router],
                 out_port: int, entry: list, now: int) -> None:
        pkt = entry[2]
        entries = router.out_entries[out_port]
        entries.remove(entry)
        router.release(entry, now)
        node = router.node

        combiner = self._combiners.get((node, out_port))
        if combiner is not None:
            serialization = combiner.serialization_cycles(pkt)
            self.stats.tsb_combined_flit_pairs = combiner.combined_flit_pairs
        else:
            serialization = pkt.flits
        router.out_busy_until[out_port] = now + serialization

        if out_port == LOCAL:
            self.stats.on_deliver(pkt, now)
            sink = self.sinks.get(node)
            if sink is not None:
                sink(pkt, now)
            return

        self.arbiter.on_forward(node, pkt, now, out_port)
        self.stats.on_forward(pkt, now)
        pkt.hops += 1
        pkt.ready_at = now + self.hop_cycles
        down_node = downstream.node
        in_port = OPPOSITE[out_port]
        vc = downstream.free_vc(in_port, now)
        next_out = self.routing.next_port(down_node, pkt)
        downstream.accept(in_port, vc, pkt, next_out, pkt.ready_at)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def quiesced(self) -> bool:
        """True when no packets remain anywhere in the network."""
        if any(self.source_queues[n] for n in range(self.topo.n_nodes)):
            return False
        return all(r.n_resident == 0 for r in self.routers)

    def total_resident(self) -> int:
        return sum(r.n_resident for r in self.routers)
