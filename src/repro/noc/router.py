"""Packet-granular wormhole router model.

Models the paper's two-stage virtual-channel router (Table 1): per-port
virtual channels, credit-style backpressure (a packet may only move when
a downstream VC at the target input port is free), per-output-port
arbitration, and flit-accurate link serialisation (an output link stays
busy for ``n_flits`` cycles per forwarded packet).

Routing decisions are made once, when a packet arrives at the router, and
the packet is then parked in a per-output-port candidate queue; this is
equivalent to (and much faster than) re-running route computation every
cycle for every buffered flit.

For the event-driven scheduler the router additionally maintains an
*active output-port set* (ports that hold at least one parked entry,
kept incrementally by :meth:`accept`/:meth:`remove_entry`) and a
``next_active`` wake hint: a lower bound on the next cycle at which any
entry at this router could possibly move.  The network may skip the
router entirely until that cycle; any state change that could enable
earlier progress (a new entry arriving, an upstream VC freeing) lowers
the hint again.
"""

from __future__ import annotations

from typing import List, Optional

from repro.noc.packet import Packet
from repro.noc.topology import LOCAL, N_PORTS

#: Sentinel "never" wake cycle for the event-driven scheduler.
NEVER = 1 << 60


class Router:
    """One 7-port (4 cardinal + up/down + local) mesh router."""

    __slots__ = (
        "node", "n_vcs", "vcs", "vc_free_at", "out_busy_until",
        "out_entries", "n_resident", "next_active",
    )

    def __init__(self, node: int, n_vcs: int):
        self.node = node
        self.n_vcs = n_vcs
        #: vcs[port][vc] -> resident/reserved Packet or None
        self.vcs: List[List[Optional[Packet]]] = [
            [None] * n_vcs for _ in range(N_PORTS)
        ]
        #: cycle until which a drained VC is still occupied by a tail
        self.vc_free_at: List[List[int]] = [
            [0] * n_vcs for _ in range(N_PORTS)
        ]
        self.out_busy_until: List[int] = [0] * N_PORTS
        #: out_entries[port] -> list of [in_port, vc, pkt, arrival_cycle]
        self.out_entries: List[List[list]] = [[] for _ in range(N_PORTS)]
        self.n_resident = 0
        #: earliest cycle any entry here could possibly move (lower bound)
        self.next_active = 0

    # ------------------------------------------------------------------

    def free_vc(self, port: int, now: int) -> int:
        """Index of a free VC at an input port, or -1."""
        vcs = self.vcs[port]
        free_at = self.vc_free_at[port]
        for v in range(self.n_vcs):
            if vcs[v] is None and free_at[v] <= now:
                return v
        return -1

    def free_vc_count(self, port: int, now: int) -> int:
        vcs = self.vcs[port]
        free_at = self.vc_free_at[port]
        return sum(
            1 for v in range(self.n_vcs)
            if vcs[v] is None and free_at[v] <= now
        )

    def next_free_vc_at(self, port: int, now: int) -> int:
        """Earliest cycle a VC at ``port`` becomes allocatable.

        Returns ``now`` if one is free already, the earliest tail-drain
        completion among unoccupied VCs otherwise, and :data:`NEVER`
        when every VC still holds a resident packet (a release -- an
        *activity* at this router -- is needed first).
        """
        vcs = self.vcs[port]
        free_at = self.vc_free_at[port]
        best = NEVER
        for v in range(self.n_vcs):
            if vcs[v] is None:
                t = free_at[v]
                if t <= now:
                    return now
                if t < best:
                    best = t
        return best

    def accept(self, port: int, vc: int, pkt: Packet, out_port: int,
               arrival: int) -> None:
        """Reserve an input VC for an incoming packet and park it on its
        output-port candidate queue."""
        self.vcs[port][vc] = pkt
        self.out_entries[out_port].append([port, vc, pkt, arrival])
        self.n_resident += 1
        if arrival < self.next_active:
            self.next_active = arrival

    def remove_entry(self, out_port: int, entry: list, now: int) -> None:
        """Unpark a forwarded entry and free its input VC."""
        entries = self.out_entries[out_port]
        entries.remove(entry)
        self.release(entry, now)

    def release(self, entry: list, now: int) -> None:
        """Free the input VC after the packet's tail has drained."""
        port, vc, pkt, _arrival = entry
        self.vcs[port][vc] = None
        self.vc_free_at[port][vc] = now + pkt.flits
        self.n_resident -= 1

    # ------------------------------------------------------------------
    # Introspection used by the RCA estimator and the stats collector
    # ------------------------------------------------------------------

    def queued_flits(self) -> int:
        """Total flits buffered across all candidate queues."""
        return sum(
            entry[2].flits
            for entries in self.out_entries
            for entry in entries
        )

    def queued_packets(self, out_port: Optional[int] = None) -> int:
        if out_port is None:
            return sum(len(entries) for entries in self.out_entries)
        return len(self.out_entries[out_port])

    def max_output_residual(self, now: int) -> int:
        """Largest remaining output-link busy time across ports."""
        residual = 0
        for port in range(N_PORTS):
            if port == LOCAL:
                continue
            left = self.out_busy_until[port] - now
            if left > residual:
                residual = left
        return residual

    def occupancy(self) -> float:
        """Fraction of input VCs currently holding a packet."""
        held = sum(
            1 for port_vcs in self.vcs for pkt in port_vcs
            if pkt is not None
        )
        return held / float(N_PORTS * self.n_vcs)
