"""Packet-granular wormhole router model.

Models the paper's two-stage virtual-channel router (Table 1): per-port
virtual channels, credit-style backpressure (a packet may only move when
a downstream VC at the target input port is free), per-output-port
arbitration, and flit-accurate link serialisation (an output link stays
busy for ``n_flits`` cycles per forwarded packet).

Routing decisions are made once, when a packet arrives at the router, and
the packet is then parked in a per-output-port candidate queue; this is
equivalent to (and much faster than) re-running route computation every
cycle for every buffered flit.

For the event-driven scheduler the router additionally maintains an
*active output-port set* (``port_mask``, one bit per port holding at
least one parked entry, kept incrementally by :meth:`accept` and the
removal paths) and a ``next_active`` wake hint: a lower bound on the
next cycle at which any entry at this router could possibly move.  The
network may skip the router entirely until that cycle; any state change
that could enable earlier progress (a new entry arriving, an upstream VC
freeing) lowers the hint again.

Hot-path state layout
---------------------
Per-port/per-VC state is stored *flat*: ``vc_pkt`` and ``vc_free_at``
are single preallocated lists indexed ``port * n_vcs + vc`` so the
per-cycle VC scans touch one list object instead of walking a
list-of-lists.  Candidate-queue entries (``[in_port, vc, pkt,
arrival]``) are recycled through a per-router free list: :meth:`accept`
pops from the pool and :meth:`remove_entry_at` pushes back, so steady
state allocates no entry lists at all.  Removal is by *index* (the
caller tracked where the entry sits in its queue), preserving FIFO
candidate order exactly -- no value-equality ``list.remove`` scan.
"""

from __future__ import annotations

from typing import List, Optional

from repro.noc.packet import Packet
from repro.noc.topology import LOCAL, N_PORTS

#: Sentinel "never" wake cycle for the event-driven scheduler.
NEVER = 1 << 60

#: port_mask -> ascending tuple of set port indices (7 ports -> 128 rows);
#: lets the route loop visit only occupied output ports in dense order.
MASK_PORTS = tuple(
    tuple(p for p in range(N_PORTS) if (mask >> p) & 1)
    for mask in range(1 << N_PORTS)
)


class Router:
    """One 7-port (4 cardinal + up/down + local) mesh router."""

    __slots__ = (
        "node", "n_vcs", "vc_pkt", "vc_free_at", "out_busy_until",
        "out_entries", "port_mask", "n_resident", "next_active",
        "_entry_pool", "kwake", "kblocked", "kflits",
    )

    def __init__(self, node: int, n_vcs: int):
        self.node = node
        self.n_vcs = n_vcs
        #: vc_pkt[port * n_vcs + vc] -> resident/reserved Packet or None
        self.vc_pkt: List[Optional[Packet]] = [None] * (N_PORTS * n_vcs)
        #: cycle until which a drained VC is still occupied by a tail
        self.vc_free_at: List[int] = [0] * (N_PORTS * n_vcs)
        self.out_busy_until: List[int] = [0] * N_PORTS
        #: out_entries[port] -> list of [in_port, vc, pkt, arrival_cycle]
        self.out_entries: List[List[list]] = [[] for _ in range(N_PORTS)]
        #: bit ``p`` set iff ``out_entries[p]`` is non-empty
        self.port_mask = 0
        self.n_resident = 0
        #: earliest cycle any entry here could possibly move (lower bound)
        self.next_active = 0
        #: recycled entry lists (allocation pooling for the hot loop)
        self._entry_pool: List[list] = []
        #: kernel-mode wake hint (see ``Network._route_cycle_kernel``).
        #: Unlike ``next_active`` it is *not* escalated to ``now + 1`` on
        #: a flow-control refusal -- the refusing bank is recorded in
        #: ``kblocked`` instead and the kernel loop polls its queue depth
        #: directly, so blocked routers sleep instead of rescanning.
        #: Maintained (lowered) at every site that lowers ``next_active``.
        self.kwake = 0
        #: the BankController whose full queue refused a ready LOCAL
        #: candidate on the last kernel scan, or None
        self.kblocked = None
        #: incremental mirror of :meth:`queued_flits` (the RCA tick
        #: kernel folds it without walking the candidate queues)
        self.kflits = 0

    # ------------------------------------------------------------------

    @property
    def vcs(self) -> List[List[Optional[Packet]]]:
        """Nested ``[port][vc]`` view of the flat VC state (introspection
        only -- the hot path indexes ``vc_pkt`` directly)."""
        n = self.n_vcs
        return [self.vc_pkt[p * n:(p + 1) * n] for p in range(N_PORTS)]

    def free_vc(self, port: int, now: int) -> int:
        """Index of a free VC at an input port, or -1."""
        pkts = self.vc_pkt
        free_at = self.vc_free_at
        base = port * self.n_vcs
        for i in range(base, base + self.n_vcs):
            if pkts[i] is None and free_at[i] <= now:
                return i - base
        return -1

    def free_vc_count(self, port: int, now: int) -> int:
        pkts = self.vc_pkt
        free_at = self.vc_free_at
        base = port * self.n_vcs
        count = 0
        for i in range(base, base + self.n_vcs):
            if pkts[i] is None and free_at[i] <= now:
                count += 1
        return count

    def next_free_vc_at(self, port: int, now: int) -> int:
        """Earliest cycle a VC at ``port`` becomes allocatable.

        Returns ``now`` if one is free already, the earliest tail-drain
        completion among unoccupied VCs otherwise, and :data:`NEVER`
        when every VC still holds a resident packet (a release -- an
        *activity* at this router -- is needed first).
        """
        pkts = self.vc_pkt
        free_at = self.vc_free_at
        base = port * self.n_vcs
        best = NEVER
        for i in range(base, base + self.n_vcs):
            if pkts[i] is None:
                t = free_at[i]
                if t <= now:
                    return now
                if t < best:
                    best = t
        return best

    def accept(self, port: int, vc: int, pkt: Packet, out_port: int,
               arrival: int) -> None:
        """Reserve an input VC for an incoming packet and park it on its
        output-port candidate queue."""
        self.vc_pkt[port * self.n_vcs + vc] = pkt
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = port
            entry[1] = vc
            entry[2] = pkt
            entry[3] = arrival
        else:
            entry = [port, vc, pkt, arrival]
        self.out_entries[out_port].append(entry)
        self.port_mask |= 1 << out_port
        self.n_resident += 1
        self.kflits += pkt.flits
        if arrival < self.next_active:
            self.next_active = arrival
        if arrival < self.kwake:
            self.kwake = arrival

    def remove_entry_at(self, out_port: int, index: int, now: int) -> None:
        """Unpark the entry at ``index`` of an output queue and free its
        input VC; the entry list is recycled into the pool.

        The :meth:`release` body is inlined -- this runs once per
        forwarded packet."""
        entries = self.out_entries[out_port]
        entry = entries[index]
        del entries[index]
        if not entries:
            self.port_mask &= ~(1 << out_port)
        slot = entry[0] * self.n_vcs + entry[1]
        self.vc_pkt[slot] = None
        self.vc_free_at[slot] = now + entry[2].flits
        self.n_resident -= 1
        self.kflits -= entry[2].flits
        entry[2] = None  # drop the packet reference before pooling
        self._entry_pool.append(entry)

    def remove_entry(self, out_port: int, entry: list, now: int) -> None:
        """Unpark a forwarded entry and free its input VC.

        Identity-based: finds the exact ``entry`` object, never a merely
        value-equal sibling (the same packet object may appear in more
        than one entry in pathological/test scenarios, and pooled entry
        lists make value equality meaningless).
        """
        entries = self.out_entries[out_port]
        for index, candidate in enumerate(entries):
            if candidate is entry:
                self.remove_entry_at(out_port, index, now)
                return
        raise ValueError(
            f"entry not parked at node {self.node} port {out_port}"
        )

    def release(self, entry: list, now: int) -> None:
        """Free the input VC after the packet's tail has drained."""
        port, vc, pkt, _arrival = entry
        slot = port * self.n_vcs + vc
        self.vc_pkt[slot] = None
        self.vc_free_at[slot] = now + pkt.flits
        self.n_resident -= 1

    # ------------------------------------------------------------------
    # Introspection used by the RCA estimator and the stats collector
    # ------------------------------------------------------------------

    def queued_flits(self) -> int:
        """Total flits buffered across all candidate queues."""
        total = 0
        for entries in self.out_entries:
            for entry in entries:
                total += entry[2].flits
        return total

    def queued_packets(self, out_port: Optional[int] = None) -> int:
        if out_port is None:
            count = 0
            for entries in self.out_entries:
                count += len(entries)
            return count
        return len(self.out_entries[out_port])

    def max_output_residual(self, now: int) -> int:
        """Largest remaining output-link busy time across ports."""
        residual = 0
        busy = self.out_busy_until
        for port in range(N_PORTS):
            if port == LOCAL:
                continue
            left = busy[port] - now
            if left > residual:
                residual = left
        return residual

    def occupancy(self) -> float:
        """Fraction of input VCs currently holding a packet."""
        held = 0
        for pkt in self.vc_pkt:
            if pkt is not None:
                held += 1
        return held / float(N_PORTS * self.n_vcs)
