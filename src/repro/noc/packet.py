"""Network packet model.

The simulator is packet-granular with flit-accurate serialisation: a packet
occupies one virtual channel per router and holds an output link for
``n_flits`` cycles when it is forwarded, which preserves wormhole contention
behaviour while keeping a pure-Python cycle simulator tractable (see
DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional


class PacketClass(enum.IntEnum):
    """Traffic classes distinguished by the paper's arbitration policy.

    The STT-RAM-aware arbiter may *delay* ``REQUEST`` packets headed to a
    busy bank while *boosting* coherence and memory-controller traffic
    (Section 3.2).
    """

    REQUEST = 0      # core -> L2 bank (read request or write-back data)
    RESPONSE = 1     # L2 bank -> core (fill data)
    COHERENCE = 2    # directory invalidations / forwards / acks
    MEMORY = 3       # L2 bank <-> memory controller
    ACK = 4          # WB-estimator timestamp acknowledgements


_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Restart packet id numbering (used by tests for determinism)."""
    global _packet_ids
    _packet_ids = itertools.count()


class Packet:
    """A network packet.

    Attributes:
        klass: Traffic class, see :class:`PacketClass`.
        src: Source router node id.
        dst: Destination router node id.
        flits: Packet length in flits (1 for address, 8 for data packets).
        is_write: For ``REQUEST`` packets: whether this access writes the
            L2 bank (a store miss fill-request is a read; a write-back is
            a write).
        bank: Destination L2 bank index for bank-bound requests else None.
        via: Optional intermediate node (same layer as the packet's
            current position) the packet must reach before changing
            layers; used to implement Z-X-Y routing and the region-TSB
            serialisation points.
        inject_cycle: Cycle the packet entered the source NI queue.
        network_cycle: Cycle the packet entered the network proper.
        ready_at: Cycle at which the packet becomes arbitratable at its
            current router.
        wb_timestamp: Timestamp tag carried for the WB estimator, or None.
        payload: Opaque reference used by the endpoints (transaction).
    """

    __slots__ = (
        "pid", "klass", "src", "dst", "flits", "is_write", "bank", "via",
        "inject_cycle", "network_cycle", "ready_at", "wb_timestamp",
        "payload", "hops", "delayed_cycles", "combined",
    )

    def __init__(
        self,
        klass: PacketClass,
        src: int,
        dst: int,
        flits: int,
        inject_cycle: int,
        is_write: bool = False,
        bank: Optional[int] = None,
        via: Optional[int] = None,
        payload=None,
    ):
        self.pid = next(_packet_ids)
        self.klass = klass
        self.src = src
        self.dst = dst
        self.flits = flits
        self.is_write = is_write
        self.bank = bank
        self.via = via
        self.inject_cycle = inject_cycle
        self.network_cycle = inject_cycle
        self.ready_at = inject_cycle
        self.wb_timestamp: Optional[int] = None
        self.payload = payload
        self.hops = 0
        #: Cycles this packet spent explicitly delayed by the bank-aware
        #: arbiter (for instrumentation).
        self.delayed_cycles = 0
        #: True when the packet shared a region-TSB traversal slot with a
        #: companion packet (flit combining, Section 3.4).
        self.combined = False

    def latency(self, now: int) -> int:
        """Total latency from NI enqueue until ``now``."""
        return now - self.inject_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wr = "W" if self.is_write else "R"
        return (
            f"Packet#{self.pid}({self.klass.name}/{wr} {self.src}->"
            f"{self.dst} flits={self.flits})"
        )
