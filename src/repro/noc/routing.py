"""Deterministic routing policies for the two-layer 3D mesh.

Three routing behaviours from the paper coexist:

* **Baseline (64 TSB)**: request packets descend at the source column
  (Z-X-Y) and then use X-Y routing in the cache layer; responses ascend at
  the bank's column and use X-Y routing in the core layer.
* **Region-restricted (4/8/16 TSB)**: request packets are first X-Y routed
  *within the core layer* to the region-TSB node, descend through the
  region TSB, then X-Y routed in the cache layer to the bank -- creating
  the serialisation points the paper's estimators rely on (Section 3.4).
  Responses and coherence traffic remain unrestricted (all vertical TSVs).
* **Memory traffic** stays within the cache layer (X-Y).

All of these are expressed with a single ``via`` waypoint carried by the
packet: route X-Y to the waypoint in the current layer, then vertically to
the destination layer, then X-Y to the destination.

Routing-table precomputation
----------------------------
The topology (and any region restriction) is static, so the whole
dimension-ordered step function is precomputed at construction:
``_xy_table[node][target_offset]`` holds the X-Y output port from
``node`` toward the node at ``target_offset`` within the same layer.
:meth:`next_port` -- one call per hop on the executed-cycle hot path --
is then pure integer arithmetic plus two list indexes: no dict lookups,
no coordinate decomposition, no memo-key tuple hashing.
:meth:`_compute_port` keeps the original closed-form derivation as the
reference the table is verified against (tests/test_routing.py).
"""

from __future__ import annotations

from typing import List

from repro.errors import RoutingError
from repro.noc.packet import Packet, PacketClass
from repro.noc.topology import (
    DOWN, EAST, LOCAL, NORTH, SOUTH, UP, WEST, Mesh3D,
)


class RoutingPolicy:
    """X-Y(-Z) routing with optional region-TSB request restriction.

    Args:
        topo: The mesh geometry.
        region_map: A :class:`repro.core.regions.RegionMap` when request
            path diversity is restricted, else None (all 64 TSBs usable).
    """

    def __init__(self, topo: Mesh3D, region_map=None):
        self.topo = topo
        self.region_map = region_map
        self._npl = topo.nodes_per_layer
        #: _xy_table[node][offset] -> X-Y port from ``node`` toward the
        #: same-layer node at layer-local ``offset`` (LOCAL on self).
        width = topo.width
        self._xy_table: List[List[int]] = []
        for node in range(topo.n_nodes):
            _layer, x, y = topo.coords(node)
            row = []
            for offset in range(self._npl):
                ty, tx = divmod(offset, width)
                if x != tx:
                    row.append(EAST if tx > x else WEST)
                elif y != ty:
                    row.append(NORTH if ty > y else SOUTH)
                else:
                    row.append(LOCAL)
            self._xy_table.append(row)

    # ------------------------------------------------------------------

    def prepare(self, pkt: Packet) -> Packet:
        """Assign the packet's ``via`` waypoint at injection time."""
        src_layer = self.topo.layer_of(pkt.src)
        dst_layer = self.topo.layer_of(pkt.dst)
        if src_layer == dst_layer:
            pkt.via = None
        elif pkt.klass is PacketClass.REQUEST and src_layer == 0:
            if self.region_map is not None:
                # Region-restricted: serialise through the region TSB.
                bank = self.topo.bank_of_node(pkt.dst)
                pkt.via = self.region_map.request_via(bank)
            else:
                # Z-X-Y: descend at the source column, X-Y below.
                pkt.via = pkt.src
        else:
            # Cache-to-core traffic (responses, coherence, WB acks) uses
            # X-Y-Z: traverse the cache layer and ascend at the
            # destination column, keeping the core layer free for the
            # request convergence toward the TSBs.
            _dlayer, dx, dy = self.topo.coords(pkt.dst)
            pkt.via = self.topo.node_id(src_layer, dx, dy)
        if pkt.via is not None and \
                self.topo.layer_of(pkt.via) != src_layer:
            raise RoutingError(
                f"waypoint {pkt.via} is not in layer {src_layer}"
            )
        return pkt

    # ------------------------------------------------------------------

    def _xy_port(self, x: int, y: int, tx: int, ty: int) -> int:
        if x != tx:
            return EAST if tx > x else WEST
        if y != ty:
            return NORTH if ty > y else SOUTH
        raise RoutingError("xy step requested at the target node")

    def next_port(self, node: int, pkt: Packet) -> int:
        """Output port for ``pkt`` at ``node``.

        Consumes the ``via`` waypoint when the packet reaches it.
        Table-driven hot path: matches :meth:`_compute_port` exactly.
        """
        dst = pkt.dst
        if node == dst:
            return LOCAL
        npl = self._npl
        via = pkt.via
        if via is not None:
            if via != node:
                return self._xy_table[node][
                    via - npl if via >= npl else via]
            pkt.via = None
        if dst >= npl:
            if node < npl:
                return DOWN
            return self._xy_table[node][dst - npl]
        if node >= npl:
            return UP
        return self._xy_table[node][dst]

    def _compute_port(self, node: int, dst: int, via):
        """Closed-form (out_port, via_after) reference for one routing
        step; the precomputed table path must agree with it."""
        if node == dst:
            return (LOCAL, via)
        layer, x, y = self.topo.coords(node)
        if via is not None:
            if node == via:
                via = None
            else:
                vlayer, vx, vy = self.topo.coords(via)
                if vlayer != layer:
                    raise RoutingError(
                        f"waypoint {via} is not in layer {layer}"
                    )
                return (self._xy_port(x, y, vx, vy), via)
        dlayer, dx, dy = self.topo.coords(dst)
        if layer != dlayer:
            return (DOWN if dlayer > layer else UP, via)
        return (self._xy_port(x, y, dx, dy), via)

    # ------------------------------------------------------------------

    def route_nodes(self, pkt: Packet) -> list:
        """Full node sequence this packet will take (for analysis/tests).

        Does not mutate the packet.
        """
        saved_via = pkt.via
        nodes = [pkt.src]
        node = pkt.src
        limit = 4 * self.topo.n_nodes
        while node != pkt.dst:
            port = self.next_port(node, pkt)
            nxt = self.topo.neighbor(node, port)
            if nxt is None:
                raise RoutingError(f"route fell off the mesh at {node}")
            nodes.append(nxt)
            node = nxt
            if len(nodes) > limit:  # pragma: no cover - safety net
                raise RoutingError("routing loop detected")
        pkt.via = saved_via
        return nodes
