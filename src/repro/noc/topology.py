"""Two-layer 3D mesh topology (paper Section 4.1, Figure 4).

The CMP has two stacked silicon layers connected by through-silicon vias:

* layer 0 ("core layer"): ``W x W`` mesh, one core + router per node;
* layer 1 ("cache layer"): ``W x W`` mesh, one L2 bank + router per node.

Node ids follow the paper's Figure 4: node ``y * W + x`` in the core layer
and ``W*W + y * W + x`` in the cache layer, so cache bank ``b`` sits at
node ``W*W + b`` directly below core ``b``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import TopologyError

# Port indices of a 3D mesh router (P=7: 4 cardinal, 2 vertical, 1 local).
EAST, WEST, NORTH, SOUTH, UP, DOWN, LOCAL = range(7)
N_PORTS = 7

PORT_NAMES = ("EAST", "WEST", "NORTH", "SOUTH", "UP", "DOWN", "LOCAL")

#: The inverse direction of each port (for credit/estimate back-channels).
OPPOSITE = (WEST, EAST, SOUTH, NORTH, DOWN, UP, LOCAL)


class Mesh3D:
    """Geometry helper for the two-layer mesh.

    The topology is purely combinational: it answers coordinate and
    neighbourhood queries and enumerates links; routers and links
    themselves live in :mod:`repro.noc.network`.
    """

    def __init__(self, width: int):
        if width < 2:
            raise TopologyError("mesh width must be >= 2")
        self.width = width
        self.nodes_per_layer = width * width
        self.n_nodes = 2 * self.nodes_per_layer

    # -- coordinates ----------------------------------------------------

    def coords(self, node: int) -> Tuple[int, int, int]:
        """Return ``(layer, x, y)`` for a node id."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"bad node id {node}")
        layer, offset = divmod(node, self.nodes_per_layer)
        y, x = divmod(offset, self.width)
        return layer, x, y

    def node_id(self, layer: int, x: int, y: int) -> int:
        if not (0 <= layer < 2 and 0 <= x < self.width and 0 <= y < self.width):
            raise TopologyError(f"bad coordinate ({layer}, {x}, {y})")
        return layer * self.nodes_per_layer + y * self.width + x

    def layer_of(self, node: int) -> int:
        return node // self.nodes_per_layer

    def core_node(self, core: int) -> int:
        """Router node id of core ``core`` (layer 0)."""
        if not 0 <= core < self.nodes_per_layer:
            raise TopologyError(f"bad core id {core}")
        return core

    def bank_node(self, bank: int) -> int:
        """Router node id of L2 bank ``bank`` (layer 1)."""
        if not 0 <= bank < self.nodes_per_layer:
            raise TopologyError(f"bad bank id {bank}")
        return self.nodes_per_layer + bank

    def bank_of_node(self, node: int) -> int:
        """Inverse of :meth:`bank_node`."""
        if node < self.nodes_per_layer:
            raise TopologyError(f"node {node} is not in the cache layer")
        return node - self.nodes_per_layer

    # -- neighbourhood ----------------------------------------------------

    def neighbor(self, node: int, port: int) -> Optional[int]:
        """Node reached through ``port``, or None at a mesh edge."""
        layer, x, y = self.coords(node)
        if port == EAST:
            return self.node_id(layer, x + 1, y) if x + 1 < self.width else None
        if port == WEST:
            return self.node_id(layer, x - 1, y) if x >= 1 else None
        if port == NORTH:
            return self.node_id(layer, x, y + 1) if y + 1 < self.width else None
        if port == SOUTH:
            return self.node_id(layer, x, y - 1) if y >= 1 else None
        if port == UP:
            return node - self.nodes_per_layer if layer == 1 else None
        if port == DOWN:
            return node + self.nodes_per_layer if layer == 0 else None
        if port == LOCAL:
            return None
        raise TopologyError(f"bad port {port}")

    def links(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every directed link as ``(src_node, out_port, dst_node)``."""
        for node in range(self.n_nodes):
            for port in (EAST, WEST, NORTH, SOUTH, UP, DOWN):
                dst = self.neighbor(node, port)
                if dst is not None:
                    yield node, port, dst

    # -- distances ----------------------------------------------------------

    def manhattan(self, a: int, b: int) -> int:
        """Hop distance between two nodes (XY within layer + vertical)."""
        la, xa, ya = self.coords(a)
        lb, xb, yb = self.coords(b)
        return abs(xa - xb) + abs(ya - yb) + abs(la - lb)

    def xy_path(self, src: int, dst: int) -> List[int]:
        """Nodes visited by dimension-ordered X-then-Y routing, inclusive.

        Both nodes must be in the same layer.
        """
        ls, xs, ys = self.coords(src)
        ld, xd, yd = self.coords(dst)
        if ls != ld:
            raise TopologyError("xy_path requires nodes in the same layer")
        path = [src]
        x, y = xs, ys
        while x != xd:
            x += 1 if xd > x else -1
            path.append(self.node_id(ls, x, y))
        while y != yd:
            y += 1 if yd > y else -1
            path.append(self.node_id(ls, x, y))
        return path

    def corner_nodes(self, layer: int) -> List[int]:
        """The four corner node ids of a layer (memory controller sites)."""
        w = self.width
        return [
            self.node_id(layer, 0, 0),
            self.node_id(layer, w - 1, 0),
            self.node_id(layer, 0, w - 1),
            self.node_id(layer, w - 1, w - 1),
        ]
