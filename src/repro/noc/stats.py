"""Network statistics collection."""

from __future__ import annotations

from typing import Dict

from repro.noc.packet import Packet, PacketClass
from repro.obs.metrics import percentiles_from_hist


class NetworkStats:
    """Counters and latency accumulators for one simulation run."""

    __slots__ = (
        "injected", "delivered", "latency_sum", "hop_sum",
        "flits_forwarded", "link_traversals", "tsb_combined_flit_pairs",
        "delayed_cycle_sum", "max_latency", "latency_hist",
    )

    def __init__(self):
        self.injected: Dict[PacketClass, int] = {k: 0 for k in PacketClass}
        self.delivered: Dict[PacketClass, int] = {k: 0 for k in PacketClass}
        self.latency_sum: Dict[PacketClass, int] = {k: 0 for k in PacketClass}
        self.hop_sum = 0
        self.flits_forwarded = 0
        self.link_traversals = 0
        self.tsb_combined_flit_pairs = 0
        self.delayed_cycle_sum = 0
        self.max_latency = 0
        #: latency value -> number of delivered packets with that latency
        #: (the scheduler-equivalence tests compare these distributions,
        #: which catch per-packet drift that aggregate means average out)
        self.latency_hist: Dict[int, int] = {}

    def on_inject(self, pkt: Packet, now: int) -> None:
        self.injected[pkt.klass] += 1

    def on_forward(self, pkt: Packet, now: int) -> None:
        self.link_traversals += 1
        self.flits_forwarded += pkt.flits

    def on_deliver(self, pkt: Packet, now: int) -> None:
        self.delivered[pkt.klass] += 1
        latency = pkt.latency(now)
        self.latency_sum[pkt.klass] += latency
        self.hop_sum += pkt.hops
        self.delayed_cycle_sum += pkt.delayed_cycles
        hist = self.latency_hist
        hist[latency] = hist.get(latency, 0) + 1
        if latency > self.max_latency:
            self.max_latency = latency

    # ------------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())

    def in_flight(self) -> int:
        return self.total_injected - self.total_delivered

    def average_latency(self, klass=None) -> float:
        """Mean NI-to-NI packet latency, optionally for one class."""
        if klass is None:
            total = sum(self.latency_sum.values())
            count = self.total_delivered
        else:
            total = self.latency_sum[klass]
            count = self.delivered[klass]
        return total / count if count else 0.0

    def average_hops(self) -> float:
        count = self.total_delivered
        return self.hop_sum / count if count else 0.0

    def latency_percentiles(self) -> Dict[float, float]:
        """p50/p95/p99 of the NI-to-NI latency distribution."""
        return percentiles_from_hist(self.latency_hist)

    def as_dict(self) -> dict:
        percentiles = self.latency_percentiles()
        return {
            "injected": dict(self.injected),
            "delivered": dict(self.delivered),
            "avg_latency": self.average_latency(),
            "latency_p50": percentiles[50.0],
            "latency_p95": percentiles[95.0],
            "latency_p99": percentiles[99.0],
            "avg_hops": self.average_hops(),
            "flits_forwarded": self.flits_forwarded,
            "link_traversals": self.link_traversals,
            "combined_flit_pairs": self.tsb_combined_flit_pairs,
            "delayed_cycle_sum": self.delayed_cycle_sum,
            "max_latency": self.max_latency,
            "latency_hist": dict(self.latency_hist),
        }
