"""On-chip network substrate: topology, routing, routers, packets."""

from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass
from repro.noc.router import Router
from repro.noc.routing import RoutingPolicy
from repro.noc.stats import NetworkStats
from repro.noc.topology import (
    DOWN, EAST, LOCAL, NORTH, N_PORTS, OPPOSITE, SOUTH, UP, WEST, Mesh3D,
)

__all__ = [
    "Network", "Packet", "PacketClass", "Router", "RoutingPolicy",
    "NetworkStats", "Mesh3D", "EAST", "WEST", "NORTH", "SOUTH", "UP",
    "DOWN", "LOCAL", "N_PORTS", "OPPOSITE",
]
