"""Un-core energy model (Table 2 devices + Orion-style router energy)."""

from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = ["EnergyBreakdown", "EnergyModel"]
