"""Un-core (L2 + interconnect) energy accounting (Figure 8).

Energy is attributed from event counters collected during simulation:

* cache dynamic energy: per-access read/write energies from Table 2,
* cache leakage: per-bank leakage power x simulated time (the dominant
  term, and the reason STT-RAM saves ~54% un-core energy on average),
* network dynamic energy: per-flit router/link/TSB traversal energies,
* network leakage: per-router leakage x simulated time, plus the RCA
  scheme's side-band wiring overhead when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.device import CYCLE_SECONDS, MemoryDevice, device_for
from repro.energy import params
from repro.sim.config import Estimator, SystemConfig


@dataclass
class EnergyBreakdown:
    """Joules per component over a measurement window."""

    cache_dynamic: float
    cache_leakage: float
    network_dynamic: float
    network_leakage: float
    write_buffer: float

    @property
    def total(self) -> float:
        return (
            self.cache_dynamic + self.cache_leakage
            + self.network_dynamic + self.network_leakage
            + self.write_buffer
        )

    def as_dict(self) -> dict:
        return {
            "cache_dynamic_j": self.cache_dynamic,
            "cache_leakage_j": self.cache_leakage,
            "network_dynamic_j": self.network_dynamic,
            "network_leakage_j": self.network_leakage,
            "write_buffer_j": self.write_buffer,
            "total_j": self.total,
        }


class EnergyModel:
    """Turns event counters into an :class:`EnergyBreakdown`."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.device: MemoryDevice = device_for(config.cache_technology)

    def compute(
        self,
        cycles: int,
        bank_reads: int,
        bank_writes: int,
        router_flits: int,
        link_flits: int,
        tsb_flits: int = 0,
        write_buffer_accesses: int = 0,
    ) -> EnergyBreakdown:
        """Energy over ``cycles`` of simulated time.

        Args:
            bank_reads / bank_writes: Array accesses (fills and drains
                count as writes).
            router_flits: Flit-router traversals.
            link_flits: Flit-link traversals (planar).
            tsb_flits: Flit-TSB traversals (vertical).
            write_buffer_accesses: BUFF-N buffer operations.
        """
        config = self.config
        seconds = cycles * CYCLE_SECONDS

        cache_dynamic = (
            bank_reads * self.device.access_energy_joules(False)
            + bank_writes * self.device.access_energy_joules(True)
        )
        cache_leakage = (
            config.n_banks * self.device.leakage_mw * 1e-3 * seconds
        )

        network_dynamic = (
            router_flits * params.ROUTER_ENERGY_PER_FLIT
            + link_flits * params.LINK_ENERGY_PER_FLIT
            + tsb_flits * params.TSB_ENERGY_PER_FLIT
        )
        router_leak_w = params.ROUTER_LEAKAGE_W
        if config.estimator is Estimator.RCA:
            router_leak_w += params.RCA_WIRING_LEAKAGE_W
        network_leakage = config.n_routers * router_leak_w * seconds

        write_buffer = 0.0
        if config.write_buffer is not None:
            write_buffer = (
                config.n_banks * params.WRITE_BUFFER_LEAKAGE_W * seconds
                + write_buffer_accesses * params.WRITE_BUFFER_ACCESS_ENERGY
            )
        return EnergyBreakdown(
            cache_dynamic=cache_dynamic,
            cache_leakage=cache_leakage,
            network_dynamic=network_dynamic,
            network_leakage=network_leakage,
            write_buffer=write_buffer,
        )
