"""Energy model constants.

Cache-bank numbers come from paper Table 2.  Router and link energies are
representative Orion-derived constants for a 2-stage 5-7 port VC router
with 128-bit flits at 32 nm / 3 GHz (the paper uses Orion numbers inside
its simulator but does not tabulate them; only *relative* un-core energy
across schemes matters for Figure 8).
"""

from __future__ import annotations

#: Dynamic energy per flit traversing one router (buffer write + read,
#: VA/SA arbitration, crossbar), in joules.
ROUTER_ENERGY_PER_FLIT = 0.098e-9

#: Dynamic energy per flit traversing one inter-router link, in joules.
LINK_ENERGY_PER_FLIT = 0.024e-9

#: Dynamic energy per flit traversing a vertical TSB, in joules.  TSVs
#: are short and wide, cheaper than planar links.
TSB_ENERGY_PER_FLIT = 0.008e-9

#: Router leakage power, watts per router.
ROUTER_LEAKAGE_W = 0.0045

#: Extra static power of the RCA side-band wiring (8-bit estimate wires
#: between neighbours), watts per router.
RCA_WIRING_LEAKAGE_W = 0.0003

#: Per-bank leakage of the BUFF-20 SRAM write buffer, watts.  20 entries
#: x 128 B is ~2.5 KB of SRAM plus CAM-style lookup.
WRITE_BUFFER_LEAKAGE_W = 0.004

#: Energy per write-buffer access (absorb, probe hit, drain read), joules.
WRITE_BUFFER_ACCESS_ENERGY = 0.012e-9
