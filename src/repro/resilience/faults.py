"""Deterministic fault-injection engine (config, schedule, fault plane).

One :class:`FaultPlane` instance attaches to one
:class:`~repro.sim.simulator.CMPSimulator` and owns all injected-fault
state: the seeded RNG that drives per-link-traversal corruption draws,
the sorted schedule of stuck-at TSB / bank-port failures, per-packet
retransmission attempt counts, and the monotonic fault counters the
``repro.cli chaos`` report prints.

Determinism: every corruption draw happens at a link traversal, and the
dense and event schedulers forward packets in bit-identical order, so a
``(FaultConfig.seed, workload)`` pair fully determines a fault run.
Scheduled failures fire from ``on_cycle`` at the top of each executed
cycle; the simulator's cycle-skip bound folds in ``next_scheduled`` so
the event scheduler never skips over a failure cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import FaultConfigError, FaultError
from repro.noc.packet import Packet, PacketClass
from repro.noc.router import NEVER
from repro.noc.topology import DOWN, N_PORTS
from repro.obs.events import (
    EV_FAULT_BANK, EV_FAULT_CRC, EV_FAULT_RETRANSMIT, EV_FAULT_TSB,
)


# ----------------------------------------------------------------------
# CRC-16/CCITT over the packet header (the detection model)
# ----------------------------------------------------------------------

def crc16(data: bytes, poly: int = 0x1021, init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over ``data`` (the NoC link-layer checksum)."""
    crc = init
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ poly) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def packet_crc(pkt: Packet) -> int:
    """Header CRC a router ingress would check for ``pkt``.

    Covers the fields a corrupted head flit could falsify: identity,
    class, endpoints, length and the write/bank routing metadata.
    """
    bank = 0xFFFF if pkt.bank is None else pkt.bank
    header = (
        (pkt.pid & 0xFFFFFFFF).to_bytes(4, "big")
        + bytes((int(pkt.klass), pkt.flits & 0xFF, int(pkt.is_write)))
        + (pkt.src & 0xFFFF).to_bytes(2, "big")
        + (pkt.dst & 0xFFFF).to_bytes(2, "big")
        + (bank & 0xFFFF).to_bytes(2, "big")
    )
    return crc16(header)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultConfig:
    """Seeded, declarative fault schedule for one run.

    All three fault models are off by default; a default-constructed
    ``FaultConfig`` injects nothing.
    """

    #: seed for the corruption-draw RNG (full determinism contract)
    seed: int = 1
    #: per-link-traversal probability of flit corruption (0 disables)
    crc_rate: float = 0.0
    #: source-NI retransmission backoff: ``min(cap, base << (attempt-1))``
    retransmit_base_backoff: int = 4
    retransmit_max_backoff: int = 256
    #: safety valve: a packet corrupted this many times raises
    #: :class:`~repro.errors.FaultError` (only reachable with absurd
    #: rates; real transient-fault rates retry a handful of times)
    max_retransmits: int = 64
    #: stuck-at TSB failures: ``(region_index, fail_cycle)`` pairs
    tsb_failures: Tuple[Tuple[int, int], ...] = ()
    #: bank port failures: ``(bank, fail_cycle, duration)`` triples;
    #: ``duration=None`` means the port never heals
    bank_port_failures: Tuple[Tuple[int, int, Optional[int]], ...] = \
        field(default_factory=tuple)
    #: cycles a queued request waits at a failed bank port before the
    #: controller redirects it around the array
    bank_redirect_timeout: int = 64

    def any_faults(self) -> bool:
        return bool(
            self.crc_rate > 0
            or self.tsb_failures
            or self.bank_port_failures
        )

    def validate(self, config) -> "FaultConfig":
        """Check the schedule against a ``SystemConfig``; returns self.

        Raises :class:`~repro.errors.FaultConfigError` on rates outside
        [0, 1), non-positive backoff/timeout knobs, out-of-range region
        or bank indexes, or a TSB fault on a scheme without region TSBs
        (there is no vertical link to fail, and nothing to degrade to).
        """
        if not 0.0 <= self.crc_rate < 1.0:
            raise FaultConfigError(
                f"crc_rate must be in [0, 1), got {self.crc_rate}"
            )
        for name in ("retransmit_base_backoff", "retransmit_max_backoff",
                     "max_retransmits", "bank_redirect_timeout"):
            if getattr(self, name) < 1:
                raise FaultConfigError(f"{name} must be >= 1")
        if self.tsb_failures:
            n_regions = config.n_region_tsbs
            if n_regions is None:
                raise FaultConfigError(
                    "TSB faults need a region-restricted scheme "
                    "(n_region_tsbs is None: there is no TSB to fail)"
                )
            if n_regions < 2:
                raise FaultConfigError(
                    "TSB degradation needs >= 2 regions to remap onto"
                )
            if len(self.tsb_failures) >= n_regions:
                raise FaultConfigError(
                    f"cannot fail {len(self.tsb_failures)} of "
                    f"{n_regions} region TSBs and keep a healthy donor"
                )
            for region, cycle in self.tsb_failures:
                if not 0 <= region < n_regions:
                    raise FaultConfigError(
                        f"TSB fault region {region} out of range "
                        f"[0, {n_regions})"
                    )
                if cycle < 0:
                    raise FaultConfigError("TSB fail_cycle must be >= 0")
        for entry in self.bank_port_failures:
            bank, cycle, duration = entry
            if not 0 <= bank < config.n_banks:
                raise FaultConfigError(
                    f"bank fault index {bank} out of range "
                    f"[0, {config.n_banks})"
                )
            if cycle < 0:
                raise FaultConfigError("bank fail_cycle must be >= 0")
            if duration is not None and duration < 1:
                raise FaultConfigError(
                    "bank fault duration must be >= 1 (or None)"
                )
        return self


# ----------------------------------------------------------------------
# The fault plane
# ----------------------------------------------------------------------

class FaultPlane:
    """Live fault-injection state bound to one simulator."""

    def __init__(self, sim, fault_config: FaultConfig):
        self.sim = sim
        self.config = fault_config.validate(sim.config)
        self.network = sim.network
        self.rng = random.Random(fault_config.seed)
        self.crc_rate = fault_config.crc_rate
        #: pid -> retransmission attempts so far (backoff exponent)
        self.attempts: Dict[int, int] = {}
        # monotonic counters (never reset; the chaos report reads them)
        self.crc_detected = 0
        self.retransmits = 0
        self.packets_rerouted = 0
        #: failed region -> donor region (mirrors RegionMap state)
        self.remapped: Dict[int, int] = {}
        self.bank_ports_failed = 0

        events = []
        for region, cycle in fault_config.tsb_failures:
            events.append((cycle, 0, region, None))
        for bank, cycle, duration in fault_config.bank_port_failures:
            events.append((cycle, 1, bank, duration))
        #: scheduled failures sorted by (cycle, kind, index)
        self._schedule = sorted(
            events, key=lambda e: (e[0], e[1], e[2]))
        self._next_idx = 0

        # Only hook the link-traversal hot path when corruption draws
        # are actually configured; TSB/bank-only runs keep the network
        # on the exact fault-free forward path.
        if self.crc_rate > 0:
            self.network.faults = self

    # ------------------------------------------------------------------
    # Scheduled faults
    # ------------------------------------------------------------------

    def next_scheduled(self, now: int) -> int:
        """Cycle of the next pending scheduled failure (NEVER if none).

        Folded into the simulator's cycle-skip bound so the event
        scheduler executes the failure cycle instead of skipping it.
        """
        if self._next_idx >= len(self._schedule):
            return NEVER
        return self._schedule[self._next_idx][0]

    def on_cycle(self, now: int) -> None:
        """Fire every scheduled failure due at or before ``now``."""
        schedule = self._schedule
        i = self._next_idx
        while i < len(schedule) and schedule[i][0] <= now:
            _cycle, kind, index, duration = schedule[i]
            i += 1
            if kind == 0:
                self._fail_tsb(index, now)
            else:
                self._fail_bank_port(index, duration, now)
        self._next_idx = i

    # ------------------------------------------------------------------
    # Model 1: transient flit corruption (CRC + NACK/retransmit)
    # ------------------------------------------------------------------

    def on_link_traversal(self, pkt: Packet, node: int, out_port: int,
                          now: int) -> bool:
        """Corruption draw for one link traversal.

        Returns True when the flit was corrupted: the downstream CRC
        check fails, the packet is dropped on the wire, and the source
        NI retransmits after the NACK returns plus exponential backoff.
        The caller (``Network._forward``) then skips the downstream
        accept; all upstream bookkeeping (VC release, link busy, stats)
        already happened, exactly as for a delivered-then-discarded flit.
        """
        if self.rng.random() >= self.crc_rate:
            return False
        # Model the detection for real: xor a random nonzero syndrome
        # onto the wire CRC and check it against the recomputed header
        # CRC at the ingress.  A nonzero syndrome is always caught.
        expected = packet_crc(pkt)
        syndrome = self.rng.randrange(1, 1 << 16)
        if (expected ^ syndrome) == expected:  # pragma: no cover
            return False  # undetectable corruption (unreachable)
        attempt = self.attempts.get(pkt.pid, 0) + 1
        self.attempts[pkt.pid] = attempt
        if attempt > self.config.max_retransmits:
            raise FaultError(
                f"packet {pkt.pid} exceeded {self.config.max_retransmits} "
                f"retransmissions (crc_rate={self.crc_rate} is not a "
                f"transient-fault regime)"
            )
        self.crc_detected += 1
        self.retransmits += 1
        backoff = min(
            self.config.retransmit_max_backoff,
            self.config.retransmit_base_backoff << (attempt - 1),
        )
        # NACK return latency: corruption is detected one hop downstream
        # of ``node``; the NACK travels back to the source NI from there.
        down_node = self.network.neighbor_node[node][out_port]
        nack = self.network.topo.manhattan(down_node, pkt.src) \
            * self.network.hop_cycles
        ready_at = now + max(1, nack + backoff)
        trace = self.network.trace
        if trace is not None:
            trace(now, EV_FAULT_CRC, {
                "pid": pkt.pid, "node": node, "port": out_port,
                "attempt": attempt, "syndrome": syndrome,
            })
            trace(now, EV_FAULT_RETRANSMIT, {
                "pid": pkt.pid, "src": pkt.src, "attempt": attempt,
                "backoff": backoff, "ready_at": ready_at,
            })
        self.network.requeue_at_source(pkt, now, ready_at)
        return True

    # ------------------------------------------------------------------
    # Model 2: stuck-at TSB / vertical-link failure
    # ------------------------------------------------------------------

    def _fail_tsb(self, region_index: int, now: int) -> None:
        """Degrade a region whose TSB went stuck-at.

        Scope: the failure takes out the region's request path (the
        core->cache DOWN traversal at the TSB node).  Responses and ACKs
        ascend at their destination column and are unaffected.
        """
        sim = self.sim
        region_map = sim.region_map
        region = region_map.regions[region_index]
        failed_core_node = region.tsb_core_node
        donor = region_map.remap_tsb(region_index)
        self.remapped[region_index] = donor
        estimator = sim.estimator
        if estimator is not None:
            estimator.on_topology_change(tuple(region.banks), now)
        arbiter = sim.arbiter
        refresh = getattr(arbiter, "refresh_topology", None)
        if refresh is not None:
            refresh()
        rerouted = self._reroute_inflight(failed_core_node, now)
        self.packets_rerouted += rerouted
        trace = self.network.trace
        if trace is not None:
            trace(now, EV_FAULT_TSB, {
                "region": region_index, "to_region": donor,
                "rerouted": rerouted,
            })

    def _reroute_inflight(self, failed_core_node: int, now: int) -> int:
        """Re-waypoint in-flight requests headed for the dead TSB.

        Requests still in a source NI queue or parked in a core-layer
        router with ``via == failed_core_node`` (or already at the TSB
        node waiting on the dead DOWN link) get the remapped waypoint
        and, where the new X-Y step differs, move between output queues.
        """
        net = self.network
        region_map = self.sim.region_map
        request = PacketClass.REQUEST
        request_via = region_map.request_via
        count = 0
        for queue in net.source_queues:
            for pkt in queue:
                if pkt.klass is request and pkt.via == failed_core_node:
                    pkt.via = request_via(pkt.bank)
                    count += 1
        nodes_per_layer = net.topo.nodes_per_layer
        next_port = net.routing.next_port
        for router in net.routers:
            node = router.node
            if node >= nodes_per_layer or router.n_resident == 0:
                continue
            moves = []
            for out_port in range(N_PORTS):
                for i, entry in enumerate(router.out_entries[out_port]):
                    pkt = entry[2]
                    if pkt.klass is not request or pkt.bank is None:
                        continue
                    if pkt.via == failed_core_node:
                        pass  # waypoint not yet consumed
                    elif (pkt.via is None and node == failed_core_node
                            and out_port == DOWN):
                        pass  # consumed at the TSB, parked on DOWN
                    else:
                        continue
                    pkt.via = request_via(pkt.bank)
                    new_port = next_port(node, pkt)
                    count += 1
                    if new_port != out_port:
                        moves.append((out_port, i, new_port, entry))
            if not moves:
                continue
            # Flush parked-delay accrual for every port an entry leaves
            # or joins; the snapshots would reference moved entries.
            for port in {m[0] for m in moves} | {m[2] for m in moves}:
                net.release_parked(node, port, now)
            # Apply in reverse index order per port so deletions do not
            # shift the indexes of later moves.
            for out_port, i, new_port, entry in sorted(
                    moves, key=lambda m: (m[0], -m[1])):
                del router.out_entries[out_port][i]
                if not router.out_entries[out_port]:
                    router.port_mask &= ~(1 << out_port)
                router.out_entries[new_port].append(entry)
                router.port_mask |= 1 << new_port
            net.poke_router(node, now + 1)
            net._active_routers.add(node)
        return count

    # ------------------------------------------------------------------
    # Model 3: bank port failure
    # ------------------------------------------------------------------

    def _fail_bank_port(self, bank: int, duration: Optional[int],
                        now: int) -> None:
        until = NEVER if duration is None else now + duration
        controller = self.sim.banks[bank]
        controller.fail_port(
            now, until, self.config.bank_redirect_timeout)
        # The controller must keep stepping through the failure window
        # to run its timeout/redirect scan.
        self.sim._active_banks.add(bank)
        self.bank_ports_failed += 1
        trace = self.network.trace
        if trace is not None:
            trace(now, EV_FAULT_BANK, {"bank": bank, "until": until})

    # ------------------------------------------------------------------

    def report(self) -> Dict:
        """Counter snapshot for the chaos CLI / tests."""
        banks = self.sim.banks
        return {
            "seed": self.config.seed,
            "crc_detected": self.crc_detected,
            "retransmits": self.retransmits,
            "max_attempts": max(self.attempts.values(), default=0),
            "tsb_remapped": dict(self.remapped),
            "packets_rerouted": self.packets_rerouted,
            "bank_ports_failed": self.bank_ports_failed,
            "bank_redirected_reads": sum(
                b.redirected_reads for b in banks),
            "bank_redirected_writes": sum(
                b.redirected_writes for b in banks),
            "bank_redirected_fills": sum(
                b.redirected_fills for b in banks),
        }
