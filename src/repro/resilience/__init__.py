"""Deterministic fault injection for the 3D STT-RAM cache simulator.

Real 3D integration loses exactly the structures this paper's mechanism
depends on: TSV/TSB bonding faults take out vertical links, marginal
arrays drop bank ports, and crosstalk flips flits in transit.  This
package injects those faults *deterministically* -- a seeded schedule
drives every corruption draw and every scheduled failure, so a fault run
is exactly reproducible from ``(FaultConfig, workload seed)``.

Three fault models (see :class:`FaultConfig`):

* **Transient flit corruption** -- per-link-traversal corruption draws;
  the downstream ingress CRC check catches the corrupted flit, the
  packet is dropped on the wire, and the source NI retransmits after a
  NACK round trip plus bounded exponential backoff.
* **Stuck-at TSB failure** -- a region's vertical link dies at a
  scheduled cycle; the region is remapped onto the nearest healthy
  region's TSB, parent/child maps and arbiter/estimator state are
  rebuilt, and in-flight requests are re-waypointed.
* **Bank port failure** -- a bank's array port goes down for a window;
  queued requests time out at the bank controller and are redirected
  around the array (reads fetch from memory, writes write through).
"""

from repro.resilience.faults import (
    FaultConfig, FaultPlane, crc16, packet_crc,
)

__all__ = ["FaultConfig", "FaultPlane", "crc16", "packet_crc"]
