"""Simulator assembly, configuration, metrics and experiments."""

from repro.sim.config import (
    ALL_SCHEMES, CacheTechnology, Estimator, Scheme, SystemConfig,
    TSBPlacement, WriteBufferConfig, make_config, parse_scheme,
    with_extra_vc, with_write_buffer,
)
from repro.sim.guard import GuardConfig, InvariantGuard
from repro.sim.experiment import (
    SchemeComparison, app_factory, compare_schemes, run_scheme,
    run_workload,
)
from repro.sim.metrics import (
    instruction_throughput, max_slowdown, slowdowns, weighted_speedup,
)
from repro.sim.parallel import (
    SweepCache, SweepCheckpoint, SweepPoint, SweepRunStats,
    code_version, default_cache_dir, run_points,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import CMPSimulator
from repro.sim.sweep import SweepGrid, SweepResults, run_sweep


def reset_state() -> None:
    """Reset module-global simulation state between independent runs.

    The simulator keeps almost all state per-instance; the one
    process-wide global is the monotonically increasing packet-id
    counter (``repro.noc.packet``), which makes packet ids depend on
    every simulation constructed earlier in the process.  Benchmarks
    and reproducibility-sensitive harnesses (``benchmarks/conftest.py``,
    ``repro.sim.perf``) call this before each run so seeded simulations
    are bit-identical no matter what ran before them.
    """
    from repro.noc.packet import reset_packet_ids

    reset_packet_ids()


__all__ = [
    "SystemConfig", "Scheme", "ALL_SCHEMES", "CacheTechnology",
    "Estimator", "TSBPlacement", "WriteBufferConfig", "make_config",
    "parse_scheme", "with_write_buffer", "with_extra_vc",
    "CMPSimulator", "GuardConfig", "InvariantGuard",
    "SimulationResult", "SchemeComparison", "compare_schemes",
    "run_scheme", "run_workload", "app_factory",
    "instruction_throughput", "weighted_speedup", "max_slowdown",
    "slowdowns", "SweepGrid", "SweepResults", "run_sweep",
    "SweepPoint", "SweepCache", "SweepCheckpoint", "SweepRunStats",
    "run_points", "code_version", "default_cache_dir", "reset_state",
]
