"""Always-available runtime invariant guard (conservation + watchdog).

The guard is a pure *reader*: it never mutates simulator state, so a
guard-enabled fault-free run is fingerprint-identical to a bare run by
construction (pinned by tests/test_guard.py across all four schemes and
both schedulers).  Enable it with ``CMPSimulator(..., guard=True)`` (or
pass a :class:`GuardConfig` / :class:`InvariantGuard`).

Checks, every ``check_period`` executed cycles:

* **flit/credit conservation** -- per router, the occupied-VC count,
  the output-queue entry count and ``n_resident`` must agree; every
  entry's ``(in_port, vc)`` slot must hold exactly that entry's packet
  (a mismatch is a credit leak or a double allocation); ``port_mask``
  must mirror queue occupancy.
* **in-flight packet accounting** -- the network's monotonic
  ``injected - delivered`` must equal NI-queued plus router-resident
  packets.
* **deadlock/livelock watchdog** -- a progress signature (injections,
  deliveries, committed instructions) that does not change for
  ``progress_window`` simulated cycles while packets remain in the
  network raises :class:`~repro.errors.DeadlockError` carrying a
  structured diagnostic, after emitting a ``guard.deadlock`` event on
  the observability bus.  Under the event scheduler the guard's
  ``wake_bound`` is folded into the cycle-skip bound, so a stalled
  simulation *executes* the deadline cycle instead of hanging or
  silently skipping to the run limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import DeadlockError, GuardViolationError
from repro.noc.router import NEVER
from repro.obs.events import EV_GUARD_DEADLOCK, EV_GUARD_VIOLATION


@dataclass(frozen=True)
class GuardConfig:
    """Knobs for one :class:`InvariantGuard`."""

    #: executed cycles between full invariant sweeps
    check_period: int = 64
    #: simulated cycles without forward progress => deadlock
    progress_window: int = 2000
    conservation: bool = True
    watchdog: bool = True


class InvariantGuard:
    """Invariant checker bound to one simulator (pure reads only)."""

    def __init__(self, config: Optional[GuardConfig] = None):
        self.config = config or GuardConfig()
        if self.config.check_period < 1:
            raise ValueError("check_period must be >= 1")
        if self.config.progress_window < 1:
            raise ValueError("progress_window must be >= 1")
        self.sim = None
        self.network = None
        self.checks_run = 0
        self.violations = 0
        self._executed = 0
        self._last_sig: Optional[Tuple[int, int, int]] = None
        self._last_progress = 0
        self._deadline = NEVER

    def bind(self, sim) -> None:
        self.sim = sim
        self.network = sim.network
        self._last_sig = self._signature()
        self._last_progress = sim.cycle
        self._deadline = sim.cycle + self.config.progress_window

    # ------------------------------------------------------------------
    # Hot hook (one call per executed cycle)
    # ------------------------------------------------------------------

    def on_executed_cycle(self, now: int) -> None:
        self._executed += 1
        if self._executed % self.config.check_period and \
                now < self._deadline:
            return
        self.check(now)

    def wake_bound(self, now: int) -> int:
        """Cycle by which the scheduler must execute for the watchdog.

        NEVER while the network is empty (an idle simulation cannot
        deadlock; the progress clock restarts when traffic appears), so
        the event scheduler's cycle skipping is unaffected at idle.
        """
        if not self.config.watchdog or self.network.quiesced():
            return NEVER
        deadline = self._deadline
        return deadline if deadline > now else now + 1

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def check(self, now: int) -> None:
        """Run one full invariant sweep (also callable from tests)."""
        self.checks_run += 1
        config = self.config
        if config.conservation:
            self._check_conservation(now)
        if config.watchdog:
            self._check_progress(now)

    def on_run_end(self, now: int) -> None:
        """Final conservation sweep at a run boundary."""
        if self.config.conservation:
            self.checks_run += 1
            self._check_conservation(now)

    def _signature(self) -> Tuple[int, int, int]:
        """Forward-progress signature: any change means liveness."""
        net = self.network
        return (
            net.packets_injected_total,
            net.packets_delivered_total,
            sum(c.stats.committed for c in self.sim.cores),
        )

    def _check_progress(self, now: int) -> None:
        sig = self._signature()
        if sig != self._last_sig or self.network.quiesced():
            self._last_sig = sig
            self._last_progress = now
            self._deadline = now + self.config.progress_window
            return
        if now - self._last_progress < self.config.progress_window:
            return
        net = self.network
        resident = net.total_resident()
        queued = sum(len(q) for q in net.source_queues)
        diagnostic = {
            "now": now,
            "since": self._last_progress,
            "window": self.config.progress_window,
            "resident": resident,
            "queued": queued,
            "signature": list(sig),
            "occupancy": {
                r.node: r.n_resident
                for r in net.routers if r.n_resident
            },
        }
        self._emit(now, EV_GUARD_DEADLOCK, {
            "since": self._last_progress,
            "window": self.config.progress_window,
            "resident": resident,
            "queued": queued,
        })
        self.violations += 1
        raise DeadlockError(
            f"no forward progress for {now - self._last_progress} cycles "
            f"(window {self.config.progress_window}): {resident} packets "
            f"resident in routers, {queued} queued at NIs",
            diagnostic=diagnostic,
        )

    def _check_conservation(self, now: int) -> None:
        net = self.network
        resident_total = 0
        for router in net.routers:
            occupied = sum(
                1 for pkt in router.vc_pkt if pkt is not None)
            entries_total = 0
            mask = 0
            seen_slots: Dict[int, bool] = {}
            for port, entries in enumerate(router.out_entries):
                if entries:
                    mask |= 1 << port
                entries_total += len(entries)
                for entry in entries:
                    slot = entry[0] * router.n_vcs + entry[1]
                    if slot in seen_slots:
                        self._violation(
                            now, "credit",
                            f"router {router.node}: VC slot {slot} "
                            f"allocated to two entries",
                        )
                    seen_slots[slot] = True
                    if router.vc_pkt[slot] is not entry[2]:
                        self._violation(
                            now, "credit",
                            f"router {router.node}: VC slot {slot} does "
                            f"not hold the packet queued on port {port} "
                            f"(credit leak)",
                        )
            if not (occupied == entries_total == router.n_resident):
                self._violation(
                    now, "conservation",
                    f"router {router.node}: {occupied} occupied VCs, "
                    f"{entries_total} queued entries, n_resident="
                    f"{router.n_resident}",
                )
            if mask != router.port_mask:
                self._violation(
                    now, "conservation",
                    f"router {router.node}: port_mask "
                    f"{router.port_mask:#x} != occupancy {mask:#x}",
                )
            resident_total += router.n_resident
        queued = sum(len(q) for q in net.source_queues)
        in_flight = net.packets_injected_total - net.packets_delivered_total
        if in_flight != queued + resident_total:
            self._violation(
                now, "accounting",
                f"injected - delivered = {in_flight}, but "
                f"{queued} queued + {resident_total} resident",
            )

    # ------------------------------------------------------------------

    def _emit(self, now: int, kind: str, data: Dict) -> None:
        obs = getattr(self.sim, "_obs", None)
        if obs is not None:
            obs.emit(now, kind, data)

    def _violation(self, now: int, check: str, detail: str) -> None:
        self.violations += 1
        self._emit(now, EV_GUARD_VIOLATION, {
            "check": check, "detail": detail,
        })
        raise GuardViolationError(
            f"invariant violation ({check}) at cycle {now}: {detail}",
            diagnostic={"now": now, "check": check, "detail": detail},
        )

    def report(self) -> Dict:
        return {
            "checks_run": self.checks_run,
            "violations": self.violations,
            "check_period": self.config.check_period,
            "progress_window": self.config.progress_window,
        }
