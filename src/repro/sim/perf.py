"""Performance benchmark harness for the simulator itself.

Measures host-side simulation throughput (simulated cycles/sec and
delivered packets/sec) of the dense reference scheduler against the
event-driven active-set scheduler on canonical configurations, and
asserts that both produce bit-identical :class:`SimulationResult`
metrics on seeded workloads.

The workload is a *phased write-burst storm*: each core alternates
Figure-3-style bursts of (mostly store) accesses aimed at one L2 bank
with long compute phases, staggered across cores.  This is the regime
the event scheduler targets -- banks sit in multi-ten-cycle STT-RAM
writes, stalled or computing cores deregister themselves, and quiescent
stretches between bursts are skipped outright -- while still exercising
the bank-aware arbitration, WB estimator tagging/acks and region-TSB
serialisation on the STT-RAM configurations.

A second benchmark, ``sweep-throughput`` (:func:`run_sweep_throughput`),
measures the experiment layer: points/sec of an apps x schemes grid
executed serially, through the process-pool sweep engine against a cold
content-addressed result cache, and again against the warm cache
(:mod:`repro.sim.parallel`).

Run via ``python -m repro.cli perf`` (``--smoke`` for the quick CI
variant); results are written to ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.cpu.trace import AccessStream, bank_block
from repro.sim.config import (
    Scheme, SystemConfig, TSBPlacement, make_config,
)
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import Workload

#: Benchmark configurations: label -> (scheme, config overrides).
PERF_CONFIGS: Tuple[Tuple[str, Scheme, Dict], ...] = (
    ("sram-64tsb", Scheme.SRAM_64TSB, {}),
    ("sttram-4tsb-wb", Scheme.STTRAM_4TSB_WB, {}),
    ("sttram-16tsb-stagger-wb", Scheme.STTRAM_4TSB_WB,
     dict(n_region_tsbs=16, tsb_placement=TSBPlacement.STAGGER)),
)

#: Config the ">= 3x cycles/sec" acceptance target applies to.
TARGET_CONFIG = "sttram-4tsb-wb"
TARGET_SPEEDUP = 3.0

#: sweep-throughput benchmark grid (see :func:`run_sweep_throughput`).
SWEEP_BENCH_APPS: Tuple[str, ...] = ("tpcc", "mcf")
SWEEP_BENCH_SCHEMES = (
    Scheme.SRAM_64TSB, Scheme.STTRAM_4TSB, Scheme.STTRAM_4TSB_WB,
)
SWEEP_BENCH_OVERRIDES = dict(mesh_width=4, capacity_scale=1 / 64)
SWEEP_BENCH_WORKERS = 4
#: Warm-cache replays read JSON instead of simulating; anything below
#: this floor means the cache path regressed badly.
SWEEP_WARM_FLOOR = 10.0

#: batch-sweep-throughput benchmark (see :func:`run_batch_sweep_throughput`).
#: Lane widths measured for the batch backend; the full six-scheme grid
#: maximises tape sharing (every scheme of one app shares streams).
BATCH_BENCH_WIDTHS: Tuple[int, ...] = (4, 8, 16)
#: Machine-independent floor on the best batch-vs-serial-scalar speedup.
#: With the full-cycle kernel (:mod:`repro.engine.kernels`) the batch
#: backend must be a genuine speedup, not merely "not a slowdown" (the
#: pre-kernel floor was 0.7x, the routing-kernel floor 1.0x).  Measured
#: best on a single-CPU host is ~1.18-1.24x across runs; the floor sits
#: under the noise band of the slowest width, not at the aspirational
#: 1.4x, because the serial-scalar *denominator* shares most of this
#: codebase's hot-path work -- the ceiling with every batch-only cost
#: at zero measures ~1.5x (see DESIGN.md, "Full-cycle kernel", for the
#: breakdown).  The 3x target applies to future cross-lane SoA work
#: and is recorded, not gated.
BATCH_SWEEP_FLOOR = 1.1
BATCH_TARGET_SPEEDUP = 3.0

#: telemetry-overhead benchmark: the pure-reader target is <= 3%
#: points/sec overhead with full span/metric recording on.  The CI
#: regression gate allows a looser ceiling so one noisy run does not
#: flake the build; the measured number is recorded either way.
TELEMETRY_OVERHEAD_TARGET = 0.03
TELEMETRY_OVERHEAD_CEILING = 0.10


class PhasedBurstStream(AccessStream):
    """Deterministic burst/compute-phase stream for the perf harness.

    Each period issues one burst of ``burst_length`` accesses pinned to
    a rotating home bank (store-heavy, small intra-burst gaps -- the
    paper's Figure 3 write pattern), followed by a long compute phase
    (a single large instruction gap).  Compute gaps carry only small
    per-core jitter, so cores behave like a barrier-synchronised
    data-parallel program: memory waves hammer the banks together,
    then the whole chip goes quiet until the next wave.
    """

    def __init__(self, core_id: int, config: SystemConfig, seed: int,
                 burst_length: int = 12, mean_compute_gap: int = 20_000,
                 store_fraction: float = 0.7):
        self._rng = random.Random((seed * 911_383) ^ (core_id * 65_537))
        self.core_id = core_id
        self.n_banks = config.n_banks
        self.burst_length = burst_length
        self.mean_compute_gap = mean_compute_gap
        self.store_fraction = store_fraction
        self._bank = core_id % self.n_banks
        self._index = 0
        self._in_burst = 0
        #: small start-phase jitter only -- waves stay coherent
        self._pending_gap = self._rng.randrange(64)

    def next_access(self):
        rng = self._rng
        if self._in_burst <= 0:
            # Start a new burst at the next bank after the compute phase.
            self._in_burst = self.burst_length
            self._bank = (self._bank + 1 + rng.randrange(3)) % self.n_banks
            gap = self._pending_gap
            self._pending_gap = (
                self.mean_compute_gap + rng.randrange(-256, 257)
            )
        else:
            gap = rng.randrange(2, 9)
        self._in_burst -= 1
        self._index += 1
        # Private per-core index range; rotate within a small window so
        # bursts re-touch recent blocks (bank stays the serialisation
        # point, directory state stays small).
        index = 1 + self.core_id * 4096 + (self._index % 512)
        block = bank_block(self._bank, index, self.n_banks)
        is_store = rng.random() < self.store_fraction
        return (gap, block, is_store)


def perf_workload(config: SystemConfig, seed: int = 1) -> Workload:
    """The harness workload: one staggered burst stream per core."""
    streams = [
        PhasedBurstStream(core, config, seed)
        for core in range(config.n_cores)
    ]
    apps = ["burst"] * config.n_cores
    return Workload(streams, apps, "perf-burst")


def _result_fingerprint(result) -> Dict:
    """Headline metrics stored in BENCH_perf.json for drift checks."""
    return {
        "cycles": result.cycles,
        "instructions": sum(result.instructions),
        "packets_delivered": result.packets_delivered,
        "avg_packet_latency": round(result.avg_packet_latency, 6),
        "avg_bank_queue_wait": round(result.avg_bank_queue_wait, 6),
        "delayed_cycle_sum": result.delayed_cycle_sum,
    }


def run_one(label: str, scheme: Scheme, overrides: Dict, scheduler: str,
            cycles: int, warmup: int, seed: int) -> Dict:
    """One timed simulation; returns throughput plus the full result."""
    from repro.sim import reset_state

    reset_state()
    config = make_config(scheme, **overrides)
    workload = perf_workload(config, seed)
    sim = CMPSimulator(config, workload, scheduler=scheduler)
    t0 = time.perf_counter()
    result = sim.run(cycles, warmup=warmup)
    wall = time.perf_counter() - t0
    total_cycles = cycles + warmup
    return {
        "label": label,
        "scheduler": scheduler,
        "wall_seconds": wall,
        "cycles_per_sec": total_cycles / wall,
        "packets_per_sec": result.packets_delivered / wall,
        "executed_cycles": sim.executed_cycles,
        "total_cycles": total_cycles,
        "result": result,
    }


def run_perf(cycles: int = 30_000, warmup: int = 2_000, seed: int = 1,
             repeats: int = 3,
             labels: Optional[Tuple[str, ...]] = None,
             sweep: bool = True, backend: str = "scalar") -> Dict:
    """Run the full benchmark matrix and return the report dict.

    Every config runs under both schedulers; the two ``SimulationResult``
    objects must match exactly (raises otherwise).  Wall times take the
    best of ``repeats`` to suppress scheduling noise.  ``labels``
    restricts the matrix (smoke mode runs the target config only).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    report: Dict = {
        "benchmark": "scheduler-throughput",
        "workload": "perf-burst",
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "configs": {},
    }
    for label, scheme, overrides in PERF_CONFIGS:
        if labels is not None and label not in labels:
            continue
        best: Dict[str, Dict] = {}
        # Interleave schedulers across repeats so transient host load
        # lands on both sides of the comparison; keep the best of each.
        for _ in range(repeats):
            for scheduler in ("dense", "event"):
                run = run_one(label, scheme, overrides, scheduler,
                              cycles, warmup, seed)
                prev = best.get(scheduler)
                if prev is None or run["wall_seconds"] < prev["wall_seconds"]:
                    best[scheduler] = run
        dense, event = best["dense"], best["event"]
        if dense["result"].__dict__ != event["result"].__dict__:
            diffs = [
                k for k in dense["result"].__dict__
                if dense["result"].__dict__[k] != event["result"].__dict__[k]
            ]
            raise AssertionError(
                f"{label}: dense/event SimulationResult drift in {diffs}"
            )
        speedup = dense["cycles_per_sec"] and (
            event["cycles_per_sec"] / dense["cycles_per_sec"]
        )
        report["configs"][label] = {
            "scheme": scheme.value,
            "overrides": {k: str(v) for k, v in overrides.items()},
            "dense_cycles_per_sec": round(dense["cycles_per_sec"], 1),
            "event_cycles_per_sec": round(event["cycles_per_sec"], 1),
            "dense_packets_per_sec": round(dense["packets_per_sec"], 1),
            "event_packets_per_sec": round(event["packets_per_sec"], 1),
            "speedup": round(speedup, 3),
            "executed_cycles": event["executed_cycles"],
            "total_cycles": event["total_cycles"],
            "identical_results": True,
            "fingerprint": _result_fingerprint(event["result"]),
        }
    if sweep:
        report["sweep_throughput"] = run_sweep_throughput(
            seed=seed, backend=backend)
        report["batch_throughput"] = run_batch_sweep_throughput(seed=seed)
        report["telemetry_overhead"] = run_telemetry_overhead(seed=seed)
    return report


def run_sweep_throughput(cycles: int = 1200, warmup: int = 400,
                         seed: int = 1,
                         workers: int = SWEEP_BENCH_WORKERS,
                         backend: str = "scalar") -> Dict:
    """Benchmark the sweep engine: serial vs parallel, cold vs warm.

    Runs one apps x schemes grid three ways -- serially without a
    cache, through the process pool against a cold cache, and again
    against the now-warm cache -- and reports points/sec for each.
    All three ``SweepResults`` must be byte-identical
    (``identical_results``); the warm replay must be a 100% cache hit.

    Cold-cache parallel speedup is bounded by physical cores
    (``host_cpus`` is recorded alongside so numbers transfer across
    machines); warm-cache speedup is core-independent, since cached
    points skip simulation entirely.
    """
    from repro.sim.parallel import SweepRunStats
    from repro.sim.sweep import SweepGrid, run_sweep

    grid = SweepGrid(
        apps=SWEEP_BENCH_APPS, schemes=SWEEP_BENCH_SCHEMES,
        cycles=cycles, warmup=warmup, seed=seed,
        overrides=dict(SWEEP_BENCH_OVERRIDES),
    )
    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        serial_stats = SweepRunStats()
        serial = run_sweep(grid, workers=1, cache=False,
                           stats=serial_stats, backend=backend,
                           ledger=False)
        cold_stats = SweepRunStats()
        cold = run_sweep(grid, workers=workers, cache=True,
                         cache_dir=tmp, stats=cold_stats, backend=backend,
                         ledger=False)
        warm_stats = SweepRunStats()
        warm = run_sweep(grid, workers=workers, cache=True,
                         cache_dir=tmp, stats=warm_stats, backend=backend,
                         ledger=False)

    identical = (
        serial.fingerprint() == cold.fingerprint() == warm.fingerprint()
    )
    serial_pps = serial_stats.points_per_sec
    return {
        "benchmark": "sweep-throughput",
        "apps": list(SWEEP_BENCH_APPS),
        "schemes": [s.value for s in SWEEP_BENCH_SCHEMES],
        "points": serial_stats.points,
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "workers": workers,
        "backend": backend,
        "host_cpus": os.cpu_count(),
        "serial_points_per_sec": round(serial_pps, 2),
        "cold_points_per_sec": round(cold_stats.points_per_sec, 2),
        "warm_points_per_sec": round(warm_stats.points_per_sec, 2),
        "cold_speedup": round(
            cold_stats.points_per_sec / serial_pps, 3) if serial_pps
            else 0.0,
        "warm_speedup": round(
            warm_stats.points_per_sec / serial_pps, 3) if serial_pps
            else 0.0,
        "cold_utilization": round(cold_stats.utilization, 3),
        "warm_hit_rate": round(warm_stats.hit_rate, 3),
        "identical_results": identical,
        "fingerprint": serial.fingerprint()[:16],
    }


def run_batch_sweep_throughput(cycles: int = 1200, warmup: int = 400,
                               seed: int = 1,
                               widths: Tuple[int, ...] = BATCH_BENCH_WIDTHS,
                               repeats: int = 2) -> Dict:
    """Benchmark the batch execution backend against serial scalar.

    Runs one apps x all-six-schemes grid serially through the scalar
    backend, then through the batch backend at each lane width in
    ``widths`` (``workers=1`` throughout, so the comparison isolates
    the backend from pool parallelism).  Every batch sweep must be
    fingerprint-identical to the scalar one -- the backend's bit-
    identity contract -- and the best width's speedup is gated at
    :data:`BATCH_SWEEP_FLOOR` (machine-independent: both sides run on
    the same host).  Without numpy the section records
    ``{"skipped": ...}`` and the regression gate tolerates it.
    """
    from repro.engine import batch_available

    if not batch_available():
        return {"benchmark": "batch-sweep-throughput",
                "skipped": "numpy unavailable (pip install repro[batch])"}
    from repro.sim.config import ALL_SCHEMES
    from repro.sim.parallel import SweepRunStats
    from repro.sim.sweep import SweepGrid, run_sweep

    grid = SweepGrid(
        apps=SWEEP_BENCH_APPS, schemes=ALL_SCHEMES,
        cycles=cycles, warmup=warmup, seed=seed,
        overrides=dict(SWEEP_BENCH_OVERRIDES),
    )

    def best_run(backend: str, width: Optional[int]):
        best_stats, fingerprint = None, None
        for _ in range(repeats):
            stats = SweepRunStats()
            sweep = run_sweep(grid, workers=1, cache=False, stats=stats,
                              backend=backend, batch_width=width,
                              ledger=False)
            fingerprint = sweep.fingerprint()
            if (best_stats is None
                    or stats.wall_seconds < best_stats.wall_seconds):
                best_stats = stats
        return best_stats, fingerprint

    serial_stats, serial_fp = best_run("scalar", None)
    serial_pps = serial_stats.points_per_sec
    rows = []
    for width in widths:
        stats, fp = best_run("batch", width)
        pps = stats.points_per_sec
        rows.append({
            "width": width,
            "points_per_sec": round(pps, 2),
            "speedup": round(pps / serial_pps, 3) if serial_pps else 0.0,
            "lane_groups": stats.lane_groups,
            "lanes_packed": stats.lanes_packed,
            "scalar_fallbacks": stats.scalar_fallbacks,
            "signature_buckets": list(stats.pack_signature_buckets),
            "identical_results": fp == serial_fp,
        })
    best = max(rows, key=lambda r: r["speedup"])
    return {
        "benchmark": "batch-sweep-throughput",
        "apps": list(SWEEP_BENCH_APPS),
        "schemes": [s.value for s in ALL_SCHEMES],
        "points": serial_stats.points,
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "host_cpus": os.cpu_count(),
        "serial_points_per_sec": round(serial_pps, 2),
        "widths": rows,
        "best_width": best["width"],
        "best_speedup": best["speedup"],
        "identical_results": all(r["identical_results"] for r in rows),
        "target_speedup": BATCH_TARGET_SPEEDUP,
        "meets_target": best["speedup"] >= BATCH_TARGET_SPEEDUP,
        "fingerprint": serial_fp[:16],
    }


def run_telemetry_overhead(cycles: int = 1200, warmup: int = 400,
                           seed: int = 1, repeats: int = 2) -> Dict:
    """Measure the cost of the sweep telemetry plane.

    Runs the sweep-throughput grid serially (``workers=1`` isolates the
    recording cost from pool scheduling noise) with telemetry off and
    with a full :class:`~repro.obs.telemetry.SweepTelemetry` attached
    (spans, merged metrics -- no progress renderer, which is I/O-bound
    and opt-in), best of ``repeats`` each.  The two runs must be
    fingerprint-identical -- telemetry is a pure reader -- and the
    overhead target is :data:`TELEMETRY_OVERHEAD_TARGET`.
    """
    from repro.obs.telemetry import SweepTelemetry
    from repro.sim.parallel import SweepRunStats
    from repro.sim.sweep import SweepGrid, run_sweep

    grid = SweepGrid(
        apps=SWEEP_BENCH_APPS, schemes=SWEEP_BENCH_SCHEMES,
        cycles=cycles, warmup=warmup, seed=seed,
        overrides=dict(SWEEP_BENCH_OVERRIDES),
    )

    def one_run(with_telemetry: bool):
        stats = SweepRunStats()
        tel = SweepTelemetry() if with_telemetry else None
        sweep = run_sweep(grid, workers=1, cache=False, stats=stats,
                          telemetry=tel, ledger=False)
        spans = len(tel.spans()) if tel is not None else 0
        return stats, sweep.fingerprint(), spans

    # Interleave off/on across repeats (as run_perf does) so transient
    # host load lands on both sides of the comparison; keep the best.
    off_stats = on_stats = None
    off_fp = on_fp = None
    spans = 0
    for _ in range(repeats):
        stats, off_fp, _ = one_run(False)
        if off_stats is None or stats.wall_seconds < off_stats.wall_seconds:
            off_stats = stats
        stats, on_fp, run_spans = one_run(True)
        if on_stats is None or stats.wall_seconds < on_stats.wall_seconds:
            on_stats = stats
            spans = run_spans
    off_pps = off_stats.points_per_sec
    on_pps = on_stats.points_per_sec
    overhead = (off_pps / on_pps - 1.0) if on_pps else 0.0
    return {
        "benchmark": "telemetry-overhead",
        "apps": list(SWEEP_BENCH_APPS),
        "schemes": [s.value for s in SWEEP_BENCH_SCHEMES],
        "points": off_stats.points,
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "spans_recorded": spans,
        "off_points_per_sec": round(off_pps, 2),
        "on_points_per_sec": round(on_pps, 2),
        "overhead": round(overhead, 4),
        "target": TELEMETRY_OVERHEAD_TARGET,
        "meets_target": overhead <= TELEMETRY_OVERHEAD_TARGET,
        "identical_results": off_fp == on_fp,
        "fingerprint": off_fp[:16],
    }


def run_perf_smoke(seed: int = 1) -> Dict:
    """Quick CI variant: the target config only, fewer repeats.

    Keeps the full measurement window so the speedup is comparable
    with the committed full report (the regression gate relies on it).
    """
    return run_perf(seed=seed, repeats=2, labels=(TARGET_CONFIG,))


def _profile_hotspots(profiler, top: int) -> Tuple[List[Dict], List[Dict]]:
    """Top-``top`` rows of a finished ``cProfile`` run, by cumulative
    and by internal (self) time, as JSON-serialisable dicts."""
    import pstats

    stats = pstats.Stats(profiler)
    hotspots = []
    for (filename, lineno, name), row in stats.stats.items():
        cc, nc, tt, ct, _callers = row
        hotspots.append({
            "function": name,
            "file": filename,
            "line": lineno,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        })
    by_cumulative = sorted(
        hotspots, key=lambda h: h["cumtime"], reverse=True)[:top]
    by_self = sorted(
        hotspots, key=lambda h: h["tottime"], reverse=True)[:top]
    return by_cumulative, by_self


def run_profile(label: str = TARGET_CONFIG, scheduler: str = "event",
                cycles: int = 30_000, warmup: int = 2_000, seed: int = 1,
                top: int = 25) -> Dict:
    """Profile one benchmark config under ``cProfile``.

    Returns a JSON-serialisable report with the top-``top`` hotspots
    ranked by cumulative and by internal (self) time, so perf PRs can
    cite evidence instead of guessing; ``repro.cli perf --profile``
    prints it with :func:`format_profile` and dumps the JSON.  For the
    batch backend's kernel path use :func:`run_batch_profile`.
    """
    import cProfile

    for config_label, scheme, overrides in PERF_CONFIGS:
        if config_label == label:
            break
    else:
        raise ValueError(f"unknown perf config {label!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    run = run_one(label, scheme, overrides, scheduler, cycles, warmup, seed)
    profiler.disable()
    by_cumulative, by_self = _profile_hotspots(profiler, top)
    return {
        "benchmark": "profile",
        "label": label,
        "scheduler": scheduler,
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "top": top,
        "cycles_per_sec": round(run["cycles_per_sec"], 1),
        "executed_cycles": run["executed_cycles"],
        "total_cycles": run["total_cycles"],
        "by_cumulative": by_cumulative,
        "by_self": by_self,
    }


def run_batch_profile(cycles: int = 1200, warmup: int = 400, seed: int = 1,
                      top: int = 25, width: int = 16) -> Dict:
    """Profile the batch backend's kernel path under ``cProfile``.

    Runs the batch-sweep-throughput grid once through the batch backend
    at ``width`` lanes (``workers=1``, in-process -- cProfile cannot
    see into pool workers) and reports the same hotspot tables as
    :func:`run_profile`, so kernel-path perf work cites the vectorized
    routing cost (``_route_cycle_kernel``, ``GroupKernel``) directly.
    Raises :class:`ModuleNotFoundError` without numpy.
    """
    import cProfile

    from repro.sim.config import ALL_SCHEMES
    from repro.sim.parallel import SweepRunStats
    from repro.sim.sweep import SweepGrid, run_sweep

    grid = SweepGrid(
        apps=SWEEP_BENCH_APPS, schemes=ALL_SCHEMES,
        cycles=cycles, warmup=warmup, seed=seed,
        overrides=dict(SWEEP_BENCH_OVERRIDES),
    )
    stats = SweepRunStats()
    profiler = cProfile.Profile()
    profiler.enable()
    run_sweep(grid, workers=1, cache=False, stats=stats,
              backend="batch", batch_width=width, ledger=False)
    profiler.disable()
    by_cumulative, by_self = _profile_hotspots(profiler, top)
    return {
        "benchmark": "batch-profile",
        "label": "batch-sweep",
        "backend": "batch",
        "width": width,
        "points": stats.points,
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "top": top,
        "points_per_sec": round(stats.points_per_sec, 2),
        "lane_groups": stats.lane_groups,
        "lanes_packed": stats.lanes_packed,
        "scalar_fallbacks": stats.scalar_fallbacks,
        "by_cumulative": by_cumulative,
        "by_self": by_self,
    }


def format_profile(report: Dict) -> str:
    if report["benchmark"] == "batch-profile":
        head = (
            f"profile: {report['label']} (batch backend, "
            f"width {report['width']}, {report['points']} pts at "
            f"{report['points_per_sec']:.2f} pts/s, "
            f"{report['lane_groups']} groups / "
            f"{report['scalar_fallbacks']} fallbacks)"
        )
    else:
        head = (
            f"profile: {report['label']} ({report['scheduler']} scheduler, "
            f"{report['executed_cycles']}/{report['total_cycles']} cycles "
            f"executed, {report['cycles_per_sec']:.0f} cyc/s)"
        )
    lines = [
        head,
        f"top {report['top']} by cumulative time:",
        f"  {'cumtime':>9s} {'tottime':>9s} {'ncalls':>9s}  function",
    ]
    for row in report["by_cumulative"]:
        where = f"{row['file']}:{row['line']}" if row["line"] else ""
        lines.append(
            f"  {row['cumtime']:9.4f} {row['tottime']:9.4f} "
            f"{row['ncalls']:9d}  {row['function']} {where}"
        )
    return "\n".join(lines)


def check_regression(current: Dict, baseline: Dict,
                     tolerance: float = 0.2) -> List[str]:
    """Compare a fresh report against the committed baseline.

    Returns a list of human-readable failures (empty when healthy).
    Raw cycles/sec is machine-dependent, so the gate compares the
    event/dense *speedup* of each config present in both reports: a
    speedup more than ``tolerance`` below the baseline means the event
    scheduler's cycles/sec regressed relative to the same-machine dense
    loop.
    """
    failures: List[str] = []
    for label, row in current["configs"].items():
        base = baseline.get("configs", {}).get(label)
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if row["speedup"] < floor:
            failures.append(
                f"{label}: speedup {row['speedup']:.2f}x fell below "
                f"{floor:.2f}x ({(1 - tolerance) * 100:.0f}% of the "
                f"committed {base['speedup']:.2f}x baseline)"
            )
        if not row.get("identical_results"):
            failures.append(f"{label}: dense/event result drift")
    sweep = current.get("sweep_throughput")
    if sweep is not None:
        # Machine-independent gates: determinism is absolute, and the
        # warm-cache replay reads JSON instead of simulating, so its
        # speedup floor transfers across hosts.  Cold-cache speedup
        # scales with physical cores and is recorded, not gated.
        if not sweep.get("identical_results"):
            failures.append(
                "sweep-throughput: serial/parallel/warm result drift"
            )
        if sweep.get("warm_hit_rate", 0.0) < 1.0:
            failures.append(
                f"sweep-throughput: warm replay hit rate "
                f"{sweep.get('warm_hit_rate', 0.0):.0%} < 100%"
            )
        if sweep.get("warm_speedup", 0.0) < SWEEP_WARM_FLOOR:
            failures.append(
                f"sweep-throughput: warm-cache speedup "
                f"{sweep.get('warm_speedup', 0.0):.1f}x fell below the "
                f"{SWEEP_WARM_FLOOR:.0f}x floor"
            )
    batch = current.get("batch_throughput")
    if batch is not None and "skipped" not in batch:
        # Identity is absolute -- mandatory at every measured width,
        # failures name the width; the speedup floor compares two
        # same-host runs, so it transfers across machines.
        for row in batch.get("widths", ()):
            if not row.get("identical_results"):
                failures.append(
                    f"batch-sweep-throughput: width {row.get('width')} "
                    "batch/scalar result drift (identity is mandatory)"
                )
        if not batch.get("identical_results") and not batch.get("widths"):
            failures.append(
                "batch-sweep-throughput: batch/scalar result drift"
            )
        if batch.get("best_speedup", 0.0) < BATCH_SWEEP_FLOOR:
            failures.append(
                f"batch-sweep-throughput: best speedup "
                f"{batch.get('best_speedup', 0.0):.2f}x "
                f"(width {batch.get('best_width')}) fell below the "
                f"{BATCH_SWEEP_FLOOR:.1f}x floor"
            )
    tel = current.get("telemetry_overhead")
    if tel is not None:
        # The pure-reader identity is absolute; the overhead gate uses
        # the loose ceiling (same-host ratio, so it transfers), with
        # the 3% target recorded in the report itself.
        if not tel.get("identical_results"):
            failures.append(
                "telemetry-overhead: telemetry-on fingerprint drifted "
                "from telemetry-off"
            )
        if tel.get("overhead", 0.0) > TELEMETRY_OVERHEAD_CEILING:
            failures.append(
                f"telemetry-overhead: {tel.get('overhead', 0.0):.1%} "
                f"overhead exceeded the "
                f"{TELEMETRY_OVERHEAD_CEILING:.0%} ceiling"
            )
    return failures


def write_report(report: Dict, path: str = "BENCH_perf.json") -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_report(report: Dict) -> str:
    lines = [
        f"{'config':26s} {'dense cyc/s':>12s} {'event cyc/s':>12s} "
        f"{'speedup':>8s} {'executed':>14s}",
    ]
    for label, row in report["configs"].items():
        executed = f"{row['executed_cycles']}/{row['total_cycles']}"
        lines.append(
            f"{label:26s} {row['dense_cycles_per_sec']:12.0f} "
            f"{row['event_cycles_per_sec']:12.0f} "
            f"{row['speedup']:7.2f}x {executed:>14s}"
        )
    sweep = report.get("sweep_throughput")
    if sweep is not None:
        lines.append(
            f"sweep-throughput ({sweep['points']} pts, "
            f"workers={sweep['workers']}, {sweep['host_cpus']} cpus): "
            f"serial {sweep['serial_points_per_sec']:.2f} pts/s, "
            f"cold {sweep['cold_points_per_sec']:.2f} "
            f"({sweep['cold_speedup']:.2f}x), "
            f"warm {sweep['warm_points_per_sec']:.2f} "
            f"({sweep['warm_speedup']:.2f}x), "
            f"identical={sweep['identical_results']}"
        )
    batch = report.get("batch_throughput")
    if batch is not None:
        if "skipped" in batch:
            lines.append(f"batch-sweep-throughput: {batch['skipped']}")
        else:
            per_width = ", ".join(
                f"w{row['width']} {row['speedup']:.2f}x"
                for row in batch["widths"]
            )
            lines.append(
                f"batch-sweep-throughput ({batch['points']} pts, "
                f"{batch['host_cpus']} cpus): serial "
                f"{batch['serial_points_per_sec']:.2f} pts/s; {per_width}; "
                f"best w{batch['best_width']} "
                f"{batch['best_speedup']:.2f}x, "
                f"identical={batch['identical_results']}"
            )
    tel = report.get("telemetry_overhead")
    if tel is not None:
        lines.append(
            f"telemetry-overhead ({tel['points']} pts, "
            f"{tel['spans_recorded']} spans): off "
            f"{tel['off_points_per_sec']:.2f} pts/s, on "
            f"{tel['on_points_per_sec']:.2f} pts/s "
            f"({tel['overhead']:+.1%}, target <= {tel['target']:.0%}), "
            f"identical={tel['identical_results']}"
        )
    return "\n".join(lines)
