"""Measurement-window results collected from a :class:`CMPSimulator`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.noc.packet import PacketClass
from repro.obs.accuracy import resolve_predictions
from repro.sim import metrics


@dataclass
class SimulationResult:
    """Everything the experiment harness needs from one run."""

    cycles: int
    instructions: List[int]
    app_of_core: List[str]
    ipc: List[float]

    # network
    avg_packet_latency: float
    avg_request_latency: float
    avg_response_latency: float
    packets_delivered: int
    delayed_cycle_sum: int
    flits_forwarded: int
    link_traversals: int
    combined_flit_pairs: int

    # banks
    avg_bank_queue_wait: float
    bank_reads: int
    bank_writes: int
    bank_fills: int
    bank_drains: int
    l2_hits: int
    l2_misses: int
    max_bank_queue_depth: int
    write_buffer_preemptions: int

    # cores
    avg_miss_latency: float
    l1_misses: int
    writebacks: int
    stall_cycles: int

    # tail latencies (nearest-rank percentiles of the NI-to-NI latency
    # distribution; see repro.obs.metrics.percentiles_from_hist)
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    #: busy-prediction accuracy of the active estimator (SS/RCA/WB):
    #: AccuracySummary.as_dict() payload, or None without an estimator
    estimator_accuracy: Optional[Dict] = None

    energy: Optional[EnergyBreakdown] = None
    extras: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @classmethod
    def collect(cls, sim, start_cycle: int,
                committed_at_start: List[int]) -> "SimulationResult":
        cycles = sim.cycle - start_cycle
        instructions = [
            core.stats.committed - base
            for core, base in zip(sim.cores, committed_at_start)
        ]
        ipc = [i / cycles if cycles else 0.0 for i in instructions]

        net = sim.network.stats
        banks = [b.stats for b in sim.banks]
        total_wait = sum(b.queue_wait_sum for b in banks)
        total_samples = sum(b.queue_wait_samples for b in banks)
        wb_preemptions = sum(
            b.write_buffer.preemptions for b in sim.banks
            if b.write_buffer is not None
        )
        wb_accesses = sum(
            b.write_buffer.writes_absorbed + b.write_buffer.read_hits
            + b.write_buffer.drains_completed
            for b in sim.banks if b.write_buffer is not None
        )

        bank_reads = sum(b.reads for b in banks)
        array_writes = sum(b.writes for b in banks)
        fills = sum(b.fills for b in banks)
        drains = sum(b.drains for b in banks)

        energy = EnergyModel(sim.config).compute(
            cycles=cycles,
            bank_reads=bank_reads,
            bank_writes=array_writes + fills + drains,
            router_flits=net.flits_forwarded,
            link_flits=net.flits_forwarded,
            tsb_flits=0,
            write_buffer_accesses=wb_accesses,
        )

        miss_lat_sum = sum(c.stats.miss_latency_sum for c in sim.cores)
        miss_lat_n = sum(c.stats.miss_latency_samples for c in sim.cores)

        percentiles = net.latency_percentiles()
        accuracy = None
        if sim.tracker is not None and sim.estimator is not None:
            # Predictions whose arrival lies past the end of the run are
            # unresolvable (horizon) and dropped identically under both
            # schedulers, keeping this field scheduler-invariant.
            accuracy = resolve_predictions(
                sim.tracker.predictions,
                {b.bank: b.stats.service_intervals for b in sim.banks},
                estimator=sim.estimator.name,
                horizon=sim.cycle,
            ).as_dict()

        return cls(
            cycles=cycles,
            instructions=instructions,
            app_of_core=list(sim.workload.app_of_core),
            ipc=ipc,
            avg_packet_latency=net.average_latency(),
            avg_request_latency=net.average_latency(PacketClass.REQUEST),
            avg_response_latency=net.average_latency(PacketClass.RESPONSE),
            packets_delivered=net.total_delivered,
            delayed_cycle_sum=net.delayed_cycle_sum,
            flits_forwarded=net.flits_forwarded,
            link_traversals=net.link_traversals,
            combined_flit_pairs=net.tsb_combined_flit_pairs,
            avg_bank_queue_wait=(
                total_wait / total_samples if total_samples else 0.0
            ),
            bank_reads=bank_reads,
            bank_writes=array_writes,
            bank_fills=fills,
            bank_drains=drains,
            l2_hits=sum(b.l2_hits for b in banks),
            l2_misses=sum(b.l2_misses for b in banks),
            max_bank_queue_depth=max(
                (b.max_queue_depth for b in banks), default=0
            ),
            write_buffer_preemptions=wb_preemptions,
            avg_miss_latency=(
                miss_lat_sum / miss_lat_n if miss_lat_n else 0.0
            ),
            l1_misses=sum(c.stats.l1_misses for c in sim.cores),
            writebacks=sum(c.stats.writebacks for c in sim.cores),
            stall_cycles=sum(c.stats.stall_cycles for c in sim.cores),
            latency_p50=percentiles[50.0],
            latency_p95=percentiles[95.0],
            latency_p99=percentiles[99.0],
            estimator_accuracy=accuracy,
            energy=energy,
        )

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    def instruction_throughput(self) -> float:
        return metrics.instruction_throughput(self.ipc)

    def slowest_ipc(self) -> float:
        return metrics.slowest_ipc(self.ipc)

    def total_instructions(self) -> int:
        return sum(self.instructions)

    def ipc_by_app(self) -> Dict[str, float]:
        """Average per-core IPC of each application in the workload."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for app, ipc in zip(self.app_of_core, self.ipc):
            sums[app] = sums.get(app, 0.0) + ipc
            counts[app] = counts.get(app, 0) + 1
        return {app: sums[app] / counts[app] for app in sums}

    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    def uncore_latency(self) -> float:
        """Average core->bank->core round-trip latency of L1 misses
        (the Figure 14 metric)."""
        return self.avg_miss_latency

    def latency_breakdown(self) -> Dict[str, float]:
        """Figure 7: network latency vs queuing latency at banks."""
        network = self.avg_request_latency + self.avg_response_latency
        return {
            "network_latency": network,
            "bank_queuing_latency": self.avg_bank_queue_wait,
        }

    def uncore_energy(self) -> float:
        return self.energy.total if self.energy else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable summary (used by the CLI)."""
        return {
            "cycles": self.cycles,
            "instructions": self.total_instructions(),
            "instruction_throughput": self.instruction_throughput(),
            "slowest_ipc": self.slowest_ipc(),
            "ipc_by_app": self.ipc_by_app(),
            "avg_packet_latency": self.avg_packet_latency,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "estimator_accuracy": self.estimator_accuracy,
            "avg_request_latency": self.avg_request_latency,
            "avg_bank_queue_wait": self.avg_bank_queue_wait,
            "avg_miss_latency": self.avg_miss_latency,
            "l2_hit_rate": self.l2_hit_rate(),
            "packets_delivered": self.packets_delivered,
            "delayed_cycle_sum": self.delayed_cycle_sum,
            "writebacks": self.writebacks,
            "uncore_energy_j": self.uncore_energy(),
        }
