"""System configuration for the 3D STT-RAM CMP simulator.

The defaults reproduce Table 1 of the paper: a two-layer 3D CMP with an
8x8 mesh NoC per layer, 64 out-of-order cores in the top layer, 64 shared
L2 cache banks in the bottom layer, four memory controllers at the corner
nodes of the cache layer, and two-stage wormhole-switched virtual-channel
routers.

The six design scenarios evaluated in Section 4 of the paper are exposed
through :class:`Scheme` and :func:`make_config`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError

#: Paper Table 2: read/write service latency of a 1 MB SRAM bank at 3 GHz.
SRAM_READ_CYCLES = 3
SRAM_WRITE_CYCLES = 3
#: Paper Table 2: read/write service latency of a 4 MB STT-RAM bank at 3 GHz.
STTRAM_READ_CYCLES = 3
STTRAM_WRITE_CYCLES = 33

#: Paper Section 3.5: parent-to-child base latency for a two-hop path --
#: one intermediate two-stage router (2 cycles) plus two link traversals.
TWO_HOP_BASE_CYCLES = 4


class CacheTechnology(enum.Enum):
    """The memory technology used for the L2 cache banks."""

    SRAM = "sram"
    STTRAM = "sttram"


class Estimator(enum.Enum):
    """Busy-duration / congestion estimation scheme (Section 3.5)."""

    NONE = "none"
    SIMPLE = "ss"
    RCA = "rca"
    WINDOW = "wb"


class TSBPlacement(enum.Enum):
    """Placement of the region through-silicon buses (Figure 11)."""

    CORNER = "corner"
    STAGGER = "stagger"


class Scheme(enum.Enum):
    """The six design scenarios of Section 4.1."""

    SRAM_64TSB = "SRAM-64TSB"
    STTRAM_64TSB = "MRAM-64TSB"
    STTRAM_4TSB = "MRAM-4TSB"
    STTRAM_4TSB_SS = "MRAM-4TSB-SS"
    STTRAM_4TSB_RCA = "MRAM-4TSB-RCA"
    STTRAM_4TSB_WB = "MRAM-4TSB-WB"


#: Scheme evaluation order used throughout the paper's figures.
ALL_SCHEMES = (
    Scheme.SRAM_64TSB,
    Scheme.STTRAM_64TSB,
    Scheme.STTRAM_4TSB,
    Scheme.STTRAM_4TSB_SS,
    Scheme.STTRAM_4TSB_RCA,
    Scheme.STTRAM_4TSB_WB,
)


@dataclass(frozen=True)
class WriteBufferConfig:
    """Sun et al. HPCA'09 per-bank SRAM write buffer (Section 4.4).

    Attributes:
        entries: Number of write-buffer entries per STT-RAM bank.
        read_preemption: Whether a read may preempt an in-progress
            buffered write drain.
        detect_cycles: The one-cycle read/write detection overhead that
            sits on the critical path of every request.
        sram_write_cycles: Latency to complete a write into the buffer.
    """

    entries: int = 20
    read_preemption: bool = True
    detect_cycles: int = 1
    sram_write_cycles: int = SRAM_WRITE_CYCLES


@dataclass(frozen=True)
class SystemConfig:
    """Full configuration of the simulated CMP (paper Tables 1 and 2)."""

    # --- Topology -------------------------------------------------------
    mesh_width: int = 8
    #: Number of region TSBs used for core->cache request traffic.
    #: ``None`` means unrestricted: all per-node vertical TSVs usable.
    n_region_tsbs: Optional[int] = None
    tsb_placement: TSBPlacement = TSBPlacement.CORNER
    #: Width multiplier of region TSBs relative to normal 128b links;
    #: 256b region TSBs allow two-flit combining (Section 3.4).
    region_tsb_width_factor: int = 2

    # --- Router / network (Table 1) --------------------------------------
    n_vcs: int = 6
    vc_buffer_flits: int = 5
    data_packet_flits: int = 8
    addr_packet_flits: int = 1
    router_pipeline_cycles: int = 2
    link_cycles: int = 1

    #: Core-side NI source queue / store-buffer depth: a core stalls its
    #: memory stream when this many of its packets are waiting to enter
    #: the network (Table 1: up to 16 outstanding requests per processor).
    ni_queue_entries: int = 16

    #: Finite bank-interface queue (network-interface buffering at the
    #: cache module).  When full, ejection stalls and requests back up
    #: into the router buffers -- the congestion the paper's scheme
    #: relieves by re-ordering packets toward idle banks.
    bank_queue_entries: int = 4

    # --- L2 cache (Tables 1 and 2) ---------------------------------------
    cache_technology: CacheTechnology = CacheTechnology.STTRAM
    #: Bank capacity in bytes. 1 MB SRAM banks; 4 MB STT-RAM banks
    #: (iso-area, Table 2).
    sram_bank_bytes: int = 1 << 20
    sttram_bank_bytes: int = 4 << 20
    l2_associativity: int = 16
    block_bytes: int = 128
    #: Scale factor (<= 1.0) applied to cache capacities so that dense
    #: parameter sweeps finish quickly; synthetic working sets scale with it.
    capacity_scale: float = 1.0

    # --- L1 cache (Table 1) ----------------------------------------------
    l1_bytes: int = 32 << 10
    l1_associativity: int = 4
    l1_hit_cycles: int = 2
    l1_mshrs: int = 32

    # --- Core (Table 1) ---------------------------------------------------
    commit_width: int = 2
    instruction_window: int = 128
    #: Dependent-load model: a load miss is a serializing dependency with
    #: this probability, limiting further commits to ``load_dep_window``
    #: instructions until it returns.  Approximates the dependency chains
    #: that keep real out-of-order server/SPEC IPCs well below width.
    load_dep_prob: float = 0.4
    load_dep_window: int = 16

    # --- Memory (Table 1) --------------------------------------------------
    memory_latency_cycles: int = 320
    n_memory_controllers: int = 4
    max_outstanding_memory: int = 16

    # --- Paper mechanism (Section 3) ---------------------------------------
    estimator: Estimator = Estimator.NONE
    parent_hop_distance: int = 2
    #: WB estimator: tag one packet in every ``wb_sample_period`` packets.
    wb_sample_period: int = 100
    wb_timestamp_bits: int = 8
    #: RCA: congestion estimates are exchanged between neighbours with
    #: this period (cycles).
    rca_update_period: int = 1
    #: Safety valve: a deprioritised packet is never delayed beyond this
    #: many cycles (prevents starvation; about 2x the write latency).
    max_delay_cycles: int = 66
    #: Among eligible requests at a parent, let reads pass write-data
    #: packets (the paper's network-level read-over-write complement to
    #: bank-side read preemption).  Exposed for ablation.
    arbiter_read_priority: bool = True
    #: Park a delayed packet only while its input port keeps this many
    #: free VCs (the paper buffers delayed requests in the *available*
    #: VCs).  Exposed for ablation.
    arbiter_min_free_vcs: int = 2

    # --- Optional comparators (Section 4.4) ---------------------------------
    write_buffer: Optional[WriteBufferConfig] = None

    # --- Extensions (related-work mitigations, off by default) -------------
    #: Early write termination (Zhou et al., ICCAD'09): a write finishes
    #: once every bit has actually switched; service time becomes
    #: uniform in [min_fraction, 1] x the full write latency.  The
    #: paper's scheme is complementary to this circuit technique.
    write_termination: bool = False
    write_termination_min_fraction: float = 0.4
    #: Hybrid SRAM/STT-RAM banks (Sun et al. / Qureshi et al. style):
    #: this many ways per set are built from SRAM; writes allocate into
    #: the SRAM partition at SRAM speed and dirty SRAM victims migrate
    #: into the STT-RAM array in the background.  0 disables.
    hybrid_sram_ways: int = 0

    # --- Misc ----------------------------------------------------------------
    seed: int = 1

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def nodes_per_layer(self) -> int:
        return self.mesh_width * self.mesh_width

    @property
    def n_cores(self) -> int:
        return self.nodes_per_layer

    @property
    def n_banks(self) -> int:
        return self.nodes_per_layer

    @property
    def n_routers(self) -> int:
        return 2 * self.nodes_per_layer

    @property
    def hop_cycles(self) -> int:
        """Per-hop latency: router pipeline plus link traversal."""
        return self.router_pipeline_cycles + self.link_cycles

    @property
    def l2_read_cycles(self) -> int:
        if self.cache_technology is CacheTechnology.SRAM:
            return SRAM_READ_CYCLES
        return STTRAM_READ_CYCLES

    @property
    def l2_write_cycles(self) -> int:
        if self.cache_technology is CacheTechnology.SRAM:
            return SRAM_WRITE_CYCLES
        return STTRAM_WRITE_CYCLES

    @property
    def l2_bank_bytes(self) -> int:
        if self.cache_technology is CacheTechnology.SRAM:
            raw = self.sram_bank_bytes
        else:
            raw = self.sttram_bank_bytes
        scaled = int(raw * self.capacity_scale)
        return max(scaled, self.block_bytes * self.l2_associativity)

    @property
    def l1_effective_bytes(self) -> int:
        """L1 capacity after gentle sweep scaling.

        Dense sweeps shrink the L2 by ``capacity_scale``; the L1 shrinks
        by the square root of that so the L1 < L2-share ordering is
        preserved without collapsing the L1 to a handful of blocks.
        """
        if self.capacity_scale >= 1.0:
            return self.l1_bytes
        scaled = int(self.l1_bytes * self.capacity_scale ** 0.5)
        return max(scaled, self.block_bytes * self.l1_associativity * 4)

    @property
    def sram_equivalent_bank_bytes(self) -> int:
        """Scaled SRAM-bank capacity, used to size synthetic working
        sets identically across cache technologies."""
        scaled = int(self.sram_bank_bytes * self.capacity_scale)
        return max(scaled, self.block_bytes * self.l2_associativity)

    @property
    def restricted_request_path(self) -> bool:
        """True when core->cache requests must use region TSBs."""
        return self.n_region_tsbs is not None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> "SystemConfig":
        """Check internal consistency; return self for chaining.

        Raises :class:`~repro.errors.ConfigError` (never a bare
        ``ValueError`` or a deep simulator crash) so the CLI can turn
        an impossible configuration into a clean non-zero exit.
        """
        if self.mesh_width < 2:
            raise ConfigError("mesh_width must be >= 2")
        if self.n_vcs < 1:
            raise ConfigError("n_vcs must be >= 1")
        for name in (
            "vc_buffer_flits", "data_packet_flits", "addr_packet_flits",
            "router_pipeline_cycles", "ni_queue_entries",
            "bank_queue_entries", "l2_associativity", "l1_associativity",
            "commit_width", "instruction_window", "load_dep_window",
            "memory_latency_cycles", "n_memory_controllers",
            "max_outstanding_memory", "wb_sample_period",
            "rca_update_period", "max_delay_cycles",
            "region_tsb_width_factor",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}")
        if self.link_cycles < 0:
            raise ConfigError("link_cycles must be >= 0")
        if self.hop_cycles < 1:
            raise ConfigError(
                "router_pipeline_cycles + link_cycles must be >= 1")
        if self.n_region_tsbs is not None:
            n = self.n_region_tsbs
            if n < 1 or self.nodes_per_layer % n != 0:
                raise ConfigError(
                    f"n_region_tsbs={n} must divide the {self.nodes_per_layer}"
                    " cache banks into equal regions"
                )
            # Mirror the region-map tiling constraint here so the
            # failure happens at config time, not deep in construction.
            width = self.mesh_width
            if not any(
                n % cols == 0
                and width % cols == 0
                and width % (n // cols) == 0
                for cols in range(1, n + 1)
            ):
                raise ConfigError(
                    f"cannot tile a {width}x{width} mesh into {n} regions"
                )
        if self.parent_hop_distance < 1:
            raise ConfigError("parent_hop_distance must be >= 1")
        if not 0.0 < self.capacity_scale <= 1.0:
            raise ConfigError("capacity_scale must be in (0, 1]")
        if not 0.0 <= self.load_dep_prob <= 1.0:
            raise ConfigError("load_dep_prob must be in [0, 1]")
        if self.block_bytes < 1 or self.block_bytes & (self.block_bytes - 1):
            raise ConfigError("block_bytes must be a power of two")
        if self.n_memory_controllers > self.nodes_per_layer:
            raise ConfigError("more memory controllers than nodes")
        if self.hybrid_sram_ways < 0:
            raise ConfigError("hybrid_sram_ways must be >= 0")
        if self.hybrid_sram_ways >= self.l2_associativity:
            raise ConfigError(
                f"hybrid_sram_ways={self.hybrid_sram_ways} must leave at "
                f"least one STT-RAM way of {self.l2_associativity}")
        if not 0.0 < self.write_termination_min_fraction <= 1.0:
            raise ConfigError(
                "write_termination_min_fraction must be in (0, 1]")
        return self


def parse_scheme(label: str) -> Scheme:
    """Map a CLI scheme label to a :class:`Scheme`, with a typed error.

    Accepts the paper labels (``MRAM-4TSB-WB``), case-insensitively.
    """
    wanted = label.strip().upper()
    for scheme in Scheme:
        if scheme.value.upper() == wanted or scheme.name == wanted:
            return scheme
    valid = ", ".join(s.value for s in ALL_SCHEMES)
    raise ConfigError(f"unknown scheme {label!r}; valid schemes: {valid}")


def make_config(scheme: Scheme, **overrides) -> SystemConfig:
    """Build a :class:`SystemConfig` for one of the paper's six scenarios.

    Keyword overrides are applied on top of the scenario (for example
    ``mesh_width=4`` or ``capacity_scale=1/64`` for scaled-down sweeps).
    """
    base = {
        Scheme.SRAM_64TSB: dict(
            cache_technology=CacheTechnology.SRAM,
            n_region_tsbs=None,
            estimator=Estimator.NONE,
        ),
        Scheme.STTRAM_64TSB: dict(
            cache_technology=CacheTechnology.STTRAM,
            n_region_tsbs=None,
            estimator=Estimator.NONE,
        ),
        Scheme.STTRAM_4TSB: dict(
            cache_technology=CacheTechnology.STTRAM,
            n_region_tsbs=4,
            estimator=Estimator.NONE,
        ),
        Scheme.STTRAM_4TSB_SS: dict(
            cache_technology=CacheTechnology.STTRAM,
            n_region_tsbs=4,
            estimator=Estimator.SIMPLE,
        ),
        Scheme.STTRAM_4TSB_RCA: dict(
            cache_technology=CacheTechnology.STTRAM,
            n_region_tsbs=4,
            estimator=Estimator.RCA,
        ),
        Scheme.STTRAM_4TSB_WB: dict(
            cache_technology=CacheTechnology.STTRAM,
            n_region_tsbs=4,
            estimator=Estimator.WINDOW,
        ),
    }[scheme]
    merged = dict(base)
    merged.update(overrides)
    cfg = SystemConfig(**merged)
    # Small meshes cannot host 4 regions of useful size; shrink the region
    # count proportionally unless the caller pinned it explicitly.
    if (
        cfg.n_region_tsbs is not None
        and "n_region_tsbs" not in overrides
        and cfg.nodes_per_layer < 16
    ):
        cfg = replace(cfg, n_region_tsbs=max(1, cfg.nodes_per_layer // 4))
    return cfg.validate()


def with_write_buffer(config: SystemConfig, entries: int = 20,
                      read_preemption: bool = True) -> SystemConfig:
    """Return a copy of ``config`` with the BUFF-N comparator enabled."""
    return replace(
        config,
        write_buffer=WriteBufferConfig(
            entries=entries, read_preemption=read_preemption
        ),
    ).validate()


def with_extra_vc(config: SystemConfig, extra: int = 1) -> SystemConfig:
    """Return a copy of ``config`` with ``extra`` more VCs per port (+1 VC)."""
    return replace(config, n_vcs=config.n_vcs + extra).validate()
