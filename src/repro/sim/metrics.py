"""System-level performance metrics (Section 4.1, Eqs. 1-3).

* ``instruction_throughput``: sum of per-core IPC over the whole CMP.
* ``weighted_speedup``: sum over applications of IPC_shared / IPC_alone
  (Snavely & Tullsen), the paper's system-throughput metric for
  multi-programmed workloads.
* ``max_slowdown``: max over applications of IPC_alone / IPC_shared,
  the paper's fairness metric (Figure 10).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence


def instruction_throughput(ipcs: Iterable[float]) -> float:
    """Eq. (1): total committed IPC across all cores."""
    return sum(ipcs)


def weighted_speedup(shared_ipc: Mapping[str, float],
                     alone_ipc: Mapping[str, float]) -> float:
    """Eq. (2): sum of per-application shared/alone IPC ratios.

    Args:
        shared_ipc: Per-application average per-core IPC in the mix.
        alone_ipc: Per-application average per-core IPC when running
            alone under the same configuration.
    """
    total = 0.0
    for app, shared in shared_ipc.items():
        alone = alone_ipc.get(app)
        if alone is None:
            raise KeyError(f"no stand-alone IPC recorded for {app!r}")
        if alone > 0:
            total += shared / alone
    return total


def slowdowns(shared_ipc: Mapping[str, float],
              alone_ipc: Mapping[str, float]) -> Dict[str, float]:
    """Per-application slowdown: IPC_alone / IPC_shared."""
    result = {}
    for app, shared in shared_ipc.items():
        alone = alone_ipc.get(app)
        if alone is None:
            raise KeyError(f"no stand-alone IPC recorded for {app!r}")
        result[app] = alone / shared if shared > 0 else float("inf")
    return result


def max_slowdown(shared_ipc: Mapping[str, float],
                 alone_ipc: Mapping[str, float]) -> float:
    """Eq. (3): the largest per-application slowdown in the mix."""
    values = slowdowns(shared_ipc, alone_ipc)
    return max(values.values()) if values else 0.0


def slowest_ipc(ipcs: Sequence[float]) -> float:
    """IPC of the slowest core/thread (the paper reports improvements
    for the slowest thread/copy)."""
    return min(ipcs) if ipcs else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean helper for summarising normalised results."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
