"""Batch experiment sweeps with JSON persistence.

Runs a grid of (scheme x workload) experiments, collects the
:class:`~repro.sim.results.SimulationResult` summaries, and serialises
them so analyses can be re-plotted without re-simulating::

    grid = SweepGrid(apps=["tpcc", "mcf"], schemes=ALL_SCHEMES,
                     cycles=2500, warmup=1000,
                     overrides={"mesh_width": 8, "capacity_scale": 1/16})
    sweep = run_sweep(grid)
    sweep.save("results.json")
    later = SweepResults.load("results.json")
    later.normalized("instruction_throughput", baseline="SRAM-64TSB")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.config import ALL_SCHEMES, Scheme
from repro.sim.experiment import app_factory, run_scheme


@dataclass
class SweepGrid:
    """Specification of one experiment grid."""

    apps: Sequence[str]
    schemes: Sequence[Scheme] = ALL_SCHEMES
    cycles: int = 2500
    warmup: int = 1000
    seed: int = 1
    overrides: Dict[str, object] = field(default_factory=dict)

    def points(self):
        for app in self.apps:
            for scheme in self.schemes:
                yield app, scheme


class SweepResults:
    """Summaries of a completed sweep, keyed by (app, scheme label)."""

    def __init__(self, grid_spec: dict,
                 data: Dict[str, Dict[str, dict]]):
        self.grid_spec = grid_spec
        #: data[app][scheme_label] -> SimulationResult.to_dict()
        self.data = data

    # ------------------------------------------------------------------

    def metric(self, name: str) -> Dict[str, Dict[str, float]]:
        """One scalar metric across the whole grid."""
        return {
            app: {scheme: summary[name]
                  for scheme, summary in by_scheme.items()}
            for app, by_scheme in self.data.items()
        }

    def normalized(self, name: str,
                   baseline: str) -> Dict[str, Dict[str, float]]:
        """Metric per app/scheme divided by the baseline scheme's value."""
        raw = self.metric(name)
        out: Dict[str, Dict[str, float]] = {}
        for app, by_scheme in raw.items():
            base = by_scheme.get(baseline)
            if not base:
                out[app] = {scheme: 0.0 for scheme in by_scheme}
                continue
            out[app] = {scheme: value / base
                        for scheme, value in by_scheme.items()}
        return out

    def apps(self) -> List[str]:
        return list(self.data)

    def schemes(self) -> List[str]:
        first = next(iter(self.data.values()), {})
        return list(first)

    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as fp:
            json.dump({"grid": self.grid_spec, "data": self.data}, fp,
                      indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "SweepResults":
        with open(path, "r", encoding="ascii") as fp:
            payload = json.load(fp)
        return cls(payload["grid"], payload["data"])


ProgressFn = Callable[[str, Scheme], None]


def run_sweep(grid: SweepGrid,
              progress: Optional[ProgressFn] = None) -> SweepResults:
    """Execute every grid point and collect summaries."""
    data: Dict[str, Dict[str, dict]] = {}
    for app, scheme in grid.points():
        if progress is not None:
            progress(app, scheme)
        result = run_scheme(
            scheme, app_factory(app, seed=grid.seed),
            cycles=grid.cycles, warmup=grid.warmup, **grid.overrides,
        )
        data.setdefault(app, {})[scheme.value] = result.to_dict()
    spec = {
        "apps": list(grid.apps),
        "schemes": [s.value for s in grid.schemes],
        "cycles": grid.cycles,
        "warmup": grid.warmup,
        "seed": grid.seed,
        "overrides": dict(grid.overrides),
    }
    return SweepResults(spec, data)
