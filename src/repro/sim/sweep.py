"""Batch experiment sweeps with JSON persistence.

Runs a grid of (scheme x workload) experiments, collects the
:class:`~repro.sim.results.SimulationResult` summaries, and serialises
them so analyses can be re-plotted without re-simulating::

    grid = SweepGrid(apps=["tpcc", "mcf"], schemes=ALL_SCHEMES,
                     cycles=2500, warmup=1000,
                     overrides={"mesh_width": 8, "capacity_scale": 1/16})
    sweep = run_sweep(grid, workers=4, cache=True)
    sweep.save("results.json")
    later = SweepResults.load("results.json")
    later.normalized("instruction_throughput", baseline="SRAM-64TSB")

Execution is delegated to :mod:`repro.sim.parallel`: grid points are
self-contained picklable :class:`~repro.sim.parallel.SweepPoint` specs
that can fan out across a process pool and be served from the
content-addressed result cache.  Every point simulates from a reset
process state, so ``SweepResults.data`` is byte-identical for any
worker count and for warm-cache replays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.sim.config import ALL_SCHEMES, Scheme
from repro.sim.parallel import (
    ProgressFn, SweepPoint, SweepRunStats, run_points,
)


@dataclass
class SweepGrid:
    """Specification of one experiment grid."""

    apps: Sequence[str]
    schemes: Sequence[Scheme] = ALL_SCHEMES
    cycles: int = 2500
    warmup: int = 1000
    seed: int = 1
    overrides: Dict[str, object] = field(default_factory=dict)

    def points(self) -> Iterator[Tuple[str, Scheme]]:
        for app in self.apps:
            for scheme in self.schemes:
                yield app, scheme

    def point_specs(self) -> List[SweepPoint]:
        """The grid as self-contained picklable task specs."""
        return [
            SweepPoint.build(app, scheme, self.cycles, self.warmup,
                             self.seed, self.overrides)
            for app, scheme in self.points()
        ]

    def spec_dict(self) -> Dict:
        return {
            "apps": list(self.apps),
            "schemes": [s.value for s in self.schemes],
            "cycles": self.cycles,
            "warmup": self.warmup,
            "seed": self.seed,
            "overrides": dict(self.overrides),
        }


class SweepResults:
    """Summaries of a completed sweep, keyed by (app, scheme label)."""

    def __init__(self, grid_spec: dict,
                 data: Dict[str, Dict[str, dict]],
                 meta: Optional[Dict] = None):
        self.grid_spec = grid_spec
        #: data[app][scheme_label] -> SimulationResult.to_dict()
        self.data = data
        #: execution metadata (backend, lane packing) -- informational
        #: only: never part of :meth:`fingerprint` or any cache key,
        #: because backends are byte-identical per point.
        self.meta = dict(meta or {})

    # ------------------------------------------------------------------

    def metric(self, name: str) -> Dict[str, Dict[str, float]]:
        """One scalar metric across the whole grid."""
        return {
            app: {scheme: summary[name]
                  for scheme, summary in by_scheme.items()}
            for app, by_scheme in self.data.items()
        }

    def normalized(self, name: str,
                   baseline: str) -> Dict[str, Dict[str, float]]:
        """Metric per app/scheme divided by the baseline scheme's value."""
        raw = self.metric(name)
        out: Dict[str, Dict[str, float]] = {}
        for app, by_scheme in raw.items():
            base = by_scheme.get(baseline)
            if not base:
                out[app] = {scheme: 0.0 for scheme in by_scheme}
                continue
            out[app] = {scheme: value / base
                        for scheme, value in by_scheme.items()}
        return out

    def apps(self) -> List[str]:
        return list(self.data)

    def schemes(self) -> List[str]:
        first = next(iter(self.data.values()), {})
        return list(first)

    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        payload = {"grid": self.grid_spec, "data": self.data}
        if self.meta:
            payload["meta"] = self.meta
        with open(path, "w", encoding="ascii") as fp:
            json.dump(payload, fp, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "SweepResults":
        with open(path, "r", encoding="ascii") as fp:
            payload = json.load(fp)
        return cls(payload["grid"], payload["data"],
                   meta=payload.get("meta"))

    def fingerprint(self) -> str:
        """SHA-256 of the canonical result payload.

        Two sweeps of the same grid agree on this digest exactly when
        every per-point summary is byte-identical -- the determinism
        contract checked across worker counts and cache replays.
        """
        blob = json.dumps(self.data, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("ascii")).hexdigest()


def run_sweep(grid: SweepGrid,
              progress: Optional[ProgressFn] = None,
              *,
              workers: int = 1,
              cache: bool = False,
              cache_dir: Optional[str] = None,
              timeout: Optional[float] = None,
              metrics: Optional[MetricsRegistry] = None,
              stats: Optional[SweepRunStats] = None,
              checkpoint=None,
              checkpoint_every: int = 1,
              max_retries: int = 2,
              retry_backoff: float = 0.25,
              backend: str = "scalar",
              batch_width: Optional[int] = None,
              telemetry=None,
              ledger: Optional[bool] = None,
              ledger_path: Optional[str] = None) -> SweepResults:
    """Execute every grid point and collect summaries.

    ``workers=1`` (the default) runs in-process, serially; ``workers=N``
    fans grid points out across a process pool, and ``workers=0`` uses
    one worker per host CPU.  With ``cache=True`` previously simulated
    points are served from the content-addressed result cache (see
    :mod:`repro.sim.parallel`), so only changed points simulate.
    ``checkpoint`` (path or :class:`~repro.sim.parallel.SweepCheckpoint`)
    journals finished points for kill-and-resume, and failed points
    retry up to ``max_retries`` times with exponential backoff.

    ``backend`` selects the execution engine (``"scalar"`` or
    ``"batch"``; see :mod:`repro.engine`); the chosen backend and its
    lane packing are recorded in ``SweepResults.meta``.  The resulting
    ``SweepResults.data`` -- and hence the fingerprint -- is identical
    in all modes, across worker counts, cache states and backends.

    ``telemetry`` accepts a
    :class:`~repro.obs.telemetry.SweepTelemetry`; when given, spans and
    merged worker metrics land in ``SweepResults.meta["telemetry"]``
    (informational only -- the fingerprint hashes ``data`` alone).
    Every completed sweep appends one record to the persistent run
    ledger unless ``ledger=False`` or the ``REPRO_LEDGER=0`` env kill
    switch is set; ``ledger_path`` overrides the default location.
    """
    specs = grid.point_specs()
    run_stats = stats if stats is not None else SweepRunStats()
    resolved = run_points(
        specs, workers=workers, cache=cache, cache_dir=cache_dir,
        progress=progress, timeout=timeout, metrics=metrics,
        stats=run_stats,
        checkpoint=checkpoint, checkpoint_every=checkpoint_every,
        max_retries=max_retries, retry_backoff=retry_backoff,
        backend=backend, batch_width=batch_width,
        telemetry=telemetry,
    )
    data: Dict[str, Dict[str, dict]] = {}
    for spec in specs:
        data.setdefault(spec.app, {})[spec.scheme.value] = (
            resolved[spec.key()]
        )
    meta = {"backend": run_stats.backend}
    if backend == "batch":
        meta.update(
            lane_groups=run_stats.lane_groups,
            lanes_packed=run_stats.lanes_packed,
            scalar_fallbacks=run_stats.scalar_fallbacks,
            pack_groups_delta=run_stats.pack_groups_delta,
            pack_fallbacks_delta=run_stats.pack_fallbacks_delta,
        )
    if telemetry is not None:
        meta["telemetry"] = telemetry.as_meta()
    results = SweepResults(grid.spec_dict(), data, meta=meta)

    from repro.obs.ledger import (
        RunLedger, build_record, ledger_enabled,
    )
    if ledger is not False and ledger_enabled():
        try:
            record = build_record(grid.spec_dict(), results.fingerprint(),
                                  run_stats, telemetry=telemetry)
            RunLedger(path=ledger_path).append(record)
        except OSError:
            # The ledger is an observability surface; a full disk or an
            # unwritable cache dir must never fail the sweep itself.
            pass
    return results
