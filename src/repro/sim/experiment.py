"""Experiment harness: run design scenarios and normalise results.

The paper reports every figure normalised to the SRAM-64TSB baseline;
:func:`compare_schemes` runs a workload under any set of schemes with
identical seeds and returns both raw and normalised results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.sim.config import ALL_SCHEMES, Scheme, SystemConfig, make_config
from repro.sim.results import SimulationResult
from repro.sim.simulator import CMPSimulator
from repro.workloads.mixes import Workload, homogeneous

#: Default measurement windows for quick experiments; headline runs in
#: the benchmarks use larger values (recorded per-experiment in
#: EXPERIMENTS.md).
DEFAULT_WARMUP = 2_000
DEFAULT_CYCLES = 6_000

WorkloadFactory = Callable[[SystemConfig], Workload]


@dataclass
class SchemeComparison:
    """Results of one workload across several schemes."""

    workload_name: str
    results: Dict[Scheme, SimulationResult]
    baseline: Scheme = Scheme.SRAM_64TSB

    def normalized(self, metric: Callable[[SimulationResult], float]
                   ) -> Dict[Scheme, float]:
        """Metric per scheme divided by the baseline scheme's value."""
        base = metric(self.results[self.baseline])
        if base == 0:
            return {s: 0.0 for s in self.results}
        return {s: metric(r) / base for s, r in self.results.items()}

    def normalized_throughput(self) -> Dict[Scheme, float]:
        return self.normalized(lambda r: r.instruction_throughput())

    def normalized_slowest_ipc(self) -> Dict[Scheme, float]:
        return self.normalized(lambda r: r.slowest_ipc())

    def normalized_energy(self) -> Dict[Scheme, float]:
        return self.normalized(lambda r: r.uncore_energy())


def run_workload(
    config: SystemConfig,
    workload_factory: WorkloadFactory,
    cycles: int = DEFAULT_CYCLES,
    warmup: int = DEFAULT_WARMUP,
    log_bank_accesses: bool = False,
    guard=None,
    faults=None,
) -> SimulationResult:
    """Build and run one simulation; returns its measurement window.

    ``guard``/``faults`` are forwarded to :class:`CMPSimulator` (the
    invariant guard and the deterministic fault plane; see
    :mod:`repro.sim.guard` and :mod:`repro.resilience`).
    """
    workload = workload_factory(config)
    sim = CMPSimulator(config, workload,
                       log_bank_accesses=log_bank_accesses,
                       guard=guard, faults=faults)
    return sim.run(cycles, warmup=warmup)


def run_scheme(
    scheme: Scheme,
    workload_factory: WorkloadFactory,
    cycles: int = DEFAULT_CYCLES,
    warmup: int = DEFAULT_WARMUP,
    guard=None,
    faults=None,
    **config_overrides,
) -> SimulationResult:
    """Run one design scenario on one workload."""
    config = make_config(scheme, **config_overrides)
    return run_workload(config, workload_factory, cycles, warmup,
                        guard=guard, faults=faults)


def compare_schemes(
    workload_factory: WorkloadFactory,
    workload_name: str,
    schemes: Sequence[Scheme] = ALL_SCHEMES,
    cycles: int = DEFAULT_CYCLES,
    warmup: int = DEFAULT_WARMUP,
    **config_overrides,
) -> SchemeComparison:
    """Run one workload under several schemes with matched seeds."""
    results = {}
    for scheme in schemes:
        results[scheme] = run_scheme(
            scheme, workload_factory, cycles, warmup, **config_overrides,
        )
    baseline = (
        Scheme.SRAM_64TSB if Scheme.SRAM_64TSB in results
        else next(iter(results))
    )
    return SchemeComparison(workload_name, results, baseline=baseline)


@dataclass(frozen=True)
class HomogeneousWorkloadFactory:
    """Picklable workload factory for a homogeneous run of one app.

    A named top-level class rather than a closure so grid points can be
    shipped to process-pool workers (closures do not pickle).
    """

    app: str
    seed: int = 1

    def __call__(self, config: SystemConfig) -> Workload:
        return homogeneous(self.app, config, seed=self.seed)

    @property
    def __name__(self) -> str:  # parity with plain-function factories
        return f"homogeneous_{self.app}"


def app_factory(app: str, seed: int = 1) -> WorkloadFactory:
    """Workload factory for a homogeneous run of one application."""
    return HomogeneousWorkloadFactory(app, seed)
