"""Parallel sweep engine: process-pool fan-out with result caching.

Every figure in the paper is a grid -- apps x schemes x seeds
normalised to the SRAM-64TSB baseline -- and the grid points are
embarrassingly parallel: each one builds its own config, workload and
simulator and returns a JSON summary.  This module shards grid points
across a :class:`concurrent.futures.ProcessPoolExecutor` and layers a
content-addressed on-disk result cache underneath, so re-running a
sweep only simulates the points whose inputs actually changed.

Design contract (tested in ``tests/test_parallel_sweep.py``):

* **Determinism** -- each point simulates from a fully reset process
  state (``repro.sim.reset_state``), so its summary depends only on its
  own spec.  ``SweepResults.data`` is therefore byte-identical across
  ``workers=1``, ``workers=N`` and warm-cache replay, independent of
  worker count or completion order.
* **Content addressing** -- a cache entry is keyed by the SHA-256 of
  the canonical point spec (app, scheme, cycles, warmup, seed, sorted
  config overrides) plus a code-version tag derived from the package
  sources.  Changing any input -- or the simulator code itself --
  changes the key and forces re-simulation; nothing is ever
  invalidated in place.
* **Fault tolerance** -- every cache entry carries a SHA-256 payload
  digest that is re-verified on read, so a truncated or tampered entry
  is evicted and re-simulated (counted in ``sweep.cache.evictions``).
  A crashed or timed-out worker chunk falls back to the parent, where
  each point is retried up to ``max_retries`` times with bounded
  exponential backoff before the sweep fails.
* **Crash survivability** -- pass ``checkpoint=`` to journal finished
  points into an atomically-replaced snapshot file.  A killed sweep
  resumes from the snapshot on the next invocation (``resumed_points``
  in the run stats), re-simulating only the unfinished points; the
  snapshot is deleted once the grid completes.

The engine reports progress and utilisation through the existing
:class:`repro.obs.metrics.MetricsRegistry` (``sweep.*`` metrics) and is
exposed on the command line as ``python -m repro.cli sweep``.
"""

from __future__ import annotations

import concurrent.futures
import enum
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SweepTelemetry, WorkerTelemetry
from repro.sim.config import Scheme

#: Bumped when the cached payload layout (not the simulated content)
#: changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_SWEEP_CACHE_DIR``, else ``$XDG_CACHE_HOME`` or
    ``~/.cache``, plus ``repro-sweeps``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-sweeps")


# ----------------------------------------------------------------------
# Code-version tag
# ----------------------------------------------------------------------

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Stable tag of the simulator sources that produced a result.

    A SHA-256 over every ``.py`` file in the installed ``repro``
    package (path-sorted, path+content hashed) truncated to 16 hex
    digits, combined with :data:`CACHE_SCHEMA_VERSION`.  Any source
    edit changes the tag, so stale cache entries simply stop being
    addressed rather than needing explicit invalidation.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _CODE_VERSION = (
            f"v{CACHE_SCHEMA_VERSION}-{digest.hexdigest()[:16]}"
        )
    return _CODE_VERSION


# ----------------------------------------------------------------------
# Point specs
# ----------------------------------------------------------------------


def _json_safe(value):
    """Canonical JSON-compatible form of a config-override value."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise ConfigError(
        f"override value {value!r} is not cacheable; use scalars or enums"
    )


@dataclass(frozen=True)
class SweepPoint:
    """One self-contained, picklable grid point.

    Carries everything a worker process needs to reproduce the
    simulation: nothing is closed over, nothing depends on the parent
    process state.
    """

    app: str
    scheme: Scheme
    cycles: int
    warmup: int
    seed: int
    #: Sorted ``(name, value)`` pairs of ``make_config`` overrides.
    overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def build(cls, app: str, scheme: Scheme, cycles: int, warmup: int,
              seed: int, overrides: Optional[Dict] = None) -> "SweepPoint":
        items = tuple(sorted((overrides or {}).items()))
        return cls(app=app, scheme=scheme, cycles=cycles, warmup=warmup,
                   seed=seed, overrides=items)

    def overrides_dict(self) -> Dict:
        return dict(self.overrides)

    def canonical(self) -> Dict:
        """JSON-stable spec used for hashing and cache payloads."""
        return {
            "app": self.app,
            "scheme": self.scheme.value,
            "cycles": self.cycles,
            "warmup": self.warmup,
            "seed": self.seed,
            "overrides": {
                name: _json_safe(value) for name, value in self.overrides
            },
        }

    def key(self, version: Optional[str] = None) -> str:
        """Content address of this point under one code version."""
        payload = {
            "spec": self.canonical(),
            "version": version if version is not None else code_version(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def label(self) -> str:
        return f"{self.app}/{self.scheme.value}/seed{self.seed}"


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------


def _payload_digest(result: Dict) -> str:
    """Canonical SHA-256 of a point summary, stored alongside it."""
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


class SweepCache:
    """Content-addressed store of point summaries.

    Layout: ``<root>/<key[:2]>/<key>.json`` holding
    ``{"key", "version", "digest", "spec", "result"}``.  Writes are
    atomic (temp file + ``os.replace``); reads re-verify the payload
    digest, so an entry that fails to parse, fails the self-check or
    was truncated/tampered after the write is **evicted** (counted in
    :attr:`evictions`) and treated as a miss, never served.
    """

    def __init__(self, root: Optional[str] = None,
                 version: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.version = version if version is not None else code_version()
        #: corrupt entries discarded by :meth:`get` over this object's
        #: lifetime (mirrored into ``sweep.cache.evictions``)
        self.evictions = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Dict]:
        """The cached summary for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="ascii") as fh:
                payload = json.load(fh)
            if payload["key"] != key or payload["version"] != self.version:
                raise ValueError("cache entry self-check failed")
            result = payload["result"]
            if not isinstance(result, dict):
                raise ValueError("cache entry has no result dict")
            if payload["digest"] != _payload_digest(result):
                raise ValueError("cache entry digest mismatch")
            return result
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._discard(path)
            self.evictions += 1
            return None

    def put(self, key: str, spec: Dict, result: Dict) -> None:
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "key": key,
            "version": self.version,
            "digest": _payload_digest(result),
            "spec": spec,
            "result": result,
        }
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)

    def _discard(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Crash-survivable checkpoints
# ----------------------------------------------------------------------


class SweepCheckpoint:
    """Atomic journal of finished sweep points for kill-and-resume.

    The snapshot file holds ``{"code_version", "digest", "completed":
    {key: result}}`` and is rewritten whole via temp file +
    ``os.replace``, so a process killed mid-write leaves the previous
    (complete) snapshot behind.  On load the digest and code version
    are verified; a corrupt or stale snapshot resumes nothing rather
    than resuming wrong results.
    """

    def __init__(self, path: str, version: Optional[str] = None):
        self.path = path
        self.version = version if version is not None else code_version()
        self.completed: Dict[str, Dict] = {}
        self._pending = 0

    def load(self) -> int:
        """Populate :attr:`completed` from disk; return the count."""
        self.completed = {}
        try:
            with open(self.path, "r", encoding="ascii") as fh:
                payload = json.load(fh)
            completed = payload["completed"]
            if (
                payload["code_version"] != self.version
                or not isinstance(completed, dict)
                or payload["digest"] != _payload_digest(completed)
            ):
                raise ValueError("checkpoint self-check failed")
            self.completed = completed
        except FileNotFoundError:
            pass
        except (OSError, ValueError, KeyError, TypeError):
            pass  # corrupt snapshot: resume nothing
        return len(self.completed)

    def prune(self, valid_keys) -> None:
        """Drop snapshot entries that are not part of this grid."""
        valid = set(valid_keys)
        self.completed = {
            k: v for k, v in self.completed.items() if k in valid
        }

    def record(self, key: str, result: Dict, every: int = 1) -> None:
        """Journal one finished point; flush every ``every`` records."""
        self.completed[key] = result
        self._pending += 1
        if self._pending >= every:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        payload = {
            "code_version": self.version,
            "digest": _payload_digest(self.completed),
            "completed": self.completed,
        }
        tmp = self.path + f".tmp.{os.getpid()}"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, self.path)
        self._pending = 0

    def discard(self) -> None:
        """Delete the snapshot (the grid completed)."""
        self._pending = 0
        try:
            os.remove(self.path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def simulate_point(spec: SweepPoint, recorder=None) -> Dict:
    """Simulate one grid point from a clean process-global state.

    Top-level (hence picklable under the ``spawn`` start method) and
    hermetic: the result depends only on ``spec``, never on what ran
    earlier in the process.  Delegates to the ``scalar`` execution
    backend (:mod:`repro.engine`) -- the reference path every other
    backend is certified byte-identical against.  ``recorder`` (a
    :class:`~repro.obs.telemetry.SpanRecorder`) splits the run into
    ``engine.setup``/``engine.simulate`` spans; it observes wall time
    only and never alters the summary.
    """
    from repro.engine.base import ScalarEngine
    from repro.engine.spec import EngineSpec

    engine = ScalarEngine()
    engine.recorder = recorder
    return engine.run_one(EngineSpec.from_point(spec))


def _simulate_chunk(specs: Sequence[SweepPoint], telemetry: bool = False,
                    submit_ts: Optional[float] = None) -> Dict:
    """Worker entry point: one IPC round-trip covers a chunk of points.

    Returns ``{"rows": [{"result", "wall_ms"}, ...], "telemetry":
    payload-or-None}``.  With ``telemetry`` on, the rows are joined by
    the chunk's span list and a per-chunk metrics *delta* snapshot
    (fresh registry per chunk, so the parent can sum snapshots without
    double counting); ``submit_ts`` is the parent's monotonic submit
    time, from which the queue-wait span is derived.
    """
    tel = WorkerTelemetry(submit_ts=submit_ts) if telemetry else None
    t_chunk = time.monotonic()
    out = []
    for spec in specs:
        t0 = time.perf_counter()
        if tel is not None:
            result = simulate_point(spec, recorder=tel.recorder)
        else:
            result = simulate_point(spec)
        wall_ms = (time.perf_counter() - t0) * 1e3
        if tel is not None:
            tel.point_done(wall_ms)
        out.append({"result": result, "wall_ms": wall_ms})
    if tel is not None:
        tel.recorder.add("chunk.run", t_chunk,
                         time.monotonic() - t_chunk, points=len(specs))
    return {"rows": out,
            "telemetry": tel.export() if tel is not None else None}


def _simulate_batch_group(specs: Sequence[SweepPoint], max_width: int,
                          telemetry: bool = False,
                          submit_ts: Optional[float] = None) -> Dict:
    """Worker entry point for one lockstep lane group.

    Same payload shape as :func:`_simulate_chunk`, so the pool-side
    result handling is backend-agnostic; the lockstep run does not
    attribute wall time per lane, so the group's wall is split evenly.
    The batch engine contributes its own sub-spans (lane build, warmup,
    measure, collect, GC re-enable) through the shared recorder.
    """
    from repro.engine.base import get_engine
    from repro.engine.spec import EngineSpec

    tel = WorkerTelemetry(submit_ts=submit_ts) if telemetry else None
    engine = get_engine("batch", max_width=max_width)
    if tel is not None:
        engine.recorder = tel.recorder
    t_chunk = time.monotonic()
    t0 = time.perf_counter()
    results = engine.run_group(
        [EngineSpec.from_point(spec) for spec in specs])
    wall_ms = (time.perf_counter() - t0) * 1e3 / len(specs)
    if tel is not None:
        for _ in results:
            tel.point_done(wall_ms)
        tel.recorder.add("chunk.run", t_chunk,
                         time.monotonic() - t_chunk,
                         points=len(specs), lanes=len(specs))
    return {"rows": [{"result": result, "wall_ms": wall_ms}
                     for result in results],
            "telemetry": tel.export() if tel is not None else None}


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

ProgressFn = Callable[[str, Scheme], None]


@dataclass
class SweepRunStats:
    """Execution counters of one engine run (also mirrored into the
    metrics registry as ``sweep.*``)."""

    points: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    retried: int = 0
    worker_crashes: int = 0
    workers: int = 1
    chunks: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    #: points served from a crash checkpoint instead of simulation
    resumed_points: int = 0
    #: corrupt cache entries evicted during this run
    cache_evictions: int = 0
    #: execution backend the simulated points ran on
    backend: str = "scalar"
    #: batch backend only: lockstep lane groups run / lanes packed into
    #: them / points that fell back to the scalar engine
    lane_groups: int = 0
    lanes_packed: int = 0
    scalar_fallbacks: int = 0
    #: balanced packing vs naive input-order chunking (negative
    #: fallback delta = lanes rescued from the scalar path)
    pack_groups_delta: int = 0
    pack_fallbacks_delta: int = 0
    #: lane-signature bucket sizes from packing, largest first
    #: (diagnostic: explains why zero groups packed under --strict)
    pack_signature_buckets: List[int] = field(default_factory=list)

    @property
    def points_per_sec(self) -> float:
        return self.points / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.points if self.points else 0.0

    @property
    def utilization(self) -> float:
        """Worker busy time over worker capacity for the run."""
        capacity = self.workers * self.wall_seconds
        return self.busy_seconds / capacity if capacity else 0.0

    def as_dict(self) -> Dict:
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "retried": self.retried,
            "worker_crashes": self.worker_crashes,
            "resumed_points": self.resumed_points,
            "cache_evictions": self.cache_evictions,
            "backend": self.backend,
            "lane_groups": self.lane_groups,
            "lanes_packed": self.lanes_packed,
            "scalar_fallbacks": self.scalar_fallbacks,
            "pack_groups_delta": self.pack_groups_delta,
            "pack_fallbacks_delta": self.pack_fallbacks_delta,
            "pack_signature_buckets": list(self.pack_signature_buckets),
            "workers": self.workers,
            "chunks": self.chunks,
            "wall_seconds": self.wall_seconds,
            "points_per_sec": self.points_per_sec,
            "hit_rate": self.hit_rate,
            "utilization": self.utilization,
        }


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request against the host.

    ``None``/``0`` means one worker per CPU.  Platforms without any
    usable multiprocessing start method degrade to serial.
    """
    if workers is None or workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers > 1 and not multiprocessing.get_all_start_methods():
        return 1  # pragma: no cover - exotic platform fallback
    return workers


def _mp_context():
    """Prefer ``fork`` (cheap, inherits warm imports); fall back to
    the platform default (``spawn``) where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _chunked(items: Sequence, size: int) -> List[Tuple]:
    return [tuple(items[i:i + size]) for i in range(0, len(items), size)]


def run_points(
    specs: Sequence[SweepPoint],
    workers: Optional[int] = None,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    timeout: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
    stats: Optional[SweepRunStats] = None,
    checkpoint=None,
    checkpoint_every: int = 1,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    backend: str = "scalar",
    batch_width: Optional[int] = None,
    telemetry: Optional[SweepTelemetry] = None,
) -> Dict[str, Dict]:
    """Resolve every spec to a summary dict, keyed by content address.

    Cached points are served from disk; the rest fan out across a
    process pool (``workers > 1``) or run inline.  ``timeout`` is the
    per-point wall-clock budget; a chunk that exceeds the sum of its
    points' budgets -- or whose worker dies -- falls back to the
    parent, where each unfinished point retries up to ``max_retries``
    times with exponential backoff (``retry_backoff * 2**attempt``
    seconds) before the sweep fails.  ``checkpoint`` (a path or a
    :class:`SweepCheckpoint`) journals finished points so a killed
    sweep resumes instead of recomputing; the snapshot is flushed every
    ``checkpoint_every`` completions and deleted when the grid
    finishes.  The returned mapping is insertion-ordered by first
    occurrence in ``specs`` and independent of completion order.

    ``backend`` selects the execution engine (:mod:`repro.engine`):
    ``"scalar"`` simulates one point at a time; ``"batch"`` packs up to
    ``batch_width`` signature-compatible points into lockstep lane
    groups (incompatible or leftover singleton points fall back to the
    scalar engine and are counted in ``stats.scalar_fallbacks``).  The
    backends are byte-identical per point, so cache keys, checkpoints
    and fingerprints never depend on the backend or the width;
    ``"batch"`` without numpy installed raises a typed
    :class:`~repro.errors.BackendUnavailableError`.

    ``telemetry`` (a :class:`~repro.obs.telemetry.SweepTelemetry`)
    turns on the sweep-scoped telemetry plane: cross-worker span
    recording, per-worker metric snapshots merged into one registry,
    and the live-progress stream.  Telemetry is a pure reader -- it
    never alters results, cache keys or completion order -- so a
    telemetry-on run is byte-identical to a telemetry-off one.
    """
    from repro.engine.batch import DEFAULT_MAX_WIDTH, pack_lanes
    from repro.engine.spec import EngineSpec

    stats = stats if stats is not None else SweepRunStats()
    stats.workers = resolve_workers(workers)
    stats.backend = backend
    if max_retries < 0:
        raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0:
        raise ConfigError(
            f"retry_backoff must be >= 0, got {retry_backoff}")
    width = batch_width if batch_width is not None else DEFAULT_MAX_WIDTH
    if backend != "scalar":
        # Validates the backend name, the width, and (for "batch")
        # numpy availability -- before any simulation starts.
        from repro.engine.base import get_engine

        get_engine(backend, max_width=width)
    tel = telemetry
    # Parent-as-worker telemetry bundle: serial execution and pool
    # retries simulate in this process; their spans and per-point
    # metrics are recorded here and absorbed at the end, so the merged
    # registry sees identical counter totals whatever the worker count.
    wtel = WorkerTelemetry() if tel is not None else None
    t_start = time.perf_counter()
    t_mono = time.monotonic()

    store = SweepCache(cache_dir) if cache else None
    ckpt = checkpoint
    if isinstance(ckpt, str):
        ckpt = SweepCheckpoint(ckpt)
    results: Dict[str, Dict] = {}
    spec_of_key: Dict[str, SweepPoint] = {}
    for spec in specs:
        # The default code_version() tag keys every point whether or
        # not the cache is consulted, so callers can re-derive the key
        # with ``spec.key()`` regardless of cache settings.
        key = spec.key(store.version if store is not None else None)
        if key not in spec_of_key:
            spec_of_key[key] = spec
            results[key] = None  # placeholder fixing output order
    stats.points = len(spec_of_key)

    resumed: Dict[str, Dict] = {}
    if ckpt is not None:
        ckpt.load()
        ckpt.prune(spec_of_key.keys())
        resumed = dict(ckpt.completed)

    def finish(key: str, result: Dict, wall_ms: float = 0.0,
               source: str = "sim", worker: Optional[int] = None) -> None:
        results[key] = result
        if ckpt is not None and key not in ckpt.completed:
            ckpt.record(key, result, every=checkpoint_every)
        if wall_ms and metrics is not None:
            metrics.histogram("sweep.point_ms").observe(int(wall_ms))
        if tel is not None:
            tel.point_done(spec_of_key[key].label(), source,
                           wall_ms=wall_ms, worker=worker)
        if progress is not None:
            spec = spec_of_key[key]
            progress(spec.app, spec.scheme)

    def cache_put(key: str, result: Dict) -> None:
        if store is None:
            return
        if tel is not None:
            t0 = time.monotonic()
            store.put(key, spec_of_key[key].canonical(), result)
            tel.recorder.add("point.cache_write", t0,
                             time.monotonic() - t0)
        else:
            store.put(key, spec_of_key[key].canonical(), result)

    if tel is not None:
        tel.begin(stats.points, stats.workers)
    t_plan = time.monotonic()
    misses: List[str] = []
    for key, spec in spec_of_key.items():
        if key in resumed:
            stats.resumed_points += 1
            finish(key, resumed[key], source="resumed")
            continue
        cached = store.get(key) if store is not None else None
        if cached is not None:
            stats.cache_hits += 1
            finish(key, cached, source="hit")
        else:
            misses.append(key)
    stats.cache_misses = len(misses)

    # Lane planning: under the batch backend, group signature-compatible
    # misses into lockstep lane groups; everything else (and the whole
    # miss list under the scalar backend) runs through the scalar path.
    group_keys: List[List[str]] = []
    scalar_keys: List[str] = list(misses)
    if backend == "batch" and misses:
        lane_specs = [EngineSpec.from_point(spec_of_key[k]) for k in misses]
        pack_report: Dict = {}
        groups, fallbacks = pack_lanes(lane_specs, width,
                                       deltas=pack_report)
        group_keys = [[misses[i] for i in group] for group in groups]
        scalar_keys = [misses[i] for i in fallbacks]
        stats.lane_groups = len(group_keys)
        stats.lanes_packed = sum(len(g) for g in group_keys)
        stats.scalar_fallbacks = len(scalar_keys)
        stats.pack_groups_delta = pack_report["pack_groups_delta"]
        stats.pack_fallbacks_delta = pack_report["pack_fallbacks_delta"]
        stats.pack_signature_buckets = pack_report["signature_buckets"]
    if tel is not None:
        tel.recorder.add("sweep.plan", t_plan, time.monotonic() - t_plan,
                         points=stats.points, misses=len(misses))

    def run_serially(key: str) -> None:
        t0 = time.perf_counter()
        if wtel is not None:
            result = simulate_point(spec_of_key[key],
                                    recorder=wtel.recorder)
        else:
            result = simulate_point(spec_of_key[key])
        wall_ms = (time.perf_counter() - t0) * 1e3
        stats.busy_seconds += wall_ms / 1e3
        stats.simulated += 1
        if wtel is not None:
            wtel.point_done(wall_ms)
        cache_put(key, result)
        finish(key, result, wall_ms,
               worker=wtel.pid if wtel is not None else None)

    def run_with_retries(key: str) -> None:
        """One point, retried with bounded exponential backoff."""
        attempt = 0
        while True:
            try:
                run_serially(key)
                return
            except Exception:
                attempt += 1
                if attempt > max_retries:
                    raise
                stats.retried += 1
                if retry_backoff > 0:
                    time.sleep(retry_backoff * (2 ** (attempt - 1)))

    def run_group_serially(keys: Sequence[str]) -> None:
        payload = _simulate_batch_group(
            tuple(spec_of_key[k] for k in keys), width,
            telemetry=tel is not None)
        worker_pid = None
        if tel is not None and payload["telemetry"] is not None:
            worker_pid = payload["telemetry"]["pid"]
            tel.absorb(payload["telemetry"])
        for key, row in zip(keys, payload["rows"]):
            stats.simulated += 1
            stats.busy_seconds += row["wall_ms"] / 1e3
            cache_put(key, row["result"])
            finish(key, row["result"], row["wall_ms"], worker=worker_pid)

    def run_group_with_fallback(keys: Sequence[str]) -> None:
        """One lane group; on any failure, unfinished lanes re-run
        through the scalar path (byte-identical by contract), where a
        genuine simulation bug reproduces with a readable traceback."""
        try:
            run_group_serially(keys)
        except Exception:
            for key in keys:
                if results[key] is None:
                    stats.retried += 1
                    run_with_retries(key)

    def run_pool() -> None:
        # One task per lane group, plus the scalar keys chunked at ~4
        # chunks per worker -- load-balanced while amortising
        # pickling/IPC over several points per round-trip.
        # Telemetry-off keeps the historical task arity so test stubs
        # (and any external monkeypatching) see unchanged signatures.
        want_tel = tel is not None
        tel_args = (True,) if want_tel else ()
        tasks: List[Tuple] = [
            (_simulate_batch_group,
             (tuple(spec_of_key[k] for k in keys), width) + tel_args,
             tuple(keys))
            for keys in group_keys
        ]
        if scalar_keys:
            chunk_size = max(1, len(scalar_keys) // (stats.workers * 4))
            tasks.extend(
                (_simulate_chunk,
                 (tuple(spec_of_key[k] for k in chunk),) + tel_args,
                 chunk)
                for chunk in _chunked(scalar_keys, chunk_size)
            )
        stats.chunks = len(tasks)
        retry: List[str] = []
        # The overall deadline is the sum of the per-point budgets: the
        # pool as a whole never waits longer than ``timeout`` per point.
        deadline = timeout * len(misses) if timeout else None
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(stats.workers, len(tasks)),
            mp_context=_mp_context(),
        )
        def submit(executor, fn, args):
            # The submit timestamp rides along so the worker can record
            # its queue-wait span (CLOCK_MONOTONIC is system-wide on
            # the platforms we run on, so worker and parent share a
            # timeline).
            if want_tel:
                return executor.submit(fn, *args, time.monotonic())
            return executor.submit(fn, *args)

        try:
            futures = {
                submit(executor, fn, args): chunk
                for fn, args, chunk in tasks
            }
            for future in concurrent.futures.as_completed(
                    futures, timeout=deadline):
                chunk = futures[future]
                try:
                    payload = future.result()
                except Exception:
                    # Worker crash (BrokenProcessPool marks every
                    # pending future too) or an in-worker exception:
                    # queue the chunk for the serial retry pass, where
                    # a genuine simulation bug reproduces and raises
                    # with a readable traceback.
                    stats.worker_crashes += 1
                    retry.extend(chunk)
                else:
                    worker_pid = None
                    if tel is not None and payload["telemetry"] is not None:
                        worker_pid = payload["telemetry"]["pid"]
                        tel.absorb(payload["telemetry"])
                    for key, row in zip(chunk, payload["rows"]):
                        stats.simulated += 1
                        stats.busy_seconds += row["wall_ms"] / 1e3
                        cache_put(key, row["result"])
                        finish(key, row["result"], row["wall_ms"],
                               worker=worker_pid)
        except concurrent.futures.TimeoutError:
            # Deadline tripped: everything unfinished retries serially.
            stats.worker_crashes += 1
            for future, chunk in futures.items():
                if not future.done():
                    future.cancel()
                    retry.extend(chunk)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        for key in retry:
            if results[key] is None:
                stats.retried += 1
                run_with_retries(key)

    t_dispatch = time.monotonic()
    try:
        if stats.workers <= 1 or len(misses) <= 1:
            for keys in group_keys:
                run_group_with_fallback(keys)
            for key in scalar_keys:
                run_with_retries(key)
        else:
            run_pool()
    finally:
        if ckpt is not None:
            ckpt.flush()
    if ckpt is not None and all(r is not None for r in results.values()):
        ckpt.discard()

    stats.wall_seconds = time.perf_counter() - t_start

    if store is not None:
        stats.cache_evictions = store.evictions

    def mirror_stats(reg) -> None:
        """The sweep.* metric surface, identical on the session registry
        and the telemetry plane's merged registry."""
        reg.counter("sweep.points").inc(stats.points)
        reg.counter("sweep.cache.hits").inc(stats.cache_hits)
        reg.counter("sweep.cache.misses").inc(stats.cache_misses)
        reg.counter("sweep.cache.evictions").inc(stats.cache_evictions)
        reg.counter("sweep.simulated").inc(stats.simulated)
        reg.counter("sweep.retried").inc(stats.retried)
        reg.counter("sweep.worker_crashes").inc(stats.worker_crashes)
        reg.counter("sweep.resumed").inc(stats.resumed_points)
        reg.gauge("sweep.workers").set(stats.workers)
        reg.gauge("sweep.utilization").set(stats.utilization)
        reg.gauge("sweep.points_per_sec").set(stats.points_per_sec)
        if backend == "batch":
            reg.counter("sweep.backend.lanes").inc(stats.lanes_packed)
            reg.counter("sweep.backend.groups").inc(stats.lane_groups)
            reg.counter("sweep.backend.scalar_fallback").inc(
                stats.scalar_fallbacks)
            for keys in group_keys:
                reg.histogram("sweep.backend.width").observe(len(keys))

    if metrics is not None:
        mirror_stats(metrics)
    if tel is not None:
        tel.recorder.add("sweep.dispatch", t_dispatch,
                         time.monotonic() - t_dispatch,
                         simulated=stats.simulated)
        # The parent acted as a worker on the serial and retry paths;
        # only absorb its bundle if it actually recorded something.
        if wtel is not None and (len(wtel.recorder) or len(wtel.registry)):
            tel.absorb(wtel.export())
        if metrics is not tel.registry:
            mirror_stats(tel.registry)
        active = tel.registry.labeled_gauge("sweep.workers.active")
        for pid in tel.workers():
            active.set(1, label=f"w{pid}")
        tel.recorder.add("sweep.run", t_mono, stats.wall_seconds,
                         points=stats.points, backend=backend)
        tel.finish()
    return results
